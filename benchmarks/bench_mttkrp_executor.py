"""Executor sweep for the slab-tiled MTTKRP: serial vs thread vs process.

``BENCH_mttkrp_tiled.json`` documented the GIL wall: at 139 slabs the
thread pool *regresses* (94.7 ms at 1 thread vs 133.6 ms at 4), because
the slab kernels are small-op Python/NumPy scatter loops that never let
go of the GIL.  This sweep times the same tiled MTTKRP under all three
execution backends (``serial``, ``thread``, ``process``) at 1/2/4
workers and records what each costs:

* per-call latency (per mode and whole-sweep means),
* speedup over the serial baseline,
* the process executor's fixed costs — pool spawn seconds, bytes mapped
  into shared memory, first-call (cold) latency vs steady-state — so the
  amortization story is visible in the artifact, not just claimed.

The JSON artifact is written to ``benchmarks/results/`` like every
other benchmark (see ``benchmarks/README.md``); a compatibility symlink
``BENCH_mttkrp_executor.json`` is refreshed at the repo root for older
tooling that diffed it there.  Bit-identity across executors is
asserted inline — a benchmark that silently computed different numbers
would be measuring the wrong thing.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.kernels import MTTKRPEngine
from repro.parallel.executor import ProcessExecutor

from conftest import BENCH_SEED, save_artifact

REPO_ROOT = Path(__file__).resolve().parent.parent

RANK = 16
ROUNDS = 5
#: The slab decomposition where the thread pool regressed (139 slabs).
SLAB_TARGET = 1024
#: (executor, workers) grid; serial has no worker knob.
CONFIGS = (("serial", 1),
           ("thread", 1), ("thread", 2), ("thread", 4),
           ("process", 1), ("process", 2), ("process", 4))


def _sweep_config(tensor, factors, executor_name: str,
                  workers: int) -> tuple[dict, list[np.ndarray]]:
    nmodes = tensor.nmodes
    # A private ProcessExecutor per config isolates the pool so spawn
    # cost is measured per worker count, not amortized across configs.
    executor = (ProcessExecutor(max_workers=workers)
                if executor_name == "process" else executor_name)
    engine = MTTKRPEngine(tensor, slab_nnz_target=SLAB_TARGET,
                          threads=workers, executor=executor)
    try:
        cold_tick = time.perf_counter()
        outputs = [np.array(engine.mttkrp(factors, mode), copy=True)
                   for mode in range(nmodes)]
        cold_sweep_seconds = time.perf_counter() - cold_tick
        warm_calls = len(engine.call_log)

        tick = time.perf_counter()
        for _ in range(ROUNDS):
            for mode in range(nmodes):
                engine.mttkrp(factors, mode)
        total_seconds = time.perf_counter() - tick

        steady = engine.call_log[warm_calls:]
        per_mode = {
            str(mode): float(np.mean([s.seconds for s in steady
                                      if s.mode == mode]))
            for mode in range(nmodes)
        }
        arena = engine._arena
        pool = executor._pool if isinstance(executor, ProcessExecutor) \
            else None
        shm_bytes = arena.bytes_mapped if arena is not None else 0
        spawn_seconds = pool.spawn_seconds if pool is not None else 0.0
        slab_counts = [engine.tiling(m).slab_count
                       for m in range(nmodes)]
        close_tick = time.perf_counter()
        engine.close()
        if isinstance(executor, ProcessExecutor):
            executor.close()
        teardown_seconds = time.perf_counter() - close_tick
        config = {
            "executor": executor_name,
            "workers": workers,
            "slab_counts": slab_counts,
            "cold_sweep_seconds": cold_sweep_seconds,
            "mean_sweep_seconds": total_seconds / ROUNDS,
            "per_mode_mean_seconds": per_mode,
            "overhead": {
                "pool_spawn_seconds": spawn_seconds,
                "shm_bytes_mapped": shm_bytes,
                "teardown_seconds": teardown_seconds,
            },
        }
        return config, outputs
    finally:
        engine.close()
        if isinstance(executor, ProcessExecutor):
            executor.close()


@pytest.fixture(scope="module")
def executor_setup(small_datasets):
    tensor = small_datasets["reddit"]
    rng = np.random.default_rng(BENCH_SEED)
    factors = [rng.uniform(0.0, 1.0, (s, RANK)) for s in tensor.shape]
    return tensor, factors


def test_bench_mttkrp_executor(executor_setup, results_dir):
    tensor, factors = executor_setup
    configs: list[dict] = []
    baseline_outputs: list[np.ndarray] | None = None
    serial_mean = None
    for executor_name, workers in CONFIGS:
        cfg, outputs = _sweep_config(tensor, factors, executor_name,
                                     workers)
        if baseline_outputs is None:
            baseline_outputs = outputs
            serial_mean = cfg["mean_sweep_seconds"]
        else:
            # Bit-identity is the contract the whole executor layer
            # rests on; a benchmark of divergent results is meaningless.
            for base, other in zip(baseline_outputs, outputs):
                np.testing.assert_array_equal(base, other)
        cfg["speedup_over_serial"] = serial_mean / cfg["mean_sweep_seconds"]
        configs.append(cfg)

    payload = {
        "benchmark": "mttkrp_executor",
        "dataset": "reddit/small",
        "shape": list(tensor.shape),
        "nnz": tensor.nnz,
        "rank": RANK,
        "rounds": ROUNDS,
        "slab_nnz_target": SLAB_TARGET,
        "bit_identical_across_executors": True,
        "configs": configs,
    }
    json_path = results_dir / "BENCH_mttkrp_executor.json"
    json_path.write_text(json.dumps(payload, indent=2) + "\n")
    # Compatibility symlink: the artifact used to live at the repo root.
    legacy = REPO_ROOT / "BENCH_mttkrp_executor.json"
    if legacy.is_symlink() or legacy.exists():
        legacy.unlink()
    try:
        legacy.symlink_to(json_path.relative_to(REPO_ROOT))
    except OSError:  # filesystems without symlink support
        legacy.write_text(json_path.read_text())

    lines = ["MTTKRP executor sweep (reddit/small, "
             f"nnz={tensor.nnz}, rank={RANK}, "
             f"slab target {SLAB_TARGET})",
             f"{'executor':>9} {'workers':>8} {'sweep ms':>10} "
             f"{'speedup':>8} {'spawn ms':>9} {'shm MiB':>8}"]
    for cfg in configs:
        over = cfg["overhead"]
        lines.append(
            f"{cfg['executor']:>9} {cfg['workers']:>8} "
            f"{cfg['mean_sweep_seconds'] * 1e3:>10.2f} "
            f"{cfg['speedup_over_serial']:>8.2f} "
            f"{over['pool_spawn_seconds'] * 1e3:>9.2f} "
            f"{over['shm_bytes_mapped'] / 2**20:>8.2f}")
    lines.append(f"[json saved to {json_path}]")
    save_artifact(results_dir, "bench_mttkrp_executor", "\n".join(lines))
