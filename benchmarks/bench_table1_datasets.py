"""Table I — dataset summary.

Regenerates the paper's dataset table twice: once with the full-scale
figures the specs carry (NNZ, I, J, K exactly as published) and once with
the measured statistics of our scaled synthetic instances, including the
skew measurements that drive the blocked solver's advantage.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.datasets import get_spec
from repro.tensor.stats import compute_stats

from conftest import DATASET_NAMES, save_artifact


def build_table1(small_datasets) -> str:
    full_rows = []
    scaled_rows = []
    for name in DATASET_NAMES:
        spec = get_spec(name)
        i, j, k = spec.full_shape
        full_rows.append({"Dataset": name.capitalize(),
                          "NNZ": f"{spec.full_nnz:,}",
                          "I": f"{i:,}", "J": f"{j:,}", "K": f"{k:,}"})
        tensor = small_datasets[name]
        stats = compute_stats(tensor)
        si, sj, sk = tensor.shape
        scaled_rows.append({
            "Dataset": name.capitalize(),
            "NNZ": f"{stats.nnz:,}",
            "I": f"{si:,}", "J": f"{sj:,}", "K": f"{sk:,}",
            "density": f"{stats.density:.2e}",
            "max-skew(gini)": f"{max(stats.slice_skew):.2f}",
        })
    return (format_table(full_rows,
                         title="Table I (paper figures, from specs)")
            + "\n\n"
            + format_table(scaled_rows,
                           title="Table I (scaled synthetic instances, "
                                 "measured)"))


def test_table1(benchmark, small_datasets, results_dir):
    text = benchmark.pedantic(build_table1, args=(small_datasets,),
                              rounds=1, iterations=1)
    save_artifact(results_dir, "table1_datasets", text)
    assert "Reddit" in text and "3,500,000,000" in text
