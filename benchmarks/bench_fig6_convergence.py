"""Figure 6 — convergence of base vs blocked AO-ADMM.

For each corpus: one unblocked and one blocked rank-50-analog run from
*identical* initializations, reporting relative error as a function of
wall-clock time and of outer iteration (the paper's two columns).

Paper shape: blocking improves per-iteration convergence on every
dataset — either a lower final error (NELL: 3.7x faster to a ~3% lower
error; Amazon) or the same error in fewer iterations (Reddit, Patents
within 1%).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import AOADMMOptions, fit_aoadmm, init_factors
from repro.bench import Series, ascii_plot, format_series, format_table
from repro.kernels.dispatch import MTTKRPEngine

from conftest import BENCH_SEED, DATASET_NAMES, save_artifact

RANK = 16  # scaled-down analog of the paper's rank 50
MAX_OUTER = 40


def iterations_to_reach(errors: np.ndarray, target: float) -> int:
    hits = np.nonzero(errors <= target)[0]
    return int(hits[0]) + 1 if hits.size else len(errors)


def run_fig6(small_datasets) -> tuple[str, dict]:
    summary_rows = []
    series_blocks = []
    outcome = {}
    for name in DATASET_NAMES:
        tensor = small_datasets[name]
        init = init_factors(tensor, RANK, "uniform", seed=BENCH_SEED)
        engine = MTTKRPEngine(tensor)
        engine.trees.build_all()
        runs = {}
        for label, blocked in (("base", False), ("blocked", True)):
            runs[label] = fit_aoadmm(
                tensor,
                AOADMMOptions(rank=RANK, constraints="nonneg",
                              blocked=blocked, seed=BENCH_SEED,
                              max_outer_iterations=MAX_OUTER,
                              outer_tolerance=1e-6),
                initial_factors=init, engine=engine)
            t, e = runs[label].trace.error_vs_time()
            series_blocks.append(
                Series.from_arrays(f"{name}/{label} (error vs seconds)",
                                   t, e))
            i, e = runs[label].trace.error_vs_iteration()
            series_blocks.append(
                Series.from_arrays(f"{name}/{label} (error vs iteration)",
                                   i, e))

        base_err = runs["base"].relative_error
        blocked_err = runs["blocked"].relative_error
        # Iterations each variant needs to reach the worse final error.
        target = max(base_err, blocked_err) * 1.002
        base_iters = iterations_to_reach(runs["base"].trace.errors(),
                                         target)
        blocked_iters = iterations_to_reach(
            runs["blocked"].trace.errors(), target)
        outcome[name] = {
            "base_err": base_err, "blocked_err": blocked_err,
            "base_iters_to_target": base_iters,
            "blocked_iters_to_target": blocked_iters,
        }
        summary_rows.append({
            "Dataset": name.capitalize(),
            "base err": f"{base_err:.4f}",
            "blocked err": f"{blocked_err:.4f}",
            "err delta %": f"{100 * (blocked_err - base_err) / base_err:+.2f}",
            "base iters->tgt": base_iters,
            "blocked iters->tgt": blocked_iters,
        })
    plots = []
    for name in DATASET_NAMES:
        per_iter = [s for s in series_blocks
                    if s.label.startswith(name)
                    and "iteration" in s.label]
        plots.append(ascii_plot(
            per_iter, title=f"{name}: relative error vs outer iteration",
            x_name="iteration", y_name="error", width=56, height=10))
    text = (format_table(
        summary_rows,
        title=f"Figure 6 summary: base vs blocked (rank {RANK}, "
              f"non-negative, <= {MAX_OUTER} outer iterations)")
        + "\n\n" + "\n\n".join(plots) + "\n\n"
        + format_series(series_blocks, title="Figure 6 series",
                        x_name="x", y_name="rel.error", max_points=12))
    return text, outcome


def test_fig6_convergence(benchmark, small_datasets, results_dir):
    text, outcome = benchmark.pedantic(
        run_fig6, args=(small_datasets,), rounds=1, iterations=1)
    save_artifact(results_dir, "fig6_convergence", text)
    for name, o in outcome.items():
        # Blocked reaches a comparable-or-better solution (within 1%, the
        # paper's tolerance for Reddit/Patents) ...
        assert o["blocked_err"] <= o["base_err"] * 1.01, name
        # ... in no more iterations than the baseline needs.
        assert (o["blocked_iters_to_target"]
                <= o["base_iters_to_target"]), name
