"""Ablation A5 — CSF allocation policy (SPLATT's design space).

ALLMODE (one tree per mode; every MTTKRP runs the fast root kernel)
versus ONEMODE (a single tree; other modes use the internal/leaf
kernels, which need scatter-adds).  Memory versus time — the trade-off
SPLATT exposes as ``ALLMODE``/``ONEMODE`` and that this library mirrors
as ``MTTKRPEngine(csf_allocation=...)``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import Timer, format_table
from repro.kernels.dispatch import MTTKRPEngine

from conftest import BENCH_SEED, save_artifact

RANK = 32
REPEATS = 2


def run_csf_allocation(small_datasets) -> tuple[str, dict]:
    tensor = small_datasets["reddit"]
    rng = np.random.default_rng(BENCH_SEED)
    factors = [rng.uniform(0.0, 1.0, (s, RANK)) for s in tensor.shape]

    rows = []
    stats = {}
    for policy in ("all", "one"):
        engine = MTTKRPEngine(tensor, csf_allocation=policy)
        # Warm every tree the policy will use.
        for mode in range(3):
            engine.mttkrp(factors, mode)
        with Timer() as t:
            for _ in range(REPEATS):
                for mode in range(3):
                    engine.mttkrp(factors, mode)
        seconds = t.seconds / REPEATS
        mem = engine.trees.storage_bytes()
        stats[policy] = {"seconds": seconds, "bytes": mem}
        rows.append({
            "policy": {"all": "ALLMODE (3 trees)",
                       "one": "ONEMODE (1 tree)"}[policy],
            "all-modes MTTKRP (ms)": f"{1000 * seconds:.1f}",
            "CSF memory (MB)": f"{mem / 2**20:.1f}",
        })
    text = format_table(
        rows, title=f"Ablation: CSF allocation policy on Reddit "
                    f"(rank {RANK}, all three mode MTTKRPs)")
    return text, stats


def test_ablation_csf_allocation(benchmark, small_datasets, results_dir):
    text, stats = benchmark.pedantic(
        run_csf_allocation, args=(small_datasets,), rounds=1, iterations=1)
    save_artifact(results_dir, "ablation_csf_allocation", text)
    # ONEMODE saves memory ...
    assert stats["one"]["bytes"] < stats["all"]["bytes"]
    # ... and ALLMODE is at least competitive in time (root kernels
    # avoid the scatter-add of the internal/leaf kernels).
    assert stats["all"]["seconds"] < stats["one"]["seconds"] * 1.5
