"""Slab-tiled MTTKRP sweep: slab size x threads, machine-readable output.

Times the engine's slab-tiled dense MTTKRP across a grid of
``slab_nnz_target`` and ``threads`` settings on one corpus, and records
the workspace allocation accounting that backs the zero-allocation
guarantee: after the warm-up sweep, repeated calls on the static pattern
must allocate **nothing** (child counts, accumulators, and outputs all
come from the pooled workspace).

Unlike the other benchmarks this one's primary artifact is JSON
(``BENCH_mttkrp_tiled.json``) so future PRs can diff the perf trajectory
programmatically; a human-readable table is saved alongside.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.kernels import MTTKRPEngine

from conftest import BENCH_SEED, save_artifact

RANK = 16
ROUNDS = 5
#: One-slab limit, the library default, and two finer decompositions.
SLAB_TARGETS = (10**9, 65536, 8192, 1024)
THREADS = (1, 2, 4)


def _engine_allocations(engine: MTTKRPEngine) -> tuple[int, int]:
    """(allocations, bytes) across every workspace the engine built."""
    workspaces = engine._workspaces.values()
    return (sum(ws.allocations for ws in workspaces),
            sum(ws.bytes_allocated for ws in workspaces))


def _sweep_config(tensor, factors, slab_target: int,
                  threads: int) -> dict:
    engine = MTTKRPEngine(tensor, slab_nnz_target=slab_target,
                          threads=threads)
    nmodes = tensor.nmodes

    for mode in range(nmodes):  # warm-up: builds trees, tilings, buffers
        engine.mttkrp(factors, mode)
    warm_allocs, warm_bytes = _engine_allocations(engine)
    warm_calls = len(engine.call_log)

    tick = time.perf_counter()
    for _ in range(ROUNDS):
        for mode in range(nmodes):
            engine.mttkrp(factors, mode)
    total_seconds = time.perf_counter() - tick

    steady = engine.call_log[warm_calls:]
    steady_allocs, steady_bytes = _engine_allocations(engine)
    per_mode = {
        str(mode): float(np.mean([s.seconds for s in steady
                                  if s.mode == mode]))
        for mode in range(nmodes)
    }
    return {
        "slab_nnz_target": slab_target,
        "threads": threads,
        "slab_counts": [engine.tiling(m).slab_count
                        for m in range(nmodes)],
        "warmup": {"allocations": warm_allocs,
                   "bytes_allocated": warm_bytes},
        "steady": {
            "new_allocations": steady_allocs - warm_allocs,
            "new_bytes_allocated": steady_bytes - warm_bytes,
            "per_call_bytes": [s.bytes_allocated for s in steady],
        },
        "per_mode_mean_seconds": per_mode,
        "mean_sweep_seconds": total_seconds / ROUNDS,
    }


@pytest.fixture(scope="module")
def tiled_setup(small_datasets):
    tensor = small_datasets["reddit"]
    rng = np.random.default_rng(BENCH_SEED)
    factors = [rng.uniform(0.0, 1.0, (s, RANK)) for s in tensor.shape]
    return tensor, factors


def test_bench_mttkrp_tiled(tiled_setup, results_dir):
    tensor, factors = tiled_setup
    configs = [_sweep_config(tensor, factors, target, threads)
               for target in SLAB_TARGETS
               for threads in THREADS]

    # The zero-allocation guarantee is part of the benchmark contract:
    # fail loudly if any steady-state call allocated.
    for cfg in configs:
        assert cfg["steady"]["new_allocations"] == 0, cfg
        assert cfg["steady"]["new_bytes_allocated"] == 0, cfg

    payload = {
        "benchmark": "mttkrp_tiled",
        "dataset": "reddit/small",
        "shape": list(tensor.shape),
        "nnz": tensor.nnz,
        "rank": RANK,
        "rounds": ROUNDS,
        "configs": configs,
    }
    json_path = results_dir / "BENCH_mttkrp_tiled.json"
    json_path.write_text(json.dumps(payload, indent=2) + "\n")

    lines = ["MTTKRP slab tiling sweep (reddit/small, "
             f"nnz={tensor.nnz}, rank={RANK})",
             f"{'slab target':>12} {'threads':>8} {'slabs':>6} "
             f"{'sweep ms':>10} {'steady allocs':>14}"]
    for cfg in configs:
        lines.append(
            f"{cfg['slab_nnz_target']:>12} {cfg['threads']:>8} "
            f"{max(cfg['slab_counts']):>6} "
            f"{cfg['mean_sweep_seconds'] * 1e3:>10.2f} "
            f"{cfg['steady']['new_allocations']:>14}")
    lines.append(f"[json saved to {json_path}]")
    save_artifact(results_dir, "bench_mttkrp_tiled", "\n".join(lines))
