"""Ablation A1 — block size trade-off (Section IV-B).

The paper: "A natural first choice is B = I ... Unfortunately, other
overheads such as function calls ... are exaggerated ... We empirically
found that blocks of 50 rows offered a good trade-off."  This bench sweeps
block sizes on one skewed corpus and reports both real time-to-error and
simulated full-scale behaviour (the per-call overhead shows up as the
dynamic-chunk cost in the machine model).
"""

from __future__ import annotations

import pytest

from repro import AOADMMOptions, fit_aoadmm, init_factors
from repro.bench import Timer, format_table

from conftest import BENCH_SEED, save_artifact

BLOCK_SIZES = (1, 10, 50, 250, 10**9)
RANK = 16
OUTER = 12


def run_block_size_sweep(small_datasets) -> tuple[str, dict]:
    tensor = small_datasets["reddit"]
    init = init_factors(tensor, RANK, "uniform", seed=BENCH_SEED)
    rows = []
    stats = {}
    for block in BLOCK_SIZES:
        with Timer() as t:
            result = fit_aoadmm(
                tensor,
                AOADMMOptions(rank=RANK, constraints="nonneg",
                              blocked=True, block_size=block,
                              seed=BENCH_SEED, max_outer_iterations=OUTER,
                              outer_tolerance=0.0),
                initial_factors=init)
        label = "unblocked" if block >= tensor.shape[0] else str(block)
        stats[block] = {"seconds": t.seconds,
                        "error": result.relative_error}
        rows.append({
            "block size": label,
            "total (s)": f"{t.seconds:.2f}",
            "final error": f"{result.relative_error:.5f}",
            "mean inner iters": f"{sum(sum(r.inner_iterations) for r in result.trace.records) / (3 * OUTER):.1f}",
        })
    text = format_table(
        rows, title="Ablation: block-size trade-off on Reddit "
                    f"(rank {RANK}, {OUTER} outer iterations)")
    return text, stats


def test_ablation_block_size(benchmark, small_datasets, results_dir):
    text, stats = benchmark.pedantic(
        run_block_size_sweep, args=(small_datasets,), rounds=1,
        iterations=1)
    save_artifact(results_dir, "ablation_block_size", text)
    # Per-row blocks pay heavy per-call overhead (the paper's motivation
    # for not using B = I).
    assert stats[1]["seconds"] > stats[50]["seconds"]
    # All block sizes converge to comparable solutions.
    errs = [s["error"] for s in stats.values()]
    assert max(errs) - min(errs) < 0.05
