"""Out-of-core streaming MTTKRP: overhead vs. the in-core engine.

Times full MTTKRP sweeps through the sharded on-disk store at a ladder
of ``max_bytes_in_core`` budgets — unbounded (everything stays resident
after the first sweep), half, a quarter, and a twentieth of the store's
full footprint — against the in-core tiled engine on the same tensor,
and records the slab-cache traffic (loads, hits, evictions, peak
resident bytes) that explains each overhead number.

The primary artifact is JSON (``BENCH_ooc_mttkrp.json``) so future PRs
can diff the streaming-overhead trajectory programmatically; a
human-readable table is saved alongside.  Every streamed result is also
checked **bitwise** against the in-core sweep — the overhead being
measured must never buy a different answer.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.kernels import MTTKRPEngine, StreamingMTTKRPEngine
from repro.tensor import ShardedTensorStore

from conftest import BENCH_SEED, save_artifact

RANK = 16
ROUNDS = 5
SLAB_NNZ_TARGET = 8192
#: Byte budgets as fractions of the store's full slab footprint;
#: ``None`` = unbounded (resident after warm-up, the best case).
BUDGET_FRACTIONS = (None, 0.5, 0.25, 0.05)


def _time_sweeps(engine, factors, nmodes: int) -> tuple[float, list]:
    for mode in range(nmodes):  # warm-up: buffers, trees / first loads
        engine.mttkrp(factors, mode)
    tick = time.perf_counter()
    for _ in range(ROUNDS):
        for mode in range(nmodes):
            engine.mttkrp(factors, mode)
    seconds = (time.perf_counter() - tick) / ROUNDS
    reference = [np.array(engine.mttkrp(factors, m), copy=True)
                 for m in range(nmodes)]
    return seconds, reference


@pytest.fixture(scope="module")
def ooc_setup(small_datasets, tmp_path_factory):
    tensor = small_datasets["reddit"]
    rng = np.random.default_rng(BENCH_SEED)
    factors = [rng.uniform(0.0, 1.0, (s, RANK)) for s in tensor.shape]
    store = ShardedTensorStore.create(
        tensor, tmp_path_factory.mktemp("ooc") / "store",
        slab_nnz_target=SLAB_NNZ_TARGET)
    return tensor, factors, store


def test_bench_ooc_mttkrp(ooc_setup, results_dir):
    tensor, factors, store = ooc_setup
    nmodes = tensor.nmodes

    in_core = MTTKRPEngine(tensor, slab_nnz_target=SLAB_NNZ_TARGET)
    in_core_seconds, reference = _time_sweeps(in_core, factors, nmodes)
    in_core.close()

    footprint = store.storage_bytes()
    configs = []
    for fraction in BUDGET_FRACTIONS:
        budget = None if fraction is None else max(1, int(footprint
                                                          * fraction))
        engine = StreamingMTTKRPEngine(store, max_bytes_in_core=budget)
        seconds, streamed = _time_sweeps(engine, factors, nmodes)
        for mode in range(nmodes):  # overhead must not change one bit
            np.testing.assert_array_equal(streamed[mode], reference[mode])
        stats = engine.cache.stats()
        engine.close()
        configs.append({
            "budget_fraction": fraction,
            "max_bytes_in_core": budget,
            "mean_sweep_seconds": seconds,
            "overhead_vs_in_core": seconds / in_core_seconds,
            "cache": {
                "loads": stats["loads"],
                "hits": stats["hits"],
                "evictions": stats["evictions"],
                "peak_resident_bytes": stats["peak_resident_bytes"],
            },
        })

    # Sanity: tight budgets really were under pressure, the unbounded
    # run really was not.
    assert configs[0]["cache"]["evictions"] == 0
    assert configs[-1]["cache"]["evictions"] > 0
    assert configs[-1]["cache"]["peak_resident_bytes"] < footprint

    payload = {
        "benchmark": "ooc_mttkrp",
        "dataset": "reddit/small",
        "shape": list(tensor.shape),
        "nnz": tensor.nnz,
        "rank": RANK,
        "rounds": ROUNDS,
        "slab_nnz_target": SLAB_NNZ_TARGET,
        "store_bytes": footprint,
        "slab_counts": [store.slab_count(m) for m in range(nmodes)],
        "in_core_mean_sweep_seconds": in_core_seconds,
        "configs": configs,
    }
    json_path = results_dir / "BENCH_ooc_mttkrp.json"
    json_path.write_text(json.dumps(payload, indent=2) + "\n")

    lines = ["Out-of-core streaming MTTKRP overhead (reddit/small, "
             f"nnz={tensor.nnz}, rank={RANK}, "
             f"store={footprint / 1e6:.1f} MB)",
             f"{'budget':>12} {'sweep ms':>10} {'overhead':>9} "
             f"{'loads':>6} {'hits':>6} {'evicts':>7} {'peak MB':>8}"]
    lines.append(f"{'in-core':>12} {in_core_seconds * 1e3:>10.2f} "
                 f"{'1.00x':>9} {'-':>6} {'-':>6} {'-':>7} {'-':>8}")
    for cfg in configs:
        label = ("none" if cfg["budget_fraction"] is None
                 else f"{cfg['budget_fraction']:.0%}")
        cache = cfg["cache"]
        lines.append(
            f"{label:>12} {cfg['mean_sweep_seconds'] * 1e3:>10.2f} "
            f"{cfg['overhead_vs_in_core']:>8.2f}x "
            f"{cache['loads']:>6} {cache['hits']:>6} "
            f"{cache['evictions']:>7} "
            f"{cache['peak_resident_bytes'] / 1e6:>8.1f}")
    save_artifact(results_dir, "bench_ooc_mttkrp", "\n".join(lines))
