"""Ablation A2 — penalty-parameter policy.

The paper fixes rho = trace(G)/F (Algorithm 1 line 3) without comparison.
This ablation justifies the choice against fixed values and scaled
variants: the trace rule adapts to the factors' scale every outer
iteration, so it converges as fast as the best hand-tuned constant
without the tuning.
"""

from __future__ import annotations

import pytest

from repro import AOADMMOptions, fit_aoadmm, init_factors
from repro.admm import FixedRho, NormalizedTraceRho, TraceRho
from repro.bench import format_table

from conftest import BENCH_SEED, save_artifact

RANK = 16
OUTER = 15

POLICIES = [
    ("trace(G)/F (paper)", TraceRho()),
    ("0.1 * trace(G)/F", NormalizedTraceRho(scale=0.1)),
    ("10 * trace(G)/F", NormalizedTraceRho(scale=10.0)),
    ("fixed 1e-3", FixedRho(1e-3)),
    ("fixed 1.0", FixedRho(1.0)),
    ("fixed 1e3", FixedRho(1e3)),
]


def run_rho_sweep(small_datasets) -> tuple[str, dict]:
    tensor = small_datasets["amazon"]
    init = init_factors(tensor, RANK, "uniform", seed=BENCH_SEED)
    rows = []
    errors = {}
    for label, policy in POLICIES:
        result = fit_aoadmm(
            tensor,
            AOADMMOptions(rank=RANK, constraints="nonneg",
                          rho_policy=policy, seed=BENCH_SEED,
                          max_outer_iterations=OUTER, outer_tolerance=0.0),
            initial_factors=init)
        errors[label] = result.relative_error
        mean_inner = (sum(sum(r.inner_iterations)
                          for r in result.trace.records)
                      / (3 * len(result.trace)))
        rows.append({"rho policy": label,
                     "final error": f"{result.relative_error:.5f}",
                     "mean inner iters": f"{mean_inner:.1f}"})
    text = format_table(rows,
                        title=f"Ablation: rho policy on Amazon "
                              f"(rank {RANK}, {OUTER} outer iterations)")
    return text, errors


def test_ablation_rho(benchmark, small_datasets, results_dir):
    text, errors = benchmark.pedantic(
        run_rho_sweep, args=(small_datasets,), rounds=1, iterations=1)
    save_artifact(results_dir, "ablation_rho", text)
    paper = errors["trace(G)/F (paper)"]
    # The paper's rule is within 2% of the best policy in the sweep.
    assert paper <= min(errors.values()) * 1.02
