"""Table II — effect of sparse factor data structures on CPD runtime.

L1-regularized factorizations of the Reddit- and Amazon-like corpora at
three ranks, with the deep MTTKRP factor stored DENSE, CSR, or hybrid
(CSR-H).  As in the paper, the *total* time-to-solution is reported (all
runs take the same fixed iteration count from identical seeds, so times
are comparable), alongside the final density of the longest factor.

Expected shape: once the factors go sparse, CSR beats DENSE (paper:
1.1-2.3x).  The paper's CSR-H-vs-CSR crossover is driven by memory
latency hiding that a NumPy substrate cannot express; the measured table
shows CSR-H between DENSE and CSR, while the machine cost model (second
table) reproduces the latency-driven Reddit/Amazon crossover.
"""

from __future__ import annotations

import pytest

from repro import AOADMMOptions, fit_aoadmm, init_factors
from repro.bench import Timer, format_table
from repro.constraints import NonNegativeL1
from repro.kernels.dispatch import MTTKRPEngine
from repro.machine import (
    FactorizationWorkload,
    PAPER_MACHINE,
    factorization_time,
)

from conftest import BENCH_SEED, save_artifact

DATASETS = ("reddit", "amazon")
RANKS = (16, 32, 64)        # scaled-down analog of the paper's 50/100/200
L1_WEIGHT = 0.05            # the paper's 1e-1 ||.||_1, adjusted for scale
OUTER_ITERS = 10
POLICIES = (("DENSE", "dense"), ("CSR", "csr"), ("CSR-H", "hybrid"))


def run_table2_measured(small_datasets) -> tuple[str, dict]:
    rows = []
    times: dict[tuple, float] = {}
    for name in DATASETS:
        tensor = small_datasets[name]
        longest_mode = int(max(range(3), key=lambda m: tensor.shape[m]))
        for rank in RANKS:
            init = init_factors(tensor, rank, "uniform", seed=BENCH_SEED)
            row = {"Dataset": name.capitalize(), "F": rank}
            for label, policy in POLICIES:
                engine = MTTKRPEngine(
                    tensor, repr_policy=policy, tol=0.0)
                engine.trees.build_all()
                with Timer() as t:
                    result = fit_aoadmm(
                        tensor,
                        AOADMMOptions(rank=rank,
                                      constraints=NonNegativeL1(L1_WEIGHT),
                                      seed=BENCH_SEED,
                                      max_outer_iterations=OUTER_ITERS,
                                      outer_tolerance=0.0,
                                      repr_policy=policy),
                        initial_factors=init, engine=engine)
                times[(name, rank, label)] = t.seconds
                row[label + " (s)"] = f"{t.seconds:.2f}"
                if label == "DENSE":
                    density = result.model.factor_density(longest_mode)
                    row["density"] = f"{100 * density:.1f}%"
            rows.append(row)
    text = format_table(
        rows, title=f"Table II (measured): total CPD seconds, "
                    f"{OUTER_ITERS} outer iterations, "
                    f"r = {L1_WEIGHT}*||.||_1 on all factors")
    return text, times


#: Full-scale hybrid column profiles: Reddit's word marginals are highly
#: concentrated (a tiny dense prefix captures most stored entries), while
#: Amazon's much longer mode has a flat column-density distribution, so
#: "denser than the average column" sweeps in about half the columns —
#: a wide prefix whose stored zeros erase the latency win.
HYBRID_PROFILES = {"reddit": (0.02, 0.04, 0.70),
                   "amazon": (0.03, 0.50, 0.55)}


def run_table2_modeled() -> str:
    """Full-scale cost model: reproduces the paper's CSR-H crossover."""
    rows = []
    for name, (density, dfrac, share) in HYBRID_PROFILES.items():
        workload = FactorizationWorkload.from_spec(name, rank=50)
        reps = {
            "DENSE": dict(leaf_rep="dense", leaf_density=1.0),
            "CSR": dict(leaf_rep="csr", leaf_density=density),
            "CSR-H": dict(leaf_rep="csr-h", leaf_density=density,
                          dense_col_frac=dfrac, dense_col_share=share),
        }
        row = {"Dataset": name.capitalize()}
        for label, kwargs in reps.items():
            sim = factorization_time(workload, threads=20,
                                     machine=PAPER_MACHINE,
                                     blocked=True, **kwargs)
            row[label + " (model s/iter)"] = f"{sim.total_seconds:.2f}"
        rows.append(row)
    return format_table(
        rows, title="Table II (full-scale machine model, rank 50, "
                    "20 threads): CSR-H wins on Reddit, loses on Amazon")


def test_table2_sparse_mttkrp(benchmark, small_datasets, results_dir):
    (text, times) = benchmark.pedantic(
        run_table2_measured, args=(small_datasets,), rounds=1, iterations=1)
    modeled = run_table2_modeled()
    save_artifact(results_dir, "table2_sparse_mttkrp",
                  text + "\n\n" + modeled)
    # Paper shape: exploiting sparsity beats DENSE at every rank.
    for name in DATASETS:
        for rank in RANKS:
            assert (times[(name, rank, "CSR")]
                    < times[(name, rank, "DENSE")]), (name, rank)


def test_table2_modeled_crossover(benchmark, results_dir):
    """The latency-aware model reproduces the paper's CSR-H crossover."""
    from repro.machine import kernel_time

    benchmark.pedantic(run_table2_modeled, rounds=1, iterations=1)
    results = {}
    for name, (density, dfrac, share) in HYBRID_PROFILES.items():
        workload = FactorizationWorkload.from_spec(name, rank=50)
        csr = hybrid = 0.0
        for mode in workload.modes:
            csr += kernel_time(
                mode.mttkrp_cost(50, PAPER_MACHINE, leaf_rep="csr",
                                 leaf_density=density),
                20, PAPER_MACHINE)
            hybrid += kernel_time(
                mode.mttkrp_cost(50, PAPER_MACHINE, leaf_rep="csr-h",
                                 leaf_density=density,
                                 dense_col_frac=dfrac,
                                 dense_col_share=share),
                20, PAPER_MACHINE)
        results[name] = (csr, hybrid)
    reddit_csr, reddit_h = results["reddit"]
    amazon_csr, amazon_h = results["amazon"]
    assert reddit_h < reddit_csr   # CSR-H helps Reddit ...
    assert amazon_h > amazon_csr   # ... but not Amazon (paper Table II)
