"""Autotuner-vs-oracle sweep: is ``method="auto"`` choosing well?

For every (dataset, mode) sweep point this benchmark times **every**
candidate slab plan the autotuner selects among (full-run, best-of-N),
plus the COO kernel as cross-family context, then lets a measure-mode
:class:`~repro.kernels.autotune.BackendAutotuner` (full-tensor probes,
throwaway cache) make its per-mode decision independently.  The
artifact records, per sweep point:

* the oracle table — measured seconds per candidate and for COO,
* the tuner's chosen backend, its decision source, and the chosen
  plan's **oracle-table** seconds (not the tuner's own probe numbers —
  the check is against an independent measurement),
* ``auto_vs_best`` (chosen seconds / oracle-best candidate seconds)
  and ``worst_vs_auto`` (slowest backend incl. COO / chosen seconds).

Acceptance gates asserted inline: auto lands within 5% of the
oracle-best candidate on every sweep point, and beats the worst
backend by >= 1.5x on at least one.  Bit-identity across the candidate
plans is asserted too — the tuner's whole contract is that its choice
is performance-only.

JSON lands in ``benchmarks/results/BENCH_autotune.json`` (see
``benchmarks/README.md``).
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.kernels import MTTKRPEngine
from repro.kernels.autotune import BackendAutotuner, TuningCache
from repro.kernels.mttkrp_coo import mttkrp_coo
from repro.kernels.mttkrp_csf import mttkrp_csf
from repro.kernels.workspace import KernelWorkspace
from repro.tensor.tiling import CSFTiling

from conftest import BENCH_SEED, save_artifact

RANK = 16
REPEATS = 5
DATASETS = ("reddit", "nell")
#: Auto must land within this factor of the oracle-best candidate.
BEST_SLACK = 1.05
#: ... and beat the worst backend by this factor somewhere in the sweep.
WORST_FACTOR = 1.5


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        tick = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - tick)
    return best


def test_bench_autotune(small_datasets, results_dir, tmp_path):
    points: list[dict] = []
    for name in DATASETS:
        tensor = small_datasets[name]
        rng = np.random.default_rng([BENCH_SEED, hash(name) & 0xFFFF])
        factors = [rng.uniform(0.0, 1.0, (s, RANK)) for s in tensor.shape]
        engine = MTTKRPEngine(tensor, threads=1, executor="serial")
        engine.trees.build_all()
        # Full-tensor probes: the tuner measures exactly the work the
        # oracle table measures, on its own clock and its own runs.
        tuner = BackendAutotuner(mode="measure",
                                 cache=TuningCache(tmp_path / f"{name}.json"),
                                 probe_nnz=tensor.nnz, min_probe_nnz=0,
                                 probe_repeats=REPEATS)
        report = tuner.tune_engine(engine, RANK)
        for mode in range(tensor.nmodes):
            tree = engine.trees.csf(mode)
            decision = report.decision(mode)
            table: dict[str, float] = {}
            anchor: np.ndarray | None = None
            for cand in tuner.candidates(tree):
                tiling = CSFTiling(tree,
                                   slab_nnz_target=cand.slab_nnz_target)
                ws = KernelWorkspace(tiling)
                run = lambda: mttkrp_csf(tree, factors, mode,
                                         tiling=tiling, workspace=ws)
                out = np.array(run(), copy=True)  # warm-up, kept for identity
                if anchor is None:
                    anchor = out
                else:
                    # The tuner's contract: every candidate it may pick
                    # is bitwise identical.
                    np.testing.assert_array_equal(anchor, out)
                table[cand.name] = _best_of(REPEATS, run)
            mttkrp_coo(tensor, factors, mode)  # warm-up
            table["coo"] = _best_of(
                REPEATS, lambda: mttkrp_coo(tensor, factors, mode))

            oracle_best = min(v for k, v in table.items() if k != "coo")
            auto_seconds = table[decision.backend]
            worst_seconds = max(table.values())
            points.append({
                "dataset": name,
                "mode": mode,
                "nnz": tree.nnz,
                "chosen": decision.backend,
                "source": decision.source,
                "table_seconds": table,
                "auto_seconds": auto_seconds,
                "oracle_best_seconds": oracle_best,
                "worst_seconds": worst_seconds,
                "auto_vs_best": auto_seconds / oracle_best,
                "worst_vs_auto": worst_seconds / auto_seconds,
            })
        engine.close()

    failures = [p for p in points if p["auto_vs_best"] > BEST_SLACK]
    assert not failures, (
        f"auto missed the {BEST_SLACK:.0%} oracle window on: "
        + ", ".join(f"{p['dataset']}/mode{p['mode']} "
                    f"(x{p['auto_vs_best']:.3f})" for p in failures))
    best_margin = max(p["worst_vs_auto"] for p in points)
    assert best_margin >= WORST_FACTOR, (
        f"auto never beat the worst backend by {WORST_FACTOR}x "
        f"(best margin x{best_margin:.2f})")

    payload = {
        "benchmark": "autotune",
        "rank": RANK,
        "repeats": REPEATS,
        "best_slack": BEST_SLACK,
        "worst_factor": WORST_FACTOR,
        "max_auto_vs_best": max(p["auto_vs_best"] for p in points),
        "max_worst_vs_auto": best_margin,
        "points": points,
    }
    json_path = results_dir / "BENCH_autotune.json"
    json_path.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [f"MTTKRP autotuner vs oracle (rank={RANK}, "
             f"best-of-{REPEATS}, measure-mode tuner)",
             f"{'point':>14} {'chosen':>14} {'auto ms':>9} "
             f"{'best ms':>9} {'worst ms':>9} {'vs best':>8} "
             f"{'worst/auto':>10}"]
    for p in points:
        lines.append(
            f"{p['dataset'] + '/m' + str(p['mode']):>14} "
            f"{p['chosen']:>14} "
            f"{p['auto_seconds'] * 1e3:>9.2f} "
            f"{p['oracle_best_seconds'] * 1e3:>9.2f} "
            f"{p['worst_seconds'] * 1e3:>9.2f} "
            f"x{p['auto_vs_best']:>7.3f} "
            f"x{p['worst_vs_auto']:>9.2f}")
    lines.append(f"[json saved to {json_path}]")
    save_artifact(results_dir, "bench_autotune", "\n".join(lines))
