"""Figure 5 — parallel speedup of the blocked AO-ADMM.

Same pipeline as Figure 4 with the blockwise reformulation: a short real
blocked run (``track_block_reports=True``) provides the per-block
iteration distributions the simulator replays at full scale.

Paper result: 12.7x (Patents) to 14.6x (NELL) at 20 threads — the
baseline's trend is reversed, ADMM-dominated datasets now scale best,
and blocked >= base everywhere.
"""

from __future__ import annotations

import pytest

from repro import AOADMMOptions, fit_aoadmm
from repro.bench import format_table
from repro.machine import (
    FactorizationWorkload,
    THREAD_SWEEP,
    measured_profile,
    speedup_curve,
)

from conftest import BENCH_SEED, DATASET_NAMES, save_artifact

RANK = 50
PAPER_AT_20 = {"nell": 14.6, "patents": 12.7}


def run_fig5(small_datasets) -> tuple[str, dict, dict]:
    rows = []
    blocked_at20 = {}
    base_at20 = {}
    for name in DATASET_NAMES:
        result = fit_aoadmm(small_datasets[name], AOADMMOptions(
            rank=RANK, constraints="nonneg", blocked=True,
            seed=BENCH_SEED, max_outer_iterations=3, outer_tolerance=0.0,
            track_block_reports=True))
        inner, blocks = measured_profile(result)
        workload = FactorizationWorkload.from_spec(
            name, rank=RANK, inner_iters=inner, block_iter_profile=blocks)
        curve = speedup_curve(workload, blocked=True, threads=THREAD_SWEEP)
        blocked_at20[name] = curve[20]
        base_at20[name] = speedup_curve(workload, blocked=False,
                                        threads=(1, 20))[20]
        row = {"Dataset": name.capitalize()}
        row.update({f"T={t}": f"{curve[t]:.1f}" for t in THREAD_SWEEP})
        if name in PAPER_AT_20:
            row["paper T=20"] = PAPER_AT_20[name]
        rows.append(row)
    text = format_table(
        rows, title="Figure 5: blocked speedup vs threads "
                    "(simulated 2x10-core Xeon, measured block profiles)")
    return text, blocked_at20, base_at20


def test_fig5_blocked_scaling(benchmark, small_datasets, results_dir):
    text, blk, base = benchmark.pedantic(
        run_fig5, args=(small_datasets,), rounds=1, iterations=1)
    save_artifact(results_dir, "fig5_blocked_scaling", text)
    # Paper shape: the Figure 4 trend is reversed ...
    assert blk["nell"] == max(blk.values())
    assert blk["patents"] == min(blk.values())
    # ... and blocking never hurts scalability.
    for name in DATASET_NAMES:
        assert blk[name] >= base[name] - 0.3, name
