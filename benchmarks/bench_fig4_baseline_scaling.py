"""Figure 4 — parallel speedup of the baseline (unblocked) AO-ADMM.

Pipeline: run a short *real* factorization of each scaled corpus to
measure the per-mode inner-iteration profile, feed the full-scale
workload descriptors plus that profile into the simulated 2x10-core Xeon,
and sweep the paper's thread counts.

Paper result: speedups range from 5.4x (NELL, ADMM-dominated) to 12.7x
(Patents, MTTKRP-dominated) at 20 threads — MTTKRP-heavy datasets scale
best for the baseline.
"""

from __future__ import annotations

import pytest

from repro import AOADMMOptions, fit_aoadmm
from repro.bench import format_table
from repro.machine import (
    FactorizationWorkload,
    THREAD_SWEEP,
    measured_profile,
    speedup_curve,
)

from conftest import BENCH_SEED, DATASET_NAMES, save_artifact

RANK = 50
PAPER_AT_20 = {"nell": 5.4, "patents": 12.7}


def run_fig4(small_datasets) -> tuple[str, dict]:
    rows = []
    at20 = {}
    for name in DATASET_NAMES:
        result = fit_aoadmm(small_datasets[name], AOADMMOptions(
            rank=RANK, constraints="nonneg", blocked=False,
            seed=BENCH_SEED, max_outer_iterations=4, outer_tolerance=0.0))
        inner, _ = measured_profile(result)
        workload = FactorizationWorkload.from_spec(name, rank=RANK,
                                                   inner_iters=inner)
        curve = speedup_curve(workload, blocked=False,
                              threads=THREAD_SWEEP)
        at20[name] = curve[20]
        row = {"Dataset": name.capitalize()}
        row.update({f"T={t}": f"{curve[t]:.1f}" for t in THREAD_SWEEP})
        if name in PAPER_AT_20:
            row["paper T=20"] = PAPER_AT_20[name]
        rows.append(row)
    text = format_table(
        rows, title="Figure 4: baseline speedup vs threads "
                    "(simulated 2x10-core Xeon, measured ADMM profiles)")
    return text, at20


def test_fig4_baseline_scaling(benchmark, small_datasets, results_dir):
    text, at20 = benchmark.pedantic(
        run_fig4, args=(small_datasets,), rounds=1, iterations=1)
    save_artifact(results_dir, "fig4_baseline_scaling", text)
    # Paper shape: NELL scales worst, Patents best.
    assert at20["nell"] == min(at20.values())
    assert at20["patents"] == max(at20.values())
    assert 3.0 < at20["nell"] < 9.0
    assert 8.0 < at20["patents"] < 18.0
