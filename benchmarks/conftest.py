"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
writes its formatted output both to stdout (run pytest with ``-s`` to see
it live) and to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can be
refreshed from the artifacts.

Datasets are memoized per session; factorization runs inside benchmarks
use fixed seeds so artifacts are reproducible.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.datasets import load_dataset

RESULTS_DIR = Path(__file__).parent / "results"

#: The paper's evaluation order (Table I).
DATASET_NAMES = ("reddit", "nell", "amazon", "patents")

#: Fixed seed for all benchmark factorizations.
BENCH_SEED = 20170814  # ICPP 2017 conference date


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def small_datasets():
    """The four corpora at the 'small' preset, keyed by name."""
    return {name: load_dataset(name, "small", seed=BENCH_SEED)[0]
            for name in DATASET_NAMES}


def save_artifact(results_dir: Path, name: str, text: str) -> None:
    """Print and persist one experiment's formatted output."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]", file=sys.stderr)
