"""Ablation A3 — MTTKRP kernel micro-benchmarks.

Proper pytest-benchmark timings (multiple rounds) of the kernel variants
on one corpus: vectorized COO, the CSF root kernel, and the sparse-factor
(CSR / CSR-H) kernels at Table II-like density.  CSF's fiber reuse makes
it faster than COO; the sparse-factor kernels win once the deep factor is
sparse.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import mttkrp_coo, mttkrp_csf_root
from repro.kernels.mttkrp_sparse import leaf_aggregator, mttkrp_csf_root_repr
from repro.sparse import CSRMatrix, HybridFactor
from repro.tensor.csf import AllModeCSF

from conftest import BENCH_SEED

RANK = 32
DENSITY = 0.03


@pytest.fixture(scope="module")
def kernel_setup(small_datasets):
    tensor = small_datasets["reddit"]
    rng = np.random.default_rng(BENCH_SEED)
    factors = [rng.uniform(0.0, 1.0, (s, RANK)) for s in tensor.shape]
    csf = AllModeCSF(tensor).csf(0)
    leaf = csf.mode_order[-1]
    sparse = factors[leaf].copy()
    sparse[rng.uniform(size=sparse.shape) > DENSITY] = 0.0
    sparse_factors = list(factors)
    sparse_factors[leaf] = sparse
    return {
        "tensor": tensor,
        "factors": factors,
        "sparse_factors": sparse_factors,
        "csf": csf,
        "aggregator": leaf_aggregator(csf),
        "csr": CSRMatrix.from_dense(sparse),
        "hybrid": HybridFactor(sparse),
    }


def test_mttkrp_coo_vectorized(benchmark, kernel_setup):
    s = kernel_setup
    benchmark(mttkrp_coo, s["tensor"], s["factors"], 0)


def test_mttkrp_csf_root_dense(benchmark, kernel_setup):
    s = kernel_setup
    benchmark(mttkrp_csf_root, s["csf"], s["factors"])


def test_mttkrp_csf_sparse_factor_csr(benchmark, kernel_setup):
    s = kernel_setup
    benchmark(mttkrp_csf_root_repr, s["csf"], s["sparse_factors"],
              s["csr"], s["aggregator"])


def test_mttkrp_csf_sparse_factor_hybrid(benchmark, kernel_setup):
    s = kernel_setup
    benchmark(mttkrp_csf_root_repr, s["csf"], s["sparse_factors"],
              s["hybrid"], s["aggregator"])


def test_csf_construction(benchmark, small_datasets):
    """The one-time compression cost MTTKRP amortizes."""
    from repro.tensor import CSFTensor
    tensor = small_datasets["reddit"]
    benchmark(CSFTensor.from_coo, tensor)


def test_csr_factor_construction(benchmark, kernel_setup):
    """The O(KF) per-outer-iteration conversion cost of Section IV-C."""
    s = kernel_setup
    leaf = s["csf"].mode_order[-1]
    benchmark(CSRMatrix.from_dense, s["sparse_factors"][leaf])
