"""Ablation A4 — the 20% sparsification threshold (Section V-E).

"We empirically determined that a factor can be gainfully treated as
sparse when its density falls below 20%."  This bench measures the real
sparse-kernel speedup over dense as a function of factor density, locating
the break-even point on our substrate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import Timer, format_table
from repro.kernels.mttkrp_sparse import leaf_aggregator, mttkrp_csf_root_repr
from repro.sparse import CSRMatrix
from repro.tensor.csf import AllModeCSF

from conftest import BENCH_SEED, save_artifact

RANK = 32
DENSITIES = (0.01, 0.05, 0.10, 0.20, 0.40, 0.80)
REPEATS = 3


def run_threshold_sweep(small_datasets) -> tuple[str, dict]:
    tensor = small_datasets["reddit"]
    rng = np.random.default_rng(BENCH_SEED)
    factors = [rng.uniform(0.0, 1.0, (s, RANK)) for s in tensor.shape]
    csf = AllModeCSF(tensor).csf(0)
    leaf = csf.mode_order[-1]
    aggregator = leaf_aggregator(csf)

    # Dense baseline.
    with Timer() as dense_t:
        for _ in range(REPEATS):
            mttkrp_csf_root_repr(csf, factors, None)
    dense_seconds = dense_t.seconds / REPEATS

    rows = []
    speedups = {}
    for density in DENSITIES:
        sparse = factors[leaf].copy()
        sparse[rng.uniform(size=sparse.shape) > density] = 0.0
        fs = list(factors)
        fs[leaf] = sparse
        with Timer() as build_t:
            rep = CSRMatrix.from_dense(sparse)
        with Timer() as t:
            for _ in range(REPEATS):
                mttkrp_csf_root_repr(csf, fs, rep, aggregator)
        seconds = t.seconds / REPEATS
        speedups[density] = dense_seconds / seconds
        rows.append({
            "factor density": f"{100 * density:.0f}%",
            "CSR MTTKRP (ms)": f"{1000 * seconds:.1f}",
            "dense MTTKRP (ms)": f"{1000 * dense_seconds:.1f}",
            "speedup": f"{dense_seconds / seconds:.2f}x",
            "CSR build (ms)": f"{1000 * build_t.seconds:.1f}",
        })
    text = format_table(
        rows, title="Ablation: sparse-kernel speedup vs factor density "
                    "(Reddit, mode 0, rank 32) — the paper sparsifies "
                    "below 20%")
    return text, speedups


def test_ablation_sparsity_threshold(benchmark, small_datasets,
                                     results_dir):
    text, speedups = benchmark.pedantic(
        run_threshold_sweep, args=(small_datasets,), rounds=1, iterations=1)
    save_artifact(results_dir, "ablation_sparsity_threshold", text)
    # Sparse kernels clearly win in the paper's below-20% regime ...
    assert speedups[0.05] > 1.2
    # ... and the advantage shrinks monotonically-ish as density grows.
    assert speedups[0.01] > speedups[0.80]
