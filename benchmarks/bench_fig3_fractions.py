"""Figure 3 — fraction of factorization time in MTTKRP vs ADMM.

The paper runs a rank-50 non-negative factorization of each corpus with
the *unblocked* parallel AO-ADMM and reports the per-kernel time shares.
We (a) measure the shares on the scaled instances, and (b) compute the
full-scale shares from the machine model's cost descriptors.  Expected
shape: NELL is ADMM-dominated; Amazon and Patents MTTKRP-dominated.
"""

from __future__ import annotations

import pytest

from repro import AOADMMOptions, fit_aoadmm
from repro.bench import format_table
from repro.machine import FactorizationWorkload, factorization_time

from conftest import BENCH_SEED, DATASET_NAMES, save_artifact

RANK = 50
OUTER_ITERS = 6


def run_fig3(small_datasets) -> tuple[str, dict]:
    rows = []
    measured = {}
    for name in DATASET_NAMES:
        tensor = small_datasets[name]
        result = fit_aoadmm(tensor, AOADMMOptions(
            rank=RANK, constraints="nonneg", blocked=False,
            seed=BENCH_SEED, max_outer_iterations=OUTER_ITERS,
            outer_tolerance=0.0))
        fr = result.trace.time_fractions()
        measured[name] = fr

        workload = FactorizationWorkload.from_spec(name, rank=RANK)
        sim = factorization_time(workload, threads=1,
                                 blocked=False).fractions()
        rows.append({
            "Dataset": name.capitalize(),
            "MTTKRP (measured)": f"{fr['mttkrp']:.2f}",
            "ADMM (measured)": f"{fr['admm']:.2f}",
            "OTHER (measured)": f"{fr['other']:.2f}",
            "MTTKRP (full-scale model)": f"{sim['mttkrp']:.2f}",
            "ADMM (full-scale model)": f"{sim['admm']:.2f}",
        })
    text = format_table(
        rows, title=f"Figure 3: fraction of factorization time "
                    f"(rank-{RANK} non-negative, unblocked baseline)")
    return text, measured


def test_fig3_fractions(benchmark, small_datasets, results_dir):
    text, measured = benchmark.pedantic(
        run_fig3, args=(small_datasets,), rounds=1, iterations=1)
    save_artifact(results_dir, "fig3_fractions", text)
    # Paper shape: NELL ADMM-dominated, Amazon/Patents MTTKRP-dominated.
    assert measured["nell"]["admm"] > measured["nell"]["mttkrp"]
    assert measured["amazon"]["mttkrp"] > 0.5
    assert measured["patents"]["mttkrp"] > 0.5
