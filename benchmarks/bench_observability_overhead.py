"""Observability disabled-mode overhead micro-benchmark.

The observability substrate promises a near-zero cost when disabled: the
registry hands out shared no-op instruments and ``span`` returns one
shared no-op context manager.  This benchmark measures that promise two
ways and **fails on regression**:

* *micro*: per-operation cost of the disabled ``counter().inc()`` /
  ``span()`` / ``is_enabled()`` fast paths, in nanoseconds, against a
  hard per-op budget;
* *end-to-end*: a full (small) ``fit_aoadmm`` run with observability
  disabled vs enabled — the disabled run must not be materially slower
  than the enabled one (which does strictly more work).

The primary artifact is ``BENCH_observability_overhead.json`` so CI can
diff the overhead trajectory across PRs.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.core.aoadmm import fit_aoadmm
from repro.core.options import AOADMMOptions
from repro.observability import MetricsRegistry, is_enabled, span
from repro.observability.state import set_active_registry
from repro.tensor import noisy_lowrank_coo

from conftest import BENCH_SEED, save_artifact

MICRO_OPS = 200_000
MICRO_ROUNDS = 3
#: Per-operation budget for the disabled fast path.  The no-op calls are
#: a couple of attribute lookups; even slow CI boxes stay far under this.
MAX_DISABLED_NS_PER_OP = 3_000.0
E2E_ROUNDS = 3
#: Disabled runs may be at most this much slower than enabled runs
#: (enabled does strictly more work, so ~1.0 modulo timer noise).
MAX_E2E_DISABLED_RATIO = 1.5


def _best_of(rounds: int, fn) -> float:
    return min(fn() for _ in range(rounds))


def _micro(registry: MetricsRegistry) -> dict:
    """Per-op nanoseconds of the three hot instrumentation calls."""
    previous = set_active_registry(registry)
    try:
        def time_loop(body) -> float:
            start = time.perf_counter()
            for _ in range(MICRO_OPS):
                body()
            return (time.perf_counter() - start) / MICRO_OPS * 1e9

        def counter():
            registry.counter("bench_ops").inc()

        def span_pair():
            with span("bench"):
                pass

        return {
            "counter_inc_ns": _best_of(MICRO_ROUNDS,
                                       lambda: time_loop(counter)),
            "span_ns": _best_of(MICRO_ROUNDS,
                                lambda: time_loop(span_pair)),
            "is_enabled_ns": _best_of(MICRO_ROUNDS,
                                      lambda: time_loop(is_enabled)),
        }
    finally:
        set_active_registry(previous)


def _e2e_seconds(enabled: bool) -> float:
    tensor, _ = noisy_lowrank_coo((60, 50, 40), rank=5, nnz=6000,
                                  seed=BENCH_SEED)
    options = AOADMMOptions(rank=5, seed=BENCH_SEED, max_outer_iterations=8,
                            outer_tolerance=0.0)
    registry = MetricsRegistry(enabled=enabled)
    previous = set_active_registry(registry)
    try:
        def once() -> float:
            start = time.perf_counter()
            fit_aoadmm(tensor, options)
            return time.perf_counter() - start

        once()  # warm-up: CSF build paths, numpy caches
        return _best_of(E2E_ROUNDS, once)
    finally:
        set_active_registry(previous)


def test_bench_observability_overhead(results_dir):
    disabled = _micro(MetricsRegistry(enabled=False))
    enabled = _micro(MetricsRegistry(enabled=True))
    e2e_off = _e2e_seconds(enabled=False)
    e2e_on = _e2e_seconds(enabled=True)
    ratio = e2e_off / e2e_on if e2e_on > 0 else 1.0

    payload = {
        "benchmark": "observability_overhead",
        "micro_ops": MICRO_OPS,
        "micro_rounds": MICRO_ROUNDS,
        "disabled_ns_per_op": disabled,
        "enabled_ns_per_op": enabled,
        "e2e_disabled_seconds": e2e_off,
        "e2e_enabled_seconds": e2e_on,
        "e2e_disabled_over_enabled": ratio,
        "budget": {
            "max_disabled_ns_per_op": MAX_DISABLED_NS_PER_OP,
            "max_e2e_disabled_ratio": MAX_E2E_DISABLED_RATIO,
        },
    }
    json_path = results_dir / "BENCH_observability_overhead.json"
    json_path.write_text(json.dumps(payload, indent=2) + "\n")

    lines = ["observability overhead",
             f"{'path':>24} {'disabled ns/op':>15} {'enabled ns/op':>14}"]
    for key in ("counter_inc_ns", "span_ns", "is_enabled_ns"):
        lines.append(f"{key:>24} {disabled[key]:>15.0f} "
                     f"{enabled[key]:>14.0f}")
    lines.append(f"e2e fit: disabled {e2e_off * 1e3:.1f} ms, "
                 f"enabled {e2e_on * 1e3:.1f} ms "
                 f"(disabled/enabled = {ratio:.2f})")
    lines.append(f"[json saved to {json_path}]")
    save_artifact(results_dir, "bench_observability_overhead",
                  "\n".join(lines))

    # Regression gates.
    for key, value in disabled.items():
        assert value < MAX_DISABLED_NS_PER_OP, (key, value)
    assert ratio < MAX_E2E_DISABLED_RATIO, payload
