"""Extension — distributed-memory strong scaling.

Paper Section IV-B: "the blockwise formulation also affords opportunities
for distributed-memory parallelism.  Since each block is processed
independently, no communication needs to occur beyond the MTTKRP
operation."  This bench runs the distributed driver at 1..16 simulated
ranks on one corpus and reports the estimated strong-scaling speedup and
the communication share.
"""

from __future__ import annotations

import pytest

from repro import AOADMMOptions, init_factors
from repro.bench import format_table
from repro.distributed import SimComm, fit_aoadmm_distributed

from conftest import BENCH_SEED, save_artifact

RANKS = (1, 2, 4, 8, 16)
RANK = 16
OUTER = 3


def run_distributed_scaling(small_datasets) -> tuple[str, dict]:
    tensor = small_datasets["amazon"]
    init = init_factors(tensor, RANK, "uniform", seed=BENCH_SEED)
    opts = AOADMMOptions(rank=RANK, constraints="nonneg", seed=BENCH_SEED,
                         max_outer_iterations=OUTER, outer_tolerance=0.0)
    rows = []
    speedups = {}
    errors = {}
    for ranks in RANKS:
        result = fit_aoadmm_distributed(tensor, opts, ranks=ranks,
                                        comm=SimComm(ranks),
                                        initial_factors=init)
        comm_s = result.comm_log.total_seconds()
        est = result.estimated_parallel_seconds()
        speedups[ranks] = result.estimated_speedup()
        errors[ranks] = result.relative_error
        rows.append({
            "ranks": ranks,
            "est. speedup": f"{result.estimated_speedup():.1f}x",
            "comm share": f"{100 * comm_s / est:.1f}%",
            "collectives": result.comm_log.count(),
            "nnz imbalance": f"{result.partition.imbalance():.2f}",
            "error": f"{result.relative_error:.5f}",
        })
    text = format_table(
        rows, title=f"Extension: distributed blocked AO-ADMM strong "
                    f"scaling (Amazon, rank {RANK}, {OUTER} outer iters, "
                    f"simulated 10 GbE-class network)")
    return text, {"speedups": speedups, "errors": errors}


def test_distributed_scaling(benchmark, small_datasets, results_dir):
    text, out = benchmark.pedantic(
        run_distributed_scaling, args=(small_datasets,), rounds=1,
        iterations=1)
    save_artifact(results_dir, "extension_distributed_scaling", text)
    # Numerics are rank-count invariant ...
    errs = list(out["errors"].values())
    assert max(errs) - min(errs) < 1e-9
    # ... and scaling is real (communication stays a small share here).
    assert out["speedups"][8] > 4.0
