"""Out-of-core streaming: slab cache, streamer, engine, and fits.

The load-bearing contract everywhere: residency decisions (budget,
eviction order, prefetch timing) are **bit-invisible** — every factor,
MTTKRP result, and trace must equal the in-core run bitwise.
"""

import glob
import tempfile

import numpy as np
import pytest

import repro
from repro.core.aoadmm import fit_aoadmm
from repro.core.options import AOADMMOptions
from repro.kernels.dispatch import (
    MTTKRPEngine,
    StreamingMTTKRPEngine,
    make_engine,
)
from repro.observability import Observability
from repro.parallel.shm import ShmArena
from repro.tensor import (
    CSFTensor,
    ShardedTensorStore,
    SlabCache,
    SlabStreamer,
    open_tensor,
    random_coo,
)
from repro.tensor.random import random_factors

RANK = 4


@pytest.fixture
def tensor():
    return random_coo((30, 25, 20), 500, seed=42)


@pytest.fixture
def store(tmp_path, tensor):
    return ShardedTensorStore.create(tensor, tmp_path / "store",
                                     slab_nnz_target=64)


@pytest.fixture
def factors(tensor):
    return random_factors(tensor.shape, RANK, seed=5)


def _incore_mttkrp(tensor, factors):
    engine = MTTKRPEngine(tensor, repr_policy="dense")
    engine.trees.build_all()
    try:
        return [np.array(engine.mttkrp(factors, m), copy=True)
                for m in range(tensor.nmodes)]
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# streaming kernel bit-identity
# ---------------------------------------------------------------------------

class TestStreamingBitIdentity:
    @pytest.mark.parametrize("budget", [None, 4096, 1])
    def test_matches_in_core_every_mode(self, store, tensor, factors,
                                        budget):
        expected = _incore_mttkrp(tensor, factors)
        with StreamingMTTKRPEngine(store, max_bytes_in_core=budget) as eng:
            for mode in range(tensor.nmodes):
                np.testing.assert_array_equal(
                    eng.mttkrp(factors, mode), expected[mode])

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_matches_under_prefetch_executors(self, store, tensor,
                                              factors, executor):
        expected = _incore_mttkrp(tensor, factors)
        eng = StreamingMTTKRPEngine(store, max_bytes_in_core=8192,
                                    executor=executor)
        try:
            # Two sweeps: the second hits whatever stayed resident.
            for _ in range(2):
                for mode in range(tensor.nmodes):
                    np.testing.assert_array_equal(
                        eng.mttkrp(factors, mode), expected[mode])
        finally:
            eng.close()

    def test_churn_budget_below_one_slab(self, store, tensor, factors):
        """A starvation budget degrades to load-evict churn, not failure."""
        expected = _incore_mttkrp(tensor, factors)
        with StreamingMTTKRPEngine(store, max_bytes_in_core=1) as eng:
            for mode in range(tensor.nmodes):
                np.testing.assert_array_equal(
                    eng.mttkrp(factors, mode), expected[mode])
            stats = eng.cache.stats()
            assert stats["evictions"] > 0
            assert stats["resident_count"] == 1  # never below one slab

    def test_unbounded_budget_keeps_everything(self, store, tensor,
                                               factors, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_BYTES_IN_CORE", raising=False)
        with StreamingMTTKRPEngine(store) as eng:
            for mode in range(tensor.nmodes):
                eng.mttkrp(factors, mode)
            assert eng.cache.stats()["evictions"] == 0
            assert len(eng.cache) == sum(
                store.slab_count(m) for m in range(store.nmodes))
            # A second sweep is all hits, zero loads.
            loads = eng.cache.loads
            eng.mttkrp(factors, 0)
            assert eng.cache.loads == loads

    def test_call_log_records_streaming(self, store, factors):
        with StreamingMTTKRPEngine(store, max_bytes_in_core=4096) as eng:
            eng.mttkrp(factors, 1)
            [stats] = eng.call_log
            assert stats.mode == 1
            assert stats.slab_count == store.slab_count(1)

    def test_rejects_sparse_repr_policy(self, store):
        with pytest.raises(ValueError, match="dense"):
            StreamingMTTKRPEngine(store, repr_policy="csr")


class TestMakeEngine:
    def test_store_gets_streaming_engine(self, store):
        eng = make_engine(store)
        assert isinstance(eng, StreamingMTTKRPEngine)
        # Engine inherits the store's budget when not given one.
        store.max_bytes_in_core = 1234
        assert make_engine(store).max_bytes_in_core == 1234

    def test_sparse_policy_degrades_to_dense_with_warning(self, store):
        with pytest.warns(RuntimeWarning, match="dense factors"):
            eng = make_engine(store, repr_policy="auto")
        assert isinstance(eng, StreamingMTTKRPEngine)

    def test_coo_gets_in_core_engine(self, tensor, factors):
        eng = make_engine(tensor)
        assert isinstance(eng, MTTKRPEngine)
        eng.mttkrp(factors, 0)  # trees pre-built by make_engine

    def test_csf_converts_through_coo(self, tensor, factors):
        expected = _incore_mttkrp(tensor, factors)
        eng = make_engine(CSFTensor.from_coo(tensor))
        np.testing.assert_array_equal(eng.mttkrp(factors, 0), expected[0])


# ---------------------------------------------------------------------------
# SlabCache / SlabStreamer units
# ---------------------------------------------------------------------------

class TestSlabCache:
    def test_lru_order_and_eviction(self):
        cache = SlabCache(max_bytes_in_core=30)
        for i in range(3):
            cache.put((0, i), f"slab{i}", 10)
        assert cache.resident_keys() == [(0, 0), (0, 1), (0, 2)]
        # Touch the oldest: refreshes recency.
        assert cache.get((0, 0), lambda: None, 10) == "slab0"
        assert cache.resident_keys() == [(0, 1), (0, 2), (0, 0)]
        # Over budget: evicts LRU-first, i.e. (0, 1).
        cache.put((0, 3), "slab3", 10)
        assert (0, 1) not in cache
        assert cache.resident_bytes == 30
        assert cache.evictions == 1

    def test_never_evicts_last_touched(self):
        cache = SlabCache(max_bytes_in_core=5)
        cache.put((0, 0), "big", 100)
        assert len(cache) == 1  # alone over budget: stays
        cache.put((0, 1), "bigger", 200)
        assert cache.resident_keys() == [(0, 1)]

    def test_counters_and_stats(self):
        cache = SlabCache()
        assert cache.get((1, 0), lambda: "x", 7) == "x"
        assert cache.get((1, 0), lambda: "y", 7) == "x"  # hit, not reload
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["loads"] == 1
        assert stats["resident_bytes"] == 7
        assert stats["peak_resident_bytes"] == 7

    def test_clear_keeps_counter_totals(self):
        cache = SlabCache()
        cache.get((0, 0), lambda: "x", 3)
        cache.clear()
        assert len(cache) == 0
        assert cache.resident_bytes == 0
        assert cache.loads == 1

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError, match="positive"):
            SlabCache(max_bytes_in_core=0)


class TestSlabStreamer:
    def test_streams_in_index_order(self, store):
        cache = SlabCache()
        streamer = SlabStreamer(store, cache)
        indices = [slab.index for slab in streamer.iter_mode(0)]
        assert indices == list(range(store.slab_count(0)))

    def test_prefetch_counts_with_executor(self, store):
        from repro.parallel.executor import get_executor
        cache = SlabCache()
        streamer = SlabStreamer(store, cache, executor=get_executor("serial"))
        list(streamer.iter_mode(0))
        assert streamer.prefetches == store.slab_count(0) - 1
        # Fully resident now: a second sweep prefetches nothing.
        list(streamer.iter_mode(0))
        assert streamer.prefetches == store.slab_count(0) - 1
        assert cache.hits == store.slab_count(0)

    def test_no_executor_means_no_prefetch(self, store):
        streamer = SlabStreamer(store, SlabCache())
        list(streamer.iter_mode(0))
        assert streamer.prefetches == 0


# ---------------------------------------------------------------------------
# whole fits out of core
# ---------------------------------------------------------------------------

class TestFitOutOfCore:
    def test_fit_bitwise_under_quarter_budget(self, tensor, tmp_path):
        in_core = repro.fit(tensor, rank=RANK, seed=0,
                            max_outer_iterations=5)
        store = ShardedTensorStore.create(tensor, tmp_path / "s",
                                          slab_nnz_target=64)
        budget = store.storage_bytes() // 5  # < 25% of the footprint
        assert budget >= 1
        store.max_bytes_in_core = budget
        ooc = repro.fit(store, rank=RANK, seed=0, max_outer_iterations=5)
        for a, b in zip(in_core.factors, ooc.factors):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(in_core.trace.errors(),
                                      ooc.trace.errors())

    def test_fit_bitwise_under_churn_budget(self, tensor, tmp_path):
        """Budget below a single slab: maximal eviction churn, same bits."""
        in_core = repro.fit(tensor, rank=RANK, seed=0,
                            max_outer_iterations=3)
        store = ShardedTensorStore.create(tensor, tmp_path / "s",
                                          slab_nnz_target=64)
        store.max_bytes_in_core = 1
        ooc = repro.fit(store, rank=RANK, seed=0, max_outer_iterations=3)
        for a, b in zip(in_core.factors, ooc.factors):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(in_core.trace.errors(),
                                      ooc.trace.errors())

    def test_fit_observes_slab_metrics(self, tensor, tmp_path):
        store = ShardedTensorStore.create(tensor, tmp_path / "s",
                                          slab_nnz_target=64)
        budget = store.storage_bytes() // 5
        store.max_bytes_in_core = budget
        result = repro.fit(store, rank=RANK, seed=0,
                           max_outer_iterations=3, observe=True)
        counters = result.metrics["counters"]
        assert any(k.startswith("slab_loads") for k in counters)
        assert any(k.startswith("slab_evictions") for k in counters)
        gauges = result.metrics["gauges"]
        assert any(k.startswith("slab_resident_bytes") for k in gauges)

    def test_checkpoint_interop_in_core_to_store(self, tensor, tmp_path):
        """A checkpoint from an in-core run resumes on the sharded store."""
        path = tmp_path / "ck.npz"
        opts = dict(rank=RANK, seed=0, constraints="nonneg")
        fit_aoadmm(tensor, AOADMMOptions(max_outer_iterations=2,
                                         checkpoint_every=2,
                                         checkpoint_path=path, **opts))
        full = fit_aoadmm(tensor,
                          AOADMMOptions(max_outer_iterations=4, **opts))
        store = ShardedTensorStore.create(tensor, tmp_path / "s",
                                          slab_nnz_target=64)
        store.max_bytes_in_core = 4096
        resumed = fit_aoadmm(store,
                             AOADMMOptions(max_outer_iterations=4, **opts),
                             resume_from=path)
        for a, b in zip(full.model.factors, resumed.model.factors):
            np.testing.assert_array_equal(a, b)

    def test_wrong_store_rejected_on_resume(self, tensor, tmp_path):
        path = tmp_path / "ck.npz"
        opts = dict(rank=RANK, seed=0)
        fit_aoadmm(tensor, AOADMMOptions(max_outer_iterations=2,
                                         checkpoint_every=2,
                                         checkpoint_path=path, **opts))
        other = random_coo((30, 25, 20), 500, seed=43)
        store = ShardedTensorStore.create(other, tmp_path / "s")
        with pytest.raises(ValueError, match="different tensor"):
            fit_aoadmm(store, AOADMMOptions(max_outer_iterations=3, **opts),
                       resume_from=path)

    def test_no_leaked_temp_shards(self, tensor, tmp_path):
        pattern = tempfile.gettempdir() + "/repro_shards_*"
        before = set(glob.glob(pattern))
        with open_tensor(tensor, max_bytes_in_core=4096) as store:
            repro.fit(store, rank=3, seed=0, max_outer_iterations=2)
        assert set(glob.glob(pattern)) == before


# ---------------------------------------------------------------------------
# ShmArena byte accounting (budgets must compose with shard residency)
# ---------------------------------------------------------------------------

class TestShmArenaAccounting:
    def test_bytes_live_tracks_segments(self):
        with ShmArena(tag="t") as arena:
            assert arena.bytes_live == 0
            arena.put_group("g", {"a": np.zeros(100)})
            assert arena.bytes_live > 0
            assert arena.billable_bytes() == arena.bytes_live
        assert arena.bytes_live == 0

    def test_content_addressed_dedup_shares_segment(self):
        gen = np.random.default_rng(3)
        arrays = {"a": gen.standard_normal(64)}
        with ShmArena(tag="t") as arena:
            h1 = arena.put_group("g1", arrays)
            live_one = arena.bytes_live
            h2 = arena.put_group("g2", {k: v.copy()
                                        for k, v in arrays.items()})
            assert h2["a"].segment == h1["a"].segment  # byte-identical
            assert arena.bytes_live == live_one  # no second mapping
            np.testing.assert_array_equal(arena.array(("group", "g2", "a")),
                                          arrays["a"])

    def test_drop_group_refcounts_shared_segment(self):
        arrays = {"a": np.arange(32, dtype=np.float64)}
        with ShmArena(tag="t") as arena:
            h1 = arena.put_group("g1", arrays)
            arena.put_group("g2", arrays)
            seg = h1["a"].segment
            arena.drop_group("g1")
            assert seg in arena.segment_names()  # g2 still holds it
            assert arena.bytes_live > 0
            arena.drop_group("g2")
            assert seg not in arena.segment_names()
            assert arena.bytes_live == 0

    def test_distinct_content_gets_own_segment(self):
        with ShmArena(tag="t") as arena:
            h1 = arena.put_group("g1", {"a": np.zeros(32)})
            h2 = arena.put_group("g2", {"a": np.ones(32)})
            assert h1["a"].segment != h2["a"].segment

    def test_shard_resident_bytes_excluded_from_billable(self):
        with ShmArena(tag="t") as arena:
            h = arena.put_group("g", {"a": np.zeros(128)})
            total = arena.bytes_live
            seg_size = arena._segments[h["a"].segment].size
            arena.mark_shard_resident("g")
            assert arena.shard_resident_bytes == seg_size
            assert arena.billable_bytes() == total - seg_size
            arena.mark_shard_resident("g", resident=False)
            assert arena.shard_resident_bytes == 0
            assert arena.billable_bytes() == total
