"""Sparse-factor MTTKRP: CSR and hybrid paths against the dense kernel."""

import numpy as np
import pytest

from repro.kernels import FactorRepresentation, mttkrp_coo_reference
from repro.kernels.dispatch import MTTKRPEngine
from repro.kernels.mttkrp_sparse import (
    gather_scale,
    mttkrp_csf_root_repr,
    representation_name,
    representation_nnz,
)
from repro.sparse import CSRMatrix, HybridFactor
from repro.tensor import random_coo
from repro.tensor.csf import AllModeCSF


@pytest.fixture
def sparse_setup(rng):
    tensor = random_coo((10, 8, 12), 150, seed=17)
    factors = [rng.standard_normal((s, 6)) for s in tensor.shape]
    # Sparsify the factor of the deepest mode of every rooting (mode 1, 2).
    for m in (1, 2):
        sparse = factors[m].copy()
        sparse[np.abs(sparse) < 0.9] = 0.0
        factors[m] = sparse
    return tensor, factors


class TestSparseKernel:
    @pytest.mark.parametrize("root", [0, 1, 2])
    def test_csr_matches_reference(self, sparse_setup, root):
        tensor, factors = sparse_setup
        csf = AllModeCSF(tensor).csf(root)
        leaf = csf.mode_order[-1]
        ref = mttkrp_coo_reference(tensor, factors, root)
        rep = CSRMatrix.from_dense(factors[leaf])
        np.testing.assert_allclose(
            mttkrp_csf_root_repr(csf, factors, rep), ref, atol=1e-10)

    @pytest.mark.parametrize("root", [0, 1, 2])
    def test_hybrid_matches_reference(self, sparse_setup, root):
        tensor, factors = sparse_setup
        csf = AllModeCSF(tensor).csf(root)
        leaf = csf.mode_order[-1]
        ref = mttkrp_coo_reference(tensor, factors, root)
        rep = HybridFactor(factors[leaf])
        np.testing.assert_allclose(
            mttkrp_csf_root_repr(csf, factors, rep), ref, atol=1e-10)

    def test_none_rep_equals_dense(self, sparse_setup):
        tensor, factors = sparse_setup
        csf = AllModeCSF(tensor).csf(0)
        a = mttkrp_csf_root_repr(csf, factors, None)
        b = mttkrp_csf_root_repr(csf, factors,
                                 np.asarray(factors[csf.mode_order[-1]]))
        np.testing.assert_allclose(a, b)

    def test_gather_scale_dispatch(self, rng):
        mat = rng.standard_normal((10, 4))
        mat[np.abs(mat) < 0.8] = 0.0
        idx = rng.integers(0, 10, size=20)
        scale = rng.standard_normal(20)
        expected = mat[idx] * scale[:, None]
        for rep in (mat, CSRMatrix.from_dense(mat), HybridFactor(mat)):
            np.testing.assert_allclose(gather_scale(rep, idx, scale),
                                       expected, atol=1e-12)

    def test_representation_metadata(self, rng):
        mat = rng.standard_normal((6, 3))
        assert representation_name(mat) == "dense"
        assert representation_name(CSRMatrix.from_dense(mat)) == "csr"
        assert representation_name(HybridFactor(mat)) == "csr-h"
        idx = np.arange(6)
        assert representation_nnz(mat, idx) == 18


class TestEngine:
    def test_dense_policy_never_compresses(self, sparse_setup):
        tensor, factors = sparse_setup
        engine = MTTKRPEngine(tensor, repr_policy="dense")
        for m in range(3):
            assert engine.update_factor(m, factors[m]) == "dense"

    def test_csr_policy_compresses_below_threshold(self, sparse_setup):
        tensor, factors = sparse_setup
        engine = MTTKRPEngine(tensor, repr_policy="csr",
                              sparsity_threshold=0.9)
        assert engine.update_factor(2, factors[2]) == "csr"
        # A dense factor stays dense even under the csr policy.
        assert engine.update_factor(0, np.ones_like(factors[0])) == "dense"

    def test_engine_mttkrp_matches_reference_with_compression(
            self, sparse_setup):
        tensor, factors = sparse_setup
        for policy in ("dense", "csr", "hybrid", "auto"):
            engine = MTTKRPEngine(tensor, repr_policy=policy,
                                  sparsity_threshold=0.9)
            for m in range(3):
                engine.update_factor(m, factors[m])
            for mode in range(3):
                ref = mttkrp_coo_reference(tensor, factors, mode)
                np.testing.assert_allclose(
                    engine.mttkrp(factors, mode), ref, atol=1e-10,
                    err_msg=f"policy={policy} mode={mode}")

    def test_call_log_records_representation(self, sparse_setup):
        tensor, factors = sparse_setup
        engine = MTTKRPEngine(tensor, repr_policy="csr",
                              sparsity_threshold=0.9)
        for m in range(3):
            engine.update_factor(m, factors[m])
        engine.mttkrp(factors, 0)
        assert len(engine.call_log) == 1
        entry = engine.call_log[0]
        assert entry.mode == 0
        assert entry.leaf_mode == 2
        assert entry.representation == "csr"
        assert 0 < entry.gathered_nnz <= entry.tensor_nnz * 6

    def test_rejects_unknown_policy(self, sparse_setup):
        tensor, _ = sparse_setup
        with pytest.raises(ValueError):
            MTTKRPEngine(tensor, repr_policy="bogus")
