"""Tests for the support modules: validation, types, logging, dense
helpers, config, and the workload profile bridge."""

import logging

import numpy as np
import pytest

from repro.config import DEFAULTS, Defaults
from repro.logging_utils import enable_console_logging, get_logger
from repro.tensor.dense import (
    dense_from_factors,
    khatri_rao_reconstruct,
    relative_error_dense,
)
from repro.tensor.random import cp_values_at, random_factors
from repro.types import INDEX_DTYPE, VALUE_DTYPE, as_generator
from repro.validation import (
    check_coords,
    check_factor,
    check_mode,
    check_rank,
    check_shape,
    check_values,
    require,
)


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_check_shape(self):
        assert check_shape([3, 4]) == (3, 4)
        with pytest.raises(ValueError):
            check_shape([])
        with pytest.raises(ValueError):
            check_shape([3, 0])

    def test_check_mode_negative_indexing(self):
        assert check_mode(-1, 3) == 2
        with pytest.raises(ValueError):
            check_mode(3, 3)

    def test_check_rank(self):
        assert check_rank(5) == 5
        with pytest.raises(ValueError):
            check_rank(0)

    def test_check_coords_dtype(self):
        coords = check_coords(np.array([[0.0, 1.0]]), (2,))
        assert coords.dtype == INDEX_DTYPE

    def test_check_values_shape(self):
        with pytest.raises(ValueError):
            check_values(np.ones((2, 2)), 4)

    def test_check_factor(self):
        f = check_factor(np.ones((3, 2)), extent=3, rank=2)
        assert f.dtype == VALUE_DTYPE
        with pytest.raises(ValueError):
            check_factor(np.ones(3))
        with pytest.raises(ValueError):
            check_factor(np.ones((3, 2)), extent=4)


class TestTypes:
    def test_as_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_as_generator_from_int(self):
        a = as_generator(7).uniform()
        b = as_generator(7).uniform()
        assert a == b


class TestConfig:
    def test_defaults_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULTS.block_size = 10  # type: ignore[misc]

    def test_paper_values(self):
        d = Defaults()
        assert d.block_size == 50
        assert d.sparsity_threshold == 0.20
        assert d.max_outer_iterations == 200


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger("core").name == "repro.core"
        assert get_logger("repro.x").name == "repro.x"

    def test_enable_console_logging(self):
        handler = enable_console_logging(logging.DEBUG)
        try:
            assert handler in logging.getLogger("repro").handlers
        finally:
            logging.getLogger("repro").removeHandler(handler)


class TestDenseHelpers:
    def test_khatri_rao_reconstruct_matches_unfolding(self):
        from repro.tensor.matricize import matricize_dense
        factors = random_factors((5, 4, 3), 2, seed=1)
        dense = dense_from_factors(factors)
        for mode in range(3):
            np.testing.assert_allclose(
                khatri_rao_reconstruct(factors, mode),
                matricize_dense(dense, mode), atol=1e-10)

    def test_relative_error_dense(self):
        factors = random_factors((4, 3, 2), 2, seed=2)
        dense = dense_from_factors(factors)
        assert relative_error_dense(dense, factors) < 1e-12
        assert relative_error_dense(dense * 2, factors) == pytest.approx(
            0.5, rel=1e-9)

    def test_dense_from_factors_weights(self):
        factors = random_factors((3, 3), 2, seed=3)
        a = dense_from_factors(factors, np.array([2.0, 0.0]))
        b = 2.0 * np.outer(factors[0][:, 0], factors[1][:, 0])
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_cp_values_at_matches_dense(self):
        factors = random_factors((4, 5, 6), 3, seed=4)
        dense = dense_from_factors(factors)
        coords = np.array([[0, 3], [1, 4], [2, 5]])
        np.testing.assert_allclose(cp_values_at(factors, coords),
                                   dense[tuple(coords)], atol=1e-12)


class TestMeasuredProfile:
    def test_bridge_from_real_run(self, small_tensor):
        from repro import AOADMMOptions, fit_aoadmm
        from repro.machine import measured_profile

        result = fit_aoadmm(small_tensor, AOADMMOptions(
            rank=3, seed=1, max_outer_iterations=3, blocked=True,
            block_size=4, track_block_reports=True))
        inner, blocks = measured_profile(result)
        assert len(inner) == 3
        assert all(i >= 1 for i in inner)
        assert blocks is not None and len(blocks) == 3
        assert all(len(b) > 0 for b in blocks)

    def test_no_block_reports_gives_none(self, small_tensor):
        from repro import AOADMMOptions, fit_aoadmm
        from repro.machine import measured_profile

        result = fit_aoadmm(small_tensor, AOADMMOptions(
            rank=3, seed=1, max_outer_iterations=2))
        inner, blocks = measured_profile(result)
        assert blocks is None
        assert len(inner) == 3
