"""Property-based tests (hypothesis) for the tensor substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.kernels import mttkrp_coo, mttkrp_coo_reference, mttkrp_csf
from repro.tensor import COOTensor, CSFTensor
from repro.tensor.matricize import delinearize_indices, linearize_indices

pytestmark = pytest.mark.property


@st.composite
def coo_tensors(draw, max_modes=4, max_extent=8, max_nnz=40):
    """Arbitrary small COO tensors (possibly with duplicate coordinates)."""
    nmodes = draw(st.integers(2, max_modes))
    shape = tuple(draw(st.integers(1, max_extent)) for _ in range(nmodes))
    nnz = draw(st.integers(0, max_nnz))
    coords = np.empty((nmodes, nnz), dtype=np.int64)
    for m in range(nmodes):
        coords[m] = draw(hnp.arrays(np.int64, nnz,
                                    elements=st.integers(0, shape[m] - 1)))
    vals = draw(hnp.arrays(
        np.float64, nnz,
        elements=st.floats(-100, 100, allow_nan=False, width=64)))
    return COOTensor(coords, vals, shape)


@settings(max_examples=60, deadline=None)
@given(coo_tensors())
def test_deduplicate_preserves_dense_form(tensor):
    """Summing duplicates must not change the dense tensor."""
    np.testing.assert_allclose(tensor.deduplicate().to_dense(),
                               tensor.to_dense(), atol=1e-9)


@settings(max_examples=60, deadline=None)
@given(coo_tensors())
def test_dedup_is_idempotent(tensor):
    once = tensor.deduplicate()
    twice = once.deduplicate()
    assert once == twice


@settings(max_examples=60, deadline=None)
@given(coo_tensors(), st.randoms(use_true_random=False))
def test_csf_round_trip_any_mode_order(tensor, pyrandom):
    dedup = tensor.deduplicate()
    order = list(range(dedup.nmodes))
    pyrandom.shuffle(order)
    csf = CSFTensor.from_coo(dedup, tuple(order))
    assert csf.to_coo() == dedup


@settings(max_examples=60, deadline=None)
@given(coo_tensors())
def test_sort_preserves_multiset(tensor):
    s = tensor.sort_lex()
    assert s.nnz == tensor.nnz
    np.testing.assert_allclose(np.sort(s.vals), np.sort(tensor.vals))
    np.testing.assert_allclose(s.to_dense(), tensor.to_dense(), atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(coo_tensors(max_modes=3, max_extent=6, max_nnz=25),
       st.integers(0, 2), st.integers(1, 4), st.integers(0, 2**31 - 1))
def test_mttkrp_kernels_agree(tensor, mode, rank, seed):
    """COO and CSF MTTKRP must match the reference on any input."""
    if tensor.nmodes != 3:
        tensor = COOTensor(tensor.coords[:3] if tensor.nmodes > 3
                           else tensor.coords, tensor.vals,
                           tensor.shape[:3] if tensor.nmodes > 3
                           else tensor.shape) if tensor.nmodes >= 3 else None
    if tensor is None or tensor.nmodes != 3:
        return
    tensor = tensor.deduplicate()
    gen = np.random.default_rng(seed)
    factors = [gen.standard_normal((s, rank)) for s in tensor.shape]
    ref = mttkrp_coo_reference(tensor, factors, mode)
    np.testing.assert_allclose(mttkrp_coo(tensor, factors, mode), ref,
                               atol=1e-8)
    csf = CSFTensor.from_coo(tensor)
    np.testing.assert_allclose(mttkrp_csf(csf, factors, mode), ref,
                               atol=1e-8)


@settings(max_examples=60, deadline=None)
@given(coo_tensors())
def test_linearize_round_trip(tensor):
    modes = list(range(tensor.nmodes))[1:]
    if not modes:
        return
    linear = linearize_indices(tensor.coords, tensor.shape, modes)
    back = delinearize_indices(linear, tensor.shape, modes)
    for row, m in enumerate(modes):
        np.testing.assert_array_equal(back[row], tensor.coords[m])


@settings(max_examples=60, deadline=None)
@given(coo_tensors())
def test_norm_is_permutation_invariant(tensor):
    perm = tuple(reversed(range(tensor.nmodes)))
    assert np.isclose(tensor.norm(), tensor.permute_modes(perm).norm())
