"""CPModel, init, convergence, options, and trace tests."""

import numpy as np
import pytest

from repro.core import (
    AOADMMOptions,
    ConvergenceCriterion,
    CPModel,
    FactorizationTrace,
    factor_match_score,
    init_factors,
)
from repro.core.trace import OuterIterationRecord
from repro.constraints import L1, NonNegative
from repro.tensor import COOTensor, random_coo
from repro.tensor.dense import dense_from_factors
from repro.tensor.random import random_factors


class TestCPModel:
    def test_relative_error_matches_dense(self, small_tensor, nonneg_factors):
        model = CPModel([f.copy() for f in nonneg_factors])
        dense = small_tensor.to_dense()
        recon = model.to_dense()
        expected = np.linalg.norm(dense - recon) / np.linalg.norm(dense)
        assert model.relative_error(small_tensor) == pytest.approx(
            expected, rel=1e-8)

    def test_exact_model_zero_error(self):
        factors = random_factors((8, 7, 6), 3, seed=4)
        dense = dense_from_factors(factors)
        tensor = COOTensor.from_dense(dense)
        model = CPModel([f.copy() for f in factors])
        assert model.relative_error(tensor) < 1e-12

    def test_weights_fold_into_reconstruction(self):
        factors = random_factors((5, 4, 3), 2, seed=7)
        weights = np.array([2.0, 0.5])
        model = CPModel([f.copy() for f in factors], weights)
        np.testing.assert_allclose(
            model.to_dense(), dense_from_factors(factors, weights))

    def test_norm_squared_matches_dense(self, nonneg_factors):
        model = CPModel([f.copy() for f in nonneg_factors])
        assert model.norm_squared() == pytest.approx(
            np.linalg.norm(model.to_dense()) ** 2, rel=1e-10)

    def test_values_at(self, small_tensor, nonneg_factors):
        model = CPModel([f.copy() for f in nonneg_factors])
        vals = model.values_at(small_tensor.coords)
        dense = model.to_dense()
        np.testing.assert_allclose(
            vals, dense[tuple(small_tensor.coords)], atol=1e-12)

    def test_normalized_preserves_reconstruction(self, nonneg_factors):
        model = CPModel([f.copy() for f in nonneg_factors])
        np.testing.assert_allclose(model.normalized().to_dense(),
                                   model.to_dense(), atol=1e-10)

    def test_factor_density(self):
        a = np.array([[1.0, 0.0], [0.0, 0.0]])
        model = CPModel([a, np.ones((3, 2))])
        assert model.factor_density(0) == pytest.approx(0.25)
        assert model.factor_density(1) == 1.0

    def test_component_order(self):
        factors = [np.array([[10.0, 0.1]]), np.array([[1.0, 1.0]])]
        model = CPModel(factors)
        np.testing.assert_array_equal(model.component_order(), [0, 1])


class TestFactorMatchScore:
    def test_identical_models(self):
        factors = random_factors((6, 5, 4), 3, seed=1)
        assert factor_match_score(factors, factors) == pytest.approx(1.0)

    def test_permutation_and_scaling_invariance(self):
        factors = random_factors((6, 5, 4), 3, seed=2)
        perm = [2, 0, 1]
        scaled = [f[:, perm] * np.array([2.0, 0.5, 3.0]) for f in factors]
        assert factor_match_score(factors, scaled) == pytest.approx(
            1.0, abs=1e-10)

    def test_unrelated_models_score_low(self):
        a = random_factors((50, 40, 30), 4, seed=3)
        b = random_factors((50, 40, 30), 4, seed=99)
        assert factor_match_score(a, b) < 0.8


class TestInit:
    @pytest.mark.parametrize("method", ["uniform", "normal", "hosvd"])
    def test_shapes_and_determinism(self, small_tensor, method):
        a = init_factors(small_tensor, 4, method, seed=5)
        b = init_factors(small_tensor, 4, method, seed=5)
        for fa, fb, extent in zip(a, b, small_tensor.shape):
            assert fa.shape == (extent, 4)
            np.testing.assert_array_equal(fa, fb)

    def test_initial_model_norm_matches_tensor(self, small_tensor):
        factors = init_factors(small_tensor, 4, "uniform", seed=1)
        model = CPModel(factors)
        assert model.norm_squared() == pytest.approx(
            small_tensor.norm_squared(), rel=1e-6)

    def test_hosvd_rank_exceeds_mode(self):
        tensor = random_coo((3, 20, 20), 60, seed=2)
        factors = init_factors(tensor, 8, "hosvd", seed=0)
        assert factors[0].shape == (3, 8)

    def test_unknown_method(self, small_tensor):
        with pytest.raises(ValueError):
            init_factors(small_tensor, 3, "bogus")


class TestConvergence:
    def test_stops_on_small_improvement(self):
        crit = ConvergenceCriterion(tolerance=1e-3, max_iterations=100)
        assert not crit.update(1.0)
        assert not crit.update(0.5)
        assert crit.update(0.4999)
        assert crit.reason == "tolerance"

    def test_stops_on_worsening(self):
        crit = ConvergenceCriterion(tolerance=1e-6, max_iterations=100)
        crit.update(0.5)
        assert crit.update(0.6)

    def test_max_iterations(self):
        crit = ConvergenceCriterion(tolerance=0.0, max_iterations=3)
        assert not crit.update(3.0)
        assert not crit.update(2.0)
        assert crit.update(1.0)
        assert crit.reason == "max_iterations"


class TestOptions:
    def test_defaults_follow_paper(self):
        opts = AOADMMOptions()
        assert opts.block_size == 50
        assert opts.max_outer_iterations == 200
        assert opts.outer_tolerance == 1e-6
        assert opts.blocked

    def test_resolve_single_constraint_spec(self):
        opts = AOADMMOptions(constraints="nonneg")
        out = opts.resolve_constraints(3)
        assert len(out) == 3
        assert all(isinstance(c, NonNegative) for c in out)

    def test_resolve_per_mode_list(self):
        opts = AOADMMOptions(constraints=["nonneg", L1(0.1), "none"])
        out = opts.resolve_constraints(3)
        assert out[1].weight == 0.1

    def test_resolve_wrong_length(self):
        opts = AOADMMOptions(constraints=["nonneg", "nonneg"])
        with pytest.raises(ValueError):
            opts.resolve_constraints(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            AOADMMOptions(rank=0)
        with pytest.raises(ValueError):
            AOADMMOptions(inner_tolerance=0.0)


def _record(i, err, m=1.0, a=0.5, o=0.1):
    return OuterIterationRecord(
        iteration=i, relative_error=err, mttkrp_seconds=m, admm_seconds=a,
        other_seconds=o, inner_iterations=(2, 2, 2),
        factor_densities=(1.0, 1.0, 1.0),
        representations=("dense", "dense", "dense"))


class TestTrace:
    def test_series_extraction(self):
        trace = FactorizationTrace()
        trace.setup_seconds = 0.5
        trace.append(_record(1, 0.9))
        trace.append(_record(2, 0.8))
        np.testing.assert_allclose(trace.errors(), [0.9, 0.8])
        np.testing.assert_allclose(trace.cumulative_seconds(),
                                   [0.5 + 1.6, 0.5 + 3.2])
        assert trace.final_error() == 0.8

    def test_time_fractions_sum_to_one(self):
        trace = FactorizationTrace()
        trace.append(_record(1, 0.9))
        fr = trace.time_fractions()
        assert sum(fr.values()) == pytest.approx(1.0)
        assert fr["mttkrp"] == pytest.approx(1.0 / 1.6)

    def test_empty_trace(self):
        trace = FactorizationTrace()
        assert np.isnan(trace.final_error())
        assert trace.time_fractions()["mttkrp"] == 0.0

    def test_error_vs_series(self):
        trace = FactorizationTrace()
        trace.append(_record(1, 0.9))
        trace.append(_record(2, 0.8))
        xs, ys = trace.error_vs_iteration()
        np.testing.assert_array_equal(xs, [1, 2])
        ts, ys2 = trace.error_vs_time()
        assert ts[1] > ts[0]
