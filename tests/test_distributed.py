"""Distributed AO-ADMM tests: exactness vs the shared-memory solver,
partition invariants, and communication accounting."""

import numpy as np
import pytest

from repro import AOADMMOptions, fit_aoadmm, init_factors
from repro.distributed import (
    SimComm,
    fit_aoadmm_distributed,
    partition_tensor,
)
from repro.distributed.partition import row_ranges
from repro.tensor import random_coo


@pytest.fixture
def tensor():
    return random_coo((40, 30, 25), 1500, seed=3)


class TestSimComm:
    def test_allreduce_sums(self):
        comm = SimComm(3)
        parts = [np.full((2, 2), float(i)) for i in range(3)]
        out = comm.allreduce_sum(parts)
        np.testing.assert_allclose(out, 3.0)
        assert comm.log.count("allreduce") == 1
        assert comm.log.total_bytes() > 0

    def test_allgather_concatenates(self):
        comm = SimComm(2)
        out = comm.allgather_rows([np.zeros((2, 3)), np.ones((1, 3))])
        assert out.shape == (3, 3)
        np.testing.assert_allclose(out[2], 1.0)

    def test_single_rank_free_communication(self):
        comm = SimComm(1)
        comm.allreduce_sum([np.ones((2, 2))])
        assert comm.log.total_seconds() == 0.0

    def test_time_model_scales_with_bytes(self):
        fast = SimComm(4, latency=0.0, bandwidth=1e9)
        fast.allreduce_sum([np.ones(1000) for _ in range(4)])
        big = SimComm(4, latency=0.0, bandwidth=1e9)
        big.allreduce_sum([np.ones(100000) for _ in range(4)])
        assert big.log.total_seconds() > fast.log.total_seconds()

    def test_wrong_contribution_count_rejected(self):
        with pytest.raises(ValueError):
            SimComm(2).allreduce_sum([np.ones(2)])


class TestPartition:
    def test_row_ranges_cover_and_align(self):
        ranges = row_ranges(1000, 4, block_size=50)
        assert ranges[0].start == 0 and ranges[-1].stop == 1000
        for i in range(1, 4):
            assert ranges[i].start == ranges[i - 1].stop
            assert ranges[i].start % 50 == 0

    def test_row_ranges_tiny_rows(self):
        ranges = row_ranges(3, 4, block_size=50)
        assert ranges[-1].stop == 3
        assert sum(r.stop - r.start for r in ranges) == 3

    def test_shards_partition_nonzeros(self, tensor):
        part = partition_tensor(tensor, 3)
        assert sum(part.shard_nnz()) == tensor.nnz
        # Shards are disjoint in mode-0 ranges.
        seen = set()
        for shard in part.shards:
            rows = set(np.unique(shard.coords[0]).tolist())
            assert not (rows & seen)
            seen |= rows

    def test_shards_keep_global_shape(self, tensor):
        part = partition_tensor(tensor, 3)
        for shard in part.shards:
            assert shard.shape == tensor.shape

    def test_balance(self, tensor):
        part = partition_tensor(tensor, 4)
        assert part.imbalance() < 2.0

    def test_single_rank(self, tensor):
        part = partition_tensor(tensor, 1)
        assert part.size == 1
        assert part.shards[0] == tensor.sort_lex()


class TestDistributedDriver:
    def test_matches_shared_memory_blocked_exactly(self, tensor):
        """Distribution must not change the numerics at all."""
        opts = AOADMMOptions(rank=4, constraints="nonneg", blocked=True,
                             block_size=8, seed=7, max_outer_iterations=6,
                             outer_tolerance=0.0)
        init = init_factors(tensor, 4, "uniform", seed=7)
        serial = fit_aoadmm(tensor, opts, initial_factors=init)
        dist = fit_aoadmm_distributed(tensor, opts, ranks=3,
                                      initial_factors=init)
        np.testing.assert_allclose(dist.trace.errors(),
                                   serial.trace.errors(), rtol=1e-10)
        for a, b in zip(dist.model.factors, serial.model.factors):
            np.testing.assert_allclose(a, b, atol=1e-10)

    def test_rank_count_invariance(self, tensor):
        opts = AOADMMOptions(rank=3, constraints="nonneg", block_size=5,
                             seed=1, max_outer_iterations=4,
                             outer_tolerance=0.0)
        init = init_factors(tensor, 3, "uniform", seed=1)
        errs = []
        for ranks in (1, 2, 4):
            res = fit_aoadmm_distributed(tensor, opts, ranks=ranks,
                                         initial_factors=init)
            errs.append(res.trace.errors())
        np.testing.assert_allclose(errs[0], errs[1], rtol=1e-10)
        np.testing.assert_allclose(errs[0], errs[2], rtol=1e-10)

    def test_communication_pattern(self, tensor):
        """One allreduce + one allgather per mode per outer iteration —
        the paper's 'no communication beyond MTTKRP' claim."""
        opts = AOADMMOptions(rank=3, seed=1, max_outer_iterations=3,
                             outer_tolerance=0.0)
        res = fit_aoadmm_distributed(tensor, opts, ranks=4)
        expected = 3 * tensor.nmodes
        assert res.comm_log.count("allreduce") == expected
        assert res.comm_log.count("allgather") == expected

    def test_accounting_fields(self, tensor):
        res = fit_aoadmm_distributed(
            tensor, AOADMMOptions(rank=3, seed=1, max_outer_iterations=2,
                                  outer_tolerance=0.0), ranks=2)
        assert len(res.rank_compute_seconds) == 2
        assert all(s > 0 for s in res.rank_compute_seconds)
        assert res.estimated_parallel_seconds() > 0
        assert res.estimated_speedup() >= 1.0

    def test_rejects_unblocked(self, tensor):
        with pytest.raises(ValueError, match="blocked"):
            fit_aoadmm_distributed(
                tensor, AOADMMOptions(rank=3, blocked=False), ranks=2)

    def test_custom_comm(self, tensor):
        comm = SimComm(2, latency=1e-3, bandwidth=1e6)  # slow network
        res = fit_aoadmm_distributed(
            tensor, AOADMMOptions(rank=3, seed=1, max_outer_iterations=2,
                                  outer_tolerance=0.0),
            ranks=2, comm=comm)
        assert res.comm_log.total_seconds() > 1e-3
