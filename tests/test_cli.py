"""CLI tests: every subcommand end to end through ``main``."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.tensor import random_coo, read_tns, write_tns


@pytest.fixture
def tns_file(tmp_path, small_tensor):
    path = tmp_path / "t.tns"
    write_tns(small_tensor, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_factorize_defaults(self):
        args = build_parser().parse_args(["factorize", "x.tns"])
        assert args.rank == 16
        assert args.constraint == "nonneg"
        assert not args.unblocked

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "bogus", "out.tns"])


class TestCommands:
    def test_stats(self, tns_file, capsys):
        assert main(["stats", tns_file]) == 0
        out = capsys.readouterr().out
        assert "NNZ" in out and "density" in out

    def test_factorize_and_save(self, tns_file, tmp_path, capsys):
        out_npz = str(tmp_path / "factors.npz")
        code = main(["factorize", tns_file, "--rank", "3",
                     "--max-iterations", "3", "--output", out_npz,
                     "--verbose"])
        assert code == 0
        text = capsys.readouterr().out
        assert "iter    1" in text and "stopped" in text
        saved = np.load(out_npz)
        assert set(saved.files) == {"mode0", "mode1", "mode2"}
        assert saved["mode0"].shape == (12, 3)

    def test_factorize_with_l1(self, tns_file, capsys):
        code = main(["factorize", tns_file, "--rank", "3",
                     "--constraint", "nonneg_l1", "--weight", "0.2",
                     "--max-iterations", "2", "--repr", "auto"])
        assert code == 0

    def test_factorize_unblocked(self, tns_file):
        assert main(["factorize", tns_file, "--rank", "2",
                     "--max-iterations", "2", "--unblocked"]) == 0

    def test_generate_round_trip(self, tmp_path, capsys):
        out = str(tmp_path / "gen.tns")
        assert main(["generate", "reddit", out, "--preset", "tiny",
                     "--seed", "3"]) == 0
        tensor = read_tns(out)
        assert tensor.nnz > 0
        assert tensor.nmodes == 3

    def test_simulate(self, capsys):
        assert main(["simulate", "patents", "--rank", "50"]) == 0
        out = capsys.readouterr().out
        assert "base" in out and "blocked" in out and "T=20" in out
