"""``repro.fit`` determinism: same seed ⇒ bit-identical factors.

The contract under test: for every method, the factors are a pure
function of ``(tensor, options, seed)`` — unaffected by the thread count
resolved from ``REPRO_NUM_THREADS`` and by whether observability is
collecting metrics.  Verified bitwise through the differential harness
so any violation comes back with a seed-replay string.
"""

import numpy as np
import pytest

import repro
from repro.testing import compare_factor_sets, make_case

#: One lowrank strategy case: a meaningful optimization target for all
#: four methods (mu needs nonnegative data, which planted factors give).
CASE = make_case(41, 6)

FIT_KWARGS = dict(rank=3, constraints="nonneg", seed=7,
                  max_outer_iterations=4, outer_tolerance=0.0,
                  threads=None)  # threads=None: resolve from the env var


def _factors(monkeypatch, method, env_threads, observe):
    monkeypatch.setenv("REPRO_NUM_THREADS", env_threads)
    result = repro.fit(CASE.tensor, method=method, observe=observe,
                       **FIT_KWARGS)
    return [np.array(f, copy=True) for f in result.model.factors]


@pytest.mark.parametrize("method", repro.METHODS)
def test_factors_bitwise_invariant_to_threads_and_observe(
        monkeypatch, method):
    reference = _factors(monkeypatch, method, "1", observe=False)
    for env_threads in ("1", "4"):
        for observe in (False, True):
            factors = _factors(monkeypatch, method, env_threads, observe)
            compare_factor_sets(
                CASE.spec, f"{method}[t=1,observe=off]",
                f"{method}[t={env_threads},observe={'on' if observe else 'off'}]",
                reference, factors, bitwise=True).raise_for_failures()


@pytest.mark.parametrize("method", repro.METHODS)
def test_trace_and_stop_reason_deterministic(monkeypatch, method):
    monkeypatch.setenv("REPRO_NUM_THREADS", "1")
    a = repro.fit(CASE.tensor, method=method, observe=False, **FIT_KWARGS)
    monkeypatch.setenv("REPRO_NUM_THREADS", "4")
    b = repro.fit(CASE.tensor, method=method, observe=True, **FIT_KWARGS)
    assert a.stop_reason == b.stop_reason
    np.testing.assert_array_equal(a.trace.errors(), b.trace.errors())
