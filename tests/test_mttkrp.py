"""MTTKRP kernel correctness: every implementation against two oracles."""

import numpy as np
import pytest

from repro.kernels import (
    mttkrp,
    mttkrp_coo,
    mttkrp_coo_reference,
    mttkrp_csf,
    mttkrp_csf_internal,
    mttkrp_csf_leaf,
    mttkrp_csf_root,
)
from repro.kernels.scatter import scatter_add_rows, segment_sums
from repro.linalg import khatri_rao_excluding
from repro.tensor import COOTensor, CSFTensor, random_coo
from repro.tensor.csf import AllModeCSF
from repro.tensor.matricize import matricize_coo


def matrix_oracle(tensor, factors, mode):
    """Independent oracle: explicit unfolding times Khatri-Rao product."""
    return matricize_coo(tensor, mode).toarray() @ khatri_rao_excluding(
        factors, mode)


class TestScatterPrimitives:
    def test_scatter_add_rows_matches_add_at(self, rng):
        rows = rng.standard_normal((30, 4))
        idx = rng.integers(0, 7, size=30)
        a = np.zeros((7, 4))
        b = np.zeros((7, 4))
        scatter_add_rows(a, idx, rows)
        np.add.at(b, idx, rows)
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_scatter_empty(self):
        out = np.zeros((3, 2))
        scatter_add_rows(out, np.empty(0, dtype=np.int64),
                         np.empty((0, 2)))
        np.testing.assert_array_equal(out, 0.0)

    def test_segment_sums(self):
        rows = np.arange(12, dtype=float).reshape(6, 2)
        starts = np.array([0, 2, 5])
        out = segment_sums(rows, starts)
        np.testing.assert_allclose(out[0], rows[0:2].sum(axis=0))
        np.testing.assert_allclose(out[1], rows[2:5].sum(axis=0))
        np.testing.assert_allclose(out[2], rows[5:].sum(axis=0))

    def test_segment_sums_empty(self):
        out = segment_sums(np.empty((0, 3)), np.empty(0, dtype=np.int64))
        assert out.shape == (0, 3)


class TestThreeModeKernels:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_coo_matches_reference(self, small_tensor, small_factors, mode):
        ref = mttkrp_coo_reference(small_tensor, small_factors, mode)
        np.testing.assert_allclose(
            mttkrp_coo(small_tensor, small_factors, mode), ref, atol=1e-10)

    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_coo_matches_matrix_oracle(self, small_tensor, small_factors,
                                       mode):
        np.testing.assert_allclose(
            mttkrp_coo(small_tensor, small_factors, mode),
            matrix_oracle(small_tensor, small_factors, mode), atol=1e-9)

    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_csf_dispatch_matches_reference(self, small_tensor,
                                            small_factors, mode):
        trees = AllModeCSF(small_tensor)
        ref = mttkrp_coo_reference(small_tensor, small_factors, mode)
        np.testing.assert_allclose(
            mttkrp(trees, small_factors, mode), ref, atol=1e-10)

    def test_root_kernel_on_each_rooting(self, small_tensor, small_factors):
        for root in range(3):
            csf = AllModeCSF(small_tensor).csf(root)
            ref = mttkrp_coo_reference(small_tensor, small_factors, root)
            np.testing.assert_allclose(
                mttkrp_csf_root(csf, small_factors), ref, atol=1e-10)

    def test_leaf_kernel(self, small_tensor, small_factors):
        csf = CSFTensor.from_coo(small_tensor, (0, 1, 2))
        ref = mttkrp_coo_reference(small_tensor, small_factors, 2)
        np.testing.assert_allclose(
            mttkrp_csf_leaf(csf, small_factors), ref, atol=1e-10)

    def test_internal_kernel(self, small_tensor, small_factors):
        csf = CSFTensor.from_coo(small_tensor, (0, 1, 2))
        ref = mttkrp_coo_reference(small_tensor, small_factors, 1)
        np.testing.assert_allclose(
            mttkrp_csf_internal(csf, small_factors, 1), ref, atol=1e-10)

    def test_internal_rejects_edge_levels(self, small_tensor, small_factors):
        csf = CSFTensor.from_coo(small_tensor)
        with pytest.raises(ValueError):
            mttkrp_csf_internal(csf, small_factors, 0)
        with pytest.raises(ValueError):
            mttkrp_csf_internal(csf, small_factors, 2)


class TestFourModeKernels:
    @pytest.mark.parametrize("mode", [0, 1, 2, 3])
    def test_all_modes_and_levels(self, four_mode_tensor, mode, rng):
        factors = [rng.standard_normal((s, 3))
                   for s in four_mode_tensor.shape]
        ref = mttkrp_coo_reference(four_mode_tensor, factors, mode)
        # Via every rooting that exercises a different kernel path.
        for order in [(mode,) + tuple(m for m in range(4) if m != mode),
                      tuple(m for m in range(4) if m != mode) + (mode,),
                      ((mode + 1) % 4,) + tuple(
                          m for m in range(4) if m != (mode + 1) % 4)]:
            csf = CSFTensor.from_coo(four_mode_tensor, order)
            got = mttkrp_csf(csf, factors, mode)
            np.testing.assert_allclose(got, ref, atol=1e-10,
                                       err_msg=f"order={order}")


class TestEdgeCases:
    def test_empty_tensor(self, small_factors):
        empty = COOTensor(np.empty((3, 0), dtype=np.int64), np.empty(0),
                          (12, 9, 15))
        out = mttkrp_coo(empty, small_factors, 0)
        np.testing.assert_array_equal(out, 0.0)
        out = mttkrp(CSFTensor.from_coo(empty), small_factors, 0)
        np.testing.assert_array_equal(out, 0.0)

    def test_single_nonzero(self):
        t = COOTensor.from_arrays(
            [np.array([1]), np.array([2]), np.array([0])],
            np.array([2.0]), shape=(3, 4, 2))
        gen = np.random.default_rng(5)
        factors = [gen.standard_normal((s, 3)) for s in t.shape]
        out = mttkrp_coo(t, factors, 0)
        expected = np.zeros((3, 3))
        expected[1] = 2.0 * factors[1][2] * factors[2][0]
        np.testing.assert_allclose(out, expected)

    def test_factor_shape_mismatch_rejected(self, small_tensor):
        factors = [np.ones((4, 3))] * 3
        with pytest.raises(ValueError):
            mttkrp_coo(small_tensor, factors, 0)

    def test_mttkrp_method_dispatch(self, small_tensor, small_factors):
        ref = mttkrp_coo_reference(small_tensor, small_factors, 1)
        for method in ("auto", "coo", "csf"):
            np.testing.assert_allclose(
                mttkrp(small_tensor, small_factors, 1, method=method),
                ref, atol=1e-10)
        with pytest.raises(ValueError):
            mttkrp(small_tensor, small_factors, 1, method="bogus")

    def test_rank_one(self, small_tensor):
        gen = np.random.default_rng(9)
        factors = [gen.standard_normal((s, 1)) for s in small_tensor.shape]
        ref = mttkrp_coo_reference(small_tensor, factors, 0)
        np.testing.assert_allclose(mttkrp_coo(small_tensor, factors, 0), ref)
