"""Differential correctness harness wiring.

Tier-1 runs the acceptance sweep (every MTTKRP backend × threads × slab
targets × rank counts on 21 strategy-generated tensors, blocked vs
unblocked ADMM with KKT certificates, the prox oracle) plus the
negative controls proving the harness *catches* injected defects and
emits working seed-replay strings.  The ``fuzz``-marked tests at the
bottom are the extended nightly sweep (rotating seed via
``REPRO_FUZZ_SEED``); they are deselected from tier-1 by the ``-m "not
fuzz and not slow"`` default in ``pyproject.toml``.
"""

import os
from dataclasses import replace

import numpy as np
import pytest

from repro.admm.solver import admm_update
from repro.admm.state import AdmmState
from repro.constraints.base import Constraint
from repro.constraints.registry import make_constraint
from repro.core.aoadmm import fit_aoadmm
from repro.core.cpd import CPModel
from repro.core.options import AOADMMOptions
from repro.kernels.mttkrp_coo import mttkrp_coo, mttkrp_coo_reference
from repro.linalg.grams import hadamard_gram_excluding
from repro.robustness.faults import FaultInjector, FaultSpec
from repro.testing import (
    FLAVORS,
    BackendSpec,
    case_from_spec,
    check_prox,
    compare_factor_sets,
    compare_fits,
    factors_for,
    kkt_certificate,
    make_case,
    mttkrp_backend_specs,
    mttkrp_oracle,
    parse_spec,
    relative_error_oracle,
    run_admm_sweep,
    run_mttkrp_sweep,
    run_prox_sweep,
    tensor_cases,
)
from repro.testing import differential as differential_cli

#: Fixed tier-1 sweep seed; the nightly job rotates REPRO_FUZZ_SEED instead.
TIER1_SEED = 0xD1FF


class TestStrategies:
    def test_spec_round_trip_rebuilds_identical_case(self):
        for case in tensor_cases(8, seed=37):
            seed, index = parse_spec(case.spec)
            assert (seed, index) == (case.seed, case.index)
            replayed = case_from_spec(case.spec)
            assert replayed.flavor == case.flavor
            assert replayed.tensor == case.tensor

    def test_malformed_specs_rejected(self):
        for bad in ("", "v0:seed=1:index=2", "v1:seed=1",
                    "v1:seed=x:index=2", "v1:seed=1:rank=2"):
            with pytest.raises(ValueError):
                parse_spec(bad)

    def test_flavor_rotation_covers_every_flavor(self):
        flavors = {c.flavor for c in tensor_cases(len(FLAVORS), seed=5)}
        assert flavors == set(FLAVORS)

    def test_adversarial_structure_is_real(self):
        empty = make_case(11, 0, flavor="empty-slices")
        assert any(
            len(empty.tensor.nonempty_slices(m)) < empty.tensor.shape[m]
            for m in range(empty.tensor.nmodes))
        narrow = make_case(11, 0, flavor="one-wide")
        assert 1 in narrow.tensor.shape
        deep = make_case(11, 0, flavor="many-modes")
        assert deep.tensor.nmodes >= 4

    def test_batches_cover_three_and_four_mode_tensors(self):
        nmodes = {c.tensor.nmodes for c in tensor_cases(21, seed=TIER1_SEED)}
        assert {3, 4} <= nmodes

    def test_factors_for_is_deterministic_with_exact_zeros(self):
        case = make_case(23, 1)
        a = factors_for(case, rank=4)
        b = factors_for(case, rank=4)
        for fa, fb, extent in zip(a, b, case.tensor.shape):
            assert fa.shape == (extent, 4)
            np.testing.assert_array_equal(fa, fb)
        assert any(np.count_nonzero(f == 0.0) for f in a)


class TestOracles:
    def test_mttkrp_oracle_matches_triple_loop_reference(self):
        case = make_case(3, 2)
        factors = factors_for(case, rank=3)
        for mode in range(case.tensor.nmodes):
            np.testing.assert_allclose(
                mttkrp_oracle(case.tensor, factors, mode),
                mttkrp_coo_reference(case.tensor, factors, mode),
                atol=1e-10)

    def test_relative_error_oracle_certifies_norm_expansion(self):
        case = make_case(3, 6)  # lowrank flavor
        factors = factors_for(case, rank=3, leaf_sparsity=0.0)
        oracle = relative_error_oracle(case.tensor, factors)
        identity = CPModel([f.copy() for f in factors]).relative_error(
            case.tensor)
        assert oracle == pytest.approx(identity, abs=1e-9)

    def test_kkt_certificate_accepts_converged_rejects_perturbed(self):
        case = make_case(17, 0)
        factors = factors_for(case, rank=3, leaf_sparsity=0.0)
        kmat = mttkrp_oracle(case.tensor, factors, 0)
        gram = hadamard_gram_excluding(factors, 0)
        constraint = make_constraint("nonneg")
        state = AdmmState.from_factor(np.abs(factors[0]) + 0.1)
        report = admm_update(state, kmat, gram, constraint,
                             tolerance=1e-12, max_iterations=3000)
        assert report.converged
        cert = kkt_certificate(state, kmat, gram, constraint, rho=report.rho)
        assert cert.satisfied(1e-4), cert
        perturbed = AdmmState.from_snapshot(state.primal + 0.25,
                                            state.dual.copy())
        bad = kkt_certificate(perturbed, kmat, gram, constraint,
                              rho=report.rho)
        assert not bad.satisfied(1e-4)

    def test_prox_oracle_flags_a_broken_prox(self, rng):
        class BrokenNonNeg(Constraint):
            name = "broken-nonneg"

            def prox(self, matrix, step):
                # Feasible but not the projection: inflate everything.
                return np.abs(matrix) + 1.0

            def penalty(self, matrix):
                return 0.0 if np.all(matrix >= 0) else float("inf")

        matrix = rng.standard_normal((6, 4))
        assert check_prox(make_constraint("nonneg"), matrix, 0.7,
                          np.random.default_rng(1)).ok(1e-6)
        assert not check_prox(BrokenNonNeg(), matrix, 0.7,
                              np.random.default_rng(1)).ok(1e-6)


class TestMTTKRPSweep:
    def test_acceptance_grid_every_backend_agrees(self):
        """The acceptance sweep: ≥20 tensors × full backend grid.

        coo, untiled csf, tiled csf over threads {1,2,4} × 2 slab
        targets (bit-identical family), the out-of-core sharded stream
        at two byte budgets (same bitwise family), sparse-factor csr
        and csr-h, and the distributed shard-sum — all against the
        dense oracle.
        """
        cases = tensor_cases(21, seed=TIER1_SEED)
        backends = mttkrp_backend_specs(threads=(1, 2, 4),
                                        slab_targets=(32, 100_000),
                                        distributed_ranks=(3,))
        names = {b.name for b in backends}
        assert {"coo", "csf", "sparse-csr", "sparse-csr-h",
                "sharded[b=None]", "sharded[b=4096]",
                "distributed[ranks=3]"} <= names
        assert sum(n.startswith("csf-tiled") for n in names) == 6
        report = run_mttkrp_sweep(cases, rank=4, backends=backends)
        report.raise_for_failures()
        assert report.cases >= 20
        assert report.comparisons > 1000

    def test_corrupted_backend_caught_with_working_replay(self):
        def corrupt_factory(tensor):
            def kernel(factors, mode):
                out = mttkrp_coo(tensor, factors, mode)
                out.flat[0] += 1e-3  # a small silent kernel bug
                return out

            return kernel

        backends = [
            BackendSpec("coo", "coo",
                        lambda t: lambda f, m: mttkrp_coo(t, f, m)),
            BackendSpec("corrupt", "corrupt", corrupt_factory),
        ]
        cases = tensor_cases(2, seed=9)
        report = run_mttkrp_sweep(cases, rank=3, backends=backends)
        assert not report.ok
        failure = report.disagreements[0]
        assert failure.backend == "corrupt"
        assert failure.replay and "python -m repro.testing" in failure.replay
        # The embedded spec rebuilds the exact failing tensor.
        assert case_from_spec(failure.case).tensor == cases[0].tensor


class TestADMMSweep:
    def test_blocked_vs_unblocked_with_kkt_certificates(self):
        report = run_admm_sweep(tensor_cases(12, seed=TIER1_SEED))
        report.raise_for_failures()
        assert report.comparisons >= 12

    def test_prox_sweep_all_registered_constraints(self):
        run_prox_sweep(seed=11).raise_for_failures()


class TestFaultDetection:
    """Acceptance: an injected kernel perturbation must be *caught*."""

    def test_injected_mttkrp_fault_caught_with_working_replay(self, capsys):
        case = make_case(99, 6)  # lowrank: a meaningful fit target
        base = AOADMMOptions(rank=3, max_outer_iterations=4,
                             outer_tolerance=0.0, guard_policy="off",
                             seed=case.seed)
        perturbed = replace(base, fault_injector=FaultInjector(
            [FaultSpec("mttkrp_nan", iteration=2, mode=0)]))
        report = compare_fits(case, base, perturbed,
                              label_a="clean", label_b="perturbed")
        assert not report.ok
        failure = report.disagreements[0]
        assert "replay" not in failure.detail  # detail is the diff itself
        assert failure.replay.startswith(
            "PYTHONPATH=src python -m repro.testing --replay")
        # The seed-replay string *works*: its spec rebuilds the exact
        # tensor, and executing the replay command path runs the sweep.
        assert case_from_spec(failure.case).tensor == case.tensor
        exit_code = differential_cli.main(
            ["--replay", failure.case, "--no-admm"])
        out = capsys.readouterr().out
        assert exit_code == 0 and "PASS" in out  # kernels are clean

    def test_unperturbed_fit_pair_is_bit_identical(self):
        case = make_case(99, 6)
        options = AOADMMOptions(rank=3, max_outer_iterations=3,
                                outer_tolerance=0.0, seed=case.seed)
        compare_fits(case, options, options).raise_for_failures()


class TestCheckpointResumeDifferential:
    def test_resume_bitwise_matches_uninterrupted_across_sweep_config(
            self, tmp_path):
        """Resumed blocked AO-ADMM == uninterrupted run, bit for bit.

        The uninterrupted run uses 2 threads and the resumed leg 1
        thread: the thread count is contractually bit-invisible, so the
        checkpoint boundary must not introduce any divergence either.
        """
        case = make_case(5, 6)  # lowrank flavor
        path = tmp_path / "ck.npz"
        full = AOADMMOptions(rank=3, constraints="nonneg", blocked=True,
                             max_outer_iterations=6, outer_tolerance=0.0,
                             seed=11, threads=2, block_size=3)
        uninterrupted = fit_aoadmm(case.tensor, full)

        interrupted = replace(full, max_outer_iterations=3,
                              checkpoint_every=3, checkpoint_path=path)
        fit_aoadmm(case.tensor, interrupted)
        resumed = fit_aoadmm(case.tensor, replace(full, threads=1),
                             resume_from=path)

        report = compare_factor_sets(
            case.spec, "uninterrupted[t=2]", "resumed[t=1]",
            uninterrupted.model.factors, resumed.model.factors,
            bitwise=True)
        report.raise_for_failures()
        assert resumed.stop_reason == uninterrupted.stop_reason
        np.testing.assert_array_equal(resumed.trace.errors(),
                                      uninterrupted.trace.errors())


# ----------------------------------------------------------------------
# Extended sweeps: nightly fuzz tier (deselected from tier-1 by marker)
# ----------------------------------------------------------------------

def _fuzz_seed() -> int:
    return int(os.environ.get("REPRO_FUZZ_SEED", "0"))


@pytest.mark.fuzz
def test_fuzz_mttkrp_sweep_rotating_seed():
    seed = _fuzz_seed()
    report = run_mttkrp_sweep(tensor_cases(40, seed=seed), rank=5)
    report.raise_for_failures()


@pytest.mark.fuzz
def test_fuzz_admm_and_prox_sweeps_rotating_seed():
    seed = _fuzz_seed()
    report = run_admm_sweep(tensor_cases(24, seed=seed + 1))
    report.merge(run_prox_sweep(seed=seed + 2))
    report.raise_for_failures()


@pytest.mark.fuzz
def test_fuzz_fit_pair_determinism_rotating_seed():
    seed = _fuzz_seed()
    for index in range(4):
        case = make_case(seed + 3, index)
        options = AOADMMOptions(rank=3, max_outer_iterations=3,
                                outer_tolerance=0.0, seed=case.seed)
        compare_fits(case, options, options).raise_for_failures()
