"""Sharded tensor store + the unified ``open_tensor`` front door."""

import warnings
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core.serialize import array_fingerprint
from repro.robustness.checkpoint import tensor_fingerprint
from repro.tensor import (
    COOTensor,
    CSFTensor,
    ShardedTensorStore,
    load_tns,
    open_tensor,
    random_coo,
    read_tns,
    write_tns,
)
from repro.tensor.store import BUDGET_ENV_VAR, resolve_byte_budget
from repro.types import TensorSource


def _bitwise_equal(a: COOTensor, b: COOTensor) -> bool:
    a, b = a.sort_lex(), b.sort_lex()
    return (a.shape == b.shape
            and np.array_equal(a.coords, b.coords)
            and np.array_equal(a.vals, b.vals))


@pytest.fixture
def store(tmp_path, small_tensor):
    return ShardedTensorStore.create(small_tensor, tmp_path / "store",
                                     slab_nnz_target=32)


class TestStoreRoundTrip:
    def test_create_then_to_coo_bitwise(self, store, small_tensor):
        assert _bitwise_equal(store.to_coo(), small_tensor)

    def test_reopen_from_disk(self, tmp_path, store, small_tensor):
        reopened = ShardedTensorStore.open(tmp_path / "store")
        assert reopened.shape == small_tensor.shape
        assert reopened.nnz == small_tensor.nnz
        assert _bitwise_equal(reopened.to_coo(), small_tensor)

    def test_norm_squared_bitwise(self, store, small_tensor):
        # repr round-trips doubles exactly through meta.json.
        assert store.norm_squared() == small_tensor.norm_squared()
        reopened = ShardedTensorStore.open(store.path)
        assert reopened.norm_squared() == small_tensor.norm_squared()

    def test_fingerprint_matches_checkpoint_layer(self, store, small_tensor):
        assert store.fingerprint() == tensor_fingerprint(small_tensor)
        # Pin the store's internal digest to the core serializer's.
        assert store.fingerprint()["sha1"] == array_fingerprint(
            small_tensor.coords, small_tensor.vals)

    def test_slabs_are_nnz_partition(self, store, small_tensor):
        for mode in range(store.nmodes):
            total = sum(store.slab_meta(mode, i)["nnz"]
                        for i in range(store.slab_count(mode)))
            assert total == small_tensor.nnz
            assert store.slab_count(mode) > 1  # target 32 on 140 nnz

    def test_slab_arrays_are_readonly_maps(self, store):
        slab = store.load_slab(0, 0)
        assert not slab.tree.vals.flags.writeable

    def test_storage_and_slab_files(self, store):
        files = store.slab_files()
        assert all(f.is_file() for f in files)
        assert store.storage_bytes() == sum(
            store.slab_nbytes(m, i) for m in range(store.nmodes)
            for i in range(store.slab_count(m)))

    def test_create_refuses_existing_store(self, tmp_path, store,
                                           small_tensor):
        with pytest.raises(ValueError, match="already contains"):
            ShardedTensorStore.create(small_tensor, tmp_path / "store")

    def test_closed_store_rejects_slab_access(self, store):
        store.close()
        with pytest.raises(ValueError, match="closed"):
            store.load_slab(0, 0)

    def test_close_keeps_user_directory(self, tmp_path, store):
        store.close()
        assert (tmp_path / "store" / "meta.json").is_file()


class TestTensorSourceProtocol:
    def test_all_sources_satisfy_protocol(self, store, small_tensor):
        csf = CSFTensor.from_coo(small_tensor)
        for src in (small_tensor, csf, store):
            assert isinstance(src, TensorSource)
            assert src.shape == small_tensor.shape
            assert src.nnz == small_tensor.nnz
            assert np.isfinite(src.norm_squared())

    def test_csf_norm_close_to_coo(self, small_tensor):
        csf = CSFTensor.from_coo(small_tensor)
        # Leaf-order summation: equal to the last ulp or two, not
        # contractually bitwise (the store freezes the COO value).
        assert csf.norm_squared() == pytest.approx(
            small_tensor.norm_squared(), rel=1e-15)
        assert csf.norm() == pytest.approx(small_tensor.norm(), rel=1e-15)


class TestOpenTensor:
    def test_tns_file_opens_in_core(self, tmp_path, small_tensor,
                                    monkeypatch):
        monkeypatch.delenv(BUDGET_ENV_VAR, raising=False)
        path = write_tns(small_tensor, tmp_path / "t.tns")
        opened = open_tensor(path)
        assert isinstance(opened, COOTensor)
        assert opened == small_tensor

    def test_store_directory_opens_as_store(self, tmp_path, store):
        opened = open_tensor(tmp_path / "store")
        assert isinstance(opened, ShardedTensorStore)
        assert opened.nnz == store.nnz

    def test_budget_shards_file_to_temp_store(self, tmp_path, small_tensor):
        path = write_tns(small_tensor, tmp_path / "t.tns")
        opened = open_tensor(path, max_bytes_in_core=4096)
        assert isinstance(opened, ShardedTensorStore)
        assert opened.max_bytes_in_core == 4096
        shard_root = opened.path
        assert shard_root.exists()
        opened.close()
        assert not shard_root.exists()  # temp shards self-clean

    def test_budget_shards_in_core_tensor(self, small_tensor):
        with open_tensor(small_tensor, max_bytes_in_core=1) as opened:
            assert isinstance(opened, ShardedTensorStore)
            assert _bitwise_equal(opened.to_coo(), small_tensor)

    def test_shard_dir_is_respected_and_kept(self, tmp_path, small_tensor):
        opened = open_tensor(small_tensor, max_bytes_in_core=1,
                             shard_dir=tmp_path / "shards")
        assert opened.path == tmp_path / "shards"
        opened.close()
        assert (tmp_path / "shards" / "meta.json").is_file()

    def test_tensor_objects_pass_through(self, small_tensor, store,
                                         monkeypatch):
        monkeypatch.delenv(BUDGET_ENV_VAR, raising=False)
        assert open_tensor(small_tensor) is small_tensor
        csf = CSFTensor.from_coo(small_tensor)
        assert open_tensor(csf) is csf
        assert open_tensor(store) is store

    def test_budget_env_var(self, monkeypatch, small_tensor):
        monkeypatch.setenv(BUDGET_ENV_VAR, "2048")
        assert resolve_byte_budget() == 2048
        with open_tensor(small_tensor) as opened:
            assert isinstance(opened, ShardedTensorStore)
            assert opened.max_bytes_in_core == 2048

    def test_malformed_env_var_warns_and_ignores(self, monkeypatch,
                                                 small_tensor):
        from repro.tensor import store as store_mod
        monkeypatch.setattr(store_mod, "_WARNED_ENV_VALUES", set())
        monkeypatch.setenv(BUDGET_ENV_VAR, "lots")
        with pytest.warns(RuntimeWarning, match=BUDGET_ENV_VAR):
            assert resolve_byte_budget() is None

    def test_malformed_env_var_warns_once_per_value(self, monkeypatch,
                                                    small_tensor):
        from repro.tensor import store as store_mod
        monkeypatch.setattr(store_mod, "_WARNED_ENV_VALUES", set())
        monkeypatch.setenv(BUDGET_ENV_VAR, "plenty")
        with pytest.warns(RuntimeWarning, match=BUDGET_ENV_VAR):
            assert resolve_byte_budget() is None
        # Same malformed value again: silently ignored (warn-once, the
        # REPRO_EXECUTOR / REPRO_NUM_THREADS contract).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_byte_budget() is None
        # A *different* malformed value earns its own warning.
        monkeypatch.setenv(BUDGET_ENV_VAR, "loads")
        with pytest.warns(RuntimeWarning, match="loads"):
            assert resolve_byte_budget() is None

    def test_rejects_non_tensor(self):
        with pytest.raises(ValueError, match="cannot open"):
            open_tensor(object())

    def test_missing_path_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="neither"):
            open_tensor(tmp_path / "nope.tns")


class TestIoFrontDoor:
    def test_load_tns_routes_through_open_tensor(self, tmp_path,
                                                 small_tensor, monkeypatch):
        monkeypatch.delenv(BUDGET_ENV_VAR, raising=False)
        path = write_tns(small_tensor, tmp_path / "t.tns")
        assert load_tns(path) == small_tensor
        with load_tns(path, max_bytes_in_core=4096) as store:
            assert isinstance(store, ShardedTensorStore)

    def test_read_tns_chunking_bit_identical(self, tmp_path):
        tensor = random_coo((40, 30, 20), 700, seed=13)
        path = write_tns(tensor, tmp_path / "t.tns")
        whole = read_tns(path)
        chunked = read_tns(path, chunk_lines=7)
        assert np.array_equal(whole.coords, chunked.coords)
        assert np.array_equal(whole.vals, chunked.vals)

    def test_write_tns_accepts_any_source(self, tmp_path, store,
                                          small_tensor):
        path = write_tns(store, tmp_path / "from_store.tns")
        assert _bitwise_equal(read_tns(path).sort_lex(),
                              small_tensor.sort_lex())

    def test_deprecated_top_level_shims(self):
        with pytest.warns(DeprecationWarning, match="open_tensor"):
            assert repro.read_tns is read_tns
        with pytest.warns(DeprecationWarning, match="save_tns"):
            assert repro.write_tns is write_tns
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert repro.load_tns is load_tns
            assert repro.open_tensor is open_tensor

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.no_such_symbol


class TestFitFrontDoor:
    def test_fit_accepts_path(self, tmp_path, small_tensor):
        path = write_tns(small_tensor, tmp_path / "t.tns")
        direct = repro.fit(small_tensor, rank=3, seed=0,
                           max_outer_iterations=3)
        via_path = repro.fit(str(path), rank=3, seed=0,
                             max_outer_iterations=3)
        for a, b in zip(direct.factors, via_path.factors):
            np.testing.assert_array_equal(a, b)

    def test_fit_accepts_store_directory(self, tmp_path, store,
                                         small_tensor):
        direct = repro.fit(small_tensor, rank=3, seed=0,
                           max_outer_iterations=3)
        via_store = repro.fit(Path(tmp_path / "store"), rank=3, seed=0,
                              max_outer_iterations=3)
        for a, b in zip(direct.factors, via_store.factors):
            np.testing.assert_array_equal(a, b)

    def test_fit_rejects_non_source(self):
        with pytest.raises(ValueError, match="TensorSource"):
            repro.fit(3.14, rank=3)

    def test_hosvd_init_needs_in_core(self, store):
        with pytest.raises(ValueError, match="hosvd"):
            repro.fit(store, rank=3, seed=0, init="hosvd",
                      max_outer_iterations=2)
