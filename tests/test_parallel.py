"""Scheduler, partitioner, and thread-pool tests."""

import os
import time

import numpy as np
import pytest

from repro.parallel import (
    DynamicSchedule,
    GuidedSchedule,
    StaticSchedule,
    balanced_chunks,
    block_of_row,
    effective_threads,
    parallel_for,
    row_blocks,
    run_schedule,
)


class TestRowBlocks:
    def test_exact_division(self):
        blocks = row_blocks(100, 25)
        assert len(blocks) == 4
        assert blocks[0] == slice(0, 25)
        assert blocks[-1] == slice(75, 100)

    def test_ragged_final_block(self):
        blocks = row_blocks(10, 4)
        assert [b.stop - b.start for b in blocks] == [4, 4, 2]

    def test_degenerate_single_block(self):
        assert row_blocks(10, 0) == [slice(0, 10)]
        assert row_blocks(10, 100) == [slice(0, 10)]

    def test_empty(self):
        assert row_blocks(0, 5) == []

    def test_covers_all_rows_exactly_once(self):
        blocks = row_blocks(97, 7)
        covered = np.concatenate([np.arange(b.start, b.stop) for b in blocks])
        np.testing.assert_array_equal(covered, np.arange(97))

    def test_block_of_row(self):
        assert block_of_row(0, 50) == 0
        assert block_of_row(49, 50) == 0
        assert block_of_row(50, 50) == 1


class TestBalancedChunks:
    def test_uniform_weights(self):
        chunks = balanced_chunks(np.ones(100), 4)
        sizes = [c.stop - c.start for c in chunks]
        assert sum(sizes) == 100
        assert max(sizes) - min(sizes) <= 1

    def test_skewed_weights(self):
        weights = np.zeros(100)
        weights[0] = 100.0
        weights[1:] = 1.0
        chunks = balanced_chunks(weights, 4)
        # The heavy element is isolated into a small first chunk.
        assert chunks[0].stop - chunks[0].start <= 2

    def test_single_chunk(self):
        assert balanced_chunks(np.ones(5), 1) == [slice(0, 5)]

    def test_zero_weights_fall_back(self):
        chunks = balanced_chunks(np.zeros(10), 3)
        assert sum(c.stop - c.start for c in chunks) == 10


class TestSchedules:
    def test_static_chunks_cover(self):
        chunks = StaticSchedule().chunks(10, 3)
        assert chunks[0] == (0, 4)
        assert sum(b - a for a, b in chunks) == 10

    def test_dynamic_chunks(self):
        chunks = DynamicSchedule(chunk_size=3).chunks(10, 2)
        assert chunks == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_guided_chunks_shrink(self):
        chunks = GuidedSchedule().chunks(1000, 4)
        sizes = [b - a for a, b in chunks]
        assert sizes[0] > sizes[-1]
        assert sum(sizes) == 1000

    def test_run_schedule_single_thread_is_sum(self):
        durations = np.array([1.0, 2.0, 3.0])
        for sched in (StaticSchedule(), DynamicSchedule(), GuidedSchedule()):
            out = run_schedule(durations, 1, sched)
            assert out.makespan == pytest.approx(6.0)

    def test_dynamic_beats_static_on_skew(self):
        durations = np.r_[np.full(1, 100.0), np.ones(99)]
        static = run_schedule(durations, 4, StaticSchedule(chunk_size=25))
        dynamic = run_schedule(durations, 4, DynamicSchedule(chunk_size=1))
        assert dynamic.makespan <= static.makespan

    def test_makespan_bounds(self):
        """Makespan must lie between ideal and serial."""
        gen = np.random.default_rng(3)
        durations = gen.uniform(0.1, 2.0, size=200)
        for threads in (2, 4, 8):
            out = run_schedule(durations, threads, DynamicSchedule())
            assert durations.sum() / threads <= out.makespan + 1e-9
            assert out.makespan <= durations.sum() + 1e-9

    def test_per_chunk_overhead_counted(self):
        durations = np.ones(10)
        base = run_schedule(durations, 2, DynamicSchedule(chunk_size=1))
        cost = run_schedule(durations, 2, DynamicSchedule(chunk_size=1),
                            per_chunk_overhead=0.5)
        assert cost.makespan > base.makespan

    def test_imbalance_metric(self):
        out = run_schedule(np.array([4.0, 1.0]), 2, DynamicSchedule())
        assert out.imbalance == pytest.approx(4.0 / 2.5)

    def test_empty(self):
        out = run_schedule(np.empty(0), 3, DynamicSchedule())
        assert out.makespan == 0.0


class TestThreadPool:
    def test_results_in_order(self):
        out = parallel_for(lambda x: x * x, list(range(20)), threads=4)
        assert out == [x * x for x in range(20)]

    def test_single_thread_inline(self):
        out = parallel_for(lambda x: x + 1, [1, 2, 3], threads=1)
        assert out == [2, 3, 4]

    def test_effective_threads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "7")
        assert effective_threads() == 7
        monkeypatch.setenv("REPRO_NUM_THREADS", "junk")
        assert effective_threads() >= 1
        assert effective_threads(3) == 3

    def test_results_ordered_despite_timing_inversion(self):
        # Early items sleep longest: with a pool, later items *finish*
        # first, but results must still come back in input order.
        def work(i):
            time.sleep(0.02 * (5 - i))
            return i
        assert parallel_for(work, list(range(5)), threads=4) == \
            list(range(5))

    def test_exception_propagates_from_worker(self):
        def boom(i):
            if i == 3:
                raise RuntimeError(f"worker {i} failed")
            return i
        with pytest.raises(RuntimeError, match="worker 3 failed"):
            parallel_for(boom, list(range(6)), threads=4)

    def test_exception_propagates_inline(self):
        with pytest.raises(ZeroDivisionError):
            parallel_for(lambda x: 1 // x, [1, 0], threads=1)

    def test_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "7")
        assert effective_threads(2) == 2

    def test_invalid_int_env_falls_back_to_cpu(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "not-a-number")
        assert effective_threads() == (os.cpu_count() or 1)

    def test_nonpositive_env_values_ignored(self, monkeypatch):
        for bad in ("0", "-4"):
            monkeypatch.setenv("REPRO_NUM_THREADS", bad)
            assert effective_threads() == (os.cpu_count() or 1)

    def test_empty_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "")
        assert effective_threads() == (os.cpu_count() or 1)

    def test_nonpositive_request_falls_through(self, monkeypatch):
        # requested <= 0 is treated as "unset" and defers to the env var.
        monkeypatch.setenv("REPRO_NUM_THREADS", "5")
        assert effective_threads(0) == 5
        assert effective_threads(-1) == 5
