"""Chaos: kill a real supervised fit mid-run, restart it, compare bits.

The in-process preemption tests (``tests/test_supervisor.py``) prove the
flag-and-checkpoint mechanics; this module proves the whole journey —
a *separate interpreter* running a supervised fit receives a real
``SIGTERM``, exits through the graceful-preemption path, and a fresh
process resuming from its checkpoints reproduces the uninterrupted run
bit-for-bit, for both the serial and the process-pool executor.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro import AOADMMOptions, fit_aoadmm
from repro.tensor import noisy_lowrank_coo

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Runs in a child interpreter: a supervised fit that SIGTERMs *itself*
#: after outer iteration 3 (deterministic, no timing window), then
#: reports how it stopped.  Exit code 3 = preempted (the CLI contract).
_CHILD_SCRIPT = """
import os, signal, sys
from repro import AOADMMOptions
from repro.robustness import Backoff, SupervisorOptions, supervise_fit
from repro.tensor import noisy_lowrank_coo

executor, ck_path = sys.argv[1], sys.argv[2]
tensor, _ = noisy_lowrank_coo((30, 25, 20), rank=4, nnz=2000, seed=0)
options = AOADMMOptions(
    rank=4, constraints="nonneg", seed=0,
    max_outer_iterations=8, outer_tolerance=0.0,
    executor=executor, threads=2, slab_nnz_target=256,
    checkpoint_every=1, checkpoint_keep_last=3, checkpoint_path=ck_path,
    callback=lambda r: (r.iteration == 3
                        and os.kill(os.getpid(), signal.SIGTERM))
    and False)
result, report = supervise_fit(
    tensor, options,
    SupervisorOptions(backoff=Backoff(initial=0.0, multiplier=1.0,
                                      max_delay=0.0),
                      install_signal_handlers=True))
print("STOP", result.stop_reason, len(result.trace), flush=True)
sys.exit(3 if result.stop_reason == "preempted" else 0)
"""


@pytest.fixture(scope="module")
def tensor():
    t, _ = noisy_lowrank_coo((30, 25, 20), rank=4, nnz=2000, seed=0)
    return t


@pytest.fixture(scope="module")
def reference(tensor):
    return fit_aoadmm(tensor, AOADMMOptions(
        rank=4, constraints="nonneg", seed=0,
        max_outer_iterations=8, outer_tolerance=0.0))


@pytest.mark.parametrize("executor", ["serial", "process"])
def test_sigterm_then_restart_is_bit_identical(executor, tensor, reference,
                                               tmp_path):
    ck_path = str(tmp_path / "chaos.npz")
    env = {**os.environ,
           "PYTHONPATH": str(REPO_ROOT / "src"),
           # The child must not inherit an executor override: the test
           # pins the executor explicitly per parametrization.
           "REPRO_EXECUTOR": executor}
    child = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, executor, ck_path],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        timeout=300)
    assert child.returncode == 3, \
        f"child did not preempt: rc={child.returncode}\n" \
        f"stdout={child.stdout}\nstderr={child.stderr}"
    assert "STOP preempted 3" in child.stdout

    # A fresh process (this one) resumes from the child's checkpoints
    # and must land exactly where the uninterrupted run does.
    options = AOADMMOptions(
        rank=4, constraints="nonneg", seed=0,
        max_outer_iterations=8, outer_tolerance=0.0,
        executor=executor, threads=2, slab_nnz_target=256)
    resumed = fit_aoadmm(tensor, options, resume_from=ck_path)
    assert resumed.stop_reason == "max_iterations"
    for m, (a, b) in enumerate(zip(reference.model.factors,
                                   resumed.model.factors)):
        np.testing.assert_array_equal(a, b, err_msg=f"mode {m}")
    np.testing.assert_array_equal(reference.trace.errors(),
                                  resumed.trace.errors())


def test_no_shm_leak_after_killed_child(tmp_path):
    """A SIGKILLed process-executor child leaks segments; the sweeper
    (and hence the next pool startup) reclaims them."""
    if not Path("/dev/shm").is_dir():
        pytest.skip("POSIX shm filesystem required")
    marker = tmp_path / "spawned"
    script = f"""
import pathlib, time
import numpy as np
from repro.parallel.shm import ShmArena
arena = ShmArena(tag="chaosleak")
arena.put_group("leak", {{"a": np.zeros(4096)}})
pathlib.Path({str(marker)!r}).write_text("up")
time.sleep(60)
"""
    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
    # New session: the child AND its multiprocessing resource-tracker
    # helper share a process group we can SIGKILL atomically.  Killing
    # only the child would let the tracker unlink the segment for us —
    # the machine-reboot / OOM-killer scenario kills both.
    child = subprocess.Popen([sys.executable, "-c", script], env=env,
                             cwd=REPO_ROOT, start_new_session=True)
    try:
        for _ in range(600):
            if marker.exists():
                break
            time.sleep(0.05)
        else:
            pytest.fail("child never came up")
        os.killpg(child.pid, 9)  # SIGKILL: no cleanup runs anywhere
        child.wait()
        from repro.parallel.shm import (SEGMENT_PREFIX, stale_segment_names,
                                        sweep_stale_segments)
        mine = f"{SEGMENT_PREFIX}{child.pid:x}_"
        stale = [n for n in stale_segment_names() if n.startswith(mine)]
        assert stale, "killed child left no detectable orphan"
        with pytest.warns(RuntimeWarning, match="swept"):
            removed = sweep_stale_segments()
        assert set(stale) <= set(removed)
        assert not [n for n in stale_segment_names()
                    if n.startswith(mine)]
    finally:
        if child.poll() is None:
            try:
                os.killpg(child.pid, 9)
            except ProcessLookupError:
                child.kill()
            child.wait()
