"""Integration tests for the AO-ADMM driver and the baselines."""

import numpy as np
import pytest

from repro import (
    AOADMMOptions,
    CPModel,
    factor_match_score,
    fit_als,
    fit_aoadmm,
)
from repro.baselines import fit_mu, fit_pgd
from repro.constraints import L1, NonNegativeL1, RowSimplex
from repro.tensor import COOTensor, noisy_lowrank_coo
from repro.tensor.dense import dense_from_factors
from repro.tensor.random import lowrank_coo, random_factors


@pytest.fixture(scope="module")
def planted_dense():
    """A fully observed exact low-rank non-negative tensor."""
    factors = random_factors((14, 11, 9), 3, seed=13)
    dense = dense_from_factors(factors)
    return COOTensor.from_dense(dense), factors


@pytest.fixture(scope="module")
def planted_sparse():
    tensor, truth = noisy_lowrank_coo((40, 30, 25), rank=4, nnz=6000,
                                      noise=0.05, seed=21)
    return tensor, truth


class TestRecovery:
    def test_base_recovers_planted_structure(self, planted_dense):
        tensor, truth = planted_dense
        res = fit_aoadmm(tensor, AOADMMOptions(
            rank=3, constraints="nonneg", blocked=False, seed=3,
            max_outer_iterations=300, outer_tolerance=1e-12))
        assert res.relative_error < 1e-3
        assert factor_match_score(res.model, truth) > 0.99

    def test_blocked_recovers_planted_structure(self, planted_dense):
        tensor, truth = planted_dense
        res = fit_aoadmm(tensor, AOADMMOptions(
            rank=3, constraints="nonneg", blocked=True, block_size=4,
            seed=3, max_outer_iterations=300, outer_tolerance=1e-12))
        assert res.relative_error < 1e-3
        assert factor_match_score(res.model, truth) > 0.99

    def test_als_recovers(self, planted_dense):
        tensor, truth = planted_dense
        res = fit_als(tensor, AOADMMOptions(
            rank=3, seed=3, max_outer_iterations=300,
            outer_tolerance=1e-12))
        assert res.relative_error < 1e-3


class TestMonotonicity:
    def test_error_is_nonincreasing_enough(self, planted_sparse):
        """AO guarantees a monotone objective; the inexact inner solves can
        wiggle the relative error by tiny amounts only."""
        tensor, _ = planted_sparse
        res = fit_aoadmm(tensor, AOADMMOptions(
            rank=4, constraints="nonneg", seed=5, max_outer_iterations=30))
        errs = res.trace.errors()
        assert (np.diff(errs) < 1e-3).all()

    def test_constraints_hold_at_solution(self, planted_sparse):
        tensor, _ = planted_sparse
        res = fit_aoadmm(tensor, AOADMMOptions(
            rank=4, constraints="nonneg", seed=5, max_outer_iterations=15))
        for factor in res.model.factors:
            assert (factor >= 0).all()

    def test_simplex_constraint_holds(self, planted_sparse):
        tensor, _ = planted_sparse
        res = fit_aoadmm(tensor, AOADMMOptions(
            rank=4, constraints=["nonneg", RowSimplex(), "nonneg"],
            seed=5, max_outer_iterations=10))
        sums = res.model.factors[1].sum(axis=1)
        np.testing.assert_allclose(sums, 1.0, atol=1e-5)


class TestSparsityInducingRuns:
    def test_l1_produces_sparser_factors(self, planted_sparse):
        tensor, _ = planted_sparse
        base = fit_aoadmm(tensor, AOADMMOptions(
            rank=4, constraints="nonneg", seed=5, max_outer_iterations=20))
        regd = fit_aoadmm(tensor, AOADMMOptions(
            rank=4, constraints=NonNegativeL1(2.0), seed=5,
            max_outer_iterations=20))
        dens_base = np.mean([base.model.factor_density(m) for m in range(3)])
        dens_reg = np.mean([regd.model.factor_density(m) for m in range(3)])
        assert dens_reg < dens_base

    @pytest.mark.parametrize("policy", ["csr", "hybrid", "auto"])
    def test_sparse_repr_policies_agree_with_dense(self, planted_sparse,
                                                   policy):
        tensor, _ = planted_sparse
        common = dict(rank=4, constraints=NonNegativeL1(1.0), seed=5,
                      max_outer_iterations=12, factor_zero_tol=0.0)
        dense = fit_aoadmm(tensor, AOADMMOptions(
            repr_policy="dense", **common))
        other = fit_aoadmm(tensor, AOADMMOptions(
            repr_policy=policy, sparsity_threshold=0.9, **common))
        # Identical math, different storage: traces must agree closely.
        np.testing.assert_allclose(other.trace.errors(),
                                   dense.trace.errors(), rtol=1e-8)


class TestDriverMechanics:
    def test_deterministic_given_seed(self, planted_sparse):
        tensor, _ = planted_sparse
        opts = AOADMMOptions(rank=3, constraints="nonneg", seed=11,
                             max_outer_iterations=8)
        a = fit_aoadmm(tensor, opts)
        b = fit_aoadmm(tensor, opts)
        for fa, fb in zip(a.model.factors, b.model.factors):
            np.testing.assert_array_equal(fa, fb)

    def test_initial_factors_override(self, planted_sparse):
        tensor, _ = planted_sparse
        init = [np.full((s, 3), 0.5) for s in tensor.shape]
        res = fit_aoadmm(tensor, AOADMMOptions(
            rank=3, max_outer_iterations=3), initial_factors=init)
        assert res.iterations == 3
        # The inputs must not be mutated.
        for f in init:
            np.testing.assert_array_equal(f, 0.5)

    def test_stop_reason_tolerance(self, planted_dense):
        tensor, _ = planted_dense
        res = fit_aoadmm(tensor, AOADMMOptions(
            rank=3, constraints="nonneg", seed=3,
            outer_tolerance=1e-3, max_outer_iterations=200))
        assert res.stop_reason == "tolerance"
        assert res.converged

    def test_trace_bookkeeping(self, planted_sparse):
        tensor, _ = planted_sparse
        res = fit_aoadmm(tensor, AOADMMOptions(
            rank=3, seed=1, max_outer_iterations=5,
            track_block_reports=True))
        assert len(res.trace) == res.iterations
        rec = res.trace.records[0]
        assert rec.mttkrp_seconds > 0
        assert rec.admm_seconds > 0
        assert len(rec.inner_iterations) == 3
        assert rec.block_reports is not None

    def test_rejects_empty_tensor(self):
        empty = COOTensor(np.empty((3, 0), dtype=np.int64), np.empty(0),
                          (3, 3, 3))
        with pytest.raises(ValueError):
            fit_aoadmm(empty)

    def test_blocked_flag_rejects_non_separable(self, planted_sparse):
        from repro.constraints.base import Constraint

        class Coupled(Constraint):
            row_separable = False
            name = "coupled"

            def prox(self, m, s):
                return m

            def penalty(self, m):
                return 0.0

        tensor, _ = planted_sparse
        with pytest.raises(ValueError, match="row separable"):
            fit_aoadmm(tensor, AOADMMOptions(
                rank=3, constraints=Coupled(), blocked=True))


class TestBaselines:
    def test_mu_decreases_error(self, planted_sparse):
        tensor, _ = planted_sparse
        res = fit_mu(tensor, AOADMMOptions(rank=4, seed=7,
                                           max_outer_iterations=25))
        errs = res.trace.errors()
        assert errs[-1] < errs[0]
        for f in res.model.factors:
            assert (f >= 0).all()

    def test_mu_rejects_negative_tensor(self):
        t = COOTensor.from_arrays([np.array([0]), np.array([0])],
                                  np.array([-1.0]), shape=(2, 2))
        with pytest.raises(ValueError):
            fit_mu(t)

    def test_pgd_decreases_error(self, planted_sparse):
        tensor, _ = planted_sparse
        res = fit_pgd(tensor, AOADMMOptions(rank=4, seed=7,
                                            max_outer_iterations=25))
        errs = res.trace.errors()
        assert errs[-1] < errs[0]
        for f in res.model.factors:
            assert (f >= 0).all()

    def test_aoadmm_beats_baselines_per_iteration(self, planted_dense):
        """The paper's premise: AO-ADMM converges faster per iteration."""
        tensor, _ = planted_dense
        iters = 25
        ao = fit_aoadmm(tensor, AOADMMOptions(
            rank=3, constraints="nonneg", seed=9,
            max_outer_iterations=iters, outer_tolerance=0.0))
        mu = fit_mu(tensor, AOADMMOptions(
            rank=3, seed=9, max_outer_iterations=iters, outer_tolerance=0.0))
        assert ao.relative_error < mu.relative_error
