"""Shared fixtures for the test suite.

RNG policy (audited 2026-08): no test may draw from an *unseeded* source.
Everything goes through the seeded ``rng`` / ``make_rng`` fixtures, an
explicit ``np.random.default_rng(<constant>)``, or the spec-replayable
generators in :mod:`repro.testing.strategies`.  The audit found no
module-level ``np.random.*`` calls left; the ``pytest_runtest_setup``
hook below keeps it that way by pinning numpy's legacy global RNG to a
per-test deterministic seed, so any future slip produces the same values
on every run (and under ``-p no:randomly``-style reordering) instead of
process-global nondeterminism.  A hook rather than an autouse fixture so
hypothesis's function-scoped-fixture health check stays quiet.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.tensor import COOTensor, random_coo
from repro.tensor.random import random_factors


def pytest_runtest_setup(item) -> None:
    np.random.seed(zlib.crc32(item.nodeid.encode()))


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for the whole suite."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def make_rng():
    """Factory for independent deterministic generators.

    Use when one test needs several uncorrelated streams:
    ``gen = make_rng(1)`` — same seed root, separated substreams.
    """
    def factory(stream: int = 0) -> np.random.Generator:
        return np.random.default_rng([0xC0FFEE, stream])

    return factory


@pytest.fixture
def small_tensor() -> COOTensor:
    """A 3-mode random tensor used across kernel/solver tests."""
    return random_coo((12, 9, 15), 140, seed=7)


@pytest.fixture
def four_mode_tensor() -> COOTensor:
    """A 4-mode tensor exercising the general CSF paths."""
    return random_coo((6, 5, 7, 4), 120, seed=11)


@pytest.fixture
def small_factors(small_tensor) -> list[np.ndarray]:
    """Dense signed factors matching ``small_tensor``."""
    gen = np.random.default_rng(23)
    return [gen.standard_normal((s, 5)) for s in small_tensor.shape]


@pytest.fixture
def nonneg_factors(small_tensor) -> list[np.ndarray]:
    """Non-negative factors matching ``small_tensor``."""
    return random_factors(small_tensor.shape, 5, seed=29, nonneg=True)
