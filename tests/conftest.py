"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import COOTensor, random_coo
from repro.tensor.random import random_factors


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for the whole suite."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def small_tensor() -> COOTensor:
    """A 3-mode random tensor used across kernel/solver tests."""
    return random_coo((12, 9, 15), 140, seed=7)


@pytest.fixture
def four_mode_tensor() -> COOTensor:
    """A 4-mode tensor exercising the general CSF paths."""
    return random_coo((6, 5, 7, 4), 120, seed=11)


@pytest.fixture
def small_factors(small_tensor) -> list[np.ndarray]:
    """Dense signed factors matching ``small_tensor``."""
    gen = np.random.default_rng(23)
    return [gen.standard_normal((s, 5)) for s in small_tensor.shape]


@pytest.fixture
def nonneg_factors(small_tensor) -> list[np.ndarray]:
    """Non-negative factors matching ``small_tensor``."""
    return random_factors(small_tensor.shape, 5, seed=29, nonneg=True)
