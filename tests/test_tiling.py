"""Slab tiling + kernel workspace: structure, bit-identity, reuse."""

import numpy as np
import pytest

from repro.kernels import MTTKRPEngine
from repro.kernels.dispatch import _CSF_METHOD_CACHE, _csf_for_method
from repro.kernels.mttkrp_csf import (
    mttkrp_csf,
    mttkrp_csf_internal,
    mttkrp_csf_leaf,
    mttkrp_csf_root,
)
from repro.kernels.workspace import BufferPool, KernelWorkspace
from repro.tensor import COOTensor, CSFTensor, random_coo
from repro.tensor.tiling import CSFTiling, nnz_per_root_slice, tile_csf

#: slab_nnz_target extremes the ISSUE asks for: one slab for the whole
#: tree, a paper-ish mid-size, and the finest slicing (one slab per
#: root slice — targets below the slice mass can't split further).
SLAB_TARGETS = (10**9, 23, 1)
THREAD_COUNTS = (1, 4)


def _tensor_with_empty_slices() -> COOTensor:
    """Every mode has empty slices (ids 0 and last never appear)."""
    coords = np.array([
        [1, 1, 3, 3, 5],
        [2, 2, 4, 1, 1],
        [1, 3, 3, 5, 1],
    ])
    vals = np.array([1.5, -2.0, 0.5, 3.0, -1.0])
    return COOTensor(coords, vals, (8, 6, 7))


class TestTilingStructure:
    def test_nnz_per_root_slice(self, small_tensor):
        csf = CSFTensor.from_coo(small_tensor)
        per_slice = nnz_per_root_slice(csf)
        assert per_slice.shape == (csf.nslices,)
        assert per_slice.sum() == csf.nnz
        assert (per_slice >= 1).all()

    def test_slabs_tile_every_level(self, small_tensor):
        csf = CSFTensor.from_coo(small_tensor)
        tiling = CSFTiling(csf, slab_nnz_target=20)
        for level in range(csf.nmodes):
            cursor = 0
            for slab in tiling:
                lo, hi = slab.node_ranges[level]
                assert lo == cursor
                cursor = hi
            assert cursor == csf.nnodes(level)

    def test_slab_trees_are_views_with_rebased_pointers(self, small_tensor):
        csf = CSFTensor.from_coo(small_tensor)
        tiling = CSFTiling(csf, n_slabs=4)
        for slab in tiling:
            tree = slab.tree
            lo, hi = slab.leaf_range
            assert tree.vals.base is csf.vals
            np.testing.assert_array_equal(tree.vals, csf.vals[lo:hi])
            for level in range(csf.nmodes - 1):
                assert tree.fptr[level][0] == 0
                assert tree.fptr[level][-1] == tree.nnodes(level + 1)

    def test_slab_nnz_balances_skew(self):
        # One huge slice + many tiny ones: the heavy slice is isolated
        # into its own slab instead of dragging neighbours along.
        coords = [np.r_[np.zeros(60, dtype=np.int64),
                        np.arange(1, 11, dtype=np.int64)]]
        coords.append(np.r_[np.arange(60, dtype=np.int64) % 9,
                            np.zeros(10, dtype=np.int64)])
        coords.append(np.r_[np.arange(60, dtype=np.int64) % 7,
                            np.ones(10, dtype=np.int64)])
        t = COOTensor(np.stack(coords), np.ones(70), (11, 9, 7))
        csf = CSFTensor.from_coo(t)
        tiling = CSFTiling(csf, n_slabs=4)
        assert tiling.slab_count >= 2
        assert tiling.slabs[0].nnz == nnz_per_root_slice(csf).max()
        assert tiling.slabs[0].root_range == (0, 1)
        assert tiling.slab_nnz.sum() == csf.nnz

    def test_single_and_finest_extremes(self, small_tensor):
        csf = CSFTensor.from_coo(small_tensor)
        assert CSFTiling(csf, slab_nnz_target=10**9).slab_count == 1
        finest = CSFTiling(csf, slab_nnz_target=1)
        # Slabs never split a root slice, so the finest tiling is bounded
        # by the slice count (the balanced partitioner may still merge
        # featherweight slices to even out the masses).
        assert 1 < finest.slab_count <= csf.nslices
        mid = CSFTiling(csf, slab_nnz_target=23)
        assert finest.slab_count >= mid.slab_count

    def test_empty_tensor_has_no_slabs(self):
        empty = COOTensor(np.empty((3, 0), dtype=np.int64), np.empty(0),
                          (4, 5, 6))
        tiling = tile_csf(CSFTensor.from_coo(empty), slab_nnz_target=8)
        assert tiling.slab_count == 0

    def test_bad_target_rejected(self, small_tensor):
        csf = CSFTensor.from_coo(small_tensor)
        with pytest.raises(ValueError):
            CSFTiling(csf, slab_nnz_target=0)


class TestBitIdentity:
    """Tiled results must equal the monolithic kernels bit for bit."""

    @pytest.mark.parametrize("target", SLAB_TARGETS)
    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    def test_three_mode_all_kernels(self, small_tensor, small_factors,
                                    target, threads):
        csf = CSFTensor.from_coo(small_tensor, (0, 1, 2))
        tiling = CSFTiling(csf, slab_nnz_target=target)
        ws = KernelWorkspace(tiling)
        base = [mttkrp_csf_root(csf, small_factors),
                mttkrp_csf_internal(csf, small_factors, 1),
                mttkrp_csf_leaf(csf, small_factors)]
        got = [mttkrp_csf_root(csf, small_factors, tiling=tiling,
                               workspace=ws, threads=threads),
               mttkrp_csf_internal(csf, small_factors, 1, tiling=tiling,
                                   workspace=ws, threads=threads),
               mttkrp_csf_leaf(csf, small_factors, tiling=tiling,
                               workspace=ws, threads=threads)]
        for b, g in zip(base, got):
            np.testing.assert_array_equal(b, g)

    @pytest.mark.parametrize("target", SLAB_TARGETS)
    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    @pytest.mark.parametrize("mode", [0, 1, 2, 3])
    def test_four_mode_every_level(self, four_mode_tensor, rng, target,
                                   threads, mode):
        factors = [rng.standard_normal((s, 3))
                   for s in four_mode_tensor.shape]
        # Root the tree at mode 1 so modes hit root, both internal
        # levels, and the leaf kernel across the parametrization.
        order = (1, 0, 2, 3)
        csf = CSFTensor.from_coo(four_mode_tensor, order)
        tiling = CSFTiling(csf, slab_nnz_target=target)
        ws = KernelWorkspace(tiling)
        base = mttkrp_csf(csf, factors, mode)
        got = mttkrp_csf(csf, factors, mode, tiling=tiling,
                         workspace=ws, threads=threads)
        np.testing.assert_array_equal(base, got)

    @pytest.mark.parametrize("target", SLAB_TARGETS)
    def test_empty_slices_everywhere(self, target):
        t = _tensor_with_empty_slices()
        gen = np.random.default_rng(31)
        factors = [gen.standard_normal((s, 4)) for s in t.shape]
        csf = CSFTensor.from_coo(t, (0, 1, 2))
        tiling = CSFTiling(csf, slab_nnz_target=target)
        ws = KernelWorkspace(tiling)
        for kernel, args in ((mttkrp_csf_root, ()),
                             (mttkrp_csf_internal, (1,)),
                             (mttkrp_csf_leaf, ())):
            base = kernel(csf, factors, *args)
            got = kernel(csf, factors, *args, tiling=tiling,
                         workspace=ws, threads=2)
            np.testing.assert_array_equal(base, got)
            # Empty slices of the target mode must stay exactly zero.
            assert np.array_equal(got[0], np.zeros_like(got[0]))

    def test_empty_tensor_through_tiled_path(self, small_factors):
        empty = COOTensor(np.empty((3, 0), dtype=np.int64), np.empty(0),
                          (12, 9, 15))
        csf = CSFTensor.from_coo(empty)
        tiling = CSFTiling(csf, slab_nnz_target=4)
        ws = KernelWorkspace(tiling)
        out = mttkrp_csf_root(csf, small_factors, tiling=tiling,
                              workspace=ws)
        np.testing.assert_array_equal(out, 0.0)

    def test_matrix_mode_tensor(self, rng):
        t = random_coo((9, 14), 30, seed=3)
        factors = [rng.standard_normal((s, 4)) for s in t.shape]
        csf = CSFTensor.from_coo(t)
        tiling = CSFTiling(csf, slab_nnz_target=5)
        ws = KernelWorkspace(tiling)
        for mode in range(2):
            np.testing.assert_array_equal(
                mttkrp_csf(csf, factors, mode),
                mttkrp_csf(csf, factors, mode, tiling=tiling,
                           workspace=ws, threads=2))

    def test_workspace_tiling_mismatch_rejected(self, small_tensor,
                                                small_factors):
        csf = CSFTensor.from_coo(small_tensor)
        ws = KernelWorkspace(CSFTiling(csf, n_slabs=2))
        other = CSFTiling(csf, n_slabs=3)
        with pytest.raises(ValueError):
            mttkrp_csf_root(csf, small_factors, tiling=other, workspace=ws)


class TestEngineIntegration:
    @pytest.mark.parametrize("target", SLAB_TARGETS)
    @pytest.mark.parametrize("threads", THREAD_COUNTS)
    def test_engine_bit_identical_across_configs(self, small_tensor,
                                                 small_factors, target,
                                                 threads):
        reference = MTTKRPEngine(small_tensor, slab_nnz_target=10**9,
                                 threads=1)
        engine = MTTKRPEngine(small_tensor, slab_nnz_target=target,
                              threads=threads)
        for mode in range(3):
            np.testing.assert_array_equal(
                reference.mttkrp(small_factors, mode).copy(),
                engine.mttkrp(small_factors, mode))

    @pytest.mark.parametrize("allocation", ["all", "one"])
    def test_zero_allocations_after_warmup(self, small_tensor,
                                           small_factors, allocation):
        engine = MTTKRPEngine(small_tensor, csf_allocation=allocation,
                              slab_nnz_target=20, threads=2)
        for mode in range(3):  # warm-up sweep
            engine.mttkrp(small_factors, mode)
        assert engine.workspace_bytes() > 0
        for mode in range(3):  # steady state
            engine.mttkrp(small_factors, mode)
        steady = engine.call_log[3:]
        assert all(s.bytes_allocated == 0 for s in steady)
        assert all(s.slab_count >= 1 for s in steady)
        assert all(s.seconds >= 0.0 for s in steady)

    def test_call_stats_record_decomposition(self, small_tensor,
                                             small_factors):
        engine = MTTKRPEngine(small_tensor, slab_nnz_target=20)
        engine.mttkrp(small_factors, 0)
        entry = engine.call_log[0]
        assert entry.slab_count == engine.tiling(0).slab_count > 1
        assert entry.bytes_allocated > 0  # warm-up call allocates

    def test_output_buffer_reused_per_mode(self, small_tensor,
                                           small_factors):
        engine = MTTKRPEngine(small_tensor, slab_nnz_target=20)
        first = engine.mttkrp(small_factors, 0)
        second = engine.mttkrp(small_factors, 0)
        assert first is second  # pooled output: same buffer, fresh values


class TestWorkspaceInternals:
    def test_buffer_pool_hits_and_reallocation(self):
        pool = BufferPool()
        a = pool.take("x", (4, 3))
        b = pool.take("x", (4, 3))
        assert a is b
        assert pool.allocations == 1 and pool.hits == 1
        c = pool.take("x", (5, 3))  # shape change (e.g. new rank)
        assert c is not a
        assert pool.allocations == 2

    def test_child_counts_and_expand_indices_cached(self, small_tensor):
        csf = CSFTensor.from_coo(small_tensor)
        ws = KernelWorkspace(CSFTiling(csf, n_slabs=2))
        counts = ws.child_counts(0, 0)
        tree = ws.tiling.slabs[0].tree
        np.testing.assert_array_equal(counts, np.diff(tree.fptr[0]))
        assert ws.child_counts(0, 0) is counts
        idx = ws.expand_indices(0, 0)
        np.testing.assert_array_equal(
            idx, np.repeat(np.arange(counts.shape[0]), counts))
        assert ws.expand_indices(0, 0) is idx

    def test_scatter_plan_matches_scatter_add(self, rng):
        from repro.kernels.scatter import scatter_add_rows
        index = rng.integers(0, 6, size=40)
        rows = rng.standard_normal((40, 3))
        csf = CSFTensor.from_coo(random_coo((4, 4, 4), 10, seed=1))
        ws = KernelWorkspace(CSFTiling(csf))
        order, starts, targets = ws.scatter_plan("t", index)
        expected = np.zeros((6, 3))
        scatter_add_rows(expected, index, rows)
        got = np.zeros((6, 3))
        sums = np.add.reduceat(rows[order], starts, axis=0)
        got[targets] += sums
        np.testing.assert_array_equal(expected, got)


class TestCsfMethodMemoization:
    def test_repeated_calls_reuse_tree(self, small_tensor):
        _CSF_METHOD_CACHE.clear()
        first = _csf_for_method(small_tensor, 1)
        again = _csf_for_method(small_tensor, 1)
        assert first is again
        other_mode = _csf_for_method(small_tensor, 2)
        assert other_mode is not first

    def test_cache_bounded(self):
        _CSF_METHOD_CACHE.clear()
        tensors = [random_coo((5, 5, 5), 12, seed=s) for s in range(12)]
        for t in tensors:
            _csf_for_method(t, 0)
        assert len(_CSF_METHOD_CACHE) <= 8

    def test_stale_id_not_served(self, small_tensor):
        # A different tensor object reusing the same id must not hit: the
        # pinned coords/vals identity check guards the (id, mode) key.
        _CSF_METHOD_CACHE.clear()
        _csf_for_method(small_tensor, 0)
        ((key, (coords, vals, _tree)),) = _CSF_METHOD_CACHE.items()
        clone = COOTensor(small_tensor.coords.copy(),
                          small_tensor.vals.copy(), small_tensor.shape)
        _CSF_METHOD_CACHE[(id(clone), 0)] = (coords, vals, _tree)
        fresh = _csf_for_method(clone, 0)
        assert fresh is not _tree
