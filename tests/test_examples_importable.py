"""Smoke checks: every example script imports cleanly and exposes main().

Execution is covered manually / by CI jobs with longer budgets; the unit
suite guards against bit-rot (broken imports, renamed API).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    # Register so dataclass/typing machinery inside can resolve the module.
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        assert hasattr(module, "main"), f"{path.name} lacks main()"
        assert callable(module.main)
    finally:
        sys.modules.pop(spec.name, None)


def test_expected_example_set():
    names = {p.stem for p in EXAMPLES}
    required = {"quickstart", "recommender_communities", "sparse_topics",
                "anomaly_detection", "constraints_gallery", "nmf_matrix",
                "scaling_study"}
    assert required <= names
