"""2-mode (matrix) support: the paper's claim that the algorithms apply
equally to matrices — NMF through the identical code path."""

import numpy as np
import pytest

from repro import AOADMMOptions, fit_aoadmm, fit_als
from repro.kernels import mttkrp, mttkrp_coo_reference
from repro.tensor import COOTensor, CSFTensor
from repro.tensor.csf import AllModeCSF
from repro.tensor.random import random_factors


@pytest.fixture
def matrix_tensor(rng):
    dense = np.maximum(rng.standard_normal((25, 18)), 0.0)
    return COOTensor.from_dense(dense)


class TestMatrixKernels:
    def test_csf_of_matrix_is_csr_like(self, matrix_tensor):
        csf = CSFTensor.from_coo(matrix_tensor)
        assert csf.nmodes == 2
        assert csf.to_coo() == matrix_tensor

    @pytest.mark.parametrize("mode", [0, 1])
    def test_matrix_mttkrp(self, matrix_tensor, rng, mode):
        factors = [rng.standard_normal((s, 4)) for s in matrix_tensor.shape]
        ref = mttkrp_coo_reference(matrix_tensor, factors, mode)
        got = mttkrp(AllModeCSF(matrix_tensor), factors, mode)
        np.testing.assert_allclose(got, ref, atol=1e-10)
        # MTTKRP of a matrix is just X @ other or X.T @ other.
        dense = matrix_tensor.to_dense()
        direct = (dense @ factors[1]) if mode == 0 else (dense.T @ factors[0])
        np.testing.assert_allclose(got, direct, atol=1e-9)


class TestNMF:
    def test_exact_nmf_recovery(self):
        truth = random_factors((30, 20), 3, seed=5, nonneg=True)
        dense = truth[0] @ truth[1].T
        matrix = COOTensor.from_dense(dense)
        res = fit_aoadmm(matrix, AOADMMOptions(
            rank=3, constraints="nonneg", seed=2,
            max_outer_iterations=400, outer_tolerance=1e-13))
        assert res.relative_error < 1e-3
        for f in res.model.factors:
            assert (f >= 0).all()

    def test_blocked_matrix_factorization(self, matrix_tensor):
        res = fit_aoadmm(matrix_tensor, AOADMMOptions(
            rank=4, constraints="nonneg", blocked=True, block_size=6,
            seed=3, max_outer_iterations=25))
        errs = res.trace.errors()
        assert errs[-1] <= errs[0]

    def test_matrix_als_is_truncated_factorization(self):
        """Unconstrained 2-mode ALS must reach the best rank-k error
        (the truncated SVD bound)."""
        gen = np.random.default_rng(11)
        dense = gen.standard_normal((20, 15))
        matrix = COOTensor.from_dense(dense)
        res = fit_als(matrix, AOADMMOptions(
            rank=5, seed=4, max_outer_iterations=500,
            outer_tolerance=1e-14))
        u, s, vt = np.linalg.svd(dense)
        best = np.sqrt((s[5:] ** 2).sum()) / np.linalg.norm(dense)
        assert res.relative_error <= best * 1.01


class TestDriverStops:
    def test_callback_stop(self, matrix_tensor):
        stops = []

        def stop_after_three(record):
            stops.append(record.iteration)
            return record.iteration >= 3

        res = fit_aoadmm(matrix_tensor, AOADMMOptions(
            rank=3, seed=1, max_outer_iterations=50, outer_tolerance=0.0,
            callback=stop_after_three))
        assert res.stop_reason == "callback"
        assert res.iterations == 3
        assert stops == [1, 2, 3]

    def test_time_budget_stop(self, matrix_tensor):
        # A budget short enough to trip while the error is still falling
        # (before the tolerance criterion could fire).
        res = fit_aoadmm(matrix_tensor, AOADMMOptions(
            rank=3, seed=1, max_outer_iterations=10_000,
            outer_tolerance=0.0, time_budget_seconds=0.05))
        assert res.stop_reason == "time_budget"
        assert res.trace.total_seconds() >= 0.05

    def test_invalid_callback_rejected(self):
        with pytest.raises(ValueError):
            AOADMMOptions(callback="not callable")

    def test_invalid_time_budget_rejected(self):
        with pytest.raises(ValueError):
            AOADMMOptions(time_budget_seconds=0.0)
