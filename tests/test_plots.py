"""ASCII plot and sparkline tests."""

import numpy as np
import pytest

from repro.bench import Series, ascii_plot, sparkline


class TestAsciiPlot:
    def test_renders_all_series_markers(self):
        a = Series.from_arrays("base", [1, 2, 3], [3.0, 2.0, 1.0])
        b = Series.from_arrays("blocked", [1, 2, 3], [3.0, 1.5, 0.5])
        out = ascii_plot([a, b], title="Fig 6")
        assert "Fig 6" in out
        assert "o=base" in out and "x=blocked" in out
        assert "o" in out and "x" in out

    def test_axis_labels(self):
        s = Series.from_arrays("s", [0, 10], [0.0, 5.0])
        out = ascii_plot([s], x_name="seconds", y_name="error")
        assert "[seconds]" in out and "y=error" in out
        assert "5" in out  # y max printed

    def test_log_x(self):
        s = Series.from_arrays("s", [1, 10, 100, 1000], [1, 2, 3, 4])
        out = ascii_plot([s], logx=True)
        assert "1000" in out

    def test_empty(self):
        assert "(no data)" in ascii_plot([])
        empty = Series.from_arrays("e", [], [])
        assert "(no data)" in ascii_plot([empty])

    def test_constant_series(self):
        s = Series.from_arrays("c", [1, 2], [5.0, 5.0])
        out = ascii_plot([s])
        assert "o" in out  # rendered without division errors

    def test_too_small_area_rejected(self):
        s = Series.from_arrays("s", [1], [1.0])
        with pytest.raises(ValueError):
            ascii_plot([s], width=4, height=2)


class TestSparkline:
    def test_monotone_ramp(self):
        out = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert out[0] == "▁" and out[-1] == "█"
        assert len(out) == 8

    def test_downsampling(self):
        out = sparkline(np.linspace(0, 1, 500), width=40)
        assert len(out) == 40

    def test_constant(self):
        assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""
