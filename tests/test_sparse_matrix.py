"""Unit tests for the CSR and hybrid factor representations."""

import numpy as np
import pytest

from repro.sparse import (
    CSRMatrix,
    HybridFactor,
    choose_representation,
    column_densities,
    dense_column_mask,
    density,
    should_sparsify,
)


def make_sparse_matrix(rng, shape=(20, 8), density_target=0.25):
    mat = rng.standard_normal(shape)
    mask = rng.uniform(size=shape) > density_target
    mat[mask] = 0.0
    return mat


class TestCSRMatrix:
    def test_round_trip(self, rng):
        mat = make_sparse_matrix(rng)
        csr = CSRMatrix.from_dense(mat)
        np.testing.assert_allclose(csr.to_dense(), mat)

    def test_scipy_interop(self, rng):
        mat = make_sparse_matrix(rng)
        ours = CSRMatrix.from_dense(mat)
        theirs = CSRMatrix.from_scipy(ours.to_scipy())
        np.testing.assert_allclose(theirs.to_dense(), mat)

    def test_nnz_and_density(self):
        mat = np.array([[1.0, 0.0], [0.0, 0.0]])
        csr = CSRMatrix.from_dense(mat)
        assert csr.nnz == 1
        assert csr.density == pytest.approx(0.25)

    def test_tolerance_drops_small(self):
        mat = np.array([[1e-12, 1.0]])
        assert CSRMatrix.from_dense(mat, tol=1e-9).nnz == 1

    def test_row_nnz(self, rng):
        mat = make_sparse_matrix(rng)
        csr = CSRMatrix.from_dense(mat)
        np.testing.assert_array_equal(csr.row_nnz(),
                                      (mat != 0).sum(axis=1))

    def test_gather_scale_rows(self, rng):
        mat = make_sparse_matrix(rng)
        csr = CSRMatrix.from_dense(mat)
        idx = rng.integers(0, mat.shape[0], size=50)
        scale = rng.standard_normal(50)
        np.testing.assert_allclose(
            csr.gather_scale_rows(idx, scale), mat[idx] * scale[:, None],
            atol=1e-12)

    def test_gather_with_empty_rows(self):
        mat = np.zeros((4, 3))
        mat[2] = [1.0, 0.0, 2.0]
        csr = CSRMatrix.from_dense(mat)
        idx = np.array([0, 2, 1, 2, 3])
        scale = np.array([1.0, 2.0, 3.0, 0.5, 1.0])
        np.testing.assert_allclose(
            csr.gather_scale_rows(idx, scale), mat[idx] * scale[:, None])

    def test_gather_all_empty(self):
        csr = CSRMatrix.from_dense(np.zeros((3, 2)))
        out = csr.gather_scale_rows(np.array([0, 1]), np.array([1.0, 1.0]))
        np.testing.assert_array_equal(out, 0.0)

    def test_gathered_nnz(self, rng):
        mat = make_sparse_matrix(rng)
        csr = CSRMatrix.from_dense(mat)
        idx = rng.integers(0, mat.shape[0], size=30)
        assert csr.gathered_nnz(idx) == int((mat[idx] != 0).sum())

    def test_invalid_structure_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.array([0, 1]), np.array([0, 1]),
                      np.array([1.0, 2.0]), (1, 3))

    def test_storage_bytes(self, rng):
        mat = make_sparse_matrix(rng)
        csr = CSRMatrix.from_dense(mat)
        assert csr.storage_bytes() == (csr.indptr.nbytes
                                       + csr.indices.nbytes
                                       + csr.data.nbytes)


class TestHybridFactor:
    def test_round_trip(self, rng):
        mat = make_sparse_matrix(rng, (30, 10))
        # Make two columns clearly dense.
        mat[:, 0] = rng.standard_normal(30) + 2.0
        mat[:, 4] = rng.standard_normal(30) + 2.0
        hybrid = HybridFactor(mat)
        assert hybrid.n_dense_cols >= 2
        np.testing.assert_allclose(hybrid.to_dense(), mat)

    def test_gather_matches_dense(self, rng):
        mat = make_sparse_matrix(rng, (25, 6))
        mat[:, 1] = 1.0
        hybrid = HybridFactor(mat)
        idx = rng.integers(0, 25, size=40)
        scale = rng.standard_normal(40)
        np.testing.assert_allclose(
            hybrid.gather_scale_rows(idx, scale),
            mat[idx] * scale[:, None], atol=1e-12)

    def test_dense_columns_sorted_first(self, rng):
        mat = np.zeros((10, 4))
        mat[:, 2] = 1.0  # only column 2 is dense
        mat[0, 0] = 1.0
        hybrid = HybridFactor(mat)
        assert hybrid.n_dense_cols == 1
        assert hybrid.perm[0] == 2

    def test_all_zero_matrix(self):
        hybrid = HybridFactor(np.zeros((5, 3)))
        np.testing.assert_array_equal(hybrid.to_dense(), 0.0)

    def test_gathered_nnz_counts_dense_prefix_fully(self, rng):
        mat = make_sparse_matrix(rng, (20, 5))
        mat[:, 0] = 1.0
        hybrid = HybridFactor(mat)
        idx = np.arange(20)
        assert hybrid.gathered_nnz(idx) >= 20 * hybrid.n_dense_cols


class TestAnalysis:
    def test_density(self):
        assert density(np.array([[1.0, 0.0], [0.0, 0.0]])) == 0.25
        assert density(np.empty((0, 3))) == 0.0

    def test_column_densities(self):
        mat = np.array([[1.0, 0.0], [1.0, 0.0]])
        np.testing.assert_allclose(column_densities(mat), [1.0, 0.0])

    def test_dense_column_mask_above_average(self):
        mat = np.zeros((10, 3))
        mat[:, 0] = 1.0
        mat[0, 1] = 1.0
        mask = dense_column_mask(mat)
        assert mask[0] and not mask[1] and not mask[2]

    def test_should_sparsify_threshold(self):
        mat = np.zeros((10, 10))
        mat[0, :] = 1.0  # 10% dense
        assert should_sparsify(mat, threshold=0.2)
        assert not should_sparsify(mat, threshold=0.05)

    def test_choose_representation_dense_matrix(self, rng):
        assert choose_representation(rng.standard_normal((10, 4))) == "dense"

    def test_choose_representation_skewed_goes_hybrid(self):
        mat = np.zeros((100, 10))
        mat[:, 0] = 1.0  # one dense column holds most mass
        mat[:5, 1:] = 0.5
        assert choose_representation(mat) == "hybrid"

    def test_choose_representation_uniform_sparse_goes_csr(self, rng):
        mat = (rng.uniform(size=(100, 10)) < 0.05).astype(float)
        assert choose_representation(mat) in ("csr", "hybrid")
        assert choose_representation(mat, allow_hybrid=False) == "csr"

    def test_choose_representation_zero_matrix(self):
        assert choose_representation(np.zeros((5, 5))) == "csr"
