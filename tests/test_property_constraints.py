"""Property-based tests for proximity operators.

Every prox must satisfy the defining variational inequality consequences:
projections are idempotent and nonexpansive; prox of a convex penalty is
firmly nonexpansive; outputs are feasible for indicator constraints.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.constraints import (
    Box,
    L1,
    L2Squared,
    NonNegative,
    NonNegativeL1,
    RowNormBall,
    RowSimplex,
    available_constraints,
    make_constraint,
    project_rows_simplex,
)

pytestmark = pytest.mark.property

matrices = hnp.arrays(
    np.float64,
    st.tuples(st.integers(1, 12), st.integers(1, 6)),
    elements=st.floats(-50, 50, allow_nan=False, width=64),
)

steps = st.floats(1e-3, 1e3)

PROJECTIONS = [NonNegative(), Box(-1.0, 2.0), RowSimplex(),
               RowNormBall(1.5)]
ALL = PROJECTIONS + [L1(0.3), NonNegativeL1(0.3), L2Squared(0.2)]


@settings(max_examples=50, deadline=None)
@given(matrices, steps)
def test_projections_idempotent(v, step):
    for c in PROJECTIONS:
        once = c.prox(v.copy(), step)
        twice = c.prox(once.copy(), step)
        np.testing.assert_allclose(twice, once, atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(matrices, steps)
def test_projection_outputs_feasible(v, step):
    for c in PROJECTIONS:
        out = c.prox(v.copy(), step)
        assert c.is_feasible(out, atol=1e-7), c.name


@settings(max_examples=40, deadline=None)
@given(matrices, matrices, steps)
def test_prox_nonexpansive(u, v, step):
    """||prox(u) - prox(v)|| <= ||u - v|| for any convex penalty."""
    if u.shape != v.shape:
        return
    for c in ALL:
        pu = c.prox(u.copy(), step)
        pv = c.prox(v.copy(), step)
        assert (np.linalg.norm(pu - pv)
                <= np.linalg.norm(u - v) + 1e-8), c.name


@settings(max_examples=50, deadline=None)
@given(matrices, steps)
def test_prox_decreases_objective_vs_input(v, step):
    """prox output is at least as good as the input point itself."""
    for c in ALL:
        out = c.prox(v.copy(), step)
        obj_out = c.penalty(out) + np.sum((out - v) ** 2) / (2 * step)
        obj_in = c.penalty(v)
        if np.isfinite(obj_in):
            assert obj_out <= obj_in + 1e-7, c.name


@settings(max_examples=50, deadline=None)
@given(matrices)
def test_simplex_projection_properties(v):
    out = project_rows_simplex(v)
    assert (out >= -1e-12).all()
    np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-8)
    # Projection of a feasible point is itself.
    np.testing.assert_allclose(project_rows_simplex(out), out, atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(matrices, steps)
def test_l1_shrinks_magnitudes(v, step):
    out = L1(0.5).prox(v.copy(), step)
    assert (np.abs(out) <= np.abs(v) + 1e-12).all()
    assert (np.sign(out) * np.sign(v) >= 0).all()


@settings(max_examples=20, deadline=None)
@given(st.sampled_from(sorted(available_constraints())), matrices, steps)
def test_registry_constraints_prox_shape_stable(name, v, step):
    c = make_constraint(name)
    out = c.prox(v.copy(), step)
    assert out.shape == v.shape
    assert np.isfinite(out).all()
