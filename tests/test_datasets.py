"""Dataset generator, registry, power-law, and loader tests."""

import numpy as np
import pytest

from repro.datasets import (
    DATASETS,
    clear_cache,
    compressed_zipf_counts,
    dataset_names,
    distinct_values_estimate,
    generate_dataset,
    get_spec,
    load_dataset,
    zipf_expected_counts,
    zipf_weights,
)
from repro.tensor.stats import compute_stats, gini


class TestPowerlaw:
    def test_zipf_weights_normalized_and_decreasing(self):
        w = zipf_weights(100, 1.1)
        assert w.sum() == pytest.approx(1.0)
        assert (np.diff(w) < 0).all()

    def test_zero_exponent_uniform(self):
        w = zipf_weights(10, 0.0)
        np.testing.assert_allclose(w, 0.1)

    def test_expected_counts_total(self):
        counts = zipf_expected_counts(50, 1000.0, 1.2)
        assert counts.sum() == pytest.approx(1000.0)

    def test_compressed_counts_preserve_mass(self):
        counts, mult = compressed_zipf_counts(1_000_000, 5e7, 1.1,
                                              max_items=1000)
        assert len(counts) <= 1000
        assert (counts * mult).sum() == pytest.approx(5e7, rel=1e-9)
        assert mult.sum() == 1_000_000

    def test_compressed_small_n_is_exact(self):
        counts, mult = compressed_zipf_counts(100, 1e4, 1.0, max_items=1000)
        assert len(counts) == 100
        assert (mult == 1).all()

    def test_compressed_head_is_exact(self):
        exact = zipf_expected_counts(10_000, 1e6, 1.3)
        counts, mult = compressed_zipf_counts(10_000, 1e6, 1.3,
                                              max_items=200)
        np.testing.assert_allclose(counts[:100], exact[:100], rtol=1e-12)

    def test_distinct_values_estimate_limits(self):
        # Few draws from a huge universe: nearly all distinct.
        assert distinct_values_estimate(10.0, 1e9) == pytest.approx(
            10.0, rel=1e-6)
        # Many draws from a small universe: saturates at the universe.
        assert distinct_values_estimate(1e9, 100.0) == pytest.approx(100.0)


class TestRegistry:
    def test_table1_shapes(self):
        """Specs must carry the paper's Table I numbers."""
        assert get_spec("reddit").full_nnz == 95_000_000
        assert get_spec("nell").full_shape == (3_000_000, 2_000_000,
                                               25_000_000)
        assert get_spec("amazon").full_nnz == 1_700_000_000
        assert get_spec("patents").full_shape[0] == 46

    def test_all_datasets_have_presets(self):
        for name in dataset_names():
            spec = get_spec(name)
            for preset in ("tiny", "small", "medium"):
                scale = spec.preset(preset)
                assert len(scale.shape) == 3
                assert scale.nnz > 0

    def test_unknown_lookups(self):
        with pytest.raises(ValueError):
            get_spec("bogus")
        with pytest.raises(ValueError):
            get_spec("reddit").preset("huge")


class TestGeneration:
    @pytest.mark.parametrize("name", ["reddit", "nell", "amazon", "patents"])
    def test_tiny_generation_properties(self, name):
        tensor, truth = generate_dataset(name, "tiny", seed=1)
        spec = get_spec(name)
        assert tensor.shape == spec.preset("tiny").shape
        assert tensor.nnz > 0
        assert (tensor.vals > 0).all()
        assert len(truth) == 3
        assert truth[0].shape[1] == spec.planted_rank

    def test_deterministic(self):
        a, _ = generate_dataset("reddit", "tiny", seed=5)
        b, _ = generate_dataset("reddit", "tiny", seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a, _ = generate_dataset("reddit", "tiny", seed=5)
        b, _ = generate_dataset("reddit", "tiny", seed=6)
        assert not (a == b)

    def test_skew_is_present(self):
        """Slice non-zero distributions must be heavy-tailed (Gini high)."""
        tensor, _ = generate_dataset("reddit", "tiny", seed=1)
        stats = compute_stats(tensor, with_fibers=False)
        assert max(stats.slice_skew) > 0.4

    def test_patents_first_mode_near_uniform(self):
        tensor, _ = generate_dataset("patents", "tiny", seed=1)
        counts = tensor.mode_slice_counts(0)
        assert gini(counts[counts > 0]) < 0.3

    def test_unstructured_energy_floor(self):
        """The generated tensor must not be exactly low-rank."""
        from repro import AOADMMOptions, fit_aoadmm
        tensor, _ = generate_dataset("nell", "tiny", seed=2)
        res = fit_aoadmm(tensor, AOADMMOptions(
            rank=16, constraints="nonneg", seed=0, max_outer_iterations=15))
        assert res.relative_error > 0.2


class TestLoader:
    def test_memoization(self):
        clear_cache()
        a, _ = load_dataset("reddit", "tiny", seed=3)
        b, _ = load_dataset("reddit", "tiny", seed=3)
        assert a is b
        clear_cache()
        c, _ = load_dataset("reddit", "tiny", seed=3)
        assert c is not a and c == a

    def test_disk_cache(self, tmp_path):
        clear_cache()
        a, truth = load_dataset("reddit", "tiny", seed=4,
                                cache_dir=tmp_path)
        assert truth is not None
        clear_cache()
        b, truth2 = load_dataset("reddit", "tiny", seed=4,
                                 cache_dir=tmp_path)
        assert truth2 is None  # came from disk
        assert a == b
        clear_cache()


class TestStats:
    def test_gini_extremes(self):
        assert gini(np.ones(100)) == pytest.approx(0.0, abs=1e-9)
        concentrated = np.zeros(100)
        concentrated[0] = 1000.0
        assert gini(concentrated) > 0.9

    def test_compute_stats_fields(self, small_tensor):
        stats = compute_stats(small_tensor)
        assert stats.nnz == small_tensor.nnz
        assert len(stats.fibers_per_mode) == 3
        assert all(f > 0 for f in stats.fibers_per_mode)
        row = stats.summary_row()
        assert row["NNZ"] == small_tensor.nnz
