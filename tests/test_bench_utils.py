"""Timer, table, and series formatting tests."""

import time

import numpy as np
import pytest

from repro.bench import (
    Series,
    StageTimer,
    Timer,
    format_markdown_table,
    format_series,
    format_table,
)


class TestTimers:
    def test_timer_measures(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.seconds >= 0.009

    def test_timer_accumulates(self):
        t = Timer()
        for _ in range(2):
            with t:
                time.sleep(0.005)
        assert t.seconds >= 0.009

    def test_stage_timer_fractions(self):
        st = StageTimer()
        with st.stage("a"):
            time.sleep(0.01)
        with st.stage("b"):
            time.sleep(0.01)
        fr = st.fractions()
        assert set(fr) == {"a", "b"}
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_stage_timer_empty(self):
        assert StageTimer().fractions() == {}


class TestTables:
    ROWS = [{"name": "reddit", "nnz": 95_000_000, "err": 0.8571},
            {"name": "nell", "nnz": 143_000_000, "err": 0.5449}]

    def test_format_table_alignment(self):
        out = format_table(self.ROWS, title="Table I")
        lines = out.splitlines()
        assert lines[0] == "Table I"
        assert "name" in lines[1] and "nnz" in lines[1]
        assert "reddit" in lines[3]

    def test_format_table_column_selection(self):
        out = format_table(self.ROWS, columns=["name"])
        assert "nnz" not in out

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_markdown_table(self):
        out = format_markdown_table(self.ROWS)
        lines = out.splitlines()
        assert lines[0].startswith("| name ")
        assert lines[1] == "|---|---|---|"


class TestSeries:
    def test_from_arrays_validates(self):
        with pytest.raises(ValueError):
            Series.from_arrays("x", [1, 2], [1])

    def test_downsample_keeps_endpoints(self):
        s = Series.from_arrays("s", np.arange(100), np.arange(100) * 2.0)
        thin = s.downsample(10)
        assert len(thin.x) <= 10
        assert thin.x[0] == 0 and thin.x[-1] == 99

    def test_format_series(self):
        s = Series.from_arrays("blocked", [1, 2], [0.9, 0.8])
        out = format_series([s], title="Fig 6", x_name="iter",
                            y_name="error")
        assert "Fig 6" in out and "blocked" in out and "0.9" in out
