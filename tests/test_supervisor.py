"""The resilient fit supervisor: watchdog, retry, ladder, preemption.

Acceptance contract (ISSUE 7): under each injected fault class — a
worker SIGKILL storm, a stalled iteration, a corrupted latest
checkpoint, simulated shared-memory exhaustion — a supervised fit
completes without caller intervention, its factors bit-identical to the
unfaulted run, with every recovery step visible in ``trace.guard_log``
and the supervisor metrics.
"""

import os
import signal
import subprocess
import sys
import threading
import time
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro import AOADMMOptions, fit, fit_aoadmm
from repro.observability import Observability
from repro.parallel.executor import ProcessExecutor
from repro.parallel.shm import (
    SEGMENT_PREFIX,
    ShmAllocationError,
    stale_segment_names,
    sweep_stale_segments,
)
from repro.robustness import (
    Backoff,
    CheckpointStore,
    CheckpointUnavailable,
    Deadline,
    FaultInjector,
    FaultSpec,
    FitStalled,
    FitSupervisor,
    NumericalFaultError,
    RetryBudgetExceeded,
    RetryPolicy,
    SupervisorOptions,
    Watchdog,
    WorkerKillPlan,
    resolve_resume,
    supervise_fit,
)
from repro.robustness.checkpoint import QUARANTINE_SUFFIX
from repro.tensor import noisy_lowrank_coo


@pytest.fixture(scope="module")
def tensor():
    t, _ = noisy_lowrank_coo((30, 25, 20), rank=4, nnz=2000, seed=0)
    return t


def make_options(**kw):
    base = dict(rank=4, constraints="nonneg", seed=0,
                max_outer_iterations=8, outer_tolerance=0.0)
    base.update(kw)
    return AOADMMOptions(**base)


def fast_supervisor(**kw):
    """Supervisor options with no real sleeping between attempts."""
    base = dict(backoff=Backoff(initial=0.0, multiplier=1.0, max_delay=0.0),
                min_stall_seconds=2.0, install_signal_handlers=False)
    base.update(kw)
    return SupervisorOptions(**base)


@pytest.fixture(scope="module")
def reference(tensor):
    """The unfaulted run every recovery must reproduce bit-for-bit."""
    return fit_aoadmm(tensor, make_options())


def assert_identical(reference, result):
    for m, (a, b) in enumerate(zip(reference.model.factors,
                                   result.model.factors)):
        np.testing.assert_array_equal(a, b, err_msg=f"mode {m}")
    np.testing.assert_array_equal(reference.trace.errors(),
                                  result.trace.errors())


# ----------------------------------------------------------------------
# Retry primitives
# ----------------------------------------------------------------------

class TestBackoff:
    def test_schedule_doubles_and_caps(self):
        b = Backoff(initial=0.1, multiplier=2.0, max_delay=0.5)
        assert list(b.delays(5)) == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_validation(self):
        with pytest.raises(ValueError):
            Backoff(initial=-1.0)
        with pytest.raises(ValueError):
            Backoff(multiplier=0.5)
        with pytest.raises(ValueError):
            Backoff(initial=2.0, max_delay=1.0)


class TestDeadline:
    def test_counts_down_on_injected_clock(self):
        now = [0.0]
        d = Deadline(10.0, clock=lambda: now[0])
        assert d.remaining() == 10.0 and not d.expired
        now[0] = 4.0
        assert d.remaining() == pytest.approx(6.0)
        assert d.clamp(100.0) == pytest.approx(6.0)
        now[0] = 11.0
        assert d.expired and d.remaining() == 0.0

    def test_unbounded(self):
        d = Deadline(None)
        assert d.remaining() == float("inf") and not d.expired


class TestRetryPolicy:
    def test_transient_failure_retried_to_success(self):
        slept = []
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=5, backoff=Backoff(initial=0.1),
                             sleep=slept.append)
        assert policy.call(flaky) == "ok"
        assert len(calls) == 3
        assert slept == pytest.approx([0.1, 0.2])

    def test_non_transient_propagates_immediately(self):
        calls = []

        def poisoned():
            calls.append(1)
            raise ValueError("not transient")

        policy = RetryPolicy(max_attempts=5, sleep=lambda _s: None)
        with pytest.raises(ValueError):
            policy.call(poisoned)
        assert len(calls) == 1

    def test_budget_exhaustion_chains_last_failure(self):
        def always():
            raise OSError("still broken")

        policy = RetryPolicy(max_attempts=3, sleep=lambda _s: None)
        with pytest.raises(RetryBudgetExceeded) as excinfo:
            policy.call(always)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_on_retry_called_per_failure(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise MemoryError("pressure")
            return 42

        policy = RetryPolicy(max_attempts=4, sleep=lambda _s: None)
        assert policy.call(flaky, on_retry=lambda a, e: seen.append(a)) == 42
        assert seen == [1, 2]


# ----------------------------------------------------------------------
# Watchdog
# ----------------------------------------------------------------------

class TestWatchdog:
    def test_moving_estimate_and_deadline(self):
        now = [0.0]
        wd = Watchdog(stall_factor=4.0, min_deadline_seconds=0.001,
                      window=3, clock=lambda: now[0])
        assert wd.estimate() is None
        assert wd.deadline_seconds() == 0.001
        for t in (1.0, 2.0, 3.0, 5.0):
            now[0] = t
            wd.beat()
        # Intervals 1, 1, 2 -> window keeps all three, mean 4/3.
        assert wd.estimate() == pytest.approx(4.0 / 3.0)
        assert wd.deadline_seconds() == pytest.approx(16.0 / 3.0)

    def test_on_stall_fires_without_heartbeats(self):
        stalled = threading.Event()
        wd = Watchdog(min_deadline_seconds=0.05, poll_seconds=0.01,
                      on_stall=lambda _elapsed: stalled.set())
        wd.start()
        try:
            assert stalled.wait(timeout=5.0)
            assert wd.stalled and wd.stall_overshoot >= 0.0
        finally:
            wd.stop()

    def test_heartbeats_keep_it_quiet(self):
        wd = Watchdog(min_deadline_seconds=0.2, poll_seconds=0.01,
                      on_stall=lambda _e: pytest.fail("false positive"))
        with wd:
            for _ in range(5):
                time.sleep(0.02)
                wd.beat()
        assert not wd.stalled

    def test_async_injection_interrupts_target_thread(self):
        caught = []

        def victim():
            try:
                while True:
                    time.sleep(0.01)
            except FitStalled:
                caught.append(True)

        thread = threading.Thread(target=victim)
        thread.start()
        wd = Watchdog(min_deadline_seconds=0.05, poll_seconds=0.01)
        wd.start(target_thread_id=thread.ident)
        thread.join(timeout=5.0)
        wd.stop()
        assert caught == [True]


# ----------------------------------------------------------------------
# Checkpoint store: retention, quarantine, fallback
# ----------------------------------------------------------------------

class TestCheckpointStore:
    def test_versioned_layout_and_retention(self, tensor, tmp_path):
        path = tmp_path / "ck.npz"
        opts = make_options(max_outer_iterations=6, checkpoint_every=1,
                            checkpoint_path=str(path),
                            checkpoint_keep_last=2)
        fit_aoadmm(tensor, opts)
        store = CheckpointStore(path, keep_last=2)
        versions = store.versions()
        assert [store._iteration_of(p) for p in versions] == [5, 6]
        assert store.latest_path() == store.version_path(6)
        assert not path.exists()  # versioned layout, no legacy base file

    def test_prune_only_after_new_version_exists(self, tensor, tmp_path):
        # Writing version N+1 must never leave zero checkpoints even if
        # pruning is interrupted: save() orders fsync before prune.
        path = tmp_path / "ck.npz"
        opts = make_options(max_outer_iterations=3, checkpoint_every=1,
                            checkpoint_path=str(path),
                            checkpoint_keep_last=1)
        fit_aoadmm(tensor, opts)
        store = CheckpointStore(path, keep_last=1)
        assert len(store.versions()) == 1

    def test_corrupt_latest_quarantined_and_previous_loads(self, tensor,
                                                          tmp_path):
        path = tmp_path / "ck.npz"
        opts = make_options(max_outer_iterations=4, checkpoint_every=1,
                            checkpoint_path=str(path),
                            checkpoint_keep_last=3)
        fit_aoadmm(tensor, opts)
        store = CheckpointStore(path, keep_last=3)
        latest = store.latest_path()
        latest.write_bytes(b"garbage" * 100)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            checkpoint, loaded_from = store.load_latest()
        assert checkpoint.iteration == 3
        assert loaded_from == store.version_path(3)
        quarantined = latest.with_name(latest.name + QUARANTINE_SUFFIX)
        assert quarantined.exists() and not latest.exists()

    def test_all_corrupt_escalates(self, tensor, tmp_path):
        path = tmp_path / "ck.npz"
        opts = make_options(max_outer_iterations=3, checkpoint_every=2,
                            checkpoint_path=str(path),
                            checkpoint_keep_last=2)
        fit_aoadmm(tensor, opts)
        store = CheckpointStore(path, keep_last=2)
        for p in store.versions():
            p.write_bytes(b"\x00" * 32)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            with pytest.raises(CheckpointUnavailable):
                store.load_latest()

    def test_resolve_resume_finds_versioned_store(self, tensor, tmp_path):
        path = tmp_path / "ck.npz"
        opts = make_options(max_outer_iterations=4, checkpoint_every=2,
                            checkpoint_path=str(path),
                            checkpoint_keep_last=2)
        fit_aoadmm(tensor, opts)
        # The base path does not exist, but versions beside it do.
        checkpoint = resolve_resume(path)
        assert checkpoint.iteration == 4
        with pytest.raises(FileNotFoundError):
            resolve_resume(tmp_path / "nothing.npz")

    def test_resume_from_versioned_store_is_bit_identical(self, tensor,
                                                          reference,
                                                          tmp_path):
        path = tmp_path / "ck.npz"
        opts = make_options(max_outer_iterations=4, checkpoint_every=2,
                            checkpoint_path=str(path),
                            checkpoint_keep_last=2)
        fit_aoadmm(tensor, opts)
        resumed = fit_aoadmm(tensor, make_options(), resume_from=path)
        assert_identical(reference, resumed)


# ----------------------------------------------------------------------
# Supervised fits under injected faults (the acceptance matrix)
# ----------------------------------------------------------------------

class TestSupervisedRecovery:
    def test_clean_run_single_attempt(self, tensor, reference):
        result, report = supervise_fit(tensor, make_options(),
                                       fast_supervisor())
        assert report.attempts == 1 and not report.recovered
        assert_identical(reference, result)

    def test_stalled_iteration_interrupted_and_resumed(self, tensor,
                                                       reference):
        inj = FaultInjector([FaultSpec("stall", iteration=3)])
        result, report = supervise_fit(
            tensor, make_options(fault_injector=inj),
            fast_supervisor(min_stall_seconds=0.5))
        assert report.stalls == 1 and report.attempts == 2
        assert report.resumed_from == [2]
        assert_identical(reference, result)
        kinds = [e.kind for e in result.trace.guard_log
                 if e.site == "supervisor"]
        assert "stall" in kinds and "resume" in kinds

    def test_shm_oom_degrades_and_recovers(self, tensor, reference):
        inj = FaultInjector([FaultSpec("shm_oom", iteration=3)])
        result, report = supervise_fit(
            tensor, make_options(fault_injector=inj), fast_supervisor())
        assert report.attempts == 2
        assert report.degradations  # the ladder stepped
        assert_identical(reference, result)
        assert any(e.kind == "degrade" for e in result.trace.guard_log)

    def test_checkpoint_enospc_retried(self, tensor, reference, tmp_path):
        inj = FaultInjector([FaultSpec("checkpoint_enospc", iteration=2)])
        opts = make_options(fault_injector=inj,
                            checkpoint_every=1,
                            checkpoint_path=str(tmp_path / "ck.npz"))
        result, report = supervise_fit(tensor, opts, fast_supervisor())
        assert report.attempts == 2
        assert_identical(reference, result)

    def test_corrupted_latest_checkpoint_falls_back(self, tensor,
                                                    reference, tmp_path):
        # Iteration 3's checkpoint is silently corrupted after a
        # successful write; the stall at iteration 4 then forces a
        # resume, which must quarantine the corrupt version and fall
        # back to iteration 2's.
        inj = FaultInjector([
            FaultSpec("checkpoint_corrupt", iteration=3),
            FaultSpec("stall", iteration=4),
        ])
        opts = make_options(fault_injector=inj,
                            checkpoint_every=1, checkpoint_keep_last=4,
                            checkpoint_path=str(tmp_path / "ck.npz"))
        with pytest.warns(RuntimeWarning, match="quarantined"):
            result, report = supervise_fit(
                tensor, opts, fast_supervisor(min_stall_seconds=0.5))
        assert report.resumed_from == [2]
        assert report.quarantined
        assert_identical(reference, result)

    def test_worker_kill_storm_completes_bit_identically(self, tensor,
                                                         reference):
        # A relentless SIGKILL storm breaks the pool; the engine's
        # thread fallback (a guard event) keeps the fit going and the
        # supervisor sees a clean completion.
        executor = ProcessExecutor(max_workers=2, respawn_budget=2)
        executor.fault_plan = WorkerKillPlan(at_dispatch=2, kills=2,
                                             relentless=True)
        opts = make_options(executor=executor, slab_nnz_target=256,
                            threads=2)
        try:
            result, report = supervise_fit(tensor, opts, fast_supervisor())
        finally:
            executor.close()
        assert_identical(reference, result)
        assert any(e.kind == "worker_lost" for e in result.trace.guard_log)

    def test_repeated_transients_walk_the_ladder(self, tensor, reference):
        inj = FaultInjector([
            FaultSpec("shm_oom", iteration=2),
            FaultSpec("shm_oom", iteration=4),
        ])
        opts = make_options(fault_injector=inj, executor="process",
                            slab_nnz_target=4096, threads=2)
        result, report = supervise_fit(tensor, opts, fast_supervisor())
        assert report.attempts == 3
        assert report.degradations[0] == "executor process->thread"
        assert report.degradations[1] == "executor thread->serial"
        assert_identical(reference, result)

    def test_non_transient_numerical_fault_propagates(self, tensor):
        inj = FaultInjector([FaultSpec("mttkrp_nan", iteration=2, mode=0)])
        with pytest.raises(NumericalFaultError):
            supervise_fit(tensor, make_options(fault_injector=inj),
                          fast_supervisor())

    def test_budget_exhaustion_raises(self, tensor):
        inj = FaultInjector([FaultSpec("shm_oom", iteration=1, once=False)])
        with pytest.raises(RetryBudgetExceeded) as excinfo:
            supervise_fit(tensor, make_options(fault_injector=inj),
                          fast_supervisor(max_attempts=2, degrade=False))
        assert isinstance(excinfo.value.__cause__, ShmAllocationError)

    def test_metrics_record_recovery(self, tensor):
        inj = FaultInjector([FaultSpec("shm_oom", iteration=2)])
        handle = Observability(enabled=True)
        with handle.activate():
            supervise_fit(tensor, make_options(fault_injector=inj),
                          fast_supervisor())
        counters = handle.snapshot()["counters"]
        kinds = {key for key in counters if "supervisor_events" in key}
        assert any("retry" in k for k in kinds)
        assert any("degrade" in k for k in kinds)


# ----------------------------------------------------------------------
# Graceful preemption
# ----------------------------------------------------------------------

class TestPreemption:
    def test_preempt_flag_stops_with_checkpoint(self, tensor, reference,
                                                tmp_path):
        flag = threading.Event()
        opts = make_options(
            checkpoint_every=1, checkpoint_keep_last=2,
            checkpoint_path=str(tmp_path / "ck.npz"),
            preempt_flag=flag,
            callback=lambda r: (r.iteration == 3 and flag.set()) and False)
        result, report = supervise_fit(tensor, opts, fast_supervisor())
        assert result.stop_reason == "preempted"
        assert report.preempted and len(result.trace) == 3
        resumed = fit_aoadmm(tensor, make_options(),
                             resume_from=tmp_path / "ck.npz")
        assert_identical(reference, resumed)

    def test_sigterm_sets_preempt_flag(self, tensor, tmp_path):
        # In-process SIGTERM: the supervisor's handler (installed in the
        # main thread) must turn the signal into a graceful preemption.
        opts = make_options(
            max_outer_iterations=50,
            checkpoint_every=1, checkpoint_keep_last=2,
            checkpoint_path=str(tmp_path / "ck.npz"),
            callback=lambda r: (r.iteration == 2
                                and os.kill(os.getpid(), signal.SIGTERM))
            and False)
        previous = signal.getsignal(signal.SIGTERM)
        result, report = supervise_fit(
            tensor, opts, fast_supervisor(install_signal_handlers=True))
        assert result.stop_reason == "preempted"
        assert report.preempted
        assert signal.getsignal(signal.SIGTERM) is previous  # restored


# ----------------------------------------------------------------------
# fit(..., supervise=...) front door
# ----------------------------------------------------------------------

class TestFitSupervise:
    def test_supervise_true_reports(self, tensor, reference):
        result = fit(tensor, options=make_options(),
                     supervise=fast_supervisor())
        assert result.supervisor is not None
        assert result.supervisor.attempts == 1
        assert_identical(reference, result.raw)

    def test_supervised_recovery_through_fit(self, tensor, reference):
        inj = FaultInjector([FaultSpec("shm_oom", iteration=3)])
        result = fit(tensor, options=make_options(fault_injector=inj),
                     supervise=fast_supervisor(), observe=True)
        assert result.supervisor.recovered
        assert_identical(reference, result.raw)
        assert any("supervisor_events" in k
                   for k in result.metrics["counters"])

    def test_supervise_requires_aoadmm(self, tensor):
        with pytest.raises(ValueError, match="supervise"):
            fit(tensor, rank=4, method="als", supervise=True)

    def test_unsupervised_result_has_no_report(self, tensor):
        result = fit(tensor, options=make_options())
        assert result.supervisor is None


# ----------------------------------------------------------------------
# Stale shared-memory sweeper
# ----------------------------------------------------------------------

@pytest.mark.skipif(not Path("/dev/shm").is_dir(),
                    reason="POSIX shm filesystem required")
class TestShmSweeper:
    def _make_orphan(self, pid: int, token: str) -> Path:
        name = f"{SEGMENT_PREFIX}{pid:x}_{token}_1"
        path = Path("/dev/shm") / name
        path.write_bytes(b"\x00" * 64)
        return path

    def test_orphans_of_dead_processes_swept(self):
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait()
        orphan = self._make_orphan(child.pid, "deadbeef")
        live = self._make_orphan(os.getpid(), "cafe")
        try:
            assert orphan.name in stale_segment_names()
            assert live.name not in stale_segment_names()
            with pytest.warns(RuntimeWarning, match="swept 1 orphaned"):
                removed = sweep_stale_segments()
            assert orphan.name in removed
            assert not orphan.exists()
            assert live.exists()  # our own segment is never touched
        finally:
            for p in (orphan, live):
                if p.exists():
                    p.unlink()

    def test_cli_sweep(self):
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait()
        orphan = self._make_orphan(child.pid, "feedface")
        try:
            out = subprocess.run(
                [sys.executable, "-m", "repro.parallel", "--sweep-shm"],
                capture_output=True, text=True, check=True,
                env={**os.environ, "PYTHONPATH": "src"},
                cwd=Path(__file__).resolve().parent.parent)
            assert "removed" in out.stdout
            assert not orphan.exists()
        finally:
            if orphan.exists():
                orphan.unlink()

    def test_sweep_noop_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            sweep_stale_segments()  # nothing stale: must not warn
