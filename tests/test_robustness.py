"""Fault injection, numerical guards, checkpoint/resume, and failover.

Every fault class the harness can inject is proven to be detected and
handled per the configured policy — no injected NaN ever reaches a
returned model silently — and a checkpointed run is proven to resume
bit-identically against an uninterrupted reference run.
"""

import numpy as np
import pytest

from repro import AOADMMOptions, fit_aoadmm
from repro.distributed.comm import WorkerFailure
from repro.distributed.daoadmm import fit_aoadmm_distributed
from repro.robustness import (
    Checkpoint,
    FaultInjector,
    FaultSpec,
    GuardEvent,
    HealthMonitor,
    NumericalFaultError,
    WorkerFault,
    WorkerFaultPlan,
    load_checkpoint,
    save_checkpoint,
)
from repro.robustness.checkpoint import options_fingerprint
from repro.tensor import noisy_lowrank_coo


@pytest.fixture(scope="module")
def tensor():
    t, _ = noisy_lowrank_coo((30, 25, 20), rank=4, nnz=2000, seed=0)
    return t


def make_options(**kw):
    base = dict(rank=4, constraints="nonneg", seed=0,
                max_outer_iterations=10, outer_tolerance=0.0)
    base.update(kw)
    return AOADMMOptions(**base)


# ----------------------------------------------------------------------
# Numerical guards vs injected faults
# ----------------------------------------------------------------------

class TestGuardPolicies:
    def test_mttkrp_nan_raises_by_default(self, tensor):
        inj = FaultInjector([FaultSpec("mttkrp_nan", iteration=3, mode=1)])
        with pytest.raises(NumericalFaultError) as excinfo:
            fit_aoadmm(tensor, make_options(fault_injector=inj))
        event = excinfo.value.event
        assert event.site == "mttkrp"
        assert event.iteration == 3 and event.mode == 1
        assert inj.injected  # the fault really fired

    def test_mttkrp_nan_rollback_restores_best(self, tensor):
        inj = FaultInjector([FaultSpec("mttkrp_nan", iteration=3, mode=1)])
        result = fit_aoadmm(tensor, make_options(
            guard_policy="rollback", fault_injector=inj))
        assert result.stop_reason == "rollback"
        assert result.iterations == 2  # iterations before the fault
        assert all(np.isfinite(f).all() for f in result.model.factors)
        assert len(result.trace.guard_log) == 1
        assert result.trace.guard_log[0].action == "rollback"

    def test_mttkrp_nan_repair_continues(self, tensor):
        inj = FaultInjector([FaultSpec("mttkrp_nan", iteration=3, mode=1)])
        result = fit_aoadmm(tensor, make_options(
            guard_policy="repair", fault_injector=inj))
        assert result.stop_reason == "max_iterations"
        assert all(np.isfinite(f).all() for f in result.model.factors)
        events = result.trace.guard_events()
        assert [e.action for e in events] == ["repair"]
        assert result.trace.records[2].guard_events == (events[0],)

    def test_indefinite_gram_survives_via_jitter(self, tensor):
        """An indefinite Gram is repaired by Cholesky jitter escalation,
        and the jitter shows up in the trace (satellite 4)."""
        inj = FaultInjector([
            FaultSpec("indefinite_gram", iteration=2, mode=0)])
        result = fit_aoadmm(tensor, make_options(
            max_outer_iterations=5, fault_injector=inj))
        assert result.iterations >= 2  # the run survived the bad Gram
        assert result.trace.total_jitter() > 0.0
        assert result.trace.records[1].total_jitter > 0.0
        assert result.trace.records[0].total_jitter == 0.0
        assert all(np.isfinite(f).all() for f in result.model.factors)

    def test_divergence_rollback(self, tensor):
        inj = FaultInjector([
            FaultSpec("diverge_error", iteration=3, once=False)])
        result = fit_aoadmm(tensor, make_options(
            max_outer_iterations=20, guard_policy="rollback",
            divergence_patience=1, fault_injector=inj))
        assert result.stop_reason == "diverged"
        # The best (pre-divergence) iterate is returned, not the last.
        assert result.iterations == 2
        healthy = fit_aoadmm(tensor, make_options(max_outer_iterations=2))
        for a, b in zip(result.model.factors, healthy.model.factors):
            np.testing.assert_array_equal(a, b)

    def test_divergence_raises_under_raise_policy(self, tensor):
        inj = FaultInjector([
            FaultSpec("diverge_error", iteration=3, once=False)])
        with pytest.raises(NumericalFaultError, match="divergence"):
            fit_aoadmm(tensor, make_options(
                max_outer_iterations=20, divergence_patience=1,
                fault_injector=inj))

    def test_guard_off_is_allowed_but_explicit(self, tensor):
        """guard_policy='off' runs the loop unguarded (opt-in only)."""
        result = fit_aoadmm(tensor, make_options(
            max_outer_iterations=3, guard_policy="off"))
        assert not result.trace.guard_events()

    def test_no_silent_nan_under_any_guarded_policy(self, tensor):
        """Whatever the (non-off) policy, an injected NaN never reaches
        the returned model."""
        for policy in ("raise", "rollback", "repair"):
            inj = FaultInjector([
                FaultSpec("mttkrp_nan", iteration=2, mode=0)])
            try:
                result = fit_aoadmm(tensor, make_options(
                    max_outer_iterations=4, guard_policy=policy,
                    fault_injector=inj))
            except NumericalFaultError:
                assert policy == "raise"
                continue
            assert all(np.isfinite(f).all() for f in result.model.factors)
            assert np.isfinite(result.trace.errors()).all()

    def test_monitor_validation(self):
        with pytest.raises(ValueError):
            HealthMonitor(policy="bogus")
        with pytest.raises(ValueError):
            HealthMonitor(divergence_patience=0)
        with pytest.raises(ValueError):
            AOADMMOptions(guard_policy="bogus")

    def test_guard_event_round_trip(self):
        event = GuardEvent(iteration=4, kind="nonfinite", site="mttkrp",
                           action="repair", mode=2, detail="1 entry")
        assert GuardEvent.from_dict(event.to_dict()) == event


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------

class TestCheckpointResume:
    @pytest.mark.parametrize("blocked", [True, False])
    def test_kill_and_resume_is_bit_identical(self, tensor, tmp_path,
                                              blocked):
        """Interrupt at iteration 5, resume to 10: the resumed trace and
        model match an uninterrupted 10-iteration run exactly."""
        full = fit_aoadmm(tensor, make_options(blocked=blocked))
        path = tmp_path / "ck.npz"
        partial = fit_aoadmm(tensor, make_options(
            blocked=blocked, max_outer_iterations=5,
            checkpoint_every=5, checkpoint_path=path))
        assert partial.iterations == 5 and path.exists()
        resumed = fit_aoadmm(tensor, make_options(blocked=blocked),
                             resume_from=path)
        np.testing.assert_array_equal(full.trace.errors(),
                                      resumed.trace.errors())
        for a, b in zip(full.model.factors, resumed.model.factors):
            np.testing.assert_array_equal(a, b)
        assert resumed.stop_reason == full.stop_reason

    def test_resume_respects_stopping_rules(self, tensor, tmp_path):
        """A resumed run with the same budget stops immediately."""
        path = tmp_path / "ck.npz"
        fit_aoadmm(tensor, make_options(
            max_outer_iterations=4, checkpoint_every=2,
            checkpoint_path=path))
        resumed = fit_aoadmm(tensor, make_options(max_outer_iterations=4),
                             resume_from=path)
        assert resumed.iterations == 4
        assert resumed.stop_reason == "max_iterations"

    def test_checkpoint_round_trip_fields(self, tensor, tmp_path):
        path = tmp_path / "ck.npz"
        result = fit_aoadmm(tensor, make_options(
            max_outer_iterations=3, checkpoint_every=3,
            checkpoint_path=path))
        checkpoint = load_checkpoint(path)
        assert isinstance(checkpoint, Checkpoint)
        assert checkpoint.iteration == 3
        assert len(checkpoint.primals) == 3
        np.testing.assert_array_equal(checkpoint.trace.errors(),
                                      result.trace.errors())
        assert checkpoint.last_error == result.relative_error
        assert checkpoint.meta["rng"]["seed"] == 0
        for primal, factor in zip(checkpoint.primals,
                                  result.model.factors):
            np.testing.assert_array_equal(primal, factor)

    def test_resume_accepts_loaded_checkpoint(self, tensor, tmp_path):
        path = tmp_path / "ck.npz"
        fit_aoadmm(tensor, make_options(
            max_outer_iterations=5, checkpoint_every=5,
            checkpoint_path=path))
        via_path = fit_aoadmm(tensor, make_options(), resume_from=path)
        via_object = fit_aoadmm(tensor, make_options(),
                                resume_from=load_checkpoint(path))
        np.testing.assert_array_equal(via_path.trace.errors(),
                                      via_object.trace.errors())

    def test_wrong_tensor_rejected(self, tensor, tmp_path):
        path = tmp_path / "ck.npz"
        fit_aoadmm(tensor, make_options(
            max_outer_iterations=2, checkpoint_every=2,
            checkpoint_path=path))
        other, _ = noisy_lowrank_coo((30, 25, 20), rank=4, nnz=2000,
                                     seed=1)
        with pytest.raises(ValueError, match="different tensor"):
            fit_aoadmm(other, make_options(), resume_from=path)

    def test_numeric_option_mismatch_rejected(self, tensor, tmp_path):
        path = tmp_path / "ck.npz"
        fit_aoadmm(tensor, make_options(
            max_outer_iterations=2, checkpoint_every=2,
            checkpoint_path=path))
        with pytest.raises(ValueError, match="rank"):
            fit_aoadmm(tensor, make_options(rank=5), resume_from=path)
        with pytest.raises(ValueError, match="constraints"):
            fit_aoadmm(tensor, make_options(constraints="l1"),
                       resume_from=path)

    def test_stopping_rule_changes_are_allowed(self, tensor):
        """max iterations / tolerance / threads may differ on resume."""
        a = options_fingerprint(make_options())
        b = options_fingerprint(make_options(
            max_outer_iterations=99, outer_tolerance=0.5, threads=4))
        assert a == b

    def test_constraint_spec_forms_fingerprint_identically(self):
        """A CLI-written checkpoint (Constraint instance) must resume
        from library code using the string spec, and vice versa — but
        different constraint parameters must still be distinguished."""
        from repro.constraints import L1, NonNegative
        assert options_fingerprint(make_options(constraints="nonneg")) == \
            options_fingerprint(make_options(constraints=NonNegative()))
        assert options_fingerprint(make_options(constraints=L1(0.1))) != \
            options_fingerprint(make_options(constraints=L1(0.5)))

    def test_cross_spec_resume(self, tensor, tmp_path):
        path = tmp_path / "ck.npz"
        from repro.constraints import NonNegative
        fit_aoadmm(tensor, make_options(
            constraints=NonNegative(), max_outer_iterations=3,
            checkpoint_every=3, checkpoint_path=path))
        resumed = fit_aoadmm(tensor, make_options(
            constraints="nonneg", max_outer_iterations=6),
            resume_from=path)
        assert resumed.iterations == 6

    def test_resume_excludes_initial_factors(self, tensor, tmp_path):
        path = tmp_path / "ck.npz"
        fit_aoadmm(tensor, make_options(
            max_outer_iterations=2, checkpoint_every=2,
            checkpoint_path=path))
        factors = [np.ones((s, 4)) for s in tensor.shape]
        with pytest.raises(ValueError, match="mutually exclusive"):
            fit_aoadmm(tensor, make_options(), resume_from=path,
                       initial_factors=factors)

    def test_corrupted_checkpoint_rejected(self, tensor, tmp_path):
        path = tmp_path / "ck.npz"
        fit_aoadmm(tensor, make_options(
            max_outer_iterations=2, checkpoint_every=2,
            checkpoint_path=path))
        checkpoint = load_checkpoint(path)
        checkpoint.primals[0][0, 0] += 1.0
        save_checkpoint(path, tensor, make_options(),
                        checkpoint.states(), checkpoint.trace)
        # Re-saving honest state still loads; byte-level tampering fails.
        load_checkpoint(path)
        import zipfile
        with zipfile.ZipFile(path) as z:
            names = z.namelist()
        assert any(n.startswith("primal0") for n in names)
        bad = tmp_path / "bad.npz"
        np.savez(bad, primal0=np.ones((2, 2)))
        with pytest.raises(ValueError, match="not a repro state file"):
            load_checkpoint(bad)
        from repro.core.serialize import save_state_npz
        other = save_state_npz(tmp_path / "other.npz",
                               {"x": np.ones(2)}, {"format": "something"})
        with pytest.raises(ValueError, match="not an AO-ADMM checkpoint"):
            load_checkpoint(other)

    def test_checkpoint_every_requires_path(self):
        with pytest.raises(ValueError, match="checkpoint_path"):
            AOADMMOptions(checkpoint_every=5)

    def test_guard_events_survive_checkpoint(self, tensor, tmp_path):
        """Repair events recorded before a checkpoint reappear after it."""
        path = tmp_path / "ck.npz"
        inj = FaultInjector([FaultSpec("mttkrp_nan", iteration=2, mode=0)])
        fit_aoadmm(tensor, make_options(
            max_outer_iterations=4, guard_policy="repair",
            fault_injector=inj, checkpoint_every=4, checkpoint_path=path))
        checkpoint = load_checkpoint(path)
        events = checkpoint.trace.guard_events()
        assert [e.action for e in events] == ["repair"]
        assert events[0].iteration == 2


# ----------------------------------------------------------------------
# Distributed worker failures
# ----------------------------------------------------------------------

class TestDistributedFailover:
    def test_timeout_is_retried_bit_identically(self, tensor):
        options = make_options(max_outer_iterations=6)
        healthy = fit_aoadmm_distributed(tensor, options, ranks=4)
        plan = WorkerFaultPlan([
            WorkerFault(rank=2, iteration=3, kind="timeout")])
        retried = fit_aoadmm_distributed(tensor, options, ranks=4,
                                         fault_plan=plan)
        assert [e.action for e in retried.failover_events] == ["retry"]
        assert retried.failover_events[0].kind == "timeout"
        np.testing.assert_array_equal(healthy.trace.errors(),
                                      retried.trace.errors())
        for a, b in zip(healthy.model.factors, retried.model.factors):
            np.testing.assert_array_equal(a, b)
        assert len(retried.partition.shards) == 4  # nobody was dropped

    def test_crash_triggers_repartition(self, tensor):
        options = make_options(max_outer_iterations=6)
        healthy = fit_aoadmm_distributed(tensor, options, ranks=4)
        plan = WorkerFaultPlan([
            WorkerFault(rank=2, iteration=3, kind="crash")])
        failed = fit_aoadmm_distributed(tensor, options, ranks=4,
                                        fault_plan=plan, max_retries=1)
        assert [e.action for e in failed.failover_events] == \
            ["retry", "repartition"]
        assert len(failed.partition.shards) == 3
        # Re-partitioning changes the allreduce summation order, so the
        # comparison is to machine precision rather than bitwise.
        np.testing.assert_allclose(healthy.trace.errors(),
                                   failed.trace.errors(), rtol=1e-12)
        for a, b in zip(healthy.model.factors, failed.model.factors):
            np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-12)

    def test_crashed_rank_stops_accumulating_time(self, tensor):
        plan = WorkerFaultPlan([
            WorkerFault(rank=3, iteration=2, kind="crash")])
        failed = fit_aoadmm_distributed(
            tensor, make_options(max_outer_iterations=5), ranks=4,
            fault_plan=plan, max_retries=0)
        assert len(failed.rank_compute_seconds) == 4
        survivors = fit_aoadmm_distributed(
            tensor, make_options(max_outer_iterations=5), ranks=3)
        np.testing.assert_allclose(failed.trace.errors(),
                                   survivors.trace.errors(), rtol=1e-12)

    def test_last_survivor_failure_propagates(self, tensor):
        plan = WorkerFaultPlan([
            WorkerFault(rank=0, iteration=2, kind="crash")])
        with pytest.raises(WorkerFailure):
            fit_aoadmm_distributed(
                tensor, make_options(max_outer_iterations=5), ranks=1,
                fault_plan=plan, max_retries=0)

    def test_healthy_run_reports_no_failover(self, tensor):
        result = fit_aoadmm_distributed(
            tensor, make_options(max_outer_iterations=3), ranks=4)
        assert result.failover_events == ()


# ----------------------------------------------------------------------
# stop_reason contract (satellite 2)
# ----------------------------------------------------------------------

class TestStopReasons:
    def test_all_documented_reasons_are_producible(self, tensor):
        reasons = set()
        reasons.add(fit_aoadmm(tensor, make_options(
            outer_tolerance=0.9)).stop_reason)
        reasons.add(fit_aoadmm(tensor, make_options(
            max_outer_iterations=2)).stop_reason)
        reasons.add(fit_aoadmm(tensor, make_options(
            callback=lambda record: record.iteration >= 2)).stop_reason)
        reasons.add(fit_aoadmm(tensor, make_options(
            time_budget_seconds=1e-9)).stop_reason)
        assert reasons == {"tolerance", "max_iterations", "callback",
                           "time_budget"}

    def test_guard_stop_reasons(self, tensor):
        inj = FaultInjector([FaultSpec("mttkrp_nan", iteration=2, mode=0)])
        rollback = fit_aoadmm(tensor, make_options(
            guard_policy="rollback", fault_injector=inj))
        inj = FaultInjector([
            FaultSpec("diverge_error", iteration=2, once=False)])
        diverged = fit_aoadmm(tensor, make_options(
            guard_policy="rollback", divergence_patience=1,
            fault_injector=inj))
        assert {rollback.stop_reason, diverged.stop_reason} == \
            {"rollback", "diverged"}


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------

class TestRobustnessCLI:
    def test_checkpoint_and_resume_flags(self, tensor, tmp_path):
        from repro.cli import main
        from repro.core import load_model
        from repro.tensor import write_tns
        tns = tmp_path / "t.tns"
        write_tns(tensor, tns)
        ck = tmp_path / "ck.npz"
        common = ["factorize", str(tns), "--rank", "4", "--seed", "0",
                  "--tolerance", "0.0"]
        full_out = tmp_path / "full.npz"
        assert main(common + ["--max-iterations", "6",
                              "--output", str(full_out)]) == 0
        assert main(common + ["--max-iterations", "3",
                              "--checkpoint", str(ck),
                              "--checkpoint-every", "3"]) == 0
        resumed_out = tmp_path / "resumed.npz"
        assert main(common + ["--max-iterations", "6",
                              "--resume", str(ck),
                              "--output", str(resumed_out)]) == 0
        full = load_model(full_out)
        resumed = load_model(resumed_out)
        for a, b in zip(full.factors, resumed.factors):
            np.testing.assert_array_equal(a, b)
