"""ADMM inner-solver tests: correctness against closed forms and oracles."""

import numpy as np
import pytest
import scipy.optimize

from repro.admm import (
    AdmmState,
    FixedRho,
    NormalizedTraceRho,
    TraceRho,
    admm_update,
    blocked_admm_update,
    make_rho_policy,
    relative_residuals,
)
from repro.constraints import L1, NonNegative, Unconstrained
from repro.constraints.base import Constraint


def make_problem(rng, rows=40, rank=5, cols=30):
    """A least-squares mode subproblem min ||X - H W^T|| with known W, X."""
    w = rng.standard_normal((cols, rank))
    h_true = np.abs(rng.standard_normal((rows, rank)))
    x = h_true @ w.T + 0.01 * rng.standard_normal((rows, cols))
    gram = w.T @ w
    mttkrp = x @ w
    return mttkrp, gram, x, w


class TestRhoPolicies:
    def test_trace_rho(self):
        g = np.diag([1.0, 2.0, 3.0])
        assert TraceRho().rho(g) == pytest.approx(2.0)

    def test_trace_rho_floor(self):
        assert TraceRho(floor=1e-3).rho(np.zeros((3, 3))) == 1e-3

    def test_fixed_rho(self):
        assert FixedRho(2.5).rho(np.eye(3)) == 2.5
        with pytest.raises(ValueError):
            FixedRho(0.0)

    def test_scaled_trace(self):
        g = np.eye(4)
        assert NormalizedTraceRho(scale=3.0).rho(g) == pytest.approx(3.0)

    def test_make_policy(self):
        assert isinstance(make_rho_policy("trace"), TraceRho)
        assert isinstance(make_rho_policy(1.5), FixedRho)
        policy = TraceRho()
        assert make_rho_policy(policy) is policy
        with pytest.raises(ValueError):
            make_rho_policy("bogus")


class TestResiduals:
    def test_zero_when_converged(self, rng):
        h = rng.standard_normal((5, 3))
        r, s = relative_residuals(h, h, h, np.ones_like(h))
        assert r == 0.0 and s == 0.0

    def test_no_division_by_zero(self):
        z = np.zeros((3, 2))
        r, s = relative_residuals(z, z + 1.0, z, z)
        assert np.isfinite(r) and np.isfinite(s)


class TestFullAdmm:
    def test_unconstrained_reaches_least_squares(self, rng):
        mttkrp, gram, x, w = make_problem(rng)
        state = AdmmState.from_factor(np.zeros_like(mttkrp))
        admm_update(state, mttkrp, gram, Unconstrained(),
                    tolerance=1e-12, max_iterations=300)
        exact = np.linalg.solve(gram, mttkrp.T).T
        np.testing.assert_allclose(state.primal, exact, atol=1e-4)

    def test_nonneg_matches_nnls(self, rng):
        mttkrp, gram, x, w = make_problem(rng, rows=12, rank=4, cols=25)
        state = AdmmState.from_factor(np.zeros_like(mttkrp))
        admm_update(state, mttkrp, gram, NonNegative(),
                    tolerance=1e-10, max_iterations=500)
        for i in range(12):
            expected, _ = scipy.optimize.nnls(w, x[i])
            np.testing.assert_allclose(state.primal[i], expected, atol=1e-3)

    def test_l1_stationarity(self, rng):
        """KKT: for nonzero entries, gradient + weight*sign == 0."""
        weight = 0.5
        mttkrp, gram, _, _ = make_problem(rng, rows=15, rank=4)
        state = AdmmState.from_factor(np.zeros_like(mttkrp))
        admm_update(state, mttkrp, gram, L1(weight),
                    tolerance=1e-12, max_iterations=800)
        grad = state.primal @ gram - mttkrp
        h = state.primal
        nz = np.abs(h) > 1e-6
        np.testing.assert_allclose(grad[nz], -weight * np.sign(h[nz]),
                                   atol=2e-2)
        # Subgradient condition where h == 0.
        assert (np.abs(grad[~nz]) <= weight + 2e-2).all()

    def test_report_fields(self, rng):
        mttkrp, gram, _, _ = make_problem(rng)
        state = AdmmState.from_factor(np.zeros_like(mttkrp))
        report = admm_update(state, mttkrp, gram, NonNegative())
        assert report.iterations >= 1
        assert report.rho == pytest.approx(np.trace(gram) / gram.shape[0])
        assert report.primal_residual >= 0.0

    def test_warm_start_converges_quickly(self, rng):
        mttkrp, gram, _, _ = make_problem(rng)
        state = AdmmState.from_factor(np.zeros_like(mttkrp))
        admm_update(state, mttkrp, gram, NonNegative(),
                    tolerance=1e-10, max_iterations=400)
        warm = admm_update(state, mttkrp, gram, NonNegative(),
                           tolerance=1e-10, max_iterations=400)
        assert warm.iterations <= 3

    def test_shape_mismatch_rejected(self, rng):
        state = AdmmState.from_factor(np.zeros((4, 3)))
        with pytest.raises(ValueError):
            admm_update(state, np.zeros((5, 3)), np.eye(3), NonNegative())


class TestBlockedAdmm:
    def test_matches_full_admm_solution(self, rng):
        """Blocked and full ADMM share fixed points (row-separable prox)."""
        mttkrp, gram, x, w = make_problem(rng, rows=60)
        full = AdmmState.from_factor(np.zeros_like(mttkrp))
        admm_update(full, mttkrp, gram, NonNegative(),
                    tolerance=1e-12, max_iterations=600)
        blocked = AdmmState.from_factor(np.zeros_like(mttkrp))
        blocked_admm_update(blocked, mttkrp, gram, NonNegative(),
                            tolerance=1e-12, max_iterations=600,
                            block_size=13)
        np.testing.assert_allclose(blocked.primal, full.primal, atol=1e-4)

    def test_single_block_equals_unblocked(self, rng):
        mttkrp, gram, _, _ = make_problem(rng, rows=20)
        a = AdmmState.from_factor(np.zeros_like(mttkrp))
        b = a.copy()
        rep_a = admm_update(a, mttkrp, gram, NonNegative(),
                            tolerance=1e-8, max_iterations=50)
        rep_b = blocked_admm_update(b, mttkrp, gram, NonNegative(),
                                    tolerance=1e-8, max_iterations=50,
                                    block_size=10**9)
        np.testing.assert_allclose(a.primal, b.primal, atol=1e-12)
        assert rep_b.block_iterations == (rep_a.iterations,)

    def test_per_block_iteration_counts_vary(self, rng):
        """Blocks with stronger signal may iterate differently."""
        mttkrp, gram, _, _ = make_problem(rng, rows=100)
        mttkrp[:10] *= 50.0  # high-signal rows
        state = AdmmState.from_factor(np.zeros_like(mttkrp))
        report = blocked_admm_update(state, mttkrp, gram, NonNegative(),
                                     block_size=10, tolerance=1e-8,
                                     max_iterations=100)
        assert len(report.block_iterations) == 10
        assert len(set(report.block_iterations)) > 1

    def test_thread_count_does_not_change_result(self, rng):
        mttkrp, gram, _, _ = make_problem(rng, rows=50)
        results = []
        for threads in (1, 4):
            state = AdmmState.from_factor(np.zeros_like(mttkrp))
            blocked_admm_update(state, mttkrp, gram, NonNegative(),
                                block_size=7, threads=threads)
            results.append(state.primal.copy())
        np.testing.assert_array_equal(results[0], results[1])

    def test_rejects_non_row_separable(self, rng):
        class ColumnCoupled(Constraint):
            row_separable = False
            name = "coupled"

            def prox(self, matrix, step):
                return matrix

            def penalty(self, matrix):
                return 0.0

        mttkrp, gram, _, _ = make_problem(rng)
        state = AdmmState.from_factor(np.zeros_like(mttkrp))
        with pytest.raises(ValueError, match="not row separable"):
            blocked_admm_update(state, mttkrp, gram, ColumnCoupled())

    def test_report_accounting(self, rng):
        mttkrp, gram, _, _ = make_problem(rng, rows=23)
        state = AdmmState.from_factor(np.zeros_like(mttkrp))
        report = blocked_admm_update(state, mttkrp, gram, NonNegative(),
                                     block_size=10)
        assert report.block_rows == (10, 10, 3)
        assert report.total_row_iterations == sum(
            r * i for r, i in zip(report.block_rows,
                                  report.block_iterations))
        assert report.iterations == max(report.block_iterations)


class TestAdmmState:
    def test_from_factor_zero_dual(self):
        state = AdmmState.from_factor(np.ones((4, 2)))
        np.testing.assert_array_equal(state.dual, 0.0)
        assert state.rows == 4 and state.rank == 2

    def test_copy_is_deep(self):
        state = AdmmState.from_factor(np.ones((2, 2)))
        clone = state.copy()
        clone.primal[0, 0] = 99.0
        assert state.primal[0, 0] == 1.0

    def test_mismatched_dual_rejected(self):
        with pytest.raises(ValueError):
            AdmmState(np.ones((3, 2)), np.ones((2, 2)))
