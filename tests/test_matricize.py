"""Unit tests for matricization and index linearization."""

import numpy as np
import pytest

from repro.tensor import COOTensor, random_coo
from repro.tensor.matricize import (
    delinearize_indices,
    linearize_indices,
    matricize_coo,
    matricize_dense,
)


class TestLinearize:
    def test_round_trip(self, small_tensor):
        modes = [1, 2]
        linear = linearize_indices(small_tensor.coords, small_tensor.shape,
                                   modes)
        back = delinearize_indices(linear, small_tensor.shape, modes)
        np.testing.assert_array_equal(back[0], small_tensor.coords[1])
        np.testing.assert_array_equal(back[1], small_tensor.coords[2])

    def test_first_listed_mode_is_fastest(self):
        coords = np.array([[0, 1], [0, 0], [0, 0]])
        linear = linearize_indices(coords, (2, 3, 4), [0, 1, 2])
        np.testing.assert_array_equal(linear, [0, 1])
        linear = linearize_indices(coords, (2, 3, 4), [1, 0, 2])
        np.testing.assert_array_equal(linear, [0, 3])


class TestMatricizeCOO:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_dense_unfolding(self, small_tensor, mode):
        sparse_unfold = matricize_coo(small_tensor, mode).toarray()
        dense_unfold = matricize_dense(small_tensor.to_dense(), mode)
        np.testing.assert_allclose(sparse_unfold, dense_unfold)

    def test_shape(self, small_tensor):
        m = matricize_coo(small_tensor, 1)
        i, j, k = small_tensor.shape
        assert m.shape == (j, i * k)

    def test_four_modes(self, four_mode_tensor):
        for mode in range(4):
            sparse_unfold = matricize_coo(four_mode_tensor, mode).toarray()
            dense_unfold = matricize_dense(four_mode_tensor.to_dense(), mode)
            np.testing.assert_allclose(sparse_unfold, dense_unfold)

    def test_negative_mode_indexing(self, small_tensor):
        a = matricize_coo(small_tensor, -1).toarray()
        b = matricize_coo(small_tensor, 2).toarray()
        np.testing.assert_allclose(a, b)


class TestKoldaIdentity:
    def test_unfolding_times_khatri_rao_equals_model(self, small_factors):
        """X_(n) = A_n (KR of others)^T for an exact CP tensor."""
        from repro.linalg import khatri_rao_excluding
        from repro.tensor.dense import dense_from_factors

        dense = dense_from_factors(small_factors)
        for mode in range(3):
            unfold = matricize_dense(dense, mode)
            kr = khatri_rao_excluding(small_factors, mode)
            np.testing.assert_allclose(
                unfold, small_factors[mode] @ kr.T, atol=1e-10)
