"""Simulated-machine tests: spec, cache model, kernel costs, speedups."""

import numpy as np
import pytest

from repro.machine import (
    FactorizationWorkload,
    KernelCost,
    MachineSpec,
    PAPER_MACHINE,
    admm_baseline_cost,
    admm_blocked_cost,
    blocked_traffic,
    factorization_time,
    kernel_time,
    miss_rate,
    mttkrp_kernel_cost,
    speedup_curve,
    streaming_traffic,
)


class TestSpec:
    def test_bandwidth_monotone_and_capped(self):
        m = PAPER_MACHINE
        prev = 0.0
        for t in range(1, 21):
            bw = m.bandwidth(t, "read")
            assert bw >= prev
            prev = bw
        assert m.bandwidth(20, "read") <= m.read_bandwidth_peak
        assert m.bandwidth(1, "read") == m.read_bandwidth_single

    def test_stream_bandwidth_saturates_lower(self):
        m = PAPER_MACHINE
        assert m.bandwidth(20, "stream") < m.bandwidth(20, "read")

    def test_barrier_cost_grows_with_threads(self):
        m = PAPER_MACHINE
        assert m.barrier_cost(1) == 0.0
        assert m.barrier_cost(20) > m.barrier_cost(2) > 0.0

    def test_flops_scale_linearly(self):
        m = PAPER_MACHINE
        assert m.flops(10) == pytest.approx(10 * m.peak_flops_per_core)
        assert m.flops(10, 0.5) == pytest.approx(5 * m.peak_flops_per_core)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            MachineSpec(read_bandwidth_single=10e9, read_bandwidth_peak=1e9)


class TestCacheModel:
    def test_miss_rate_floor_when_resident(self):
        assert miss_rate(1e6, 50e6) == pytest.approx(0.02)

    def test_miss_rate_grows_then_caps(self):
        small = miss_rate(100e6, 50e6)
        large = miss_rate(10e9, 50e6)
        assert 0.02 < small < large <= 0.5

    def test_streaming_traffic(self):
        # Fits in cache: one fetch regardless of passes.
        assert streaming_traffic(1e6, 10, 50e6) == 1e6
        # Exceeds cache: every pass pays.
        assert streaming_traffic(1e9, 10, 50e6) == 1e10

    def test_blocked_traffic_first_touch_only(self):
        # 50-row blocks are tiny: traffic = block_bytes * n_blocks.
        out = blocked_traffic(2e4, 1000, 10, 50e6, threads_sharing=20)
        assert out == pytest.approx(2e7)

    def test_blocked_traffic_overflow(self):
        big = blocked_traffic(10e6, 10, 10, 50e6, threads_sharing=20)
        assert big > 10e6 * 10  # re-fetches the overflow every iteration


class TestKernelCosts:
    def test_mttkrp_cost_totals(self):
        slice_nnz = np.array([100.0, 200.0, 700.0])
        slice_fibers = np.array([10.0, 20.0, 70.0])
        cost = mttkrp_kernel_cost(slice_nnz, slice_fibers, rank=10,
                                  leaf_rows=1000, mid_rows=100,
                                  machine=PAPER_MACHINE)
        assert cost.flops == pytest.approx(2 * 10 * (1000 + 100))
        assert cost.dram_bytes > 0
        assert cost.traffic_kind == "read"

    def test_mttkrp_csr_reduces_traffic_adds_latency(self):
        slice_nnz = np.full(100, 1e5)
        slice_fibers = np.full(100, 1e4)
        dense = mttkrp_kernel_cost(slice_nnz, slice_fibers, 50,
                                   10_000_000, 1000, PAPER_MACHINE)
        csr = mttkrp_kernel_cost(slice_nnz, slice_fibers, 50,
                                 10_000_000, 1000, PAPER_MACHINE,
                                 leaf_rep="csr", leaf_density=0.03)
        assert csr.dram_bytes < dense.dram_bytes
        assert csr.latency_seconds > 0
        assert dense.latency_seconds == 0

    def test_mttkrp_hybrid_hides_latency(self):
        slice_nnz = np.full(10, 1e5)
        slice_fibers = np.full(10, 1e4)
        kwargs = dict(rank=50, leaf_rows=500_000, mid_rows=1000,
                      machine=PAPER_MACHINE, leaf_density=0.03)
        csr = mttkrp_kernel_cost(slice_nnz, slice_fibers,
                                 leaf_rep="csr", **kwargs)
        hybrid = mttkrp_kernel_cost(slice_nnz, slice_fibers,
                                    leaf_rep="csr-h", dense_col_share=0.7,
                                    **kwargs)
        assert hybrid.latency_seconds < csr.latency_seconds

    def test_admm_baseline_pays_per_iteration_traffic(self):
        few = admm_baseline_cost(10_000_000, 50, 2, PAPER_MACHINE)
        many = admm_baseline_cost(10_000_000, 50, 20, PAPER_MACHINE)
        assert many.dram_bytes == pytest.approx(10 * few.dram_bytes, rel=0.01)
        assert many.barriers == 10 * few.barriers

    def test_admm_blocked_traffic_independent_of_iterations(self):
        rows = np.full(1000, 50.0)
        few = admm_blocked_cost(rows, np.full(1000, 2.0), 50, PAPER_MACHINE)
        many = admm_blocked_cost(rows, np.full(1000, 20.0), 50,
                                 PAPER_MACHINE)
        assert many.dram_bytes == pytest.approx(few.dram_bytes)
        assert many.flops > few.flops

    def test_kernel_time_monotone_in_threads_for_large_work(self):
        cost = admm_baseline_cost(20_000_000, 50, 10, PAPER_MACHINE)
        times = [kernel_time(cost, t, PAPER_MACHINE)
                 for t in (1, 2, 4, 8, 20)]
        # Allow the sub-millisecond barrier growth on the saturated tail.
        assert all(times[i] >= times[i + 1] - 1e-3
                   for i in range(len(times) - 1))

    def test_barriers_can_dominate_tiny_work(self):
        """More threads can hurt when the work is small — the sync cost the
        blocked reformulation eliminates."""
        cost = admm_baseline_cost(2_000, 50, 10, PAPER_MACHINE)
        assert kernel_time(cost, 20, PAPER_MACHINE) > 40 * \
            PAPER_MACHINE.barrier_cost(20) * 0.9

    def test_kernel_cost_validation(self):
        with pytest.raises(ValueError):
            KernelCost(flops=-1, dram_bytes=0)
        with pytest.raises(ValueError):
            KernelCost(flops=1, dram_bytes=0, compute_efficiency=0.0)

    def test_combined(self):
        a = KernelCost(flops=10, dram_bytes=5, barriers=1)
        b = KernelCost(flops=30, dram_bytes=15, barriers=2)
        c = a.combined(b)
        assert c.flops == 40 and c.dram_bytes == 20 and c.barriers == 3


class TestWorkloadAndSpeedup:
    @pytest.fixture(scope="class")
    def workloads(self):
        return {name: FactorizationWorkload.from_spec(name, rank=50)
                for name in ("reddit", "nell", "amazon", "patents")}

    def test_mode_descriptors_preserve_mass(self, workloads):
        from repro.datasets import get_spec
        for name, wl in workloads.items():
            spec = get_spec(name)
            for mode in wl.modes:
                assert mode.nnz == pytest.approx(spec.full_nnz, rel=1e-6)

    def test_speedup_one_thread_is_one(self, workloads):
        for wl in workloads.values():
            assert speedup_curve(wl, threads=(1,))[1] == pytest.approx(1.0)

    def test_blocked_at_least_base_everywhere(self, workloads):
        for name, wl in workloads.items():
            base = speedup_curve(wl, blocked=False)
            blk = speedup_curve(wl, blocked=True)
            for t in base:
                assert blk[t] >= base[t] - 0.25, (name, t)

    def test_figure4_ordering(self, workloads):
        """Baseline: MTTKRP-dominated datasets scale best (paper Fig 4)."""
        base20 = {n: speedup_curve(w, blocked=False)[20]
                  for n, w in workloads.items()}
        assert base20["nell"] == min(base20.values())
        assert base20["patents"] == max(base20.values())

    def test_figure5_reversal(self, workloads):
        """Blocked: ADMM-dominated datasets scale best (paper Fig 5)."""
        blk20 = {n: speedup_curve(w, blocked=True)[20]
                 for n, w in workloads.items()}
        assert blk20["nell"] == max(blk20.values())
        assert blk20["patents"] == min(blk20.values())

    def test_fraction_shapes_match_figure3(self, workloads):
        """NELL is ADMM-dominated; Amazon and Patents MTTKRP-dominated."""
        fr = {n: factorization_time(w, 1, blocked=False).fractions()
              for n, w in workloads.items()}
        assert fr["nell"]["admm"] > 0.5
        assert fr["amazon"]["mttkrp"] > 0.5
        assert fr["patents"]["mttkrp"] > 0.5

    def test_speedup_monotone_in_threads(self, workloads):
        for wl in workloads.values():
            for blocked in (False, True):
                curve = speedup_curve(wl, blocked=blocked)
                values = [curve[t] for t in sorted(curve)]
                assert all(values[i] <= values[i + 1] + 0.05
                           for i in range(len(values) - 1))

    def test_measured_block_profile_resampling(self):
        measured = [np.array([3.0, 5.0, 20.0, 4.0])] * 3
        wl = FactorizationWorkload.from_spec(
            "reddit", rank=16, block_iter_profile=measured)
        for mode in wl.modes:
            assert mode.block_iters.min() >= 3.0 - 1e-9
            assert mode.block_iters.max() <= 20.0 + 1e-9
