"""Unit tests for the dense linear-algebra substrate."""

import numpy as np
import pytest

from repro.linalg import (
    CholeskyFactor,
    GramCache,
    column_norms,
    factor_frobenius_inner,
    gram,
    hadamard_gram_excluding,
    khatri_rao,
    khatri_rao_excluding,
    model_norm_squared,
    normalize_factors,
    spd_solve,
)
from repro.linalg.grams import hadamard_gram_all
from repro.linalg.khatri_rao import khatri_rao_rows
from repro.tensor.dense import dense_from_factors


class TestKhatriRao:
    def test_two_matrix_definition(self):
        p = np.array([[1.0, 2.0], [3.0, 4.0]])
        q = np.array([[5.0, 6.0], [7.0, 8.0], [9.0, 10.0]])
        out = khatri_rao([p, q])
        assert out.shape == (6, 2)
        np.testing.assert_allclose(out[0], p[0] * q[0])
        np.testing.assert_allclose(out[1], p[0] * q[1])
        np.testing.assert_allclose(out[3], p[1] * q[0])

    def test_matches_kron_per_column(self):
        gen = np.random.default_rng(0)
        p, q = gen.standard_normal((4, 3)), gen.standard_normal((5, 3))
        out = khatri_rao([p, q])
        for f in range(3):
            np.testing.assert_allclose(out[:, f], np.kron(p[:, f], q[:, f]))

    def test_associativity(self):
        gen = np.random.default_rng(1)
        mats = [gen.standard_normal((n, 2)) for n in (2, 3, 4)]
        a = khatri_rao(mats)
        b = khatri_rao([khatri_rao(mats[:2]), mats[2]])
        np.testing.assert_allclose(a, b)

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            khatri_rao([np.ones((2, 2)), np.ones((2, 3))])

    def test_khatri_rao_rows_gather(self, small_factors, small_tensor):
        rows = khatri_rao_rows(small_factors, 0, small_tensor.coords)
        full = khatri_rao_excluding(small_factors, 0)
        from repro.tensor.matricize import linearize_indices
        cols = linearize_indices(small_tensor.coords, small_tensor.shape,
                                 [1, 2])
        np.testing.assert_allclose(rows, full[cols])


class TestGrams:
    def test_gram_symmetry(self, rng):
        a = rng.standard_normal((20, 4))
        g = gram(a)
        np.testing.assert_allclose(g, g.T)
        np.testing.assert_allclose(g, a.T @ a, atol=1e-12)

    def test_hadamard_gram_excluding(self, small_factors):
        g = hadamard_gram_excluding(small_factors, 1)
        expected = gram(small_factors[0]) * gram(small_factors[2])
        np.testing.assert_allclose(g, expected)

    def test_gram_cache_consistency(self, small_factors):
        cache = GramCache(small_factors)
        for mode in range(3):
            np.testing.assert_allclose(
                cache.gram_excluding(mode),
                hadamard_gram_excluding(small_factors, mode))

    def test_gram_cache_invalidation(self, small_factors):
        cache = GramCache(small_factors)
        cache.gram_excluding(0)  # warm
        new_factor = np.ones_like(small_factors[1])
        cache.set_factor(1, new_factor)
        factors = list(small_factors)
        factors[1] = new_factor
        np.testing.assert_allclose(
            cache.gram_excluding(0), hadamard_gram_excluding(factors, 0))

    def test_gram_all(self, small_factors):
        cache = GramCache(small_factors)
        np.testing.assert_allclose(cache.gram_all(),
                                   hadamard_gram_all(small_factors))


class TestCholesky:
    def test_solve_matches_numpy(self, rng):
        a = rng.standard_normal((6, 6))
        spd = a @ a.T + 6 * np.eye(6)
        rhs = rng.standard_normal((6, 3))
        np.testing.assert_allclose(
            CholeskyFactor(spd).solve(rhs), np.linalg.solve(spd, rhs),
            atol=1e-9)

    def test_solve_t_row_major(self, rng):
        a = rng.standard_normal((5, 5))
        spd = a @ a.T + 5 * np.eye(5)
        rows = rng.standard_normal((11, 5))
        np.testing.assert_allclose(
            CholeskyFactor(spd).solve_t(rows),
            np.linalg.solve(spd, rows.T).T, atol=1e-9)

    def test_jitter_repairs_singular(self):
        singular = np.ones((3, 3))  # rank 1, PSD
        chol = CholeskyFactor(singular)
        assert chol.jitter_added > 0.0
        out = chol.solve(np.ones(3))
        assert np.isfinite(out).all()

    def test_jitter_escalation_repairs_indefinite(self):
        """A slightly indefinite matrix is repaired by escalating jitter,
        and the escalation is observable (jitter_added, attempts)."""
        indefinite = np.diag([1.0, -0.5])
        chol = CholeskyFactor(indefinite)
        assert chol.jitter_added > 0.0
        assert chol.attempts > 1
        assert np.isfinite(chol.solve(np.ones(2))).all()

    def test_clean_factorization_reports_no_jitter(self, rng):
        a = rng.standard_normal((4, 4))
        chol = CholeskyFactor(a @ a.T + 4 * np.eye(4))
        assert chol.jitter_added == 0.0
        assert chol.attempts == 1

    def test_beyond_repair_fails_cleanly(self):
        """When the escalation budget is exhausted the constructor fails
        with a clear message instead of looping or returning garbage."""
        hopeless = np.diag([1.0, -2000.0])
        with pytest.raises(ValueError, match="beyond repair"):
            CholeskyFactor(hopeless)

    def test_spd_solve_vector(self, rng):
        spd = np.diag([1.0, 2.0, 4.0])
        np.testing.assert_allclose(spd_solve(spd, np.array([1.0, 2.0, 4.0])),
                                   [1.0, 1.0, 1.0])

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            CholeskyFactor(np.ones((2, 3)))


class TestNorms:
    def test_column_norms(self):
        a = np.array([[3.0, 0.0], [4.0, 2.0]])
        np.testing.assert_allclose(column_norms(a), [5.0, 2.0])

    def test_normalize_factors_reconstruction_invariant(self, small_factors):
        normalized, weights = normalize_factors(small_factors)
        before = dense_from_factors(small_factors)
        after = dense_from_factors(normalized, weights)
        np.testing.assert_allclose(before, after, atol=1e-10)
        for f in normalized:
            norms = column_norms(f)
            np.testing.assert_allclose(norms[norms > 0], 1.0, atol=1e-10)

    def test_normalize_handles_zero_columns(self):
        factors = [np.zeros((4, 2)), np.ones((3, 2))]
        normalized, weights = normalize_factors(factors)
        np.testing.assert_allclose(weights, 0.0)

    def test_model_norm_squared_matches_dense(self, small_factors):
        dense = dense_from_factors(small_factors)
        assert model_norm_squared(small_factors) == pytest.approx(
            np.linalg.norm(dense) ** 2, rel=1e-10)

    def test_model_norm_with_weights(self, small_factors):
        w = np.array([2.0, 0.5, 1.0, 3.0, 0.0])
        dense = dense_from_factors(small_factors, w)
        assert model_norm_squared(small_factors, w) == pytest.approx(
            np.linalg.norm(dense) ** 2, rel=1e-10)

    def test_frobenius_inner(self):
        a = np.array([[1.0, 2.0]])
        b = np.array([[3.0, 4.0]])
        assert factor_frobenius_inner(a, b) == pytest.approx(11.0)
