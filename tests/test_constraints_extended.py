"""Tests for the extended constraint set: monotone rows, row
cardinality, and column smoothness."""

import numpy as np
import pytest

from repro.constraints import (
    ColumnSmoothness,
    MonotoneRows,
    RowCardinality,
    isotonic_projection_rows,
    keep_top_k_rows,
)


class TestMonotoneRows:
    def test_projection_is_monotone(self, rng):
        v = rng.standard_normal((30, 8))
        out = isotonic_projection_rows(v)
        assert (np.diff(out, axis=1) >= -1e-12).all()

    def test_monotone_input_unchanged(self):
        v = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 5.0]])
        np.testing.assert_allclose(isotonic_projection_rows(v), v)

    def test_simple_pava_example(self):
        # Classic: [3, 1, 2] -> pool(3,1)=2, then [2, 2, 2]? No:
        # pool(3,1) = 2, next value 2 >= 2 so result [2, 2, 2].
        out = isotonic_projection_rows(np.array([[3.0, 1.0, 2.0]]))
        np.testing.assert_allclose(out, [[2.0, 2.0, 2.0]])

    def test_decreasing_row_becomes_mean(self):
        out = isotonic_projection_rows(np.array([[4.0, 3.0, 2.0, 1.0]]))
        np.testing.assert_allclose(out, [[2.5, 2.5, 2.5, 2.5]])

    def test_projection_is_nearest_monotone_point(self, rng):
        """Compare against a brute-force QP over random monotone points."""
        v = rng.standard_normal((1, 5))
        out = isotonic_projection_rows(v)
        base = np.sum((out - v) ** 2)
        for _ in range(300):
            cand = np.sort(out + 0.3 * rng.standard_normal((1, 5)), axis=1)
            assert np.sum((cand - v) ** 2) >= base - 1e-9

    def test_mean_preserved(self, rng):
        """PAVA pools preserve each row's mean."""
        v = rng.standard_normal((20, 6))
        out = isotonic_projection_rows(v)
        np.testing.assert_allclose(out.mean(axis=1), v.mean(axis=1),
                                   atol=1e-10)

    def test_constraint_interface(self, rng):
        c = MonotoneRows()
        assert c.row_separable
        v = rng.standard_normal((10, 4))
        out = c.prox(v.copy(), 0.5)
        assert c.is_feasible(out)
        assert c.penalty(out) == 0.0
        assert c.penalty(np.array([[2.0, 1.0]])) == np.inf

    def test_single_column(self):
        v = np.array([[3.0], [1.0]])
        np.testing.assert_allclose(isotonic_projection_rows(v), v)


class TestRowCardinality:
    def test_keeps_k_largest(self):
        v = np.array([[1.0, -5.0, 3.0, 0.5]])
        out = keep_top_k_rows(v, 2)
        np.testing.assert_allclose(out, [[0.0, -5.0, 3.0, 0.0]])

    def test_k_at_least_width_is_identity(self, rng):
        v = rng.standard_normal((5, 3))
        np.testing.assert_allclose(keep_top_k_rows(v, 3), v)
        np.testing.assert_allclose(keep_top_k_rows(v, 10), v)

    def test_constraint_feasibility(self):
        c = RowCardinality(k=2)
        assert c.is_feasible(np.array([[1.0, 0.0, 2.0]]))
        assert not c.is_feasible(np.array([[1.0, 1.0, 2.0]]))
        assert c.penalty(np.array([[1.0, 1.0, 2.0]])) == np.inf

    def test_prox_output_feasible(self, rng):
        c = RowCardinality(k=3)
        out = c.prox(rng.standard_normal((40, 10)), 1.0)
        assert c.is_feasible(out)

    def test_nonneg_variant(self, rng):
        c = RowCardinality(k=2, nonneg=True)
        out = c.prox(rng.standard_normal((20, 6)), 1.0)
        assert (out >= 0).all()
        assert ((out > 0).sum(axis=1) <= 2).all()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            RowCardinality(k=0)

    def test_works_in_blocked_solver(self, rng):
        """Nonconvex but row separable: the blocked solver accepts it."""
        from repro.admm import AdmmState, blocked_admm_update
        w = rng.standard_normal((20, 4))
        gram = w.T @ w + np.eye(4)
        mttkrp = rng.standard_normal((30, 4))
        state = AdmmState.from_factor(np.zeros((30, 4)))
        report = blocked_admm_update(state, mttkrp, gram,
                                     RowCardinality(k=2), block_size=7)
        assert ((np.abs(state.primal) > 0).sum(axis=1) <= 2).all()


class TestColumnSmoothness:
    def test_prox_solves_the_tridiagonal_system(self, rng):
        c = ColumnSmoothness(weight=2.0)
        n = 15
        v = rng.standard_normal((n, 3))
        out = c.prox(v.copy(), 0.5)
        # Verify (I + w*s*D^T D) out = v directly.
        d = np.diff(np.eye(n), axis=0)
        system = np.eye(n) + 2.0 * 0.5 * d.T @ d
        np.testing.assert_allclose(system @ out, v, atol=1e-9)

    def test_prox_smooths(self, rng):
        c = ColumnSmoothness(weight=50.0)
        v = rng.standard_normal((40, 2))
        out = c.prox(v.copy(), 1.0)
        rough_in = np.abs(np.diff(v, axis=0)).sum()
        rough_out = np.abs(np.diff(out, axis=0)).sum()
        assert rough_out < 0.2 * rough_in

    def test_penalty_value(self):
        c = ColumnSmoothness(weight=2.0)
        v = np.array([[0.0], [1.0], [3.0]])
        assert c.penalty(v) == pytest.approx(0.5 * 2.0 * (1.0 + 4.0))

    def test_zero_weight_identity(self, rng):
        v = rng.standard_normal((6, 2))
        np.testing.assert_allclose(ColumnSmoothness(0.0).prox(v, 1.0), v)

    def test_not_row_separable_and_refused_by_blocked(self, rng):
        from repro.admm import AdmmState, blocked_admm_update
        c = ColumnSmoothness()
        assert not c.row_separable
        state = AdmmState.from_factor(np.zeros((10, 3)))
        with pytest.raises(ValueError, match="row separable"):
            blocked_admm_update(state, np.zeros((10, 3)), np.eye(3), c)

    def test_full_admm_accepts_it(self, rng):
        """The unblocked Algorithm 1 handles non-separable penalties."""
        from repro.admm import AdmmState, admm_update
        w = rng.standard_normal((25, 3))
        gram = w.T @ w + np.eye(3)
        mttkrp = rng.standard_normal((12, 3))
        state = AdmmState.from_factor(np.zeros((12, 3)))
        report = admm_update(state, mttkrp, gram, ColumnSmoothness(0.5),
                             max_iterations=100, tolerance=1e-8)
        assert np.isfinite(state.primal).all()

    def test_driver_with_smoothness_unblocked(self, small_tensor):
        from repro import AOADMMOptions, fit_aoadmm
        res = fit_aoadmm(small_tensor, AOADMMOptions(
            rank=3, constraints=["nonneg", ColumnSmoothness(0.1),
                                 "nonneg"],
            blocked=False, seed=1, max_outer_iterations=5))
        assert np.isfinite(res.relative_error)

    def test_driver_with_smoothness_blocked_refused(self, small_tensor):
        from repro import AOADMMOptions, fit_aoadmm
        with pytest.raises(ValueError, match="row separable"):
            fit_aoadmm(small_tensor, AOADMMOptions(
                rank=3, constraints=ColumnSmoothness(), blocked=True))
