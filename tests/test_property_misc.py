"""Property-based tests: sparse structures, scatter kernels, schedulers,
power laws, and the Khatri-Rao algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.datasets import compressed_zipf_counts, zipf_weights
from repro.kernels.scatter import scatter_add_rows
from repro.linalg import khatri_rao
from repro.parallel import (
    DynamicSchedule,
    GuidedSchedule,
    StaticSchedule,
    balanced_chunks,
    row_blocks,
    run_schedule,
)
from repro.sparse import CSRMatrix, HybridFactor

pytestmark = pytest.mark.property

sparse_mats = hnp.arrays(
    np.float64,
    st.tuples(st.integers(1, 15), st.integers(1, 8)),
    elements=st.one_of(st.just(0.0),
                       st.floats(-10, 10, allow_nan=False, width=64)),
)


@settings(max_examples=60, deadline=None)
@given(sparse_mats)
def test_csr_round_trip(mat):
    np.testing.assert_allclose(CSRMatrix.from_dense(mat).to_dense(), mat)


@settings(max_examples=60, deadline=None)
@given(sparse_mats)
def test_hybrid_round_trip(mat):
    np.testing.assert_allclose(HybridFactor(mat).to_dense(), mat)


@settings(max_examples=40, deadline=None)
@given(sparse_mats, st.integers(0, 2**31 - 1))
def test_gathers_agree_across_representations(mat, seed):
    gen = np.random.default_rng(seed)
    idx = gen.integers(0, mat.shape[0], size=25)
    scale = gen.standard_normal(25)
    expected = mat[idx] * scale[:, None]
    np.testing.assert_allclose(
        CSRMatrix.from_dense(mat).gather_scale_rows(idx, scale), expected,
        atol=1e-12)
    np.testing.assert_allclose(
        HybridFactor(mat).gather_scale_rows(idx, scale), expected,
        atol=1e-12)


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 30), st.integers(1, 12), st.integers(0, 2**31 - 1))
def test_scatter_add_matches_add_at(n, buckets, seed):
    gen = np.random.default_rng(seed)
    rows = gen.standard_normal((n, 3))
    idx = gen.integers(0, buckets, size=n)
    a = np.zeros((buckets, 3))
    b = np.zeros((buckets, 3))
    scatter_add_rows(a, idx, rows)
    np.add.at(b, idx, rows)
    np.testing.assert_allclose(a, b, atol=1e-10)


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 500), st.integers(1, 64))
def test_row_blocks_partition(n_rows, block):
    blocks = row_blocks(n_rows, block)
    covered = np.concatenate(
        [np.arange(b.start, b.stop) for b in blocks])
    np.testing.assert_array_equal(covered, np.arange(n_rows))


@settings(max_examples=50, deadline=None)
@given(hnp.arrays(np.float64, st.integers(1, 200),
                  elements=st.floats(0, 100, allow_nan=False, width=64)),
       st.integers(1, 16))
def test_balanced_chunks_partition(weights, n_chunks):
    chunks = balanced_chunks(weights, n_chunks)
    assert len(chunks) <= n_chunks
    covered = np.concatenate(
        [np.arange(c.start, c.stop) for c in chunks])
    np.testing.assert_array_equal(covered, np.arange(len(weights)))


@settings(max_examples=40, deadline=None)
@given(hnp.arrays(np.float64, st.integers(0, 150),
                  elements=st.floats(0.01, 10, allow_nan=False, width=64)),
       st.integers(1, 24),
       st.sampled_from(["static", "dynamic", "guided"]))
def test_makespan_bounds(durations, threads, kind):
    """ideal <= makespan <= serial for every schedule."""
    sched = {"static": StaticSchedule(), "dynamic": DynamicSchedule(),
             "guided": GuidedSchedule()}[kind]
    out = run_schedule(durations, threads, sched)
    total = durations.sum()
    assert out.makespan >= total / threads - 1e-9
    assert out.makespan <= total + 1e-9
    assert abs(sum(out.per_thread_busy) - total) < 1e-6


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 10**7), st.floats(0.0, 2.0),
       st.integers(2, 4096))
def test_compressed_zipf_mass_and_monotonicity(n, exponent, max_items):
    total = 1e6
    counts, mult = compressed_zipf_counts(n, total, exponent, max_items)
    assert (counts * mult).sum() == np.float64(total).item() or \
        abs((counts * mult).sum() - total) < 1e-3
    assert mult.sum() == n
    assert (counts >= 0).all()
    # Head of the distribution is non-increasing.
    head = counts[mult == 1]
    if head.size > 1:
        assert (np.diff(head) <= 1e-9).all()


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 1000), st.floats(0.0, 3.0))
def test_zipf_weights_are_distribution(n, exponent):
    w = zipf_weights(n, exponent)
    assert abs(w.sum() - 1.0) < 1e-9
    assert (w > 0).all()
    assert (np.diff(w) <= 1e-15).all()


@settings(max_examples=50, deadline=None)
@given(hnp.arrays(np.float64, st.tuples(st.integers(1, 10),
                                        st.integers(1, 8)),
                  elements=st.floats(-20, 20, allow_nan=False, width=64)))
def test_isotonic_projection_matches_reference_pava(mat):
    """The SciPy-backed row projection must equal the textbook PAVA."""
    from repro.constraints.monotone import (
        _pava_row,
        isotonic_projection_rows,
    )
    fast = isotonic_projection_rows(mat)
    for i in range(mat.shape[0]):
        np.testing.assert_allclose(fast[i], _pava_row(mat[i]), atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(hnp.arrays(np.float64, st.tuples(st.integers(1, 12),
                                        st.integers(1, 8)),
                  elements=st.floats(-20, 20, allow_nan=False, width=64)),
       st.integers(1, 8))
def test_top_k_keeps_largest_mass(mat, k):
    """keep_top_k_rows retains the maximum possible per-row energy."""
    from repro.constraints.cardinality import keep_top_k_rows
    out = keep_top_k_rows(mat, k)
    for i in range(mat.shape[0]):
        kept = np.sort(np.abs(out[i]))[::-1]
        best = np.sort(np.abs(mat[i]))[::-1]
        width = min(k, mat.shape[1])
        np.testing.assert_allclose(np.sort(kept[:width]),
                                   np.sort(best[:width]), atol=1e-12)
        assert (np.abs(out[i]) > 0).sum() <= k


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 6), st.integers(1, 6), st.integers(1, 4),
       st.integers(0, 2**31 - 1))
def test_khatri_rao_column_kron(p_rows, q_rows, rank, seed):
    gen = np.random.default_rng(seed)
    p = gen.standard_normal((p_rows, rank))
    q = gen.standard_normal((q_rows, rank))
    out = khatri_rao([p, q])
    for f in range(rank):
        np.testing.assert_allclose(out[:, f], np.kron(p[:, f], q[:, f]),
                                   atol=1e-12)
