"""Model persistence, the penalized objective, and the ONEMODE CSF
allocation policy."""

import numpy as np
import pytest

from repro import AOADMMOptions, CPModel, fit_aoadmm, init_factors
from repro.constraints import L1, NonNegative
from repro.core import load_model, penalized_objective, save_model
from repro.kernels import mttkrp_coo_reference
from repro.kernels.dispatch import MTTKRPEngine
from repro.tensor.random import random_factors


class TestSerialization:
    def test_round_trip(self, tmp_path):
        model = CPModel(random_factors((6, 5, 4), 3, seed=1))
        path = save_model(model, tmp_path / "m.npz")
        back = load_model(path)
        assert back.nmodes == 3 and back.rank == 3
        for a, b in zip(model.factors, back.factors):
            np.testing.assert_array_equal(a, b)
        assert back.weights is None

    def test_round_trip_with_weights(self, tmp_path):
        model = CPModel(random_factors((4, 3), 2, seed=2),
                        weights=np.array([2.0, 0.5]))
        back = load_model(save_model(model, tmp_path / "w.npz"))
        np.testing.assert_array_equal(back.weights, [2.0, 0.5])

    def test_suffix_appended(self, tmp_path):
        model = CPModel(random_factors((3, 3), 2, seed=3))
        path = save_model(model, tmp_path / "noext")
        assert path.suffix == ".npz" and path.exists()

    def test_cli_output_loadable(self, tmp_path, small_tensor):
        """The CLI's --output .npz and load_model share a format."""
        from repro.cli import main
        from repro.tensor import write_tns
        tns = tmp_path / "t.tns"
        write_tns(small_tensor, tns)
        out = tmp_path / "f.npz"
        main(["factorize", str(tns), "--rank", "3",
              "--max-iterations", "2", "--output", str(out)])
        model = load_model(out)
        assert model.shape == small_tensor.shape

    def test_many_mode_round_trip(self, tmp_path):
        """mode10 sorts after mode9 (numeric, not lexicographic): with
        >=10 modes a lexicographic sort would interleave mode1, mode10,
        mode11, ..., mode2 and scramble the factor order."""
        shape = tuple(range(2, 14))  # 12 modes, all sizes distinct
        model = CPModel(random_factors(shape, 2, seed=5))
        back = load_model(save_model(model, tmp_path / "deep.npz"))
        assert back.nmodes == 12
        assert back.shape == shape
        for a, b in zip(model.factors, back.factors):
            np.testing.assert_array_equal(a, b)

    def test_bad_file_rejected(self, tmp_path):
        np.savez(tmp_path / "bad.npz", mode0=np.ones((2, 2)),
                 mode2=np.ones((3, 2)))
        with pytest.raises(ValueError, match="non-contiguous"):
            load_model(tmp_path / "bad.npz")


class TestPenalizedObjective:
    def test_matches_error_identity(self, small_tensor):
        model = CPModel(random_factors(small_tensor.shape, 3, seed=4))
        obj = penalized_objective(model, small_tensor)
        err = model.relative_error(small_tensor)
        expected = 0.5 * (err ** 2) * small_tensor.norm_squared()
        assert obj == pytest.approx(expected, rel=1e-9)

    def test_penalties_added(self, small_tensor):
        factors = random_factors(small_tensor.shape, 3, seed=4)
        model = CPModel(factors)
        base = penalized_objective(model, small_tensor)
        with_l1 = penalized_objective(
            model, small_tensor, [L1(1.0), L1(1.0), L1(1.0)])
        l1_sum = sum(np.abs(f).sum() for f in model.factors)
        assert with_l1 == pytest.approx(base + l1_sum, rel=1e-9)

    def test_infeasible_is_infinite(self, small_tensor):
        factors = random_factors(small_tensor.shape, 3, seed=4)
        factors[0][0, 0] = -1.0
        model = CPModel(factors)
        assert penalized_objective(
            model, small_tensor,
            [NonNegative()] * 3) == np.inf

    def test_aoadmm_decreases_objective(self, small_tensor):
        res = fit_aoadmm(small_tensor, AOADMMOptions(
            rank=3, constraints="nonneg", seed=6,
            max_outer_iterations=20, outer_tolerance=0.0))
        final = penalized_objective(res.model, small_tensor,
                                    res.options.resolve_constraints(3))
        init_model = CPModel(init_factors(small_tensor, 3, "uniform",
                                          seed=6))
        initial = penalized_objective(init_model, small_tensor)
        assert np.isfinite(final)
        assert final < initial


class TestOneModeCSFPolicy:
    def test_one_tree_serves_all_modes(self, small_tensor, small_factors):
        engine = MTTKRPEngine(small_tensor, csf_allocation="one")
        for mode in range(3):
            ref = mttkrp_coo_reference(small_tensor, small_factors, mode)
            np.testing.assert_allclose(
                engine.mttkrp(small_factors, mode), ref, atol=1e-10)
        # Only the mode-0 tree was built.
        assert set(engine.trees._trees) == {0}

    def test_memory_saving_vs_allmode(self, small_tensor, small_factors):
        one = MTTKRPEngine(small_tensor, csf_allocation="one")
        allm = MTTKRPEngine(small_tensor, csf_allocation="all")
        for mode in range(3):
            one.mttkrp(small_factors, mode)
            allm.mttkrp(small_factors, mode)
        assert one.trees.storage_bytes() < allm.trees.storage_bytes()

    def test_driver_runs_with_one_policy(self, small_tensor):
        engine = MTTKRPEngine(small_tensor, csf_allocation="one")
        res = fit_aoadmm(small_tensor, AOADMMOptions(
            rank=3, constraints="nonneg", seed=2,
            max_outer_iterations=5, outer_tolerance=0.0), engine=engine)
        ref_engine = MTTKRPEngine(small_tensor, csf_allocation="all")
        ref = fit_aoadmm(small_tensor, AOADMMOptions(
            rank=3, constraints="nonneg", seed=2,
            max_outer_iterations=5, outer_tolerance=0.0),
            engine=ref_engine)
        np.testing.assert_allclose(res.trace.errors(), ref.trace.errors(),
                                   rtol=1e-10)

    def test_unknown_allocation_rejected(self, small_tensor):
        with pytest.raises(ValueError):
            MTTKRPEngine(small_tensor, csf_allocation="bogus")
