"""Process-parallel executor tests: bit-identity, faults, shm hygiene.

The contract under test (ISSUE 6 / ROADMAP "process-parallel MTTKRP"):

* MTTKRP and whole fits are **bit-identical** across
  ``{serial, thread, process}`` executors × worker counts;
* a SIGKILL-ed pool worker is respawned and its tasks resubmitted
  (batches are idempotent), still yielding the bit-identical result;
* a pool broken beyond its respawn budget makes the engine fall back to
  the thread executor with a ``GuardEvent`` — never a wrong answer;
* no ``repro_shm_*`` shared-memory segment outlives its arena.
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest

import repro
from repro.core.options import AOADMMOptions
from repro.kernels.dispatch import MTTKRPEngine
from repro.parallel import parallel_for as thread_parallel_for
from repro.parallel.executor import (
    DEFAULT_EXECUTOR,
    EXECUTOR_ENV_VAR,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
    parallel_for,
    resolve_executor,
)
from repro.parallel.procpool import (
    ProcessPool,
    ProcessPoolBroken,
    WorkerTaskError,
)
from repro.parallel.shm import (
    SEGMENT_PREFIX,
    ShmArena,
    active_segment_names,
)
from repro.parallel.threadpool import _WARNED_ENV_VALUES, effective_threads
from repro.robustness.faults import WorkerKillPlan
from repro.tensor import random_coo

EXECUTORS = ("serial", "thread", "process")


def _dev_shm_segments() -> list[str]:
    try:
        return [f for f in os.listdir("/dev/shm")
                if f.startswith(SEGMENT_PREFIX)]
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


def _factors(shape, rank=5, seed=23):
    gen = np.random.default_rng(seed)
    return [gen.standard_normal((s, rank)) for s in shape]


# ----------------------------------------------------------------------
# Bit-identity across the executor grid
# ----------------------------------------------------------------------

class TestExecutorBitIdentity:
    @pytest.mark.parametrize("threads", [1, 4])
    @pytest.mark.parametrize("allocation", ["all", "one"])
    def test_mttkrp_grid_three_modes(self, small_tensor, threads,
                                     allocation):
        factors = _factors(small_tensor.shape)
        results = {}
        for name in EXECUTORS:
            engine = MTTKRPEngine(small_tensor, threads=threads,
                                  slab_nnz_target=16, executor=name,
                                  csf_allocation=allocation)
            results[name] = [engine.mttkrp(factors, m).copy()
                             for m in range(small_tensor.nmodes)]
            engine.close()
        for name in EXECUTORS[1:]:
            for m in range(small_tensor.nmodes):
                np.testing.assert_array_equal(results["serial"][m],
                                              results[name][m])

    def test_mttkrp_grid_four_modes_internal_kernel(self, four_mode_tensor):
        # csf_allocation="one" routes non-root modes through the leaf
        # and *internal* kernels — all three offload kinds in one test.
        factors = _factors(four_mode_tensor.shape)
        results = {}
        for name in EXECUTORS:
            engine = MTTKRPEngine(four_mode_tensor, threads=4,
                                  slab_nnz_target=20, executor=name,
                                  csf_allocation="one")
            results[name] = [engine.mttkrp(factors, m).copy()
                             for m in range(four_mode_tensor.nmodes)]
            engine.close()
        for name in EXECUTORS[1:]:
            for m in range(four_mode_tensor.nmodes):
                np.testing.assert_array_equal(results["serial"][m],
                                              results[name][m])

    def test_repeated_calls_reuse_shared_buffers(self, small_tensor):
        # Steady state: the second sweep must not map new segments.
        factors = _factors(small_tensor.shape)
        engine = MTTKRPEngine(small_tensor, threads=2, slab_nnz_target=16,
                              executor="process")
        first = [engine.mttkrp(factors, m).copy()
                 for m in range(small_tensor.nmodes)]
        mapped = engine._arena.bytes_mapped
        second = [engine.mttkrp(factors, m).copy()
                  for m in range(small_tensor.nmodes)]
        assert engine._arena.bytes_mapped == mapped
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)
        engine.close()

    def test_call_log_records_executor_and_workers(self, small_tensor):
        factors = _factors(small_tensor.shape)
        engine = MTTKRPEngine(small_tensor, threads=3, slab_nnz_target=16,
                              executor="process")
        engine.mttkrp(factors, 0)
        stats = engine.call_log[-1]
        assert stats.executor == "process"
        assert stats.workers == 3
        engine.close()

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_full_fit_bit_identical(self, small_tensor, executor):
        kwargs = dict(rank=3, seed=5, max_outer_iterations=4,
                      slab_nnz_target=16, threads=4)
        baseline = repro.fit(small_tensor, executor="serial", **kwargs)
        other = repro.fit(small_tensor, executor=executor, **kwargs)
        for a, b in zip(baseline.factors, other.factors):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(baseline.trace.errors(),
                                      other.trace.errors())


# ----------------------------------------------------------------------
# Executor selection / registry
# ----------------------------------------------------------------------

class TestExecutorResolution:
    def test_names_resolve_to_singletons(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("thread"), ThreadExecutor)
        assert isinstance(get_executor("process"), ProcessExecutor)
        assert get_executor("thread") is get_executor("thread")

    def test_instance_resolves_to_itself(self):
        ex = SerialExecutor()
        assert resolve_executor(ex) is ex

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "serial")
        assert resolve_executor(None).name == "serial"
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "process")
        assert resolve_executor(None).name == "process"
        monkeypatch.delenv(EXECUTOR_ENV_VAR)
        assert resolve_executor(None).name == "thread"

    def test_unknown_name_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown executor"):
            get_executor("gpu")
        # Explicit names raise; a malformed *environment* value only
        # warns (once per value) and falls back to the default — a shell
        # typo must not crash every library call.
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "bogus")
        with pytest.warns(RuntimeWarning, match="malformed REPRO_EXECUTOR"):
            ex = resolve_executor(None)
        assert ex.name == DEFAULT_EXECUTOR
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second resolve: no re-warn
            assert resolve_executor(None).name == DEFAULT_EXECUTOR

    def test_options_validate_executor_name(self):
        with pytest.raises(ValueError, match="unknown executor"):
            AOADMMOptions(executor="bogus")
        assert AOADMMOptions(executor="process").executor == "process"

    def test_process_parallel_for_degrades_to_threads(self):
        # Closures cannot cross the process boundary: same semantics,
        # thread-pool execution, and no pool gets spawned for it.
        ex = ProcessExecutor()
        out = ex.parallel_for(lambda x: x * x, range(7), threads=2)
        assert out == [x * x for x in range(7)]
        assert not ex.spawned
        ex.close()


# ----------------------------------------------------------------------
# parallel_for input normalization (satellite: generators must work)
# ----------------------------------------------------------------------

class TestParallelForInputs:
    def test_threadpool_accepts_generators(self):
        gen = (i + 1 for i in range(8))
        assert thread_parallel_for(lambda x: 2 * x, gen, threads=3) \
            == [2 * (i + 1) for i in range(8)]

    def test_executor_parallel_for_accepts_generators(self):
        gen = (i * i for i in range(6))
        assert parallel_for(lambda x: x + 1, gen, threads=2,
                            executor="serial") \
            == [i * i + 1 for i in range(6)]

    def test_single_thread_matches_multi(self):
        items = list(range(13))
        one = thread_parallel_for(lambda x: x - 7, iter(items), threads=1)
        many = thread_parallel_for(lambda x: x - 7, iter(items), threads=4)
        assert one == many


class TestEffectiveThreadsWarning:
    def test_malformed_env_warns_once_per_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "lots")
        _WARNED_ENV_VALUES.discard("lots")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = effective_threads(None)
            effective_threads(None)
        assert first == (os.cpu_count() or 1)
        runtime = [w for w in caught
                   if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert "REPRO_NUM_THREADS" in str(runtime[0].message)

    def test_non_positive_env_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "0")
        _WARNED_ENV_VALUES.discard("0")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            effective_threads(None)
        assert any(issubclass(w.category, RuntimeWarning) for w in caught)

    def test_valid_values_do_not_warn(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "3")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert effective_threads(None) == 3
        assert not caught
        assert effective_threads(5) == 5


# ----------------------------------------------------------------------
# Pool fault tolerance (real SIGKILLs)
# ----------------------------------------------------------------------

class TestProcessPoolRecovery:
    def test_worker_death_mid_batch_is_recovered(self, tmp_path):
        # die_once SIGKILLs its worker on first execution and succeeds
        # on the resubmission — respawn + resubmit must deliver every
        # result.
        marker = str(tmp_path / "died")
        with ProcessPool(2) as pool:
            payloads = [{"value": i, "marker": marker} for i in range(6)]
            out = pool.submit_batch("repro.testing.proctasks:die_once",
                                    payloads)
            assert out == list(range(6))
            assert pool.respawns >= 1
            assert pool.recovered_batches >= 1
        assert os.path.exists(marker)

    def test_kill_at_dispatch_respawns(self):
        plan = WorkerKillPlan(at_dispatch=2, kills=1)
        with ProcessPool(2, fault_plan=plan) as pool:
            first = pool.submit_batch("repro.testing.proctasks:echo",
                                      [{"value": i} for i in range(4)])
            second = pool.submit_batch("repro.testing.proctasks:echo",
                                       [{"value": i} for i in range(4)])
        assert first == second == list(range(4))
        assert plan.killed_pids
        # The dead worker is replaced as soon as the wait loop notices
        # it; with a fast batch that may land after the results, so only
        # the deterministic facts are asserted (correctness + the kill
        # really happened).  Mid-batch respawn/resubmit is pinned down
        # by test_worker_death_mid_batch_is_recovered.

    def test_all_workers_killed_breaks_pool(self):
        # Killing every worker before dispatch leaves nothing to send
        # to — deterministically broken, no timing window.
        plan = WorkerKillPlan(at_dispatch=1, kills=2)
        with ProcessPool(2, fault_plan=plan) as pool:
            with pytest.raises(ProcessPoolBroken):
                pool.submit_batch("repro.testing.proctasks:echo",
                                  [{"value": i} for i in range(4)])

    def test_dying_workers_exhaust_respawn_budget(self):
        # Every task kills its worker, so deaths outpace any budget.
        with ProcessPool(2, respawn_budget=1) as pool:
            with pytest.raises(ProcessPoolBroken):
                pool.submit_batch("repro.testing.proctasks:die",
                                  [{"value": i} for i in range(4)])

    def test_worker_exception_propagates(self):
        with ProcessPool(1) as pool:
            with pytest.raises(WorkerTaskError, match="scheduled task"):
                pool.submit_batch("repro.testing.proctasks:raise_error",
                                  [{"message": "scheduled task failure"}])


class TestEngineFaultRecovery:
    def test_killed_worker_engine_result_identical(self, small_tensor):
        factors = _factors(small_tensor.shape)
        with MTTKRPEngine(small_tensor, threads=2, slab_nnz_target=16,
                          executor="serial") as ref_engine:
            reference = [ref_engine.mttkrp(factors, m).copy()
                         for m in range(small_tensor.nmodes)]
        plan = WorkerKillPlan(at_dispatch=2, kills=1)
        executor = ProcessExecutor(max_workers=2)
        executor.fault_plan = plan
        with MTTKRPEngine(small_tensor, threads=2, slab_nnz_target=16,
                          executor=executor) as engine:
            out = [engine.mttkrp(factors, m).copy()
                   for m in range(small_tensor.nmodes)]
            assert engine.executor_name == "process"  # no fallback
        for m in range(small_tensor.nmodes):
            np.testing.assert_array_equal(reference[m], out[m])
        assert plan.killed_pids
        executor.close()

    def test_broken_pool_falls_back_to_threads(self, small_tensor):
        factors = _factors(small_tensor.shape)
        with MTTKRPEngine(small_tensor, threads=2, slab_nnz_target=16,
                          executor="serial") as ref_engine:
            reference = [ref_engine.mttkrp(factors, m).copy()
                         for m in range(small_tensor.nmodes)]
        # Killing the whole pool at dispatch is deterministic: nothing
        # is left to finish the batch, so the engine must fall back.
        plan = WorkerKillPlan(at_dispatch=1, kills=2, relentless=True)
        executor = ProcessExecutor(max_workers=2, respawn_budget=1)
        executor.fault_plan = plan
        with MTTKRPEngine(small_tensor, threads=2, slab_nnz_target=16,
                          executor=executor) as engine:
            out = [engine.mttkrp(factors, m).copy()
                   for m in range(small_tensor.nmodes)]
            assert engine.executor_name == "thread"
            assert len(engine.executor_events) == 1
            event = engine.executor_events[0]
            assert event.kind == "worker_lost"
            assert event.action == "executor_fallback"
            stats = engine.call_log[0]
            assert stats.executor == "thread"  # post-fallback truth
        for m in range(small_tensor.nmodes):
            np.testing.assert_array_equal(reference[m], out[m])
        executor.close()

    def test_fit_survives_broken_pool(self, small_tensor):
        baseline = repro.fit(small_tensor, rank=3, seed=5,
                             max_outer_iterations=3, slab_nnz_target=16,
                             executor="serial")
        plan = WorkerKillPlan(at_dispatch=1, kills=2, relentless=True)
        executor = ProcessExecutor(max_workers=2, respawn_budget=1)
        executor.fault_plan = plan
        result = repro.fit(small_tensor, rank=3, seed=5,
                           max_outer_iterations=3, slab_nnz_target=16,
                           executor=executor)
        executor.close()
        for a, b in zip(baseline.factors, result.factors):
            np.testing.assert_array_equal(a, b)
        fallbacks = [e for e in result.trace.guard_log
                     if getattr(e, "action", "") == "executor_fallback"]
        assert len(fallbacks) == 1


# ----------------------------------------------------------------------
# Shared-memory hygiene
# ----------------------------------------------------------------------

class TestShmArena:
    def test_put_group_caches_and_aligns(self):
        gen = np.random.default_rng(1)
        arrays = {"a": gen.standard_normal(37),
                  "b": np.arange(11, dtype=np.int64)}
        with ShmArena(tag="t") as arena:
            handles = arena.put_group("g", arrays)
            assert arena.put_group("g", arrays) is handles  # cached
            assert len({h.segment for h in handles.values()}) == 1
            for h in handles.values():
                assert h.offset % 64 == 0
            for name, arr in arrays.items():
                np.testing.assert_array_equal(
                    arena._arrays[("group", "g", name)], arr)

    def test_update_reallocates_under_fresh_name(self):
        with ShmArena(tag="t") as arena:
            h1 = arena.update("f", np.zeros(8))
            h2 = arena.update("f", np.ones(8))
            assert h1.segment == h2.segment  # same shape: reused in place
            h3 = arena.update("f", np.ones(16))
            assert h3.segment != h1.segment  # resize: fresh unique name
            assert h1.segment not in arena.segment_names()

    def test_close_unlinks_everything(self):
        arena = ShmArena(tag="t")
        arena.update("x", np.zeros(32))
        names = arena.segment_names()
        assert names and all(n in _dev_shm_segments() for n in names)
        arena.close()
        arena.close()  # idempotent
        assert arena.segment_names() == []
        assert not any(n in _dev_shm_segments() for n in names)


class TestNoSegmentLeaks:
    def test_engine_close_releases_all_segments(self, small_tensor):
        factors = _factors(small_tensor.shape)
        engine = MTTKRPEngine(small_tensor, threads=2, slab_nnz_target=16,
                              executor="process")
        for m in range(small_tensor.nmodes):
            engine.mttkrp(factors, m)
        created = engine._arena.segment_names()
        assert created  # the offload really used shared memory
        engine.close()
        leftover = set(created) & set(_dev_shm_segments())
        assert not leftover
        assert not set(created) & set(active_segment_names())
