"""Tests for the future-work extensions: the analytical block-size model
and the cost-model-driven representation autotuner."""

import numpy as np
import pytest

from repro.admm import BlockSizeModel, recommend_block_size
from repro.machine import MachineSpec, PAPER_MACHINE
from repro.sparse import (
    FactorProfile,
    autotune_representation,
    price_representations,
)


class TestBlockSizeModel:
    def test_paper_regime_at_rank_50(self):
        """On the paper machine at rank 50 the recommendation lands in
        the tens of rows — the regime of the paper's empirical 50."""
        model = recommend_block_size(3_000_000, 50)
        assert 10 <= model.recommended <= 500

    def test_cache_bound_shrinks_with_rank(self):
        small = recommend_block_size(10**6, 10)
        large = recommend_block_size(10**6, 200)
        assert large.cache_bound < small.cache_bound

    def test_overhead_bound_grows_with_overhead(self):
        cheap = recommend_block_size(10**6, 50, per_block_overhead=1e-7)
        costly = recommend_block_size(10**6, 50, per_block_overhead=1e-4)
        assert costly.overhead_bound > cheap.overhead_bound

    def test_balance_bound_limits_short_modes(self):
        model = recommend_block_size(100, 50, threads=20)
        assert model.balance_bound <= 100 // 20

    def test_convergence_bound_tightens_with_row_variance(self):
        uniform = recommend_block_size(10**6, 50, iter_cv=0.0)
        skewed = recommend_block_size(10**6, 50, iter_cv=0.5)
        assert skewed.convergence_bound < uniform.convergence_bound

    def test_recommendation_within_rows(self):
        model = recommend_block_size(30, 50)
        assert 1 <= model.recommended <= 30

    def test_explain_mentions_all_bounds(self):
        text = recommend_block_size(10**5, 50).explain()
        for word in ("cache", "balance", "convergence"):
            assert word in text

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            recommend_block_size(0, 50)
        with pytest.raises(ValueError):
            recommend_block_size(100, 50, conv_waste=0.0)


class TestFactorProfile:
    def test_from_matrix(self, rng):
        mat = np.zeros((100, 10))
        mat[:, 0] = 1.0
        mat[:5, 1:] = 0.5
        p = FactorProfile.from_matrix(mat)
        assert p.rows == 100 and p.rank == 10
        assert 0 < p.density < 1
        assert p.dense_col_frac == pytest.approx(0.1)
        assert p.dense_col_share > 0.5

    def test_empty_matrix(self):
        p = FactorProfile.from_matrix(np.zeros((5, 3)))
        assert p.density == 0.0


class TestAutotune:
    def test_dense_factor_stays_dense(self, rng):
        mat = rng.uniform(size=(100_000, 50))
        assert autotune_representation(mat, 1e8) == "dense"

    def test_sparse_factor_leaves_dense(self, rng):
        mat = (rng.uniform(size=(500_000, 50)) < 0.02) * 1.0
        assert autotune_representation(mat, 1e8) != "dense"

    def test_concentrated_columns_prefer_hybrid(self, rng):
        mat = np.zeros((500_000, 50))
        mat[:, :2] = rng.uniform(size=(500_000, 2))        # 2 dense cols
        mat[:500, 2:] = rng.uniform(size=(500, 48))        # thin tail
        assert autotune_representation(mat, 9.5e7) == "csr-h"

    def test_flat_columns_prefer_csr(self, rng):
        mat = (rng.uniform(size=(2_000_000, 50)) < 0.03) * 1.0
        assert autotune_representation(mat, 1.7e9) == "csr"

    def test_price_fields_consistent(self, rng):
        profile = FactorProfile(rows=10**6, rank=50, density=0.05,
                                dense_col_frac=0.1, dense_col_share=0.6)
        costs = price_representations(profile, 1e8)
        assert costs.best in costs.as_dict() or costs.best == "csr-h"
        assert min(costs.as_dict().values()) == costs.as_dict()[
            "csr-h" if costs.best == "csr-h" else costs.best]
        assert costs.build_seconds > 0

    def test_few_accesses_never_justify_compression(self):
        """If the factor is barely read, the build cost dominates."""
        profile = FactorProfile(rows=10**6, rank=50, density=0.05,
                                dense_col_frac=0.1, dense_col_share=0.6)
        costs = price_representations(profile, accesses=10.0)
        assert costs.best == "dense"
