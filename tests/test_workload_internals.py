"""White-box tests for the machine workload descriptor builders."""

import numpy as np
import pytest

from repro.datasets import compressed_zipf_counts
from repro.machine.workload import (
    FactorizationWorkload,
    _block_profile,
    _itemize_bands,
)


class TestItemizeBands:
    def test_head_passthrough(self):
        counts = np.array([100.0, 50.0, 10.0])
        fibers = np.array([20.0, 10.0, 5.0])
        mult = np.array([1, 1, 1])
        nnz, fib = _itemize_bands(counts, fibers, mult)
        np.testing.assert_allclose(nnz, counts)
        np.testing.assert_allclose(fib, fibers)

    def test_band_mass_preserved(self):
        counts = np.array([100.0, 2.0])
        fibers = np.array([30.0, 1.5])
        mult = np.array([1, 1000])
        nnz, fib = _itemize_bands(counts, fibers, mult)
        assert nnz.sum() == pytest.approx(100.0 + 2.0 * 1000)
        assert fib.sum() == pytest.approx(30.0 + 1.5 * 1000)

    def test_band_items_bounded(self):
        counts = np.array([5.0])
        fibers = np.array([2.0])
        mult = np.array([10**6])
        nnz, _ = _itemize_bands(counts, fibers, mult, pieces_per_band=64)
        assert len(nnz) == 64
        # No fabricated mega-item: each piece carries 1/64 of the band.
        assert np.allclose(nnz, nnz[0])

    def test_small_band_not_oversplit(self):
        counts = np.array([5.0])
        fibers = np.array([2.0])
        mult = np.array([3])
        nnz, _ = _itemize_bands(counts, fibers, mult)
        assert len(nnz) == 3


class TestBlockProfile:
    def test_synthetic_profile_is_skew_driven(self):
        rows, iters = _block_profile(10_000, 1e6, 1.2, block_size=50,
                                     measured=None, inner_cap=50)
        assert rows.sum() == pytest.approx(10_000)
        # Heavy (early-rank) blocks iterate more than the tail.
        assert iters[0] > iters[-1]
        assert iters.max() <= 50 and iters.min() >= 1

    def test_uniform_rows_uniform_iters(self):
        _, iters = _block_profile(5_000, 1e6, 0.0, block_size=50,
                                  measured=None, inner_cap=50)
        assert np.allclose(iters, iters[0])

    def test_measured_profile_resampled(self):
        measured = np.array([2.0, 4.0, 4.0, 30.0])
        rows, iters = _block_profile(100_000, 1e6, 1.0, block_size=50,
                                     measured=measured, inner_cap=50)
        assert rows.sum() == pytest.approx(100_000)
        assert iters.min() >= 2.0 - 1e-9
        assert iters.max() <= 30.0 + 1e-9

    def test_band_compression_preserves_totals(self):
        rows, iters = _block_profile(10_000_000, 1e8, 1.1, block_size=50,
                                     measured=None, inner_cap=50,
                                     max_blocks=1000)
        assert len(rows) <= 1000
        assert rows.sum() == pytest.approx(10_000_000)
        assert (iters >= 1).all()


class TestWorkloadConsistency:
    def test_modes_reference_other_extents(self):
        wl = FactorizationWorkload.from_spec("reddit", rank=16)
        from repro.datasets import get_spec
        shape = get_spec("reddit").full_shape
        for m, mode in enumerate(wl.modes):
            assert mode.rows == shape[m]
            others = [shape[o] for o in range(3) if o != m]
            assert mode.mid_rows == others[0]
            assert mode.leaf_rows == others[-1]

    def test_fibers_bounded_by_nnz_and_universe(self):
        wl = FactorizationWorkload.from_spec("patents", rank=16)
        for mode in wl.modes:
            assert (mode.slice_fibers <= mode.slice_nnz + 1e-6).all()
            total_fibers = mode.slice_fibers.sum()
            assert total_fibers <= mode.rows * mode.mid_rows + 1e-6

    def test_block_rows_cover_mode(self):
        wl = FactorizationWorkload.from_spec("nell", rank=16)
        for m, mode in enumerate(wl.modes):
            assert mode.block_rows.sum() == pytest.approx(mode.rows)

    def test_inner_iters_scalar_or_list(self):
        a = FactorizationWorkload.from_spec("reddit", rank=8,
                                            inner_iters=5.0)
        b = FactorizationWorkload.from_spec("reddit", rank=8,
                                            inner_iters=[5.0, 6.0, 7.0])
        assert a.modes[0].inner_iters == 5.0
        assert b.modes[2].inner_iters == 7.0
        with pytest.raises(ValueError):
            FactorizationWorkload.from_spec("reddit", rank=8,
                                            inner_iters=[1.0, 2.0])
