"""Tests for the measured-cost MTTKRP backend autotuner.

The autotuner's contract has two halves, and both are covered here:

* **selection is performance-only** — whatever mode (`off` / `model` /
  `measure`), executor, or cache state, ``method="auto"`` and tuned
  engines are bit-identical to the untuned csf anchor, because every
  candidate is a csf-family slab plan;
* **the machinery is deterministic and resilient** — calibration under
  a pinned fake clock always makes the same decision, the tuning cache
  round-trips and invalidates on fingerprint change, and corruption
  (file- or entry-level) is quarantined and re-measured, never fatal.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

import repro
from repro.config import DEFAULT_SLAB_NNZ
from repro.kernels.autotune import (
    TUNE_ENV_VAR,
    BackendAutotuner,
    ModeDecision,
    TuningCache,
    cache_key,
    candidate_backends,
    default_cache_path,
    resolve_tune_mode,
)
from repro.kernels.dispatch import MTTKRPEngine, make_engine, mttkrp
from repro.observability import MetricsRegistry
from repro.observability.state import set_active_registry
from repro.tensor.random import random_coo, random_factors
from repro.tensor.tiling import root_prefix_tree

RANK = 4


@pytest.fixture
def tensor():
    return random_coo((40, 30, 20), nnz=2500, seed=5)


@pytest.fixture
def tree(tensor):
    engine = MTTKRPEngine(tensor)
    engine.trees.build_all()
    yield engine.trees.csf(0)
    engine.close()


@pytest.fixture
def factors(tensor):
    return random_factors(tensor.shape, RANK, seed=9)


class FakeClock:
    """A clock whose reported durations are scripted, not measured."""

    def __init__(self, deltas):
        self.deltas = list(deltas)
        self.now = 0.0
        self.calls = 0

    def __call__(self) -> float:
        # Called in (tick, tock) pairs: advance by the next scripted
        # delta on every tock.
        if self.calls % 2 == 1:
            self.now += self.deltas[(self.calls // 2) % len(self.deltas)]
        self.calls += 1
        return self.now


# ---------------------------------------------------------------------------
# mode resolution & candidates
# ---------------------------------------------------------------------------

class TestResolveTuneMode:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(TUNE_ENV_VAR, "measure")
        assert resolve_tune_mode("off") == "off"

    def test_explicit_invalid_raises(self):
        with pytest.raises(ValueError, match="unknown tune mode"):
            resolve_tune_mode("fastest")

    def test_env_resolution_and_default(self, monkeypatch):
        monkeypatch.delenv(TUNE_ENV_VAR, raising=False)
        assert resolve_tune_mode() == "model"
        monkeypatch.setenv(TUNE_ENV_VAR, "measure")
        assert resolve_tune_mode() == "measure"

    def test_malformed_env_warns_once_per_value(self, monkeypatch):
        from repro.kernels import autotune as autotune_mod
        monkeypatch.setattr(autotune_mod, "_WARNED_ENV_VALUES", set())
        monkeypatch.setenv(TUNE_ENV_VAR, "turbo")
        with pytest.warns(RuntimeWarning, match=TUNE_ENV_VAR):
            assert resolve_tune_mode() == "model"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_tune_mode() == "model"
        monkeypatch.setenv(TUNE_ENV_VAR, "ludicrous")
        with pytest.warns(RuntimeWarning, match="ludicrous"):
            assert resolve_tune_mode() == "model"

    def test_cache_path_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "t.json"))
        assert default_cache_path() == tmp_path / "t.json"


class TestCandidates:
    def test_dedupes_by_slab_count(self):
        # 2500 nnz: every ladder rung >= 2500 collapses to one slab.
        cands = candidate_backends(2500, 40)
        counts = [c.n_slabs for c in cands]
        assert len(counts) == len(set(counts))
        assert all(c.n_slabs >= 1 for c in cands)

    def test_default_target_always_a_rung(self):
        cands = candidate_backends(10_000_000, 100_000, ladder=(512,))
        assert any(c.slab_nnz_target == DEFAULT_SLAB_NNZ for c in cands)

    def test_empty_tree_has_no_candidates(self):
        assert candidate_backends(0, 0) == []

    def test_requested_count_bounds_tiling(self, tree):
        # n_slabs is the *requested* count (ceil(nnz/target) capped at
        # nslices); balanced_chunks may merge cuts on skewed trees, so
        # the realized count is bounded by — and a pure function of —
        # the request.
        from repro.tensor.tiling import CSFTiling
        for cand in candidate_backends(tree.nnz, tree.nslices,
                                       ladder=(64, 500, 10_000)):
            tiling = CSFTiling(tree, slab_nnz_target=cand.slab_nnz_target)
            assert 1 <= tiling.slab_count <= cand.n_slabs
            again = CSFTiling(tree, n_slabs=cand.n_slabs)
            assert again.slab_count == tiling.slab_count


class TestRootPrefixTree:
    def test_whole_tree_when_cap_covers(self, tree):
        assert root_prefix_tree(tree, tree.nnz) is tree

    def test_prefix_is_root_slice_aligned(self, tree):
        prefix = root_prefix_tree(tree, 200)
        assert 200 <= prefix.nnz < tree.nnz
        assert prefix.nslices < tree.nslices
        # The prefix is the same leading slices: leaf values agree.
        np.testing.assert_array_equal(prefix.vals,
                                      tree.vals[:prefix.nnz])

    def test_rejects_nonpositive_cap(self, tree):
        with pytest.raises(ValueError, match="positive"):
            root_prefix_tree(tree, 0)


# ---------------------------------------------------------------------------
# calibration determinism (fake clock)
# ---------------------------------------------------------------------------

class TestCalibration:
    LADDER = (64, 500, 10_000)

    def _tuner(self, clock, cache=None):
        return BackendAutotuner(mode="measure", cache=cache,
                                ladder=self.LADDER, min_probe_nnz=0,
                                probe_repeats=1, clock=clock)

    def test_fake_clock_is_deterministic(self, tree):
        deltas = (0.030, 0.010, 0.020)
        d1 = self._tuner(FakeClock(deltas)).decide_tree(tree, 0, RANK)
        d2 = self._tuner(FakeClock(deltas)).decide_tree(tree, 0, RANK)
        assert d1.source == d2.source == "measure"
        assert d1.backend == d2.backend
        assert d1.probe_seconds == d2.probe_seconds
        assert d1.probe_nnz == d2.probe_nnz > 0

    @pytest.mark.parametrize("winner", [0, 1, 2])
    def test_crafted_clock_picks_crafted_winner(self, tree, winner):
        # One timed run per candidate, in ladder order: give the
        # crafted winner the smallest scripted duration.
        deltas = [0.5 if i != winner else 0.001
                  for i in range(len(self.LADDER))]
        cands = candidate_backends(tree.nnz, tree.nslices, self.LADDER)
        assert len(cands) == len(self.LADDER)  # no dedupe on this tree
        decision = self._tuner(FakeClock(deltas)).decide_tree(tree, 0, RANK)
        assert decision.backend == cands[winner].name

    def test_probe_floor_falls_back_to_model(self, tree):
        tuner = BackendAutotuner(mode="measure", cache=None,
                                 ladder=self.LADDER,
                                 min_probe_nnz=tree.nnz + 1)
        decision = tuner.decide_tree(tree, 0, RANK)
        assert decision.source == "model"
        assert decision.probe_seconds == {}

    def test_model_mode_never_calls_clock(self, tree):
        clock = FakeClock([1.0])
        tuner = BackendAutotuner(mode="model", ladder=self.LADDER,
                                 clock=clock)
        decision = tuner.decide_tree(tree, 0, RANK)
        assert decision.source == "model"
        assert clock.calls == 0


# ---------------------------------------------------------------------------
# the tuning cache
# ---------------------------------------------------------------------------

class TestTuningCache:
    LADDER = (64, 500, 10_000)

    def _tuner(self, path, deltas=(0.030, 0.010, 0.020)):
        return BackendAutotuner(mode="measure", cache=TuningCache(path),
                                ladder=self.LADDER, min_probe_nnz=0,
                                probe_repeats=1, clock=FakeClock(deltas))

    def test_round_trip_hits_cache(self, tree, tmp_path):
        path = tmp_path / "cache.json"
        first = self._tuner(path).decide_tree(tree, 0, RANK,
                                              fingerprint="fp-a")
        assert first.source == "measure"
        again = self._tuner(path).decide_tree(tree, 0, RANK,
                                              fingerprint="fp-a")
        assert again.source == "cache"
        assert again.backend == first.backend
        assert again.probe_seconds == pytest.approx(first.probe_seconds)

    def test_fingerprint_change_invalidates(self, tree, tmp_path):
        path = tmp_path / "cache.json"
        self._tuner(path).decide_tree(tree, 0, RANK, fingerprint="fp-a")
        fresh = self._tuner(path).decide_tree(tree, 0, RANK,
                                              fingerprint="fp-b")
        assert fresh.source == "measure"

    def test_key_covers_mode_rank_threads_executor(self):
        keys = {cache_key("fp", 0, 4, 1, "serial"),
                cache_key("fp", 1, 4, 1, "serial"),
                cache_key("fp", 0, 8, 1, "serial"),
                cache_key("fp", 0, 4, 2, "serial"),
                cache_key("fp", 0, 4, 1, "thread")}
        assert len(keys) == 5

    def test_corrupt_file_quarantined_and_remeasured(self, tree, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{definitely not json", encoding="utf-8")
        tuner = self._tuner(path)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            decision = tuner.decide_tree(tree, 0, RANK, fingerprint="fp-a")
        assert decision.source == "measure"
        assert tuner.cache.quarantined == 1
        assert (tmp_path / "cache.json.corrupt").exists()
        # The re-measured decision was persisted into a fresh file.
        assert json.loads(path.read_text())

    def test_corrupt_entry_quarantined_and_remeasured(self, tree, tmp_path):
        path = tmp_path / "cache.json"
        first = self._tuner(path).decide_tree(tree, 0, RANK,
                                              fingerprint="fp-a")
        data = json.loads(path.read_text())
        (key,) = data.keys()
        data[key] = {"backend": 42, "slab_nnz_target": -1}
        path.write_text(json.dumps(data), encoding="utf-8")
        tuner = self._tuner(path)
        with pytest.warns(RuntimeWarning, match="re-measuring"):
            decision = tuner.decide_tree(tree, 0, RANK, fingerprint="fp-a")
        assert decision.source == "measure"
        assert decision.backend == first.backend
        assert tuner.cache.quarantined == 1
        # ... and the repaired entry now round-trips.
        assert self._tuner(path).decide_tree(
            tree, 0, RANK, fingerprint="fp-a").source == "cache"


# ---------------------------------------------------------------------------
# bit-identity: the whole point
# ---------------------------------------------------------------------------

class TestBitIdentity:
    def test_stateless_auto_matches_csf_across_tune_modes(
            self, tensor, factors, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "c.json"))
        anchor = mttkrp(tensor, factors, 0, method="csf")
        for mode in ("off", "model", "measure"):
            monkeypatch.setenv(TUNE_ENV_VAR, mode)
            out = mttkrp(tensor, factors, 0, method="auto")
            np.testing.assert_array_equal(out, anchor)

    def test_auto_is_the_dispatch_default(self, tensor, factors):
        np.testing.assert_array_equal(
            mttkrp(tensor, factors, 1),
            mttkrp(tensor, factors, 1, method="auto"))

    @pytest.mark.parametrize("tune", ["off", "model", "measure"])
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_tuned_engines_match_untuned_anchor(
            self, tensor, factors, tune, executor, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "c.json"))
        anchor_engine = make_engine(tensor, tune="off")
        engine = make_engine(tensor, rank=RANK, tune=tune,
                             executor=executor)
        try:
            for mode in range(tensor.nmodes):
                np.testing.assert_array_equal(
                    np.array(engine.mttkrp(factors, mode), copy=True),
                    np.array(anchor_engine.mttkrp(factors, mode),
                             copy=True))
        finally:
            engine.close()
            anchor_engine.close()

    def test_fit_bit_identical_across_tune_modes(self, tensor,
                                                 monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "c.json"))
        results = [repro.fit(tensor, rank=3, seed=11,
                             max_outer_iterations=3, tune=mode)
                   for mode in ("off", "model", "measure")]
        for other in results[1:]:
            for a, b in zip(results[0].factors, other.factors):
                np.testing.assert_array_equal(a, b)


# ---------------------------------------------------------------------------
# engine wiring
# ---------------------------------------------------------------------------

class TestEngineWiring:
    def test_make_engine_tunes_when_rank_given(self, tensor):
        engine = make_engine(tensor, rank=RANK, tune="model")
        try:
            assert engine.tuning is not None
            assert engine.tuning.tune_mode == "model"
            for decision in engine.tuning.decisions:
                tiling = engine.tiling(decision.mode)
                assert tiling.slab_nnz_target == decision.slab_nnz_target
        finally:
            engine.close()

    def test_explicit_slab_target_pins(self, tensor):
        engine = make_engine(tensor, rank=RANK, slab_nnz_target=100)
        try:
            assert engine.tuning is None
        finally:
            engine.close()

    def test_no_rank_no_tuning(self, tensor):
        engine = make_engine(tensor)
        try:
            assert engine.tuning is None
        finally:
            engine.close()

    def test_tune_off_disables(self, tensor):
        engine = make_engine(tensor, rank=RANK, tune="off")
        try:
            assert engine.tuning is None
        finally:
            engine.close()

    def test_apply_tuning_after_tiling_rejected(self, tensor):
        engine = make_engine(tensor, rank=RANK, tune="model")
        report = engine.tuning
        engine.tiling(0)
        with pytest.raises(ValueError, match="before any tiling"):
            engine.apply_tuning(report)
        engine.close()

    def test_streaming_engine_never_tuned(self, tensor, tmp_path):
        from repro.tensor.store import ShardedTensorStore
        store = ShardedTensorStore.create(tensor, tmp_path / "store")
        try:
            engine = make_engine(store, rank=RANK, tune="model")
            assert not hasattr(engine, "tuning") or engine.tuning is None
            engine.close()
        finally:
            store.close()

    def test_options_validate_tune(self):
        from repro.core.options import AOADMMOptions
        with pytest.raises(ValueError, match="tune mode"):
            AOADMMOptions(tune="fastest")


# ---------------------------------------------------------------------------
# observability & CLI
# ---------------------------------------------------------------------------

class TestTelemetryAndCli:
    def test_tune_metrics_recorded(self, tree, tmp_path):
        registry = MetricsRegistry(enabled=True)
        previous = set_active_registry(registry)
        try:
            tuner = BackendAutotuner(
                mode="measure", cache=TuningCache(tmp_path / "c.json"),
                ladder=(64, 500, 10_000), min_probe_nnz=0,
                probe_repeats=1, clock=FakeClock([0.01, 0.02, 0.03]))
            tuner.decide_tree(tree, 0, RANK, fingerprint="fp")
        finally:
            set_active_registry(previous)
        snap = registry.snapshot()
        assert any(k.startswith("tune_probes") for k in snap["counters"])
        assert any(k.startswith("tune_decisions") and "source=measure" in k
                   for k in snap["counters"])
        assert any(k.startswith("tune_slab_nnz_target")
                   for k in snap["gauges"])
        assert any("span=tune" in k for k in snap["histograms"])

    def test_quarantine_metric_recorded(self, tmp_path):
        registry = MetricsRegistry(enabled=True)
        previous = set_active_registry(registry)
        try:
            path = tmp_path / "c.json"
            path.write_text("not json", encoding="utf-8")
            with pytest.warns(RuntimeWarning):
                TuningCache(path).get("anything")
        finally:
            set_active_registry(previous)
        counters = registry.snapshot()["counters"]
        assert any(k.startswith("tune_cache_quarantined")
                   for k in counters)

    def test_cli_tune_report(self, tensor, tmp_path, capsys):
        from repro.cli import main
        from repro.tensor.io import write_tns
        tns = tmp_path / "t.tns"
        write_tns(tensor, tns)
        code = main(["tune", str(tns), "--rank", "4", "--repeats", "1",
                     "--cache", str(tmp_path / "c.json")])
        out = capsys.readouterr().out
        assert code == 0
        assert "tune mode=measure" in out
        assert "chosen" in out

    def test_cli_factorize_accepts_tune_flag(self, tensor, tmp_path,
                                             capsys):
        from repro.cli import main
        from repro.tensor.io import write_tns
        tns = tmp_path / "t.tns"
        write_tns(tensor, tns)
        code = main(["factorize", str(tns), "--rank", "3",
                     "--max-iterations", "2", "--tune", "model"])
        assert code == 0
        assert "stopped:" in capsys.readouterr().out

    def test_report_table_marks_probes(self, tree, tmp_path):
        tuner = BackendAutotuner(
            mode="measure", cache=TuningCache(tmp_path / "c.json"),
            ladder=(64, 500, 10_000), min_probe_nnz=0, probe_repeats=1,
            clock=FakeClock([0.01, 0.02, 0.03]))
        decision = tuner.decide_tree(tree, 0, RANK, fingerprint="fp")
        from repro.kernels.autotune import TuningReport
        report = TuningReport(tune_mode="measure", rank=RANK, threads=1,
                              executor="serial", fingerprint="fp" * 6,
                              decisions=(decision,))
        table = report.format_table()
        assert "ms*" in table  # probe-extrapolated cells are starred
        assert decision.backend in table
