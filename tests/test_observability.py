"""Tests for the observability substrate and the ``repro.fit`` façade."""

import time

import numpy as np
import pytest

import repro
from repro.observability import (
    ITERATION_BUCKETS,
    MetricsRegistry,
    Observability,
    StageClock,
    Stopwatch,
    current_span_path,
    empty_snapshot,
    render_key,
    span,
)
from repro.observability.export import (
    parse_key,
    prometheus_text,
    read_jsonl,
    report,
    write_jsonl,
)
from repro.observability.state import set_active_registry
from repro.parallel.threadpool import parallel_for
from repro.tensor import noisy_lowrank_coo


@pytest.fixture
def registry():
    """A fresh enabled registry installed as the active one."""
    reg = MetricsRegistry(enabled=True)
    previous = set_active_registry(reg)
    try:
        yield reg
    finally:
        set_active_registry(previous)


def small_tensor():
    tensor, _ = noisy_lowrank_coo((25, 20, 15), rank=3, nnz=1500, seed=7)
    return tensor


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_counter_gauge_histogram_snapshot(self, registry):
        registry.counter("calls", mode=0).inc()
        registry.counter("calls", mode=0).inc(2)
        registry.counter("calls", mode=1).inc()
        registry.gauge("ratio").set(0.25)
        h = registry.histogram("iters", buckets=ITERATION_BUCKETS)
        for v in (1, 2, 50):
            h.observe(v)

        snap = registry.snapshot()
        assert snap["counters"][render_key("calls", {"mode": 0})] == 3
        assert snap["counters"][render_key("calls", {"mode": 1})] == 1
        assert snap["gauges"]["ratio"] == 0.25
        hist = snap["histograms"]["iters"]
        assert hist["count"] == 3
        assert hist["sum"] == 53
        assert hist["min"] == 1 and hist["max"] == 50

    def test_reset_clears_everything(self, registry):
        registry.counter("c").inc()
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(0.5)
        registry.reset()
        assert registry.snapshot() == empty_snapshot()

    def test_snapshot_is_a_copy(self, registry):
        registry.counter("c").inc()
        snap = registry.snapshot()
        registry.counter("c").inc()
        assert snap["counters"]["c"] == 1

    def test_disabled_registry_returns_noops(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("c").inc()
        reg.gauge("g").set(3.0)
        reg.histogram("h").observe(1.0)
        assert reg.snapshot() == empty_snapshot()

    def test_histogram_bucket_edges(self, registry):
        h = registry.histogram("h", buckets=(1, 2, 5))
        for v in (1, 2, 3, 10):
            h.observe(v)
        hist = registry.snapshot()["histograms"]["h"]
        # le-1, le-2, le-5, +inf
        assert hist["counts"] == [1, 1, 1, 1]


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------

class TestSpans:
    def test_nesting_builds_paths(self, registry):
        with span("outer"):
            assert current_span_path() == "outer"
            with span("inner"):
                assert current_span_path() == "outer/inner"
            assert current_span_path() == "outer"
        assert current_span_path() is None

        keys = registry.snapshot()["histograms"]
        assert any("span=outer" in k for k in keys)
        assert any("span=outer/inner" in k for k in keys)

    def test_span_nesting_across_thread_pool(self, registry):
        """Worker threads keep independent nesting stacks."""
        def work(i):
            with span("worker"):
                with span("step"):
                    assert current_span_path() == "worker/step"
            return i

        results = parallel_for(work, list(range(16)), threads=4)
        assert sorted(results) == list(range(16))
        hists = registry.snapshot()["histograms"]
        key = next(k for k in hists if "span=worker/step" in k)
        assert hists[key]["count"] == 16

    def test_disabled_span_is_shared_noop(self):
        reg = MetricsRegistry(enabled=False)
        previous = set_active_registry(reg)
        try:
            a = span("x")
            b = span("y")
            assert a is b  # the shared NULL_SPAN — no allocation
            with a:
                assert current_span_path() is None
        finally:
            set_active_registry(previous)


# ---------------------------------------------------------------------------
# timing substrate (always-on, feeds the trace)
# ---------------------------------------------------------------------------

class TestClocks:
    def test_stopwatch_measures(self):
        with Stopwatch() as w:
            time.sleep(0.001)
        assert w.seconds > 0.0

    def test_stageclock_accumulates_when_disabled(self):
        """Trace timing must work regardless of observability state."""
        reg = MetricsRegistry(enabled=False)
        previous = set_active_registry(reg)
        try:
            clock = StageClock()
            with clock.stage("mttkrp"):
                pass
            with clock.stage("mttkrp"):
                pass
            with clock.stage("admm"):
                pass
            assert set(clock.totals()) == {"mttkrp", "admm"}
            assert clock.seconds("mttkrp") >= 0.0
            clock.reset()
            assert clock.totals() == {}
        finally:
            set_active_registry(previous)


# ---------------------------------------------------------------------------
# disabled-mode overhead
# ---------------------------------------------------------------------------

class TestDisabledOverhead:
    def test_noop_fast_path_bound(self):
        """Disabled instrumentation costs within ~an order of magnitude of
        an empty loop (generous bound: CI machines are noisy)."""
        reg = MetricsRegistry(enabled=False)
        previous = set_active_registry(reg)
        try:
            n = 20_000

            start = time.perf_counter()
            for _ in range(n):
                pass
            baseline = time.perf_counter() - start

            start = time.perf_counter()
            for _ in range(n):
                reg.counter("c").inc()
                with span("s"):
                    pass
            instrumented = time.perf_counter() - start
        finally:
            set_active_registry(previous)

        # Micro-benchmark in CI enforces the real budget; this is a
        # smoke-level sanity bound (~2.5us per op pair at the default).
        assert instrumented - baseline < max(50 * baseline, 0.05)


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------

class TestExporters:
    def fill(self, registry):
        registry.counter("mttkrp_calls", mode=0, representation="dense").inc(4)
        registry.gauge("slab_imbalance").set(1.5)
        h = registry.histogram("admm_inner_iterations",
                               buckets=ITERATION_BUCKETS, mode=1)
        for v in (1, 3, 8, 21):
            h.observe(v)

    def test_jsonl_round_trip(self, registry, tmp_path):
        self.fill(registry)
        snap = registry.snapshot()
        path = write_jsonl(snap, tmp_path / "metrics.jsonl")
        assert read_jsonl(path) == snap

    def test_render_parse_key_inverse(self):
        key = render_key("m", {"mode": 2, "representation": "csr-h"})
        name, labels = parse_key(key)
        assert name == "m"
        assert labels == {"mode": "2", "representation": "csr-h"}

    def test_report_table(self, registry):
        self.fill(registry)
        text = report(registry.snapshot())
        assert "mttkrp_calls" in text
        assert "slab_imbalance" in text
        assert "admm_inner_iterations" in text

    def test_prometheus_text(self, registry):
        self.fill(registry)
        text = prometheus_text(registry.snapshot())
        assert "repro_mttkrp_calls_total" in text
        assert 'le="+Inf"' in text
        assert "repro_admm_inner_iterations_count" in text


# ---------------------------------------------------------------------------
# instrumented runs
# ---------------------------------------------------------------------------

class TestInstrumentedRun:
    def test_fit_records_paper_signals(self):
        tensor = small_tensor()
        result = repro.fit(tensor, rank=3, seed=0, max_outer_iterations=4,
                           observe=True)
        counters = result.metrics["counters"]
        hists = result.metrics["histograms"]

        assert any(k.startswith("outer_iterations") for k in counters)
        assert any(k.startswith("mttkrp_calls") for k in counters)
        assert any(k.startswith("admm_block_solves") for k in counters)
        # per-block inner-iteration histograms: the non-uniform
        # convergence signal (paper §III-B / §IV-B).
        assert any(k.startswith("admm_inner_iterations") for k in hists)
        assert any("span=aoadmm.iteration" in k for k in hists)

    def test_cache_hit_counter(self):
        """Memoized CSF trees report hits instead of dropping stats."""
        tensor = small_tensor()
        from repro.kernels.dispatch import mttkrp

        factors = [np.random.default_rng(0).random((s, 3))
                   for s in tensor.shape]
        handle = Observability()
        with handle.activate():
            mttkrp(tensor, factors, 0, method="csf")
            mttkrp(tensor, factors, 0, method="csf")
        counters = handle.snapshot()["counters"]
        hits = sum(v for k, v in counters.items()
                   if k.startswith("mttkrp_csf_method_cache_hits"))
        misses = sum(v for k, v in counters.items()
                     if k.startswith("mttkrp_csf_method_cache_misses"))
        assert misses >= 1
        assert hits >= 1


# ---------------------------------------------------------------------------
# the repro.fit façade
# ---------------------------------------------------------------------------

class TestFitFacade:
    @pytest.mark.parametrize("blocked", [True, False])
    def test_bit_identical_to_direct_call(self, blocked):
        tensor = small_tensor()
        opts = repro.AOADMMOptions(rank=3, seed=0, max_outer_iterations=5,
                                   blocked=blocked)
        direct = repro.fit_aoadmm(tensor, opts)
        via = repro.fit(tensor, rank=3, seed=0, max_outer_iterations=5,
                        blocked=blocked)
        for a, b in zip(direct.model.factors, via.factors):
            np.testing.assert_array_equal(a, b)
        assert via.stop_reason == direct.stop_reason
        assert via.converged == direct.converged
        np.testing.assert_array_equal(via.trace.errors(),
                                      direct.trace.errors())

    @pytest.mark.parametrize("method", ["als", "mu", "pgd"])
    def test_baseline_methods(self, method):
        tensor = small_tensor()
        result = repro.fit(tensor, rank=3, seed=0, max_outer_iterations=3,
                           method=method)
        assert result.method == method
        assert result.iterations == 3
        assert np.isfinite(result.relative_error)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            repro.fit(small_tensor(), rank=3, method="sgd")

    def test_observe_modes(self):
        tensor = small_tensor()
        off = repro.fit(tensor, rank=3, seed=0, max_outer_iterations=2,
                        observe=False)
        assert off.metrics == empty_snapshot()

        handle = Observability()
        r = repro.fit(tensor, rank=3, seed=0, max_outer_iterations=2,
                      observe=handle)
        assert r.metrics == handle.snapshot()
        assert r.metrics["counters"]

    def test_legacy_kwargs_warn_and_translate(self):
        tensor = small_tensor()
        with pytest.warns(DeprecationWarning, match="flat keyword"):
            result = repro.fit_aoadmm(tensor, n_components=3, random_state=0,
                                      max_iter=2, use_blocked=False)
        assert result.options.rank == 3
        assert result.options.blocked is False
        assert len(result.trace) == 2

    def test_options_from_kwargs_unknown_name(self):
        with pytest.raises(ValueError, match="not an AOADMMOptions field"):
            repro.options_from_kwargs(bogus=1)

    def test_load_tns_alias(self):
        # load_tns routes through the unified open_tensor front door;
        # the historical read/write spellings stay importable but warn.
        import warnings

        from repro.tensor.io import read_tns, write_tns
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert repro.load_tns is not None
            assert repro.save_tns is write_tns
        with pytest.warns(DeprecationWarning, match="open_tensor"):
            assert repro.read_tns is read_tns
        with pytest.warns(DeprecationWarning, match="save_tns"):
            assert repro.write_tns is write_tns
