"""Unit tests for the CSF data structure."""

import numpy as np
import pytest

from repro.tensor import COOTensor, CSFTensor, random_coo
from repro.tensor.csf import AllModeCSF, default_mode_order


class TestConstruction:
    def test_round_trip_default_order(self, small_tensor):
        csf = CSFTensor.from_coo(small_tensor)
        assert csf.to_coo() == small_tensor

    @pytest.mark.parametrize("order", [(0, 1, 2), (1, 0, 2), (2, 1, 0),
                                       (1, 2, 0)])
    def test_round_trip_any_order(self, small_tensor, order):
        csf = CSFTensor.from_coo(small_tensor, order)
        assert csf.to_coo() == small_tensor

    def test_round_trip_four_modes(self, four_mode_tensor):
        csf = CSFTensor.from_coo(four_mode_tensor, (2, 0, 3, 1))
        assert csf.to_coo() == four_mode_tensor

    def test_rejects_bad_order(self, small_tensor):
        with pytest.raises(ValueError, match="permutation"):
            CSFTensor.from_coo(small_tensor, (0, 0, 1))

    def test_empty_tensor(self):
        t = COOTensor(np.empty((3, 0), dtype=np.int64), np.empty(0),
                      (4, 5, 6))
        csf = CSFTensor.from_coo(t)
        assert csf.nnz == 0
        assert csf.to_coo().nnz == 0

    def test_matrix_csf_matches_csr_structure(self):
        # A 2-mode CSF is exactly CSR: roots = rows, leaves = entries.
        t = COOTensor.from_arrays(
            [np.array([0, 0, 2]), np.array([1, 3, 0])],
            np.array([1.0, 2.0, 3.0]), shape=(3, 4))
        csf = CSFTensor.from_coo(t)
        assert csf.nslices == 2  # rows 0 and 2
        np.testing.assert_array_equal(csf.fids[0], [0, 2])
        np.testing.assert_array_equal(csf.fptr[0], [0, 2, 3])
        np.testing.assert_array_equal(csf.fids[1], [1, 3, 0])


class TestStructure:
    def test_node_counts_decrease_toward_root(self, small_tensor):
        csf = CSFTensor.from_coo(small_tensor)
        counts = [csf.nnodes(l) for l in range(csf.nmodes)]
        assert counts[-1] == small_tensor.nnz
        assert all(counts[i] <= counts[i + 1] for i in range(len(counts) - 1))

    def test_fptr_covers_children_exactly(self, small_tensor):
        csf = CSFTensor.from_coo(small_tensor)
        for level in range(csf.nmodes - 1):
            fptr = csf.fptr[level]
            assert fptr[0] == 0
            assert fptr[-1] == csf.nnodes(level + 1)
            assert (np.diff(fptr) >= 1).all()  # no empty nodes

    def test_fibers_and_slices(self, small_tensor):
        csf = CSFTensor.from_coo(small_tensor)
        assert csf.nslices == len(np.unique(small_tensor.coords[0]))
        # Fibers = distinct (i, j) pairs.
        pairs = set(zip(small_tensor.coords[0], small_tensor.coords[1]))
        assert csf.nfibers == len(pairs)

    def test_storage_bytes_positive(self, small_tensor):
        csf = CSFTensor.from_coo(small_tensor)
        assert csf.storage_bytes() > small_tensor.nnz * 8

    def test_expand_to_level(self, small_tensor):
        csf = CSFTensor.from_coo(small_tensor)
        ones = np.ones(csf.nnodes(0))
        leaves = csf.expand_to_level(ones, 0, csf.nmodes - 1)
        assert leaves.shape[0] == csf.nnz

    def test_duplicate_coordinates_become_duplicate_leaves(self):
        t = COOTensor.from_arrays(
            [np.array([0, 0]), np.array([1, 1]), np.array([2, 2])],
            np.array([1.0, 2.0]), shape=(1, 2, 3))
        csf = CSFTensor.from_coo(t)
        assert csf.nnz == 2  # not merged: caller must deduplicate


class TestAllMode:
    def test_lazy_build_and_cache(self, small_tensor):
        trees = AllModeCSF(small_tensor)
        a = trees.csf(1)
        b = trees.csf(1)
        assert a is b
        assert a.mode_order[0] == 1

    def test_build_all(self, small_tensor):
        trees = AllModeCSF(small_tensor).build_all()
        assert trees.storage_bytes() > 0
        for m in range(3):
            assert trees.csf(m).mode_order == default_mode_order(3, m)

    def test_default_mode_order(self):
        assert default_mode_order(4, 2) == (2, 0, 1, 3)
        assert default_mode_order(3, 0) == (0, 1, 2)
        with pytest.raises(ValueError):
            default_mode_order(3, 5)
