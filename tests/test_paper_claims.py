"""Fast integration tests encoding the paper's qualitative claims.

The benchmarks assert these at evaluation scale; these tiny-scale
versions keep the claims continuously verified by the unit suite.
"""

import numpy as np
import pytest

from repro import AOADMMOptions, fit_aoadmm, init_factors
from repro.constraints import NonNegativeL1
from repro.datasets import load_dataset
from repro.kernels.dispatch import MTTKRPEngine


@pytest.fixture(scope="module")
def reddit_tiny():
    return load_dataset("reddit", "tiny", seed=99)[0]


@pytest.fixture(scope="module")
def nell_tiny():
    return load_dataset("nell", "tiny", seed=99)[0]


class TestBlockedConvergenceClaims:
    """Section IV-B / Figure 6: blocking helps convergence on skewed data."""

    def test_blocked_not_worse_per_iteration(self, reddit_tiny):
        init = init_factors(reddit_tiny, 8, "uniform", seed=5)
        runs = {}
        for blocked in (False, True):
            runs[blocked] = fit_aoadmm(
                reddit_tiny,
                AOADMMOptions(rank=8, constraints="nonneg",
                              blocked=blocked, seed=5,
                              max_outer_iterations=15,
                              outer_tolerance=0.0),
                initial_factors=init)
        # Same-or-better final error within the paper's 1% band.
        assert (runs[True].relative_error
                <= runs[False].relative_error * 1.01)

    def test_high_signal_blocks_iterate_more(self, reddit_tiny):
        """The non-uniform convergence mechanism: block iteration counts
        vary and correlate with the block's signal."""
        res = fit_aoadmm(reddit_tiny, AOADMMOptions(
            rank=8, constraints="nonneg", blocked=True, block_size=20,
            seed=5, max_outer_iterations=3, outer_tolerance=0.0,
            track_block_reports=True))
        spread = []
        for record in res.trace.records:
            for report in record.block_reports:
                iters = np.asarray(report.block_iterations)
                if iters.size > 1:
                    spread.append(iters.max() - iters.min())
        assert max(spread) >= 2  # blocks genuinely diverge in effort

    def test_unblocked_wastes_iterations_on_converged_rows(self,
                                                           reddit_tiny):
        """Blocked ADMM does less total row-iteration work than the
        unblocked solver needs for its aggregate criterion."""
        init = init_factors(reddit_tiny, 8, "uniform", seed=5)
        blocked = fit_aoadmm(reddit_tiny, AOADMMOptions(
            rank=8, constraints="nonneg", blocked=True, block_size=20,
            seed=5, max_outer_iterations=4, outer_tolerance=0.0,
            track_block_reports=True), initial_factors=init)
        rows = reddit_tiny.shape
        for record in blocked.trace.records[1:]:
            for mode, report in enumerate(record.block_reports):
                total_work = report.total_row_iterations
                uniform_work = rows[mode] * report.iterations
                # Adaptive per-block effort beats paying the max
                # iteration count on every row.
                assert total_work <= uniform_work


class TestDynamicSparsityClaims:
    """Section IV-C / Table II: sparsity emerges and is exploited."""

    def test_density_falls_under_l1(self, reddit_tiny):
        res = fit_aoadmm(reddit_tiny, AOADMMOptions(
            rank=8, constraints=NonNegativeL1(0.05), seed=5,
            max_outer_iterations=10, outer_tolerance=0.0,
            factor_zero_tol=1e-12))
        # Factors start dense (uniform init = density 1); by the end the
        # L1 penalty has driven at least one factor under the paper's
        # 20% sparsification threshold.
        last = res.trace.records[-1].factor_densities
        assert min(last) < 0.2
        assert np.mean(last) < 0.5

    def test_representation_switches_below_threshold(self, reddit_tiny):
        res = fit_aoadmm(reddit_tiny, AOADMMOptions(
            rank=8, constraints=NonNegativeL1(0.05), seed=5,
            max_outer_iterations=10, outer_tolerance=0.0,
            repr_policy="csr", sparsity_threshold=0.2,
            factor_zero_tol=1e-12))
        last = res.trace.records[-1]
        switched = [rep for rep, dens in
                    zip(last.representations, last.factor_densities)
                    if dens < 0.2]
        assert "csr" in switched

    def test_representation_does_not_change_math(self, reddit_tiny):
        init = init_factors(reddit_tiny, 6, "uniform", seed=6)
        traces = []
        for policy in ("dense", "csr"):
            res = fit_aoadmm(reddit_tiny, AOADMMOptions(
                rank=6, constraints=NonNegativeL1(0.05), seed=6,
                max_outer_iterations=6, outer_tolerance=0.0,
                repr_policy=policy, sparsity_threshold=0.9),
                initial_factors=init)
            traces.append(res.trace.errors())
        np.testing.assert_allclose(traces[0], traces[1], rtol=1e-9)


class TestWorkBalanceClaims:
    """Figure 3: the MTTKRP/ADMM balance follows nnz vs mode lengths."""

    def test_nell_is_admm_heavier_than_patents(self, nell_tiny):
        patents = load_dataset("patents", "tiny", seed=99)[0]
        fractions = {}
        for name, tensor in (("nell", nell_tiny), ("patents", patents)):
            res = fit_aoadmm(tensor, AOADMMOptions(
                rank=16, constraints="nonneg", blocked=False, seed=3,
                max_outer_iterations=4, outer_tolerance=0.0))
            fractions[name] = res.trace.time_fractions()
        assert (fractions["nell"]["admm"]
                > fractions["patents"]["admm"])


class TestErrorIdentity:
    """The driver's in-loop norm-expansion error must agree with the
    standalone CPModel evaluation (they use independent code paths)."""

    def test_trace_error_matches_model_error(self, reddit_tiny):
        res = fit_aoadmm(reddit_tiny, AOADMMOptions(
            rank=6, constraints="nonneg", seed=2,
            max_outer_iterations=5, outer_tolerance=0.0))
        standalone = res.model.relative_error(reddit_tiny)
        assert standalone == pytest.approx(res.relative_error, rel=1e-9)


class TestEngineReuse:
    """The harness pattern: one engine amortizes CSF builds across runs."""

    def test_shared_engine_matches_fresh_engine(self, reddit_tiny):
        init = init_factors(reddit_tiny, 5, "uniform", seed=9)
        opts = AOADMMOptions(rank=5, constraints="nonneg", seed=9,
                             max_outer_iterations=4, outer_tolerance=0.0)
        engine = MTTKRPEngine(reddit_tiny)
        engine.trees.build_all()
        a = fit_aoadmm(reddit_tiny, opts, initial_factors=init,
                       engine=engine)
        b = fit_aoadmm(reddit_tiny, opts, initial_factors=init)
        np.testing.assert_allclose(a.trace.errors(), b.trace.errors(),
                                   rtol=1e-12)
