"""Unit tests for the COO tensor substrate."""

import numpy as np
import pytest

from repro.tensor import COOTensor, random_coo
from repro.tensor.coo import COOTensor as COODirect


class TestConstruction:
    def test_from_arrays_infers_shape(self):
        t = COOTensor.from_arrays(
            [np.array([0, 2]), np.array([1, 3])], np.array([1.0, 2.0]))
        assert t.shape == (3, 4)
        assert t.nnz == 2

    def test_from_arrays_explicit_shape(self):
        t = COOTensor.from_arrays(
            [np.array([0]), np.array([0])], np.array([5.0]), shape=(10, 20))
        assert t.shape == (10, 20)

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(ValueError, match="out of range"):
            COOTensor(np.array([[0, 5]]), np.array([1.0, 1.0]), (3,))

    def test_rejects_negative_indices(self):
        with pytest.raises(ValueError, match="negative"):
            COOTensor(np.array([[-1]]), np.array([1.0]), (3,))

    def test_rejects_mismatched_values(self):
        with pytest.raises(ValueError, match="expected 2 values"):
            COOTensor(np.array([[0, 1]]), np.array([1.0]), (3,))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="non-positive extent"):
            COOTensor(np.empty((2, 0)), np.empty(0), (3, 0))

    def test_dense_round_trip(self):
        dense = np.zeros((3, 4, 2))
        dense[0, 1, 0] = 2.5
        dense[2, 3, 1] = -1.0
        t = COOTensor.from_dense(dense)
        assert t.nnz == 2
        np.testing.assert_allclose(t.to_dense(), dense)

    def test_from_dense_tolerance(self):
        dense = np.array([[0.5, 1e-12], [0.0, 2.0]])
        t = COOTensor.from_dense(dense, tol=1e-9)
        assert t.nnz == 2


class TestProperties:
    def test_density(self):
        t = COOTensor.from_arrays([np.array([0]), np.array([0])],
                                  np.array([1.0]), shape=(2, 5))
        assert t.density == pytest.approx(0.1)

    def test_norm_matches_dense(self, small_tensor):
        dense = small_tensor.to_dense()
        assert small_tensor.norm() == pytest.approx(np.linalg.norm(dense))
        assert small_tensor.norm_squared() == pytest.approx(
            np.linalg.norm(dense) ** 2)

    def test_slice_counts(self):
        t = COOTensor.from_arrays(
            [np.array([0, 0, 2]), np.array([0, 1, 2])],
            np.ones(3), shape=(3, 3))
        np.testing.assert_array_equal(t.mode_slice_counts(0), [2, 0, 1])
        np.testing.assert_array_equal(t.nonempty_slices(0), [0, 2])


class TestReorganization:
    def test_sort_lex_orders_primary_mode_first(self):
        t = COOTensor.from_arrays(
            [np.array([2, 0, 1]), np.array([0, 1, 2])],
            np.array([1.0, 2.0, 3.0]))
        s = t.sort_lex()
        np.testing.assert_array_equal(s.coords[0], [0, 1, 2])
        np.testing.assert_array_equal(s.vals, [2.0, 3.0, 1.0])

    def test_sort_lex_custom_order(self):
        t = COOTensor.from_arrays(
            [np.array([0, 1]), np.array([1, 0])], np.array([1.0, 2.0]))
        s = t.sort_lex(mode_order=(1, 0))
        np.testing.assert_array_equal(s.coords[1], [0, 1])

    def test_sort_rejects_non_permutation(self, small_tensor):
        with pytest.raises(ValueError, match="not a permutation"):
            small_tensor.sort_lex((0, 0, 1))

    def test_deduplicate_sums(self):
        t = COOTensor.from_arrays(
            [np.array([1, 1, 0]), np.array([2, 2, 0])],
            np.array([1.0, 3.0, 5.0]))
        d = t.deduplicate()
        assert d.nnz == 2
        dense = d.to_dense()
        assert dense[1, 2] == pytest.approx(4.0)
        assert dense[0, 0] == pytest.approx(5.0)

    def test_permute_modes_transposes(self, small_tensor):
        p = small_tensor.permute_modes((2, 0, 1))
        assert p.shape == (small_tensor.shape[2], small_tensor.shape[0],
                           small_tensor.shape[1])
        np.testing.assert_allclose(
            p.to_dense(), np.transpose(small_tensor.to_dense(), (2, 0, 1)))

    def test_drop_zeros(self):
        t = COOTensor.from_arrays(
            [np.array([0, 1]), np.array([0, 1])], np.array([0.0, 2.0]))
        assert t.drop_zeros().nnz == 1

    def test_equality_ignores_order_and_duplicates(self):
        a = COOTensor.from_arrays(
            [np.array([1, 0]), np.array([1, 0])], np.array([2.0, 1.0]),
            shape=(2, 2))
        b = COOTensor.from_arrays(
            [np.array([0, 1, 1]), np.array([0, 1, 1])],
            np.array([1.0, 1.0, 1.0]), shape=(2, 2))
        assert a == b

    def test_unhashable(self, small_tensor):
        with pytest.raises(TypeError):
            hash(small_tensor)


class TestRandom:
    def test_random_coo_is_seed_deterministic(self):
        a = random_coo((5, 6, 7), 40, seed=3)
        b = random_coo((5, 6, 7), 40, seed=3)
        assert a == b

    def test_random_coo_value_dists(self):
        for dist in ("uniform", "normal", "ones"):
            t = random_coo((8, 8), 20, seed=1, value_dist=dist)
            assert t.nnz > 0
        with pytest.raises(ValueError):
            random_coo((8, 8), 5, seed=1, value_dist="bogus")

    def test_sample_nonzeros(self, small_tensor):
        sub = small_tensor.sample_nonzeros(10, seed=0)
        assert sub.nnz == 10
        dense_full = small_tensor.to_dense()
        dense_sub = sub.to_dense()
        mask = dense_sub != 0
        np.testing.assert_allclose(dense_sub[mask], dense_full[mask])
