"""Tests for the cost-model factor-representation chooser.

``repro.sparse.autotune`` prices dense / CSR / CSR-H for a factor from
measurable statistics (Section VI's "automatically select the best data
structure" future work).  Covered here:

* property tests — prices are finite, non-negative, monotone in the
  obvious directions (accesses, rows, density), and ``best`` really is
  the argmin;
* boundary agreement with the :mod:`repro.sparse.analysis` heuristics —
  all-dense factors, 1-wide factors, and at-scale sparse profiles where
  the paper's density rule and the cost model must point the same way;
* seeded golden decisions on the paper machine spec, pinning the three
  regimes (dense / csr / csr-h) the model distinguishes.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.spec import PAPER_MACHINE
from repro.sparse.analysis import (
    choose_representation,
    density,
    should_sparsify,
)
from repro.sparse.autotune import (
    FactorProfile,
    autotune_representation,
    price_representations,
)

REPRS = ("dense", "csr", "csr-h")

profiles = st.builds(
    FactorProfile,
    rows=st.integers(min_value=1, max_value=50_000_000),
    rank=st.integers(min_value=1, max_value=200),
    density=st.floats(min_value=0.0, max_value=1.0,
                      allow_nan=False, allow_infinity=False),
    dense_col_frac=st.floats(min_value=0.0, max_value=1.0,
                             allow_nan=False, allow_infinity=False),
    dense_col_share=st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False, allow_infinity=False),
)
accesses = st.floats(min_value=0.0, max_value=1e12,
                     allow_nan=False, allow_infinity=False)


class TestPricingProperties:
    @given(profile=profiles, acc=accesses)
    @settings(max_examples=60, deadline=None)
    def test_finite_nonneg_and_best_is_argmin(self, profile, acc):
        costs = price_representations(profile, acc)
        table = costs.as_dict()
        assert set(table) == set(REPRS)
        for value in table.values():
            assert np.isfinite(value) and value >= 0.0
        assert costs.build_seconds >= 0.0
        assert costs.best == min(table, key=table.get)

    @given(profile=profiles, acc=accesses,
           more=st.floats(min_value=1.0, max_value=1e3))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_accesses(self, profile, acc, more):
        lo = price_representations(profile, acc).as_dict()
        hi = price_representations(profile, acc * more).as_dict()
        for name in REPRS:
            assert hi[name] >= lo[name]

    @given(profile=profiles, acc=accesses,
           bump=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_density(self, profile, acc, bump):
        denser = dataclasses.replace(
            profile, density=min(1.0, profile.density + bump))
        lo = price_representations(profile, acc)
        hi = price_representations(denser, acc)
        # Stored non-zeros grow with density: CSR traffic (and the
        # hybrid's sparse tail) can only get more expensive; the dense
        # representation never looks at the density at all.
        assert hi.csr_seconds >= lo.csr_seconds
        assert hi.hybrid_seconds >= lo.hybrid_seconds
        assert hi.dense_seconds == lo.dense_seconds

    @given(profile=profiles, acc=accesses,
           factor=st.integers(min_value=1, max_value=1000))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_rows(self, profile, acc, factor):
        taller = dataclasses.replace(profile, rows=profile.rows * factor)
        lo = price_representations(profile, acc)
        hi = price_representations(taller, acc)
        # More rows -> larger working sets (miss rate can only rise)
        # and a costlier compression pass.
        for name in REPRS:
            assert hi.as_dict()[name] >= lo.as_dict()[name]
        assert hi.build_seconds >= lo.build_seconds


class TestHeuristicAgreement:
    """The cost model and the Section V-E heuristics on boundary cases."""

    def test_all_dense_agrees(self):
        rng = np.random.default_rng(42)
        matrix = rng.uniform(0.5, 1.0, (2000, 16))
        assert choose_representation(matrix) == "dense"
        # Fully dense storage strictly dominates: sparse formats store
        # value+index pairs for every entry.  Any access count, any
        # scale.
        assert autotune_representation(matrix, 1e6) == "dense"
        profile = dataclasses.replace(FactorProfile.from_matrix(matrix),
                                      rows=50_000_000)
        assert price_representations(profile, 1e10).best == "dense"

    def test_one_wide_dense_agrees(self):
        rng = np.random.default_rng(43)
        column = rng.uniform(0.5, 1.0, (2000, 1))
        assert choose_representation(column) == "dense"
        assert autotune_representation(column, 1e6) == "dense"

    def test_one_wide_sparse_prices_without_crashing(self):
        # rank=1 is the degenerate hybrid: no column skew is possible,
        # so the heuristic falls back to plain CSR; the pricing must
        # still produce a valid decision (at small working sets that is
        # "dense" — the whole column fits in cache).
        rng = np.random.default_rng(44)
        column = np.where(rng.uniform(size=(2000, 1)) < 0.05, 1.0, 0.0)
        assert choose_representation(column) == "csr"
        assert autotune_representation(column, 1e6) in REPRS

    def test_sparse_at_scale_agrees_on_sparsifying(self):
        # The 20% rule says sparsify; at working sets past the LLC the
        # cost model agrees a sparse representation wins.
        rng = np.random.default_rng(45)
        matrix = np.where(rng.uniform(size=(2000, 16)) < 0.05, 1.0, 0.0)
        assert should_sparsify(matrix)
        profile = dataclasses.replace(FactorProfile.from_matrix(matrix),
                                      rows=5_000_000)
        assert price_representations(profile, 1e8).best in ("csr", "csr-h")

    def test_skewed_sparse_at_scale_agrees_on_hybrid(self):
        # Few dense columns holding most of the mass: the heuristic's
        # hybrid profile.  At scale the cost model points the same way.
        rng = np.random.default_rng(7)
        matrix = np.zeros((2000, 20))
        matrix[:, :2] = rng.uniform(0.5, 1.0, (2000, 2))
        matrix[:, 2:] = np.where(rng.uniform(size=(2000, 18)) < 0.02,
                                 1.0, 0.0)
        assert density(matrix) < 0.2
        assert choose_representation(matrix) == "hybrid"
        profile = dataclasses.replace(FactorProfile.from_matrix(matrix),
                                      rows=5_000_000)
        assert price_representations(profile, 1e8).best == "csr-h"


class TestGoldenDecisions:
    """Pinned chooser decisions on the paper machine spec.

    One profile per regime the model separates.  These are
    regression pins: a change to the pricing that flips any of them
    should have to explain itself.
    """

    CASES = (
        # (rows, rank, density, frac, share, accesses) -> best
        ((5_000_000, 50, 0.01, 0.0, 0.0, 1e8), "csr-h"),
        ((5_000_000, 50, 0.05, 0.5, 0.2, 1e8), "csr"),
        ((5_000_000, 50, 1.00, 0.0, 0.0, 1e8), "dense"),
    )

    @pytest.mark.parametrize("spec,expected", CASES)
    def test_regime(self, spec, expected):
        rows, rank, dens, frac, share, acc = spec
        profile = FactorProfile(rows=rows, rank=rank, density=dens,
                                dense_col_frac=frac,
                                dense_col_share=share)
        costs = price_representations(profile, acc, PAPER_MACHINE)
        assert costs.best == expected

    def test_golden_seconds(self):
        # The dense price is a pure roofline read: accesses * row bytes
        # * LLC miss rate / bandwidth.  Pin it (and the build pass) so
        # silent machine-spec or formula drift is caught.
        profile = FactorProfile(rows=5_000_000, rank=50, density=0.01,
                                dense_col_frac=0.0, dense_col_share=0.0)
        costs = price_representations(profile, 1e8, PAPER_MACHINE)
        assert costs.dense_seconds == pytest.approx(0.19047619047619047,
                                                    rel=1e-9)
        assert costs.build_seconds == pytest.approx(0.0380952380952381,
                                                    rel=1e-9)
        assert costs.best == "csr-h"

    def test_from_matrix_round_trip(self):
        rng = np.random.default_rng(46)
        matrix = np.where(rng.uniform(size=(500, 8)) < 0.3,
                          rng.uniform(size=(500, 8)), 0.0)
        profile = FactorProfile.from_matrix(matrix)
        assert profile.rows == 500 and profile.rank == 8
        assert profile.density == pytest.approx(density(matrix))
        assert 0.0 <= profile.dense_col_frac <= 1.0
        assert 0.0 <= profile.dense_col_share <= 1.0
