"""Storage-integrity subsystem: checksums, verified reads, torn writes, fsck.

Every corruption class the platform can meet on disk — flipped bits,
truncation, torn shard commits, rotted checkpoints, mangled tuning
caches — is injected deterministically here and proven to be *detected*
(loud :class:`IntegrityError`, never damaged bytes into a kernel) and,
where a source of truth exists, *repaired* bit-identically.
"""

import json
import os

import numpy as np
import pytest

from repro import AOADMMOptions, IntegrityError, fit_aoadmm
from repro.integrity import (
    ALGORITHM,
    ChecksumManifest,
    StreamingChecksummer,
    VERIFY_ENV_VAR,
    checksum_bytes,
    checksum_file,
    verify_file,
    verify_manifest,
    verify_reads_enabled,
)
from repro.integrity.fsck import (
    fsck_path,
    fsck_state_file,
    fsck_store,
    fsck_tuning_cache,
)
from repro.cli import main as cli_main
from repro.core.serialize import (
    PAYLOAD_SHA_KEY,
    load_state_npz,
    payload_fingerprint,
    save_state_npz,
)
from repro.kernels.autotune import CACHE_VERSION, TuningCache
from repro.robustness import (
    CheckpointStore,
    InjectedCrash,
    STORAGE_FAULT_KINDS,
    ShardCrashPlan,
    SlabFaultSpec,
    inject_slab_fault,
    resolve_resume,
    supervise_fit,
)
from repro.tensor import noisy_lowrank_coo, save_tns
from repro.tensor.store import (
    SLAB_QUARANTINE_SUFFIX,
    ShardedTensorStore,
)


@pytest.fixture(scope="module")
def tensor():
    t, _ = noisy_lowrank_coo((20, 16, 12), rank=3, nnz=800, seed=7)
    return t


def make_store(tensor, path, keep_source=True):
    store = ShardedTensorStore.create(tensor, path, slab_nnz_target=64)
    if not keep_source:
        store.close()
        store = ShardedTensorStore.open(path)
    return store


def make_options(**kw):
    base = dict(rank=3, constraints="nonneg", seed=0,
                max_outer_iterations=4, outer_tolerance=0.0)
    base.update(kw)
    return AOADMMOptions(**base)


def flip_byte(path, offset=0, bit=0):
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([byte ^ (1 << bit)]))


# ----------------------------------------------------------------------
# Checksum core
# ----------------------------------------------------------------------

class TestChecksumCore:
    def test_manifest_roundtrips_json(self, rng):
        data = rng.bytes(3000)
        manifest = checksum_bytes(data, chunk_bytes=1024)
        assert manifest.algorithm == ALGORITHM
        assert manifest.length == 3000
        assert len(manifest.chunks) == 3  # 1024+1024+952
        again = ChecksumManifest.from_dict(
            json.loads(json.dumps(manifest.to_dict())))
        assert again == manifest

    def test_unknown_algorithm_rejected(self):
        payload = checksum_bytes(b"x").to_dict()
        payload["algorithm"] = "md5/whole"
        with pytest.raises(ValueError, match="unrecognized checksum"):
            ChecksumManifest.from_dict(payload)

    def test_streaming_matches_one_shot(self, rng):
        data = rng.bytes(10_000)
        summer = StreamingChecksummer(chunk_bytes=4096)
        # Feed in ragged pieces that straddle every chunk boundary.
        for start in range(0, len(data), 700):
            summer.update(data[start:start + 700])
        assert summer.manifest() == checksum_bytes(data, chunk_bytes=4096)

    def test_verify_detects_flip_and_names_chunk(self, rng):
        data = bytearray(rng.bytes(4096))
        expected = checksum_bytes(bytes(data), chunk_bytes=1024)
        data[2500] ^= 0x10  # chunk 2
        problem = verify_manifest(
            checksum_bytes(bytes(data), chunk_bytes=1024), expected)
        assert problem == "checksum mismatch in chunk(s) 2 of 4"

    def test_verify_reports_truncation_with_sizes(self, rng):
        data = rng.bytes(2048)
        expected = checksum_bytes(data, chunk_bytes=1024)
        problem = verify_manifest(
            checksum_bytes(data[:2000], chunk_bytes=1024), expected)
        assert problem == ("truncated: 2000 bytes on disk, manifest "
                           "promises 2048")

    def test_verify_file_clean_and_missing(self, tmp_path, rng):
        path = tmp_path / "blob.bin"
        data = rng.bytes(5000)
        path.write_bytes(data)
        expected = checksum_file(path)
        assert verify_file(path, expected) is None
        path.unlink()
        assert verify_file(path, expected) == "file is missing"

    def test_env_var_parsing(self, monkeypatch):
        monkeypatch.delenv(VERIFY_ENV_VAR, raising=False)
        assert not verify_reads_enabled()
        monkeypatch.setenv(VERIFY_ENV_VAR, "1")
        assert verify_reads_enabled()
        monkeypatch.setenv(VERIFY_ENV_VAR, "0")
        assert not verify_reads_enabled()
        # Fail-safe: an unrecognized value means verify, with a warning.
        monkeypatch.setenv(VERIFY_ENV_VAR, "banana")
        with pytest.warns(RuntimeWarning, match="banana"):
            assert verify_reads_enabled()


# ----------------------------------------------------------------------
# Verified slab reads: detect, quarantine, rebuild
# ----------------------------------------------------------------------

class TestVerifiedSlabReads:
    def test_bitflip_detected_on_first_touch(self, tensor, tmp_path):
        store = make_store(tensor, tmp_path / "s", keep_source=False)
        record = inject_slab_fault(store,
                                   SlabFaultSpec("slab_bitflip", seed=3))
        with pytest.raises(IntegrityError, match="checksum mismatch"):
            store.load_slab(0, 0)
        quarantined = record.path.with_name(
            record.path.name + SLAB_QUARANTINE_SUFFIX)
        assert quarantined.exists()
        assert not record.path.exists()
        store.close()

    def test_truncation_is_a_clear_error_not_memmap_garbage(
            self, tensor, tmp_path):
        store = make_store(tensor, tmp_path / "s", keep_source=False)
        inject_slab_fault(store, SlabFaultSpec("slab_truncate", seed=1))
        with pytest.raises(IntegrityError,
                           match=r"truncated: \d+ bytes on disk, "
                                 r"manifest promises \d+"):
            store.load_slab(0, 0)
        store.close()

    def test_rebuild_from_source_is_bit_identical(self, tensor, tmp_path):
        store = make_store(tensor, tmp_path / "s")  # source retained
        path = store.slab_path(1, 0)
        clean_bytes = path.read_bytes()
        inject_slab_fault(store, SlabFaultSpec("slab_bitflip", mode=1,
                                               seed=5))
        assert path.read_bytes() != clean_bytes
        slab = store.load_slab(1, 0)  # transparent quarantine + rebuild
        assert slab is not None
        assert path.read_bytes() == clean_bytes
        assert path.with_name(path.name + SLAB_QUARANTINE_SUFFIX).exists()
        store.close()

    def test_attach_source_rejects_wrong_tensor(self, tensor, tmp_path):
        store = make_store(tensor, tmp_path / "s", keep_source=False)
        other, _ = noisy_lowrank_coo((20, 16, 12), rank=3, nnz=800,
                                     seed=8)
        with pytest.raises(ValueError, match="source"):
            store.attach_source(other)
        store.attach_source(tensor)  # the real one is accepted
        assert store.has_source()
        store.close()

    def test_verify_reads_env_rechecks_every_touch(self, tensor, tmp_path,
                                                   monkeypatch):
        store = make_store(tensor, tmp_path / "s", keep_source=False)
        store.load_slab(0, 0)  # first touch: verified, now trusted
        path = store.slab_path(0, 0)
        flip_byte(path, offset=100, bit=2)
        # Same handle, same size: the cheap path misses same-size rot...
        monkeypatch.delenv(VERIFY_ENV_VAR, raising=False)
        store.load_slab(0, 0)
        # ...but paranoid mode re-verifies and catches it.
        monkeypatch.setenv(VERIFY_ENV_VAR, "1")
        with pytest.raises(IntegrityError, match="checksum mismatch"):
            store.load_slab(0, 0)
        store.close()

    def test_v2_meta_carries_manifest_per_slab(self, tensor, tmp_path):
        store = make_store(tensor, tmp_path / "s")
        for mode in range(store.nmodes):
            for index in range(store.slab_count(mode)):
                manifest = store.slab_checksum(mode, index)
                assert manifest is not None
                assert verify_file(store.slab_path(mode, index),
                                   manifest) is None
        store.close()


# ----------------------------------------------------------------------
# Torn-write-safe shard commits
# ----------------------------------------------------------------------

class TestTornWrites:
    def test_crash_mid_shard_leaves_no_parseable_store(self, tensor,
                                                       tmp_path):
        target = tmp_path / "s"
        with pytest.raises(InjectedCrash):
            ShardedTensorStore.create(tensor, target, slab_nnz_target=64,
                                      fault_hook=ShardCrashPlan(at_slab=2))
        assert not ShardedTensorStore.is_store(target)
        with pytest.raises(Exception):
            ShardedTensorStore.open(target)

    def test_reshard_over_crash_debris_succeeds(self, tensor, tmp_path):
        target = tmp_path / "s"
        with pytest.raises(InjectedCrash):
            ShardedTensorStore.create(tensor, target, slab_nnz_target=64,
                                      fault_hook=ShardCrashPlan(at_slab=3))
        store = ShardedTensorStore.create(tensor, target,
                                          slab_nnz_target=64)
        assert fsck_store(target).ok
        store.close()


# ----------------------------------------------------------------------
# Deterministic storage faults
# ----------------------------------------------------------------------

class TestStorageFaults:
    def test_fault_kinds_registered(self):
        assert STORAGE_FAULT_KINDS == ("slab_bitflip", "slab_truncate")

    @pytest.mark.parametrize("kind", STORAGE_FAULT_KINDS)
    def test_same_spec_same_damage(self, tensor, tmp_path, kind):
        spec = SlabFaultSpec(kind, mode=0, index=0, seed=42)
        records = []
        for name in ("a", "b"):
            store = make_store(tensor, tmp_path / name, keep_source=False)
            records.append(inject_slab_fault(store, spec))
            store.close()
        assert records[0].offset == records[1].offset
        assert records[0].detail == records[1].detail
        assert (records[0].path.read_bytes()
                == records[1].path.read_bytes())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SlabFaultSpec("slab_gamma_ray")


# ----------------------------------------------------------------------
# Checkpoint payload checksums and the resume fallback
# ----------------------------------------------------------------------

class TestCheckpointIntegrity:
    def save_state(self, path, rng):
        arrays = {"a": rng.normal(size=(8, 3)),
                  "b": rng.normal(size=(5, 3))}
        save_state_npz(path, arrays, {"note": "test"})
        return arrays

    def test_payload_sha_stamped_and_verified(self, tmp_path, rng):
        path = tmp_path / "state.npz"
        arrays = self.save_state(path, rng)
        loaded, meta = load_state_npz(path, verify=True)
        assert meta[PAYLOAD_SHA_KEY] == payload_fingerprint(
            {k: np.asarray(v) for k, v in arrays.items()})
        assert np.array_equal(loaded["a"], arrays["a"])

    def test_tampered_payload_sha_is_loud(self, tmp_path, rng):
        # A forged fingerprint passes the zip-level CRC (the file itself
        # is well-formed) and must be caught by the payload check.
        path = tmp_path / "state.npz"
        self.save_state(path, rng)
        arrays, meta = load_state_npz(path, verify=False)
        meta[PAYLOAD_SHA_KEY] = "0" * 40
        save_state_npz(path, arrays, meta, checksum=False)
        with pytest.raises(IntegrityError,
                           match="payload checksum mismatch"):
            load_state_npz(path, verify=True)

    def test_bitflipped_payload_is_loud(self, tmp_path, rng):
        path = tmp_path / "state.npz"
        arrays = self.save_state(path, rng)
        raw = bytearray(path.read_bytes())
        # Flip a byte inside array "a"'s stored payload, located by its
        # own bytes (np.savez stores members uncompressed).
        needle = np.asarray(arrays["a"]).tobytes()[:32]
        offset = raw.index(needle)
        raw[offset] ^= 0x40
        path.write_bytes(bytes(raw))
        with pytest.raises(Exception):
            load_state_npz(path, verify=True)
        assert not fsck_state_file(path).ok

    def test_resume_falls_back_past_rotted_versions(self, tensor,
                                                    tmp_path):
        # Satellite: corrupt the newest K checkpoints; resume must
        # quarantine each, pick the newest *valid* one, and reach a
        # bit-identical final model.
        base = tmp_path / "ck.npz"
        reference = fit_aoadmm(tensor, make_options(
            max_outer_iterations=6, checkpoint_every=1,
            checkpoint_path=base, checkpoint_keep_last=4))
        store = CheckpointStore(base, keep_last=4)
        versions = store.versions()
        assert len(versions) == 4  # iterations 3..6
        for doomed in versions[-2:]:  # newest two rot on disk
            flip_byte(doomed, offset=200, bit=5)
        checkpoint = resolve_resume(base)
        assert checkpoint.iteration == 4  # newest valid version
        for doomed in versions[-2:]:
            assert not doomed.exists()
            assert doomed.with_name(doomed.name + ".corrupt").exists()
        resumed = fit_aoadmm(tensor, make_options(max_outer_iterations=6),
                             resume_from=checkpoint)
        for ref, res in zip(reference.model.factors,
                            resumed.model.factors):
            np.testing.assert_array_equal(ref, res)


# ----------------------------------------------------------------------
# fsck: detect -> repair -> clean, for every artifact class
# ----------------------------------------------------------------------

class TestFsck:
    def test_store_roundtrip(self, tensor, tmp_path):
        target = tmp_path / "s"
        store = make_store(tensor, target, keep_source=False)
        assert fsck_store(target).ok
        inject_slab_fault(store, SlabFaultSpec("slab_bitflip", mode=2,
                                               seed=9))
        store.close()
        report = fsck_store(target)  # detection is read-only
        assert not report.ok and report.count("corrupt") == 1
        assert fsck_store(target).count("corrupt") == 1  # still there
        repaired = fsck_store(target, repair=True, source=tensor)
        assert repaired.ok and repaired.count("repaired") == 1
        rescan = fsck_store(target)
        assert rescan.ok and rescan.count("corrupt") == 0
        assert rescan.count("skipped") == 1  # quarantine evidence

    def test_store_repair_without_source_quarantines_only(self, tensor,
                                                          tmp_path):
        target = tmp_path / "s"
        store = make_store(tensor, target, keep_source=False)
        inject_slab_fault(store, SlabFaultSpec("slab_bitflip", seed=2))
        store.close()
        report = fsck_store(target, repair=True)
        assert not report.ok
        assert "no source to rebuild from" in report.artifacts[0].detail

    def test_checkpoint_roundtrip(self, tmp_path, rng):
        path = tmp_path / "state.npz"
        save_state_npz(path, {"a": rng.normal(size=(4, 2))}, {})
        assert fsck_state_file(path).ok
        flip_byte(path, offset=90, bit=1)
        assert not fsck_state_file(path).ok
        report = fsck_state_file(path, repair=True)
        assert report.count("quarantined") == 1
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()

    def test_tuning_cache_roundtrip(self, tmp_path):
        path = tmp_path / "tuning.json"
        good = {"backend": "csf", "slab_nnz_target": 64, "n_slabs": 2,
                "probe_seconds": {"csf": 0.01}}
        path.write_text(json.dumps({
            f"v{CACHE_VERSION}:aaaa:mode=0:rank=4:threads=1": good,
            f"v{CACHE_VERSION}:bbbb:mode=1:rank=4:threads=1":
                {"backend": 12},  # invalid entry
        }))
        report = fsck_tuning_cache(path)
        assert not report.ok and report.count("corrupt") == 1
        repaired = fsck_tuning_cache(path, repair=True)
        assert repaired.ok and repaired.count("repaired") == 1
        assert fsck_tuning_cache(path).ok
        remaining = json.loads(path.read_text())
        assert len(remaining) == 1
        assert TuningCache(path).get(next(iter(remaining))) is not None

    def test_walk_scrubs_mixed_directory(self, tensor, tmp_path, rng):
        make_store(tensor, tmp_path / "store", keep_source=False).close()
        (tmp_path / "ck").mkdir()
        save_state_npz(tmp_path / "ck" / "s.npz",
                       {"a": rng.normal(size=(3, 2))}, {})
        (tmp_path / "metrics.json").write_text(
            json.dumps({"fit_seconds": 1.5}))
        report = fsck_path(tmp_path)
        assert report.ok
        kinds = {a.kind for a in report.artifacts}
        assert "slab" in kinds and "checkpoint" in kinds
        # The metrics export is not judged by tuning-cache rules.
        metrics = [a for a in report.artifacts
                   if a.path.endswith("metrics.json")]
        assert metrics and metrics[0].verdict == "skipped"

    def test_missing_path_is_corrupt(self, tmp_path):
        assert not fsck_path(tmp_path / "nope").ok


# ----------------------------------------------------------------------
# CLI: fsck exit codes and shard overwrite refusal
# ----------------------------------------------------------------------

class TestCli:
    def test_fsck_detect_repair_rescan(self, tensor, tmp_path, capsys):
        target = tmp_path / "s"
        tns = tmp_path / "t.tns"
        save_tns(tensor, tns)
        store = make_store(tensor, target, keep_source=False)
        inject_slab_fault(store, SlabFaultSpec("slab_bitflip", seed=4))
        store.close()
        assert cli_main(["fsck", str(target)]) == 4
        assert "corrupt" in capsys.readouterr().out
        assert cli_main(["fsck", str(target), "--repair",
                         "--source", str(tns)]) == 0
        out = capsys.readouterr().out
        assert "repaired" in out
        assert cli_main(["fsck", str(target), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_shard_refuses_existing_directory(self, tensor, tmp_path,
                                              capsys):
        tns = tmp_path / "t.tns"
        save_tns(tensor, tns)
        target = tmp_path / "precious"
        target.mkdir()
        (target / "thesis.txt").write_text("years of work")
        assert cli_main(["shard", str(tns), str(target)]) == 2
        assert "refusing to overwrite" in capsys.readouterr().out
        assert (target / "thesis.txt").read_text() == "years of work"
        # An empty directory (and a fresh path) are both fine.
        empty = tmp_path / "empty"
        empty.mkdir()
        assert cli_main(["shard", str(tns), str(empty)]) == 0
        assert cli_main(["shard", str(tns), str(empty)]) == 2  # a store now


# ----------------------------------------------------------------------
# Fits over damaged stores: bit-identical repair or loud failure
# ----------------------------------------------------------------------

class TestFitContract:
    def test_fit_after_rebuild_is_bit_identical(self, tensor, tmp_path):
        clean = make_store(tensor, tmp_path / "clean")
        reference = fit_aoadmm(clean, make_options())
        clean.close()
        store = make_store(tensor, tmp_path / "hurt")  # source retained
        inject_slab_fault(store, SlabFaultSpec("slab_bitflip", mode=1,
                                               seed=6))
        result = fit_aoadmm(store, make_options())
        store.close()
        for ref, res in zip(reference.model.factors,
                            result.model.factors):
            np.testing.assert_array_equal(ref, res)

    def test_fit_without_source_fails_loud(self, tensor, tmp_path):
        store = make_store(tensor, tmp_path / "s", keep_source=False)
        inject_slab_fault(store, SlabFaultSpec("slab_truncate", seed=2))
        with pytest.raises(IntegrityError):
            fit_aoadmm(store, make_options())
        store.close()

    def test_supervisor_surfaces_integrity_guard_events(self, tensor,
                                                        tmp_path):
        store = make_store(tensor, tmp_path / "s")  # rebuildable
        inject_slab_fault(store, SlabFaultSpec("slab_bitflip", seed=11))
        result, report = supervise_fit(store, make_options())
        store.close()
        assert result is not None
        kinds = {e.kind for e in report.guard_events}
        assert "integrity_mismatch" in kinds or \
               "integrity_quarantine" in kinds
        assert any(k.startswith("integrity_") for k in kinds)
