"""Proximity operator tests: definitions, feasibility, registry."""

import numpy as np
import pytest

from repro.constraints import (
    Box,
    ElasticNet,
    L1,
    L2Squared,
    NonNegative,
    NonNegativeL1,
    RowNormBall,
    RowSimplex,
    Unconstrained,
    available_constraints,
    make_constraint,
    project_rows_simplex,
)


def prox_objective(constraint, candidate, v, step):
    """The objective prox minimizes, evaluated at a candidate."""
    return (constraint.penalty(candidate)
            + np.sum((candidate - v) ** 2) / (2.0 * step))


def assert_prox_optimal(constraint, v, step, rng, trials=60, scale=0.3):
    """The prox output must beat random feasible perturbations."""
    out = constraint.prox(v.copy(), step)
    base = prox_objective(constraint, out, v, step)
    for _ in range(trials):
        cand = out + scale * rng.standard_normal(out.shape)
        cand = constraint.prox(cand.copy(), 1e9)  # project ~feasible
        assert prox_objective(constraint, cand, v, step) >= base - 1e-8


class TestNonNegative:
    def test_prox_clips(self):
        v = np.array([[-1.0, 2.0], [0.5, -3.0]])
        out = NonNegative().prox(v.copy(), 0.7)
        np.testing.assert_allclose(out, [[0.0, 2.0], [0.5, 0.0]])

    def test_penalty(self):
        c = NonNegative()
        assert c.penalty(np.array([[1.0]])) == 0.0
        assert c.penalty(np.array([[-1.0]])) == np.inf

    def test_prox_idempotent(self, rng):
        c = NonNegative()
        v = rng.standard_normal((6, 3))
        once = c.prox(v.copy(), 1.0)
        np.testing.assert_allclose(c.prox(once.copy(), 1.0), once)


class TestL1:
    def test_soft_threshold_values(self):
        out = L1(weight=1.0).prox(np.array([[2.0, -2.0, 0.3]]), 0.5)
        np.testing.assert_allclose(out, [[1.5, -1.5, 0.0]])

    def test_penalty(self):
        assert L1(0.5).penalty(np.array([[1.0, -2.0]])) == pytest.approx(1.5)

    def test_zero_weight_is_identity(self, rng):
        v = rng.standard_normal((4, 4))
        np.testing.assert_allclose(L1(0.0).prox(v.copy(), 1.0), v)

    def test_induces_sparsity(self, rng):
        v = 0.1 * rng.standard_normal((50, 8))
        out = L1(1.0).prox(v.copy(), 1.0)
        assert (out == 0).mean() > 0.9

    def test_prox_is_optimal(self, rng):
        v = rng.standard_normal((5, 3))
        out = L1(0.4).prox(v.copy(), 0.8)
        base = prox_objective(L1(0.4), out, v, 0.8)
        for _ in range(50):
            cand = out + 0.2 * rng.standard_normal(out.shape)
            assert prox_objective(L1(0.4), cand, v, 0.8) >= base - 1e-9

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            L1(-1.0)


class TestNonNegativeL1:
    def test_prox_thresholds_and_clips(self):
        out = NonNegativeL1(1.0).prox(np.array([[2.0, -0.5, 0.3]]), 0.5)
        np.testing.assert_allclose(out, [[1.5, 0.0, 0.0]])

    def test_penalty_infeasible(self):
        c = NonNegativeL1(1.0)
        assert c.penalty(np.array([[-0.1]])) == np.inf
        assert c.penalty(np.array([[2.0]])) == pytest.approx(2.0)


class TestL2AndElasticNet:
    def test_l2_shrinks(self):
        out = L2Squared(0.5).prox(np.array([[2.0]]), 1.0)
        np.testing.assert_allclose(out, [[1.0]])

    def test_l2_prox_closed_form_optimality(self, rng):
        c = L2Squared(0.3)
        v = rng.standard_normal((4, 2))
        out = c.prox(v.copy(), 0.7)
        # Stationarity: 2*w*out + (out - v)/step = 0
        np.testing.assert_allclose(2 * 0.3 * out + (out - v) / 0.7, 0.0,
                                   atol=1e-12)

    def test_elastic_net_combines(self, rng):
        v = rng.standard_normal((6, 3))
        en = ElasticNet(l1=0.2, l2=0.1).prox(v.copy(), 0.5)
        manual = L1(0.2).prox(v.copy(), 0.5)
        manual = L2Squared(0.1).prox(manual, 0.5)
        np.testing.assert_allclose(en, manual, atol=1e-12)

    def test_elastic_net_penalty(self):
        p = ElasticNet(l1=1.0, l2=2.0).penalty(np.array([[2.0]]))
        assert p == pytest.approx(2.0 + 8.0)


class TestBox:
    def test_prox_clips_to_interval(self):
        out = Box(0.0, 1.0).prox(np.array([[-0.5, 0.4, 2.0]]), 1.0)
        np.testing.assert_allclose(out, [[0.0, 0.4, 1.0]])

    def test_feasibility(self):
        c = Box(-1.0, 1.0)
        assert c.is_feasible(np.array([[0.5]]))
        assert not c.is_feasible(np.array([[1.5]]))
        assert c.penalty(np.array([[1.5]])) == np.inf

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Box(1.0, 0.0)


class TestSimplex:
    def test_projection_lands_on_simplex(self, rng):
        v = rng.standard_normal((40, 6))
        out = project_rows_simplex(v)
        assert (out >= -1e-12).all()
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-9)

    def test_feasible_point_fixed(self):
        v = np.array([[0.2, 0.3, 0.5]])
        np.testing.assert_allclose(project_rows_simplex(v), v, atol=1e-12)

    def test_projection_is_nearest_point(self, rng):
        v = rng.standard_normal((1, 5))
        out = project_rows_simplex(v)
        base = np.sum((out - v) ** 2)
        for _ in range(200):
            cand = rng.dirichlet(np.ones(5))[None, :]
            assert np.sum((cand - v) ** 2) >= base - 1e-10

    def test_custom_radius(self, rng):
        v = rng.standard_normal((10, 4))
        out = project_rows_simplex(v, radius=2.5)
        np.testing.assert_allclose(out.sum(axis=1), 2.5, atol=1e-9)

    def test_constraint_wrapper(self, rng):
        c = RowSimplex()
        v = rng.standard_normal((7, 3))
        out = c.prox(v.copy(), 0.1)
        assert c.is_feasible(out)
        assert c.penalty(out) == 0.0
        assert c.penalty(v) == np.inf


class TestRowNormBall:
    def test_prox_rescales_only_violators(self):
        v = np.array([[3.0, 4.0], [0.1, 0.1]])
        out = RowNormBall(1.0).prox(v.copy(), 1.0)
        np.testing.assert_allclose(np.linalg.norm(out[0]), 1.0)
        np.testing.assert_allclose(out[1], [0.1, 0.1])

    def test_feasibility(self):
        c = RowNormBall(2.0)
        assert c.is_feasible(np.array([[1.0, 1.0]]))
        assert not c.is_feasible(np.array([[2.0, 2.0]]))


class TestUnconstrained:
    def test_identity_prox(self, rng):
        v = rng.standard_normal((3, 3))
        np.testing.assert_allclose(Unconstrained().prox(v, 1.0), v)
        assert Unconstrained().penalty(v) == 0.0


class TestRegistry:
    def test_all_names_construct(self):
        for name in available_constraints():
            c = make_constraint(name)
            assert c.name in (name, "none")

    def test_kwargs_forwarded(self):
        c = make_constraint("l1", weight=0.25)
        assert c.weight == 0.25

    def test_instance_passthrough(self):
        c = L1(0.5)
        assert make_constraint(c) is c
        with pytest.raises(ValueError):
            make_constraint(c, weight=1.0)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown constraint"):
            make_constraint("nope")

    def test_row_separability_flags(self):
        """Everything is row separable except column smoothness — the
        library's living example of Section IV-B's restriction."""
        for name in available_constraints():
            constraint = make_constraint(name)
            if name == "smooth":
                assert not constraint.row_separable
            else:
                assert constraint.row_separable, name
