"""End-to-end four-mode support through the Enron-like corpus."""

import numpy as np
import pytest

from repro import AOADMMOptions, fit_aoadmm
from repro.datasets import generate_dataset, get_spec
from repro.datasets.registry import all_dataset_names
from repro.kernels import mttkrp_coo_reference
from repro.kernels.dispatch import MTTKRPEngine
from repro.machine import FactorizationWorkload, speedup_curve


@pytest.fixture(scope="module")
def enron_tiny():
    tensor, truth = generate_dataset("enron", "tiny", seed=77)
    return tensor, truth


class TestRegistry:
    def test_enron_registered_but_not_in_table1(self):
        assert "enron" in all_dataset_names()
        from repro.datasets import dataset_names
        assert "enron" not in dataset_names()

    def test_spec_is_four_mode(self):
        spec = get_spec("enron")
        assert len(spec.full_shape) == 4
        assert len(spec.zipf_exponents) == 4


class TestFourModeEndToEnd:
    def test_generation(self, enron_tiny):
        tensor, truth = enron_tiny
        assert tensor.nmodes == 4
        assert tensor.nnz > 0
        assert len(truth) == 4

    def test_engine_mttkrp_all_modes(self, enron_tiny):
        tensor, _ = enron_tiny
        small = tensor.sample_nonzeros(min(400, tensor.nnz), seed=1)
        gen = np.random.default_rng(1)
        factors = [gen.uniform(0, 1, (s, 3)) for s in small.shape]
        engine = MTTKRPEngine(small)
        for mode in range(4):
            ref = mttkrp_coo_reference(small, factors, mode)
            np.testing.assert_allclose(engine.mttkrp(factors, mode), ref,
                                       atol=1e-9)

    def test_factorization_runs(self, enron_tiny):
        tensor, _ = enron_tiny
        res = fit_aoadmm(tensor, AOADMMOptions(
            rank=8, constraints="nonneg", seed=3,
            max_outer_iterations=8, outer_tolerance=0.0))
        errs = res.trace.errors()
        assert errs[-1] <= errs[0]
        assert len(res.model.factors) == 4
        for f in res.model.factors:
            assert (f >= 0).all()

    def test_machine_workload_four_modes(self):
        wl = FactorizationWorkload.from_spec("enron", rank=16)
        assert len(wl.modes) == 4
        curve = speedup_curve(wl, blocked=True, threads=(1, 20))
        assert curve[1] == pytest.approx(1.0)
        assert curve[20] > 4.0
