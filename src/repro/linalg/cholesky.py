"""Cholesky factorization and SPD solves.

Plays the role of MKL's ``potrf`` + ``trsm`` in the paper's Algorithm 1:
``L = Cholesky(G + rho * I)`` is computed once per mode update and reused
by every inner ADMM iteration's forward/backward substitution (line 6).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from ..types import VALUE_DTYPE
from ..validation import require


class CholeskyFactor:
    """A cached Cholesky factorization of an SPD matrix.

    Parameters
    ----------
    matrix:
        Symmetric positive (semi-)definite ``F x F`` matrix.
    jitter:
        Relative diagonal regularization applied when the factorization
        fails (rank-deficient Grams occur when factor columns die under
        aggressive L1); grows geometrically until ``potrf`` succeeds.
    """

    def __init__(self, matrix: np.ndarray, jitter: float = 1e-12):
        matrix = np.asarray(matrix, dtype=VALUE_DTYPE)
        require(matrix.ndim == 2 and matrix.shape[0] == matrix.shape[1],
                "matrix must be square")
        self.size = matrix.shape[0]
        scale = float(np.trace(matrix)) / max(self.size, 1)
        if scale <= 0.0:
            scale = 1.0
        attempt = matrix
        added = 0.0
        attempts = 0
        while True:
            try:
                attempts += 1
                self._cho = scipy.linalg.cho_factor(
                    attempt, lower=True, check_finite=False)
                break
            except np.linalg.LinAlgError:
                added = jitter * scale if added == 0.0 else added * 10.0
                require(added < scale * 1e3,
                        f"{self.size}x{self.size} matrix is numerically "
                        "indefinite beyond repair (jitter escalation "
                        f"exhausted after {attempts} attempts)")
                attempt = matrix + added * np.eye(self.size)
        #: Diagonal jitter that was actually added (0.0 in the common case).
        self.jitter_added = added
        #: Factorization attempts (1 = clean; >1 = jitter escalation ran).
        self.attempts = attempts

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``(G) x = rhs`` via forward/backward substitution.

        ``rhs`` may be a vector or a matrix whose **rows** are equations
        (``F x n`` right-hand sides are solved column-wise).
        """
        return scipy.linalg.cho_solve(self._cho, rhs, check_finite=False)

    def solve_t(self, rhs_rows: np.ndarray) -> np.ndarray:
        """Solve ``x G = rhs_rows`` for row-major tall-skinny operands.

        Equivalent to ``solve(rhs_rows.T).T`` but keeps the tall dimension
        leading, which is how the ADMM update consumes it.
        """
        return scipy.linalg.cho_solve(
            self._cho, rhs_rows.T, check_finite=False).T


def spd_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """One-shot SPD solve (convenience wrapper over CholeskyFactor)."""
    return CholeskyFactor(matrix).solve(rhs)
