"""Gram matrices and their Hadamard products.

AO-ADMM's normal equations use ``G = hadamard of A_n^T A_n over n != mode``
(paper Algorithm 2, lines 4/8/12).  The individual ``F x F`` Grams only
change when their factor is updated, so :class:`GramCache` recomputes one
Gram per mode update instead of ``N-1``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..types import VALUE_DTYPE, FactorList
from ..validation import require


def gram(factor: np.ndarray) -> np.ndarray:
    """``A^T A`` as a symmetric ``F x F`` matrix."""
    factor = np.asarray(factor, dtype=VALUE_DTYPE)
    out = factor.T @ factor
    # Enforce exact symmetry against BLAS rounding asymmetry.
    return (out + out.T) * 0.5


def hadamard_gram_excluding(factors: FactorList, mode: int) -> np.ndarray:
    """Hadamard product of all Grams except *mode*'s."""
    others = [m for m in range(len(factors)) if m != mode]
    require(others, "tensor must have at least two modes")
    out = gram(factors[others[0]])
    for m in others[1:]:
        out *= gram(factors[m])
    return out


def hadamard_gram_all(factors: FactorList) -> np.ndarray:
    """Hadamard product of every factor's Gram (used by ``||X_hat||^2``)."""
    out = gram(factors[0])
    for f in factors[1:]:
        out *= gram(f)
    return out


class GramCache:
    """Caches ``A_n^T A_n`` per mode and composes them on demand.

    Call :meth:`invalidate` after updating a factor; :meth:`gram_excluding`
    then recomputes only the stale entries.
    """

    def __init__(self, factors: FactorList):
        self._factors = list(factors)
        self._grams: list[np.ndarray | None] = [None] * len(self._factors)

    def set_factor(self, mode: int, factor: np.ndarray) -> None:
        """Replace a factor and invalidate its cached Gram."""
        self._factors[mode] = factor
        self._grams[mode] = None

    def invalidate(self, mode: int) -> None:
        """Mark mode's Gram stale (factor mutated in place)."""
        self._grams[mode] = None

    def gram(self, mode: int) -> np.ndarray:
        """The (possibly cached) Gram of one mode."""
        cached = self._grams[mode]
        if cached is None:
            cached = gram(self._factors[mode])
            self._grams[mode] = cached
        return cached

    def gram_excluding(self, mode: int) -> np.ndarray:
        """Hadamard product of all Grams except *mode*'s."""
        others = [m for m in range(len(self._factors)) if m != mode]
        require(others, "tensor must have at least two modes")
        out = self.gram(others[0]).copy()
        for m in others[1:]:
            out *= self.gram(m)
        return out

    def gram_all(self) -> np.ndarray:
        """Hadamard product of every mode's Gram."""
        out = self.gram(0).copy()
        for m in range(1, len(self._factors)):
            out *= self.gram(m)
        return out
