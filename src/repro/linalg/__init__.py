"""Dense linear-algebra substrate (the MKL role in the paper's stack)."""

from .khatri_rao import khatri_rao, khatri_rao_excluding
from .grams import gram, hadamard_gram_excluding, GramCache
from .cholesky import CholeskyFactor, spd_solve
from .norms import (
    column_norms,
    normalize_factors,
    factor_frobenius_inner,
    model_norm_squared,
)

__all__ = [
    "khatri_rao",
    "khatri_rao_excluding",
    "gram",
    "hadamard_gram_excluding",
    "GramCache",
    "CholeskyFactor",
    "spd_solve",
    "column_norms",
    "normalize_factors",
    "factor_frobenius_inner",
    "model_norm_squared",
]
