"""Khatri-Rao products (column-wise Kronecker products).

Conventions match :mod:`repro.tensor.matricize`: for the mode-``n``
unfolding, the Khatri-Rao product runs over the remaining modes in
**decreasing** order, so that the first remaining mode varies fastest in
the row index — ``X_(0) ~= A0 @ khatri_rao_excluding(factors, 0).T``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..types import VALUE_DTYPE, FactorList
from ..validation import require


def khatri_rao(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Khatri-Rao product of *matrices*, last matrix varying fastest.

    For ``matrices = [P, Q]`` with shapes ``(p, F)`` and ``(q, F)``, the
    result has shape ``(p*q, F)`` and row ``i*q + j`` equals
    ``P[i, :] * Q[j, :]``.
    """
    require(len(matrices) >= 1, "need at least one matrix")
    mats = [np.asarray(m, dtype=VALUE_DTYPE) for m in matrices]
    rank = mats[0].shape[1]
    for m in mats:
        require(m.ndim == 2 and m.shape[1] == rank,
                "all matrices must share the same column count")
    out = mats[0]
    for mat in mats[1:]:
        # (rows_out, 1, F) * (1, rows_mat, F) -> (rows_out * rows_mat, F)
        out = (out[:, None, :] * mat[None, :, :]).reshape(-1, rank)
    return out


def khatri_rao_excluding(factors: FactorList, mode: int) -> np.ndarray:
    """Khatri-Rao over all factors except *mode*, decreasing mode order.

    The output row indexed by linearized coordinates (lower modes fastest)
    matches the unfolding column convention of
    :func:`repro.tensor.matricize.matricize_coo`.
    """
    others = [m for m in range(len(factors)) if m != mode]
    require(others, "tensor must have at least two modes")
    return khatri_rao([np.asarray(factors[m]) for m in reversed(others)])


def khatri_rao_rows(factors: FactorList, mode: int,
                    coords: np.ndarray) -> np.ndarray:
    """Rows of ``khatri_rao_excluding`` gathered at the given coordinates.

    ``coords`` is the full ``(nmodes, n)`` coordinate array; only the modes
    other than *mode* are consulted.  This never materializes the full
    Khatri-Rao product — it is the gather the MTTKRP kernels rely on.
    """
    nmodes = len(factors)
    n = coords.shape[1]
    rank = np.asarray(factors[0]).shape[1]
    out = np.ones((n, rank), dtype=VALUE_DTYPE)
    for m in range(nmodes):
        if m != mode:
            out *= np.asarray(factors[m])[coords[m]]
    return out
