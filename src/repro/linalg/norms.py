"""Factor norms, rebalancing, and efficient model-norm identities.

The relative error of Section V-A is computed without reconstructing the
tensor, using

``||X - X_hat||^2 = ||X||^2 - 2 <X, X_hat> + ||X_hat||^2``

where ``<X, X_hat> = <MTTKRP(X, m), A_m>`` reuses the most recent MTTKRP
output and ``||X_hat||^2 = 1^T (hadamard of all Grams) 1`` — both are
``O(I F + F^2)``, negligible next to the factorization itself.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..types import VALUE_DTYPE, FactorList
from .grams import hadamard_gram_all


def column_norms(factor: np.ndarray, ord: float = 2) -> np.ndarray:
    """Per-column norms of a factor matrix."""
    factor = np.asarray(factor)
    if ord == 2:
        return np.sqrt(np.einsum("ij,ij->j", factor, factor))
    return np.linalg.norm(factor, ord=ord, axis=0)


def normalize_factors(factors: FactorList,
                      ord: float = 2) -> tuple[list[np.ndarray], np.ndarray]:
    """Normalize every factor's columns; absorb the scales into weights.

    Returns ``(normalized_factors, weights)`` with
    ``weights[f] = prod_m ||A_m[:, f]||``.  Columns with zero norm are left
    untouched and contribute a zero weight (dead components under L1).
    """
    normalized = []
    rank = np.asarray(factors[0]).shape[1]
    weights = np.ones(rank, dtype=VALUE_DTYPE)
    for factor in factors:
        factor = np.array(factor, dtype=VALUE_DTYPE, copy=True)
        norms = column_norms(factor, ord)
        safe = np.where(norms > 0.0, norms, 1.0)
        factor /= safe
        weights *= norms
        normalized.append(factor)
    return normalized, weights


def factor_frobenius_inner(a: np.ndarray, b: np.ndarray) -> float:
    """Frobenius inner product ``<A, B> = sum(A * B)``."""
    return float(np.einsum("ij,ij->", np.asarray(a), np.asarray(b)))


def model_norm_squared(factors: FactorList,
                       weights: np.ndarray | None = None) -> float:
    """``||X_hat||_F^2`` of a CP model via the Gram identity.

    ``||X_hat||^2 = w^T (hadamard_n A_n^T A_n) w`` with ``w`` the component
    weights (ones when factors are unweighted).
    """
    gram_prod = hadamard_gram_all(factors)
    if weights is None:
        return float(gram_prod.sum())
    weights = np.asarray(weights, dtype=VALUE_DTYPE)
    return float(weights @ gram_prod @ weights)
