"""Projected-gradient non-negative CPD (Zhang et al. family).

Per-mode update: one gradient step on the mode's quadratic subproblem
followed by projection onto the orthant,

``A_m <- max(A_m - (A_m G - K) / L, 0)``,   ``L = ||G||_2``

with the Lipschitz constant of the subproblem gradient as the step.  A
monotone, cheap baseline whose convergence-per-iteration trails ADMM's.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.aoadmm import FactorizationResult
from ..core.convergence import ConvergenceCriterion
from ..core.cpd import CPModel
from ..core.init import init_factors
from ..core.options import AOADMMOptions
from ..core.trace import FactorizationTrace, OuterIterationRecord
from ..kernels.dispatch import MTTKRPEngine, make_engine
from ..linalg.grams import GramCache
from ..observability import StageClock, record_iteration, span
from ..tensor.coo import COOTensor
from ..validation import require


def fit_pgd(tensor: COOTensor,
            options: AOADMMOptions | None = None,
            initial_factors: list[np.ndarray] | None = None,
            engine: MTTKRPEngine | None = None,
            inner_steps: int = 5) -> FactorizationResult:
    """Projected-gradient NNCPD.

    Parameters
    ----------
    inner_steps:
        Gradient/projection steps per mode update (the PGD analogue of
        inner ADMM iterations).
    """
    options = options or AOADMMOptions()
    require(tensor.nnz > 0, "cannot factor an empty tensor")
    require(inner_steps >= 1, "need at least one gradient step")

    setup_start = time.perf_counter()
    if initial_factors is None:
        factors = init_factors(tensor, options.rank, "uniform", options.seed)
    else:
        factors = [np.maximum(np.array(f, dtype=float, copy=True), 0.0)
                   for f in initial_factors]
    if engine is None:
        engine = make_engine(tensor, rank=options.rank, tune=options.tune)

    gram_cache = GramCache(factors)
    norm_x_sq = tensor.norm_squared()
    criterion = ConvergenceCriterion(options.outer_tolerance,
                                     options.max_outer_iterations)
    trace = FactorizationTrace()
    trace.setup_seconds = time.perf_counter() - setup_start

    nmodes = tensor.nmodes
    converged = False
    clock = StageClock(scope="pgd")
    while True:
        clock.reset()
        last_mttkrp: np.ndarray | None = None
        with span("pgd.iteration", iteration=len(trace) + 1):
            for mode in range(nmodes):
                with clock.stage("other"):
                    gram = gram_cache.gram_excluding(mode)

                with clock.stage("mttkrp"):
                    kmat = engine.mttkrp(factors, mode)

                with clock.stage("admm"):
                    # Largest eigenvalue of the SPD Gram = spectral norm.
                    lipschitz = float(np.linalg.eigvalsh(gram)[-1])
                    step = 1.0 / max(lipschitz, 1e-12)
                    a = factors[mode]
                    for _ in range(inner_steps):
                        grad = a @ gram - kmat
                        a = np.maximum(a - step * grad, 0.0)
                    factors[mode] = a

                with clock.stage("other"):
                    gram_cache.set_factor(mode, factors[mode])
                last_mttkrp = kmat

            with clock.stage("other"):
                assert last_mttkrp is not None
                inner = float(np.einsum("ij,ij->", last_mttkrp,
                                        factors[nmodes - 1]))
                model_sq = max(float(gram_cache.gram_all().sum()), 0.0)
                err = float(np.sqrt(max(norm_x_sq - 2 * inner + model_sq, 0.0)
                                    / norm_x_sq))

        trace.append(OuterIterationRecord.from_stages(
            clock,
            iteration=len(trace) + 1, relative_error=err,
            inner_iterations=tuple(inner_steps for _ in range(nmodes)),
            factor_densities=tuple(1.0 for _ in range(nmodes)),
            representations=tuple("dense" for _ in range(nmodes))))
        record_iteration(trace.records[-1], scope="pgd")
        if criterion.update(err):
            converged = criterion.reason == "tolerance"
            break

    return FactorizationResult(model=CPModel([f.copy() for f in factors]),
                               trace=trace, converged=converged,
                               stop_reason=criterion.reason, options=options)
