"""Multiplicative-update non-negative CPD.

The tensor generalization of Lee & Seung's NMF updates:

``A_m <- A_m * K / (A_m G + eps)``

with ``K`` the mode's MTTKRP and ``G`` the Hadamard product of the other
Grams.  Monotone under non-negative data, no step size, but known to crawl
near the optimum — the behaviour AO-ADMM improves on.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.aoadmm import FactorizationResult
from ..core.convergence import ConvergenceCriterion
from ..core.cpd import CPModel
from ..core.init import init_factors
from ..core.options import AOADMMOptions
from ..core.trace import FactorizationTrace, OuterIterationRecord
from ..kernels.dispatch import MTTKRPEngine, make_engine
from ..linalg.grams import GramCache
from ..observability import StageClock, record_iteration, span
from ..tensor.coo import COOTensor
from ..validation import require

_EPS = 1e-12


def fit_mu(tensor: COOTensor,
           options: AOADMMOptions | None = None,
           initial_factors: list[np.ndarray] | None = None,
           engine: MTTKRPEngine | None = None) -> FactorizationResult:
    """Multiplicative-update NNCPD with AO-ADMM-compatible tracing.

    Requires a non-negative tensor (the update rule assumes ``K >= 0``).
    """
    options = options or AOADMMOptions()
    require(tensor.nnz > 0, "cannot factor an empty tensor")
    require(float(tensor.vals.min()) >= 0.0,
            "multiplicative updates require a non-negative tensor")

    setup_start = time.perf_counter()
    if initial_factors is None:
        factors = init_factors(tensor, options.rank, "uniform", options.seed)
    else:
        factors = [np.abs(np.array(f, dtype=float, copy=True))
                   for f in initial_factors]
    if engine is None:
        engine = make_engine(tensor, rank=options.rank, tune=options.tune)

    gram_cache = GramCache(factors)
    norm_x_sq = tensor.norm_squared()
    criterion = ConvergenceCriterion(options.outer_tolerance,
                                     options.max_outer_iterations)
    trace = FactorizationTrace()
    trace.setup_seconds = time.perf_counter() - setup_start

    nmodes = tensor.nmodes
    converged = False
    clock = StageClock(scope="mu")
    while True:
        clock.reset()
        last_mttkrp: np.ndarray | None = None
        with span("mu.iteration", iteration=len(trace) + 1):
            for mode in range(nmodes):
                with clock.stage("other"):
                    gram = gram_cache.gram_excluding(mode)

                with clock.stage("mttkrp"):
                    kmat = engine.mttkrp(factors, mode)

                with clock.stage("admm"):
                    denom = factors[mode] @ gram
                    np.maximum(denom, _EPS, out=denom)
                    factors[mode] = (factors[mode]
                                     * np.maximum(kmat, 0.0) / denom)

                with clock.stage("other"):
                    gram_cache.set_factor(mode, factors[mode])
                last_mttkrp = kmat

            with clock.stage("other"):
                assert last_mttkrp is not None
                inner = float(np.einsum("ij,ij->", last_mttkrp,
                                        factors[nmodes - 1]))
                model_sq = max(float(gram_cache.gram_all().sum()), 0.0)
                err = float(np.sqrt(max(norm_x_sq - 2 * inner + model_sq, 0.0)
                                    / norm_x_sq))

        trace.append(OuterIterationRecord.from_stages(
            clock,
            iteration=len(trace) + 1, relative_error=err,
            inner_iterations=tuple(1 for _ in range(nmodes)),
            factor_densities=tuple(1.0 for _ in range(nmodes)),
            representations=tuple("dense" for _ in range(nmodes))))
        record_iteration(trace.records[-1], scope="mu")
        if criterion.update(err):
            converged = criterion.reason == "tolerance"
            break

    return FactorizationResult(model=CPModel([f.copy() for f in factors]),
                               trace=trace, converged=converged,
                               stop_reason=criterion.reason, options=options)
