"""Related-work baselines for non-negative CPD.

These reproduce the algorithm families Section III surveys against:
multiplicative updates (Welling & Weber style) and projected gradient
descent (Zhang et al.).  Both reuse the same MTTKRP engine as AO-ADMM, so
comparisons isolate the optimization algorithm.
"""

from .mu_ntf import fit_mu
from .pgd_ntf import fit_pgd

__all__ = ["fit_mu", "fit_pgd"]
