"""Shared type aliases and lightweight protocols used across :mod:`repro`.

The package standardizes on

* ``int64`` coordinates (tensor indices can exceed ``int32`` for the
  billion-scale tensors the paper targets), and
* ``float64`` values (the factorization is a least-squares solver; single
  precision would change convergence behaviour).

Everything here is importable without pulling in heavyweight submodules.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence, Union, runtime_checkable

import numpy as np

#: dtype used for all tensor coordinates.
INDEX_DTYPE = np.int64

#: dtype used for all tensor / factor values.
VALUE_DTYPE = np.float64

#: A dense factor matrix (``I_m x F``).
FactorMatrix = np.ndarray

#: A list of factor matrices, one per tensor mode.
FactorList = Sequence[np.ndarray]

#: Shape of a tensor: one extent per mode.
Shape = tuple[int, ...]

#: Anything accepted as a random seed.
SeedLike = Union[int, np.random.Generator, None]

#: Callback invoked once per outer AO-ADMM iteration.
IterationCallback = Callable[..., None]


@runtime_checkable
class TensorSource(Protocol):
    """What every tensor the drivers can factorize must expose.

    The unifying contract behind the ``repro.open_tensor`` front door:
    :class:`~repro.tensor.coo.COOTensor` (in-core coordinates),
    :class:`~repro.tensor.csf.CSFTensor` (in-core compressed fibers) and
    :class:`~repro.tensor.store.ShardedTensorStore` (out-of-core slabs
    on disk) all satisfy it, so ``repro.fit`` and the checkpoint layer
    only ever ask these four questions — *how* the non-zeros are stored
    (and whether they are resident at all) stays a backend concern.

    ``runtime_checkable`` deliberately checks only member presence; the
    semantic contract is: ``shape`` is one extent per mode, ``nmodes ==
    len(shape)``, ``nnz`` counts stored non-zeros, and
    ``norm_squared()`` returns ``sum(vals**2)`` **bit-identically**
    across every backend holding the same non-zeros (the relative-error
    trace depends on it).
    """

    @property
    def shape(self) -> tuple[int, ...]: ...

    @property
    def nmodes(self) -> int: ...

    @property
    def nnz(self) -> int: ...

    def norm_squared(self) -> float: ...


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from any seed-like input.

    Passing an existing generator returns it unchanged, which lets callers
    thread a single stream through multiple components.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
