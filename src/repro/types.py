"""Shared type aliases and lightweight protocols used across :mod:`repro`.

The package standardizes on

* ``int64`` coordinates (tensor indices can exceed ``int32`` for the
  billion-scale tensors the paper targets), and
* ``float64`` values (the factorization is a least-squares solver; single
  precision would change convergence behaviour).

Everything here is importable without pulling in heavyweight submodules.
"""

from __future__ import annotations

from typing import Callable, Sequence, Union

import numpy as np

#: dtype used for all tensor coordinates.
INDEX_DTYPE = np.int64

#: dtype used for all tensor / factor values.
VALUE_DTYPE = np.float64

#: A dense factor matrix (``I_m x F``).
FactorMatrix = np.ndarray

#: A list of factor matrices, one per tensor mode.
FactorList = Sequence[np.ndarray]

#: Shape of a tensor: one extent per mode.
Shape = tuple[int, ...]

#: Anything accepted as a random seed.
SeedLike = Union[int, np.random.Generator, None]

#: Callback invoked once per outer AO-ADMM iteration.
IterationCallback = Callable[..., None]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from any seed-like input.

    Passing an existing generator returns it unchanged, which lets callers
    thread a single stream through multiple components.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
