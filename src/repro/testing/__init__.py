"""First-class verification subsystem: oracles, strategies, differential.

Three layers, each usable on its own:

* :mod:`repro.testing.oracles` — dense brute-force references (MTTKRP via
  the full Khatri-Rao product, reconstruction error by explicit
  subtraction, proximity operators against their variational definition,
  ADMM KKT-residual certificates);
* :mod:`repro.testing.strategies` — seeded adversarial input generators
  whose every output is replayable from a compact spec string;
* :mod:`repro.testing.differential` — the sweep runner that executes one
  logical computation across every backend × threads × slab × rank-count
  combination and reports disagreements with seed-replay commands.

``python -m repro.testing.differential`` is the fuzz/replay CLI; the
pytest wiring lives in ``tests/test_differential.py`` (fast tier-1
subset, ``-m fuzz`` extended sweep).  See ``docs/testing.md``.
"""

from .differential import (
    BackendSpec,
    Disagreement,
    SweepReport,
    compare_factor_sets,
    compare_fits,
    mttkrp_backend_specs,
    replay_command,
    run_admm_sweep,
    run_mttkrp_sweep,
    run_prox_sweep,
)
from .oracles import (
    KKTCertificate,
    ProxCheck,
    check_prox,
    dense_reconstruction,
    kkt_certificate,
    mttkrp_oracle,
    relative_error_oracle,
)
from .strategies import (
    FLAVORS,
    TensorCase,
    case_from_spec,
    constraint_cases,
    factors_for,
    format_spec,
    make_case,
    options_grid,
    parse_spec,
    tensor_cases,
)

__all__ = [
    "BackendSpec",
    "Disagreement",
    "FLAVORS",
    "KKTCertificate",
    "ProxCheck",
    "SweepReport",
    "TensorCase",
    "case_from_spec",
    "check_prox",
    "compare_factor_sets",
    "compare_fits",
    "constraint_cases",
    "dense_reconstruction",
    "factors_for",
    "format_spec",
    "kkt_certificate",
    "make_case",
    "mttkrp_backend_specs",
    "mttkrp_oracle",
    "options_grid",
    "parse_spec",
    "relative_error_oracle",
    "replay_command",
    "run_admm_sweep",
    "run_mttkrp_sweep",
    "run_prox_sweep",
    "tensor_cases",
]
