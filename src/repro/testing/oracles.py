"""Brute-force reference implementations ("oracles") for differential tests.

Every oracle here trades efficiency for *transparency*: each one computes
its quantity by the textbook definition — full Khatri-Rao products, dense
reconstructions, zeroth/first-order optimality checks, KKT residuals —
with no shared code paths into the production kernels it certifies.  The
differential runner (:mod:`repro.testing.differential`) compares every
backend against these, so an oracle must be obviously correct rather than
fast; all of them are restricted to the small strategy-generated inputs
of :mod:`repro.testing.strategies`.

Covered claims:

* MTTKRP via the full matricized product (paper Algorithm 3's defining
  identity ``K = X_(n) kr(...)``) — the reference for every kernel path;
* CPD reconstruction error by explicit dense subtraction — the reference
  for the norm-expansion identity used in the drivers;
* proximity operators against their variational definition (objective
  domination over feasible candidates plus one-sided finite differences);
* ADMM KKT residuals — the convergence *certificate* for blocked and
  unblocked inner solves (paper Section III-B: both must reach the same
  subproblem optimum).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..admm.rho import TraceRho
from ..admm.state import AdmmState
from ..constraints.base import Constraint
from ..linalg.cholesky import CholeskyFactor
from ..linalg.khatri_rao import khatri_rao_excluding
from ..tensor.coo import COOTensor
from ..tensor.matricize import matricize_coo
from ..types import FactorList
from ..validation import check_mode, require

#: Largest ``prod(other extents)`` the dense oracles will materialize.
#: Strategy tensors stay far below this; the guard catches accidental use
#: on real datasets (where the oracle would silently allocate gigabytes).
ORACLE_DENSE_LIMIT = 2_000_000

_TINY = 1e-30


def _dense_guard(n_elements: int) -> None:
    require(n_elements <= ORACLE_DENSE_LIMIT,
            f"oracle would materialize {n_elements} dense elements "
            f"(limit {ORACLE_DENSE_LIMIT}); oracles are for small "
            "strategy-generated inputs only")


def mttkrp_oracle(tensor: COOTensor, factors: FactorList,
                  mode: int) -> np.ndarray:
    """MTTKRP by the defining identity ``K = X_(mode) @ kr(others)``.

    Materializes the *full* Khatri-Rao product of the non-target factors
    (every row, not just the gathered ones), multiplies it by the sparse
    unfolding, and never touches any production kernel code path beyond
    the unfolding itself.
    """
    mode = check_mode(mode, tensor.nmodes)
    rank = int(np.asarray(factors[0]).shape[1])
    ncols = 1
    for m in range(tensor.nmodes):
        if m != mode:
            ncols *= tensor.shape[m]
    _dense_guard(ncols * rank)
    unfolding = matricize_coo(tensor, mode)
    kr = khatri_rao_excluding(factors, mode)
    return np.asarray(unfolding @ kr)


def dense_reconstruction(factors: FactorList) -> np.ndarray:
    """Dense CP reconstruction ``sum_f outer(a_f, b_f, c_f, ...)``."""
    factors = [np.asarray(f, dtype=float) for f in factors]
    shape = tuple(f.shape[0] for f in factors)
    rank = factors[0].shape[1]
    n_elements = 1
    for extent in shape:
        n_elements *= extent
    _dense_guard(n_elements)
    out = np.zeros(shape)
    for f in range(rank):
        component = factors[0][:, f]
        for factor in factors[1:]:
            component = np.multiply.outer(component, factor[:, f])
        out += component
    return out


def relative_error_oracle(tensor: COOTensor, factors: FactorList) -> float:
    """``||X - X_hat||_F / ||X||_F`` by explicit dense subtraction.

    The drivers compute this through the norm-expansion identity
    (``||X||^2 - 2<X, X_hat> + ||X_hat||^2``) without reconstruction;
    this oracle certifies that identity on small inputs.
    """
    dense_x = tensor.to_dense()
    dense_model = dense_reconstruction(factors)
    norm_x = float(np.linalg.norm(dense_x))
    require(norm_x > 0.0, "tensor norm is zero")
    return float(np.linalg.norm(dense_x - dense_model) / norm_x)


# ----------------------------------------------------------------------
# Proximity-operator oracle
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ProxCheck:
    """Outcome of :func:`check_prox` on one ``(constraint, input)`` pair.

    ``worst_violation`` is the largest amount by which any candidate beat
    the prox output's objective (negative/zero = the prox won everywhere);
    ``worst_derivative`` is the most negative one-sided directional
    derivative observed at the prox output (≈0 or positive at an optimum).
    """

    constraint: str
    feasible: bool
    worst_violation: float
    worst_derivative: float

    def ok(self, tol: float = 1e-8) -> bool:
        return (self.feasible and self.worst_violation <= tol
                and self.worst_derivative >= -tol)


def _prox_objective(constraint: Constraint, candidate: np.ndarray,
                    v: np.ndarray, step: float) -> float:
    """``r(H) + 1/(2 step) ||H - V||_F^2`` — the prox's defining objective."""
    penalty = constraint.penalty(candidate)
    if not np.isfinite(penalty):
        return float("inf")
    diff = candidate - v
    return penalty + float(np.einsum("ij,ij->", diff, diff)) / (2.0 * step)


def check_prox(constraint: Constraint, matrix: np.ndarray, step: float,
               rng: np.random.Generator, trials: int = 24) -> ProxCheck:
    """Certify ``prox_{r, step}(matrix)`` against the variational definition.

    Three independent checks, none of which trust the prox being tested:

    1. *feasibility* — the output must have finite penalty (indicator
       constraints: the projection lands in the set);
    2. *objective domination* — no candidate (local perturbations at
       several scales, plus feasibility-verified projections of random
       points) achieves a lower prox objective;
    3. *finite differences* — the one-sided directional derivative of the
       prox objective at the output is non-negative along chords toward
       other verifiably feasible points (the variational inequality).
       Chord directions, not random ones: a convex combination of two
       feasible points is feasible *exactly*, so the check never depends
       on the tolerance slack some indicator penalties allow near their
       boundary (a random direction off e.g. the simplex stays "feasible"
       within that slack while the smooth term decreases, which would
       flag a correct projection).  Steps that still land outside a
       (nonconvex) set carry no information and are skipped.
    """
    require(step > 0.0, "prox step must be positive")
    v = np.array(matrix, dtype=float, copy=True)
    prox_out = np.asarray(constraint.prox(v.copy(), step), dtype=float)
    best = _prox_objective(constraint, prox_out, v, step)
    feasible = np.isfinite(constraint.penalty(prox_out))

    worst_violation = -np.inf
    scale = max(float(np.max(np.abs(v))), 1.0)
    for trial in range(trials):
        if trial % 2 == 0:
            # Local perturbation at a trial-dependent scale.
            eps = scale * 10.0 ** (-(trial % 8) / 2.0 - 1.0)
            candidate = prox_out + eps * rng.standard_normal(prox_out.shape)
            # For indicator constraints the perturbed point is usually
            # infeasible (objective inf) — re-project it through the
            # constraint and keep it only if *verifiably* feasible.
            if not np.isfinite(constraint.penalty(candidate)):
                candidate = np.asarray(
                    constraint.prox(candidate.copy(), step), dtype=float)
                if not np.isfinite(constraint.penalty(candidate)):
                    continue
        else:
            # A far-away feasible point: projection of an unrelated draw.
            candidate = np.asarray(constraint.prox(
                scale * rng.standard_normal(prox_out.shape), step),
                dtype=float)
            if not np.isfinite(constraint.penalty(candidate)):
                continue
        violation = best - _prox_objective(constraint, candidate, v, step)
        worst_violation = max(worst_violation, violation)

    worst_derivative = np.inf
    h = 1e-6 * scale
    for _ in range(8):
        target = np.asarray(constraint.prox(
            scale * rng.standard_normal(prox_out.shape), step), dtype=float)
        if not np.isfinite(constraint.penalty(target)):
            continue
        chord = target - prox_out
        length = float(np.linalg.norm(chord))
        if length < _TINY:
            continue
        t = min(h / length, 1.0)
        ahead = _prox_objective(constraint, prox_out + t * chord, v, step)
        if not np.isfinite(ahead):
            continue  # nonconvex set: the chord left it, no information
        worst_derivative = min(worst_derivative, (ahead - best) / (t * length))
    if not np.isfinite(worst_derivative):
        worst_derivative = 0.0
    if not np.isfinite(worst_violation):
        worst_violation = 0.0

    return ProxCheck(constraint=constraint.name, feasible=bool(feasible),
                     worst_violation=float(worst_violation),
                     worst_derivative=float(worst_derivative))


# ----------------------------------------------------------------------
# ADMM KKT certificates
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class KKTCertificate:
    """KKT residuals of one mode subproblem at an ADMM iterate.

    For ``min_H 1/2 tr(H G H^T) - <K, H> + r(H)`` an exact solution
    satisfies ``0 ∈ H G - K + ∂r(H)``.  An ADMM fixed point certifies
    this through three residuals, each ~0 at convergence:

    * ``primal_feasibility`` — ``||H - H_tilde||`` after re-solving the
      least-squares step from ``(H, U)`` (the two ADMM copies agree);
    * ``stationarity`` — ``||H G - K - rho U||`` (the scaled dual equals
      the smooth gradient, i.e. ``-rho U`` plays the subgradient);
    * ``subgradient`` — ``||H - prox(H - U, 1/rho)||`` (the prox
      fixed-point identity certifying ``-rho U ∈ ∂r(H)``).

    All residuals are relative (Frobenius, floored denominators).
    """

    primal_feasibility: float
    stationarity: float
    subgradient: float
    rho: float

    @property
    def max_residual(self) -> float:
        return max(self.primal_feasibility, self.stationarity,
                   self.subgradient)

    def satisfied(self, tol: float) -> bool:
        return self.max_residual <= tol


def _rel(num: np.ndarray, den: np.ndarray) -> float:
    return float(np.linalg.norm(num)
                 / max(float(np.linalg.norm(den)), _TINY))


def kkt_certificate(state: AdmmState, mttkrp: np.ndarray, gram: np.ndarray,
                    constraint: Constraint,
                    rho: float | None = None) -> KKTCertificate:
    """Certify one converged ADMM state against the subproblem's KKT system.

    ``mttkrp`` and ``gram`` should come from the oracles (or be otherwise
    trusted) — the certificate is only as strong as its inputs.  ``rho``
    defaults to the paper's ``trace(G)/F`` rule, matching the solvers.
    """
    primal, dual = state.primal, state.dual
    require(mttkrp.shape == primal.shape,
            "MTTKRP output must match the primal shape")
    rank = primal.shape[1]
    require(gram.shape == (rank, rank), "Gram must be F x F")
    if rho is None:
        rho = TraceRho().rho(gram)
    chol = CholeskyFactor(gram + rho * np.eye(rank))
    aux = chol.solve_t(mttkrp + rho * (primal + dual))
    reproxed = np.asarray(constraint.prox((primal - dual).copy(), 1.0 / rho))
    return KKTCertificate(
        primal_feasibility=_rel(primal - aux, primal),
        stationarity=_rel(primal @ gram - mttkrp - rho * dual, mttkrp),
        subgradient=_rel(primal - reproxed, primal),
        rho=float(rho))
