"""Picklable task functions for process-pool tests.

The pool resolves tasks by ``"module:function"`` name inside the worker
(:func:`repro.parallel.procpool.resolve_task_fn`), so test tasks must
live in an importable module — closures defined in a test file cannot
cross the process boundary.  These helpers exist only for
``tests/test_executor.py``; production slab batches live in
:mod:`repro.parallel.shm_worker`.
"""

from __future__ import annotations

import os
import signal


def echo(payload: dict) -> object:
    """Return ``payload["value"]`` (the no-op baseline task)."""
    return payload["value"]


def die_once(payload: dict) -> object:
    """SIGKILL the worker on first execution; succeed on resubmission.

    ``payload["marker"]`` is a filesystem path used as the
    has-this-task-run-before flag: the first worker to execute the task
    creates it and kills itself mid-batch (a *real* unclean death — no
    exception propagation, no cleanup), so the pool must detect the
    sentinel, respawn, and resubmit.  The resubmitted run sees the
    marker and returns normally.  This is the deterministic stand-in for
    "a worker crashed while holding tasks".
    """
    marker = payload["marker"]
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)
    return payload["value"]


def die(payload: dict) -> object:
    """SIGKILL the worker unconditionally (budget-exhaustion tests)."""
    os.kill(os.getpid(), signal.SIGKILL)
    return None  # pragma: no cover - unreachable


def raise_error(payload: dict) -> object:
    """Raise inside the worker (exercises WorkerTaskError propagation)."""
    raise RuntimeError(payload.get("message", "scheduled task failure"))
