"""Seeded adversarial input generators for the differential harness.

Every generated object is a pure function of a compact **spec string**
(``"v1:seed=123:index=7"``), so any failure anywhere in the sweep can be
replayed exactly from the string printed in its report — no pickles, no
fixtures, no shared state.  The generators deliberately target the edge
cases that have historically broken sparse-tensor kernels:

* empty slices (CSF trees with missing root branches);
* duplicate coordinates (pre-deduplication accumulation);
* power-law fibers (the slab balancer's worst case);
* 1-wide modes (degenerate Khatri-Rao shapes);
* ≥4 modes (the internal-level CSF kernels);
* planted low-rank structure (meaningful ADMM/driver sweeps).

Use :func:`tensor_cases` for a deterministic batch, :func:`case_from_spec`
to replay a single case, and :func:`factors_for` / :func:`constraint_cases`
/ :func:`options_grid` for the matching factor matrices, constraint
configurations, and driver option combinations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..constraints.base import Constraint
from ..constraints.registry import make_constraint
from ..core.options import AOADMMOptions, options_from_kwargs
from ..tensor.coo import COOTensor
from ..tensor.random import cp_values_at, random_factors
from ..types import INDEX_DTYPE
from ..validation import require

SPEC_VERSION = "v1"

#: Flavor rotation used by :func:`make_case`; ``index % len(FLAVORS)``
#: picks the flavor, so a batch of consecutive indices covers all of them.
FLAVORS = ("uniform", "powerlaw", "empty-slices", "duplicates",
           "one-wide", "many-modes", "lowrank")

_SPAWN_ROOT = 0x5EED  # domain separator for all strategy RNG streams


def _rng(seed: int, *stream: int) -> np.random.Generator:
    """A generator keyed by ``(seed, stream...)`` — independent streams."""
    return np.random.default_rng([_SPAWN_ROOT, int(seed), *map(int, stream)])


@dataclass(frozen=True)
class TensorCase:
    """One strategy-generated tensor plus everything needed to replay it."""

    #: Replay spec — ``case_from_spec(spec)`` rebuilds this case exactly.
    spec: str
    flavor: str
    tensor: COOTensor
    seed: int
    index: int
    #: Human-readable note on what makes this case adversarial.
    description: str

    @property
    def name(self) -> str:
        return f"{self.flavor}[{self.spec}]"


def format_spec(seed: int, index: int) -> str:
    return f"{SPEC_VERSION}:seed={int(seed)}:index={int(index)}"


def parse_spec(spec: str) -> tuple[int, int]:
    """Invert :func:`format_spec`; raises ``ValueError`` on malformed input."""
    parts = spec.strip().split(":")
    if len(parts) != 3 or parts[0] != SPEC_VERSION:
        raise ValueError(
            f"malformed case spec {spec!r}; expected "
            f"'{SPEC_VERSION}:seed=<int>:index=<int>'")
    values = {}
    for part in parts[1:]:
        key, _, raw = part.partition("=")
        if key not in ("seed", "index"):
            raise ValueError(f"unknown spec field {key!r} in {spec!r}")
        values[key] = int(raw)
    if set(values) != {"seed", "index"}:
        raise ValueError(f"incomplete case spec {spec!r}")
    return values["seed"], values["index"]


def _draw_shape(gen: np.random.Generator, nmodes: int,
                max_extent: int) -> tuple[int, ...]:
    return tuple(int(gen.integers(2, max_extent + 1))
                 for _ in range(nmodes))


def _draw_coords(gen: np.random.Generator, shape: tuple[int, ...],
                 nnz: int) -> np.ndarray:
    coords = np.empty((len(shape), nnz), dtype=INDEX_DTYPE)
    for m, extent in enumerate(shape):
        coords[m] = gen.integers(0, extent, size=nnz, dtype=INDEX_DTYPE)
    return coords


def _powerlaw_coords(gen: np.random.Generator, shape: tuple[int, ...],
                     nnz: int, exponent: float) -> np.ndarray:
    """Coordinates with Zipf-skewed slice populations on every mode."""
    coords = np.empty((len(shape), nnz), dtype=INDEX_DTYPE)
    for m, extent in enumerate(shape):
        weights = 1.0 / np.arange(1, extent + 1, dtype=float) ** exponent
        # Shuffle so the heavy slice is not always index 0 (the tiling
        # code paths treat leading slices specially).
        weights = gen.permutation(weights)
        coords[m] = gen.choice(extent, size=nnz, p=weights / weights.sum())
    return coords


def make_case(seed: int, index: int, flavor: str | None = None) -> TensorCase:
    """Build one deterministic adversarial tensor case.

    ``flavor=None`` rotates through :data:`FLAVORS` by *index*, which is
    what the batch generators do; passing a flavor pins it (the seed
    stream still depends on *index* only, so a pinned-flavor case with
    the same ``(seed, index)`` differs from the rotated one only in the
    structural post-processing).
    """
    if flavor is None:
        flavor = FLAVORS[index % len(FLAVORS)]
    require(flavor in FLAVORS, f"unknown case flavor {flavor!r}")
    gen = _rng(seed, index)
    nmodes = int(gen.choice((3, 4)))
    if flavor == "many-modes":
        nmodes = int(gen.choice((4, 5)))
    shape = _draw_shape(gen, nmodes, max_extent=9)
    nnz = int(gen.integers(20, 160))
    description = f"{nmodes}-mode {shape}"

    if flavor == "one-wide":
        narrow = gen.choice(nmodes, size=max(1, nmodes - 2), replace=False)
        shape = tuple(1 if m in narrow else s for m, s in enumerate(shape))
        description += f" -> 1-wide modes {sorted(int(m) for m in narrow)}"

    if flavor == "powerlaw":
        exponent = float(gen.uniform(1.2, 2.5))
        coords = _powerlaw_coords(gen, shape, nnz, exponent)
        description += f", Zipf fibers (a={exponent:.2f})"
    elif flavor == "lowrank":
        rank = int(gen.integers(2, 5))
        factors = random_factors(shape, rank, seed=gen, nonneg=True)
        coords = _draw_coords(gen, shape, nnz)
        description += f", planted rank-{rank} values"
    else:
        coords = _draw_coords(gen, shape, nnz)

    if flavor == "empty-slices":
        # Collapse every mode's indices into its lower half: the upper
        # slices exist in the shape but hold no non-zeros.
        coords = coords.copy()
        for m, extent in enumerate(shape):
            if extent >= 2:
                coords[m] %= max(extent // 2, 1)
        description += ", upper half of every mode empty"
    elif flavor == "duplicates":
        # Re-draw ~half the coordinates from the other half so the raw
        # stream contains exact duplicates that deduplicate() must sum.
        half = nnz // 2
        if half:
            src = gen.integers(0, half, size=nnz - half)
            coords[:, half:] = coords[:, src]
        description += f", {nnz - half} duplicated coordinates"

    if flavor == "lowrank":
        vals = cp_values_at(factors, coords)
    else:
        vals = gen.standard_normal(nnz)
        vals[vals == 0.0] = 1.0  # keep the requested support

    raw_nnz = nnz
    tensor = COOTensor(coords, vals, shape).deduplicate().drop_zeros()
    if tensor.nnz == 0:  # pragma: no cover - needs an all-cancelling draw
        tensor = COOTensor(coords[:, :1], np.ones(1), shape)
    if tensor.nnz != raw_nnz:
        description += f" ({raw_nnz} draws -> {tensor.nnz} nnz)"
    return TensorCase(spec=format_spec(seed, index), flavor=flavor,
                      tensor=tensor, seed=int(seed), index=int(index),
                      description=description)


def case_from_spec(spec: str) -> TensorCase:
    """Replay a case from the spec string printed in a failure report."""
    seed, index = parse_spec(spec)
    return make_case(seed, index)


def tensor_cases(count: int, seed: int, start: int = 0) -> list[TensorCase]:
    """A deterministic batch of *count* cases rotating through the flavors."""
    require(count >= 1, "count must be positive")
    return [make_case(seed, index)
            for index in range(start, start + count)]


def factors_for(case: TensorCase, rank: int,
                leaf_sparsity: float = 0.5) -> list[np.ndarray]:
    """Factor matrices matched to *case*, derived from its spec.

    Signed dense factors with roughly ``leaf_sparsity`` of the entries
    zeroed — exact zeros, so the CSR / CSR-H representations genuinely
    skip work while remaining value-identical to the dense matrices.
    """
    gen = _rng(case.seed, case.index, 1)
    factors = []
    for extent in case.tensor.shape:
        mat = gen.standard_normal((extent, rank))
        if leaf_sparsity > 0.0:
            mat[gen.uniform(size=mat.shape) < leaf_sparsity] = 0.0
            # A factor with an all-zero *column* makes the whole MTTKRP
            # vanish for rank-1 slices; keep at least one entry per row
            # so the comparison stays informative.
            dead_rows = ~np.any(mat, axis=1)
            if np.any(dead_rows):
                mat[dead_rows, 0] = gen.standard_normal(
                    int(dead_rows.sum()))
        factors.append(np.ascontiguousarray(mat))
    return factors


# ----------------------------------------------------------------------
# Constraint and options strategies
# ----------------------------------------------------------------------

#: Constraint configurations exercised by the prox oracle sweep: every
#: registry entry, with parameter draws where the constructor takes any.
CONSTRAINT_SPECS: tuple[tuple[str, dict], ...] = (
    ("none", {}),
    ("nonneg", {}),
    ("l1", {"weight": 0.2}),
    ("nonneg_l1", {"weight": 0.15}),
    ("l2", {"weight": 0.3}),
    ("elastic_net", {"l1": 0.1, "l2": 0.2}),
    ("box", {"lower": -0.5, "upper": 1.5}),
    ("simplex", {"radius": 1.0}),
    ("norm_ball", {"radius": 2.0}),
    ("monotone", {}),
    ("cardinality", {"k": 2}),
    ("smooth", {"weight": 0.5}),
)


def constraint_cases(seed: int, rows: int = 7, rank: int = 4
                     ) -> list[tuple[str, Constraint, np.ndarray, float]]:
    """``(name, constraint, prox input, step)`` tuples for the prox oracle."""
    cases = []
    for i, (name, kwargs) in enumerate(CONSTRAINT_SPECS):
        gen = _rng(seed, 2, i)
        matrix = gen.standard_normal((rows, rank)) * float(gen.uniform(0.5, 3))
        step = float(gen.uniform(0.05, 2.0))
        cases.append((name, make_constraint(name, **kwargs), matrix, step))
    return cases


def options_grid(**axes: tuple) -> list[AOADMMOptions]:
    """Cartesian product of option axes, e.g. ``blocked=(True, False)``.

    Keys are :class:`AOADMMOptions` field names (or legacy aliases);
    values are tuples of settings for that axis.
    """
    names = sorted(axes)
    combos = itertools.product(*(axes[name] for name in names))
    return [options_from_kwargs(**dict(zip(names, combo)))
            for combo in combos]
