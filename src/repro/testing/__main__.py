"""``python -m repro.testing`` — the differential fuzz/replay CLI."""

from .differential import main

if __name__ == "__main__":
    raise SystemExit(main())
