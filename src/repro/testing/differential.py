"""Differential sweep runner: one computation, every backend, one verdict.

The paper's equivalence claims (Section III-B: blocked ADMM reaches the
same subproblem optimum as unblocked; Section IV: every MTTKRP path —
COO, CSF, tiled/threaded CSF, sparse-factor CSR/CSR-H, distributed —
computes the same ``K``) are enforced here as machine-checked sweeps
instead of piecemeal hand-written assertions:

* :func:`run_mttkrp_sweep` executes one logical MTTKRP across the whole
  backend × threads × slab-target × rank-count grid on strategy-generated
  adversarial tensors, asserting **bit-identical** results inside each
  family that promises it (the CSF kernels are bit-identical for any
  slab/thread decomposition) and oracle-tolerance agreement across
  families (different summation orders);
* :func:`run_admm_sweep` solves one mode subproblem blocked and
  unblocked from identical warm starts, asserts thread-bitwise identity
  within the blocked family, tolerance agreement across the two
  formulations, and certifies both solutions with the KKT oracle;
* :func:`run_prox_sweep` checks every registered proximity operator
  against its variational definition;
* :func:`compare_factor_sets` / :func:`compare_fits` diff whole
  factorization outputs (used for determinism, checkpoint/resume, and
  fault-detection tests).

Every failure carries a **seed-replay string** — a shell command that
rebuilds the exact failing case from its spec and re-runs the
comparison:

    PYTHONPATH=src python -m repro.testing \\
        --replay 'v1:seed=123:index=7' --mode 2 --backend 'csf-tiled[t=4,s=32]'

The module is also the nightly fuzz entry point
(``python -m repro.testing --seed <rotating> --cases 40``).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..admm.blocked import blocked_admm_update
from ..admm.solver import admm_update
from ..admm.state import AdmmState
from ..constraints.registry import make_constraint
from ..core.aoadmm import fit_aoadmm
from ..core.options import AOADMMOptions
from ..distributed.partition import partition_tensor
from ..kernels.dispatch import MTTKRPEngine, mttkrp
from ..kernels.mttkrp_coo import mttkrp_coo
from ..linalg.grams import hadamard_gram_excluding
from ..tensor.coo import COOTensor
from ..validation import require
from .oracles import check_prox, kkt_certificate, mttkrp_oracle
from .strategies import (
    TensorCase,
    case_from_spec,
    constraint_cases,
    factors_for,
    tensor_cases,
)

#: Default comparison tolerances for cross-family (different summation
#: order) agreement.  Inside a family the contract is bitwise — no
#: tolerance at all.
DEFAULT_RTOL = 1e-9
DEFAULT_ATOL = 1e-10

#: Row-separable *convex* constraints used by the ADMM sweep (the blocked
#: reformulation applies, and the subproblem optimum is unique so the two
#: formulations must meet at it).
ADMM_SWEEP_CONSTRAINTS = ("nonneg", "l1", "box", "simplex")


def replay_command(spec: str, mode: int | None = None,
                   backend: str | None = None) -> str:
    """The shell command that replays one failing comparison."""
    cmd = ("PYTHONPATH=src python -m repro.testing "
           f"--replay '{spec}'")
    if mode is not None:
        cmd += f" --mode {mode}"
    if backend is not None:
        cmd += f" --backend '{backend}'"
    return cmd


@dataclass(frozen=True)
class Disagreement:
    """One failed comparison, with everything needed to reproduce it."""

    #: ``"oracle"`` (backend vs dense oracle), ``"bitwise"`` (inside a
    #: bit-identity family), ``"cross"`` (blocked vs unblocked, fit vs
    #: fit), ``"kkt"`` (certificate violation), ``"prox"``, or
    #: ``"storage"`` (an integrity contract violated under disk faults).
    kind: str
    case: str
    backend: str
    reference: str
    detail: str
    #: Largest absolute elementwise difference (``nan`` when a result
    #: contained non-finite values; 0 for non-elementwise checks).
    max_abs_diff: float
    mode: int | None = None
    replay: str = ""

    def __str__(self) -> str:
        where = f" mode={self.mode}" if self.mode is not None else ""
        line = (f"[{self.kind}] {self.backend} vs {self.reference} "
                f"on {self.case}{where}: {self.detail}")
        if self.replay:
            line += f"\n    replay: {self.replay}"
        return line


@dataclass
class SweepReport:
    """Aggregate outcome of one differential sweep."""

    cases: int = 0
    comparisons: int = 0
    disagreements: list[Disagreement] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def merge(self, other: "SweepReport") -> "SweepReport":
        self.cases += other.cases
        self.comparisons += other.comparisons
        self.disagreements.extend(other.disagreements)
        return self

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        lines = [f"{status}: {self.comparisons} comparisons over "
                 f"{self.cases} cases, "
                 f"{len(self.disagreements)} disagreement(s)"]
        lines.extend(str(d) for d in self.disagreements)
        return "\n".join(lines)

    def raise_for_failures(self) -> None:
        """Raise ``AssertionError`` with replay strings if anything failed."""
        if not self.ok:
            raise AssertionError("differential sweep failed\n"
                                 + self.summary())

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "cases": self.cases,
            "comparisons": self.comparisons,
            "disagreements": [
                {"kind": d.kind, "case": d.case, "backend": d.backend,
                 "reference": d.reference, "mode": d.mode,
                 "detail": d.detail, "max_abs_diff": d.max_abs_diff,
                 "replay": d.replay}
                for d in self.disagreements],
        }


# ----------------------------------------------------------------------
# MTTKRP backends
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BackendSpec:
    """One MTTKRP execution path in the sweep grid.

    ``factory(tensor)`` returns a per-tensor kernel ``(factors, mode) ->
    ndarray`` (so engines/trees amortize across the tensor's modes).
    Backends sharing a ``family`` promise **bitwise** identical results;
    across families agreement is tolerance-bounded against the oracle.
    """

    name: str
    family: str
    factory: Callable[[COOTensor], Callable[[list, int], np.ndarray]]


def _engine_backend(tensor: COOTensor, *, repr_policy: str,
                    threads: int | None,
                    slab_nnz_target: int | None,
                    executor: str | None = None) -> Callable:
    engine = MTTKRPEngine(tensor, repr_policy=repr_policy,
                          sparsity_threshold=2.0 if repr_policy != "dense"
                          else 0.2,
                          threads=threads, slab_nnz_target=slab_nnz_target,
                          executor=executor)
    engine.trees.build_all()
    primed: set[int] = set()

    def kernel(factors: list, mode: int) -> np.ndarray:
        if repr_policy != "dense":
            # The sparse-factor kernel reads the leaf factor through its
            # stored representation — keep it in sync with the inputs.
            for m in range(tensor.nmodes):
                engine.update_factor(m, factors[m])
        # The engine returns a pooled workspace buffer (valid until the
        # next call for the same mode): copy for cross-backend diffing.
        out = np.array(engine.mttkrp(factors, mode), copy=True)
        primed.add(mode)
        return out

    return kernel


def _sharded_backend(tensor: COOTensor,
                     max_bytes_in_core: int | None) -> Callable:
    """Out-of-core grid point: shard to a temp store, stream MTTKRP.

    Joins the ``csf`` family — the store holds the same mode-rooted
    trees split at root-slice boundaries, so the streamed result is
    contractually **bitwise** identical to every in-core CSF backend
    for any byte budget.  The temp shard directory lives until the
    kernel closure is collected (finalizer-backed), covering the whole
    sweep over the tensor's modes.
    """
    import weakref

    from ..kernels.dispatch import StreamingMTTKRPEngine
    from ..tensor.store import open_tensor

    # Budget 1 here only forces the shard-to-temp-store path; the
    # engine budget below is the one under test.
    store = open_tensor(tensor, max_bytes_in_core=1, slab_nnz_target=32)
    store.max_bytes_in_core = max_bytes_in_core
    engine = StreamingMTTKRPEngine(store, executor="serial")

    def kernel(factors: list, mode: int) -> np.ndarray:
        return np.array(engine.mttkrp(factors, mode), copy=True)

    weakref.finalize(kernel, store.close)
    return kernel


def _auto_backend(tensor: COOTensor, tune_mode: str) -> Callable:
    """Autotuned grid point: engine whose slab plans the tuner chose.

    Joins the ``csf`` family — the autotuner only ever selects among
    csf-family slab decompositions (``docs/autotuning.md``), so its
    choice is contractually **bitwise** invisible whatever the tune
    mode.  ``measure`` probes against a throwaway temp cache
    (finalizer-cleaned) so sweep runs never touch the user's cache.
    Tuning happens lazily on the first call, when the rank is known
    from the factors.
    """
    import shutil
    import tempfile
    import weakref

    from ..kernels.autotune import BackendAutotuner, TuningCache

    engine = MTTKRPEngine(tensor, repr_policy="dense", threads=1)
    engine.trees.build_all()
    if tune_mode == "measure":
        tmp = tempfile.mkdtemp(prefix="repro-difftune-")
        cache = TuningCache(f"{tmp}/autotune.json")
    else:
        tmp, cache = None, None
    tuner = BackendAutotuner(mode=tune_mode, cache=cache,
                             min_probe_nnz=0, probe_repeats=1)
    tuned: list[int] = []

    def kernel(factors: list, mode: int) -> np.ndarray:
        if not tuned:
            tuner.tune_engine(engine, int(np.asarray(factors[0]).shape[1]))
            tuned.append(1)
        return np.array(engine.mttkrp(factors, mode), copy=True)

    if tmp is not None:
        weakref.finalize(kernel, shutil.rmtree, tmp, True)
    return kernel


def _distributed_backend(tensor: COOTensor, ranks: int) -> Callable:
    partition = partition_tensor(tensor, ranks)

    def kernel(factors: list, mode: int) -> np.ndarray:
        # The distributed driver's invariant: shard-local MTTKRPs sum to
        # the global K (the allreduce).  Sum in rank order, exactly as
        # SimComm.allreduce does.
        out = np.zeros((tensor.shape[mode], np.asarray(factors[0]).shape[1]))
        for shard in partition.shards:
            if shard.nnz:
                out += mttkrp_coo(shard, factors, mode)
        return out

    return kernel


def mttkrp_backend_specs(threads: Sequence[int] = (1, 2, 4),
                         slab_targets: Sequence[int] = (32, 100_000),
                         distributed_ranks: Sequence[int] = (3,),
                         sparse_factors: bool = True,
                         executors: Sequence[str] = (),
                         ooc_budgets: Sequence[int | None] = (None, 4096),
                         ) -> list[BackendSpec]:
    """The default sweep grid over every MTTKRP execution path.

    The tiled backends resolve their executor from the environment
    (``REPRO_EXECUTOR``) — running the whole sweep under
    ``REPRO_EXECUTOR=process`` pushes every tiled comparison through the
    shared-memory pool.  *executors* additionally pins named executors
    as explicit grid points, holding e.g. ``serial`` and ``process`` to
    the same **bitwise** family anchor within one run.
    """
    specs = [
        BackendSpec("coo", "coo",
                    lambda t: lambda f, m: mttkrp_coo(t, f, m)),
        # Untiled mode-rooted CSF; same family as the tiled variants —
        # slab decomposition is contractually bit-invisible.
        BackendSpec("csf", "csf",
                    lambda t: lambda f, m: mttkrp(t, f, m, method="csf")),
        # The autotuned paths: same family, because the autotuner only
        # selects among csf-family slab plans.  "auto" is the stateless
        # dispatch default; auto[model]/auto[measure] pin the engine
        # tuner to each tune mode so a measured decision can never
        # drift bitwise from the model-seeded or manual anchors.
        BackendSpec("auto", "csf",
                    lambda t: lambda f, m: mttkrp(t, f, m, method="auto")),
        BackendSpec("auto[model]", "csf",
                    lambda t: _auto_backend(t, "model")),
        BackendSpec("auto[measure]", "csf",
                    lambda t: _auto_backend(t, "measure")),
    ]
    for t in threads:
        for s in slab_targets:
            specs.append(BackendSpec(
                f"csf-tiled[t={t},s={s}]", "csf",
                lambda tensor, t=t, s=s: _engine_backend(
                    tensor, repr_policy="dense", threads=t,
                    slab_nnz_target=s)))
    small_slab = min(slab_targets) if slab_targets else 32
    for x in executors:
        for t in (1, max(threads) if threads else 4):
            specs.append(BackendSpec(
                f"csf-tiled[x={x},t={t},s={small_slab}]", "csf",
                lambda tensor, x=x, t=t: _engine_backend(
                    tensor, repr_policy="dense", threads=t,
                    slab_nnz_target=small_slab, executor=x)))
    if sparse_factors:
        specs.append(BackendSpec(
            "sparse-csr", "sparse-csr",
            lambda tensor: _engine_backend(tensor, repr_policy="csr",
                                           threads=1, slab_nnz_target=None)))
        specs.append(BackendSpec(
            "sparse-csr-h", "sparse-csr-h",
            lambda tensor: _engine_backend(tensor, repr_policy="hybrid",
                                           threads=1, slab_nnz_target=None)))
    # Out-of-core streaming over a temp sharded store.  Family "csf":
    # slab residency/eviction is contractually bit-invisible, so every
    # budget (including a starvation-level one) must match the in-core
    # CSF anchor bitwise.
    for b in ooc_budgets:
        specs.append(BackendSpec(
            f"sharded[b={b}]", "csf",
            lambda tensor, b=b: _sharded_backend(tensor, b)))
    for r in distributed_ranks:
        specs.append(BackendSpec(
            f"distributed[ranks={r}]", "distributed",
            lambda tensor, r=r: _distributed_backend(tensor, r)))
    return specs


def _diff(a: np.ndarray, b: np.ndarray) -> float:
    if not (np.all(np.isfinite(a)) and np.all(np.isfinite(b))):
        return float("nan")
    return float(np.max(np.abs(a - b))) if a.size else 0.0


def _agrees(a: np.ndarray, b: np.ndarray, rtol: float, atol: float) -> bool:
    return (a.shape == b.shape and np.all(np.isfinite(a))
            and np.all(np.isfinite(b))
            and np.allclose(a, b, rtol=rtol, atol=atol))


def run_mttkrp_sweep(cases: Sequence[TensorCase], rank: int = 4,
                     backends: Sequence[BackendSpec] | None = None,
                     modes: Sequence[int] | None = None,
                     rtol: float = DEFAULT_RTOL,
                     atol: float = DEFAULT_ATOL) -> SweepReport:
    """Run every backend on every case × mode; compare oracle + families."""
    if backends is None:
        backends = mttkrp_backend_specs()
    report = SweepReport(cases=len(cases))
    for case in cases:
        tensor = case.tensor
        factors = factors_for(case, rank)
        kernels = [(spec, spec.factory(tensor)) for spec in backends]
        sweep_modes = (range(tensor.nmodes) if modes is None
                       else [m for m in modes if m < tensor.nmodes])
        for mode in sweep_modes:
            oracle = mttkrp_oracle(tensor, factors, mode)
            family_reference: dict[str, tuple[str, np.ndarray]] = {}
            for spec, kernel in kernels:
                result = kernel(factors, mode)
                report.comparisons += 1
                if not _agrees(result, oracle, rtol, atol):
                    report.disagreements.append(Disagreement(
                        kind="oracle", case=case.spec, backend=spec.name,
                        reference="dense-oracle", mode=mode,
                        detail=f"max |diff| = {_diff(result, oracle):.3e} "
                               f"(rtol={rtol}, atol={atol})",
                        max_abs_diff=_diff(result, oracle),
                        replay=replay_command(case.spec, mode, spec.name)))
                anchor = family_reference.get(spec.family)
                if anchor is None:
                    family_reference[spec.family] = (spec.name, result)
                    continue
                anchor_name, anchor_result = anchor
                report.comparisons += 1
                if not np.array_equal(result, anchor_result):
                    report.disagreements.append(Disagreement(
                        kind="bitwise", case=case.spec, backend=spec.name,
                        reference=anchor_name, mode=mode,
                        detail="family promises bit-identical results; "
                               f"max |diff| = {_diff(result, anchor_result):.3e}",
                        max_abs_diff=_diff(result, anchor_result),
                        replay=replay_command(case.spec, mode, spec.name)))
    return report


# ----------------------------------------------------------------------
# ADMM sweep: blocked vs unblocked with KKT certificates
# ----------------------------------------------------------------------

def run_admm_sweep(cases: Sequence[TensorCase], rank: int = 4,
                   constraints: Sequence[str] = ADMM_SWEEP_CONSTRAINTS,
                   block_sizes: Sequence[int] = (3,),
                   threads: Sequence[int] = (1, 2),
                   inner_tolerance: float = 1e-12,
                   max_iterations: int = 3000,
                   agreement_rtol: float = 1e-3,
                   agreement_atol: float = 1e-3,
                   kkt_tol: float = 1e-4) -> SweepReport:
    """Blocked-vs-unblocked equivalence (Section III-B) on one subproblem.

    For each case: build the mode-0 subproblem data ``(K, G)`` through
    the **oracle** MTTKRP and the Gram definition, solve it unblocked and
    blocked (every block size × thread count) from identical warm starts
    run to a tight inner tolerance, then assert

    * bitwise identity across thread counts for a fixed block size (the
      blocked solver's contract);
    * tolerance-bounded agreement between the blocked and unblocked
      primal solutions (unique optimum of the convex subproblem).  The
      documented tolerance follows from the stopping rule: each solve
      halts once its *squared* relative residuals drop below
      ``inner_tolerance``, so each iterate lies within
      ``O(sqrt(inner_tolerance))`` of the optimum and two independent
      solves agree to that order (defaults: ``sqrt(1e-12) = 1e-6``
      guaranteed scale — times a conditioning-dependent constant —
      asserted at rtol ``1e-3`` / atol ``1e-3``, comfortably above the
      worst gap observed over hundreds of seeded cases (~1.5e-4) and
      far below any genuine formulation divergence).  Checked only when both solves converged — a
      stalled solve (iteration cap) makes no distance-to-optimum
      promise;
    * KKT certificates from :func:`repro.testing.oracles.kkt_certificate`
      for every **converged** state — the paper's "same factors" claim is
      certified rather than merely compared.  States that hit the
      iteration cap without meeting the inner tolerance (degenerate
      Grams from 1-wide modes stall ADMM) are still compared across
      formulations but not certified: the certificate is a statement
      about converged solves.
    """
    report = SweepReport(cases=len(cases))
    for case_index, case in enumerate(cases):
        tensor = case.tensor
        factors = factors_for(case, rank, leaf_sparsity=0.0)
        kmat = mttkrp_oracle(tensor, factors, 0)
        gram = hadamard_gram_excluding(factors, 0)
        name = constraints[case_index % len(constraints)]
        constraint = make_constraint(name)
        init = np.abs(factors[0]) + 0.1  # feasible for every sweep constraint

        base_state = AdmmState.from_factor(init)
        base_report = admm_update(base_state, kmat, gram, constraint,
                                  tolerance=inner_tolerance,
                                  max_iterations=max_iterations)
        if base_report.converged:
            cert = kkt_certificate(base_state, kmat, gram, constraint,
                                   rho=base_report.rho)
            report.comparisons += 1
            if not cert.satisfied(kkt_tol):
                report.disagreements.append(Disagreement(
                    kind="kkt", case=case.spec,
                    backend=f"unblocked[{name}]",
                    reference="kkt-oracle", mode=0,
                    detail=f"max KKT residual {cert.max_residual:.3e} > "
                           f"{kkt_tol}",
                    max_abs_diff=cert.max_residual,
                    replay=replay_command(case.spec, 0)))

        for block_size in block_sizes:
            anchor: np.ndarray | None = None
            for t in threads:
                state = AdmmState.from_factor(init)
                blk_report = blocked_admm_update(
                    state, kmat, gram, constraint,
                    tolerance=inner_tolerance,
                    max_iterations=max_iterations,
                    block_size=block_size, threads=t)
                label = f"blocked[{name},b={block_size},t={t}]"
                report.comparisons += 1
                if anchor is None:
                    anchor = state.primal.copy()
                elif not np.array_equal(state.primal, anchor):
                    report.disagreements.append(Disagreement(
                        kind="bitwise", case=case.spec, backend=label,
                        reference=f"blocked[{name},b={block_size},t="
                                  f"{threads[0]}]",
                        mode=0,
                        detail="blocked ADMM must be bit-identical across "
                               "thread counts; max |diff| = "
                               f"{_diff(state.primal, anchor):.3e}",
                        max_abs_diff=_diff(state.primal, anchor),
                        replay=replay_command(case.spec, 0)))
                if blk_report.converged and base_report.converged:
                    report.comparisons += 1
                    if not _agrees(state.primal, base_state.primal,
                                   agreement_rtol, agreement_atol):
                        report.disagreements.append(Disagreement(
                            kind="cross", case=case.spec, backend=label,
                            reference=f"unblocked[{name}]", mode=0,
                            detail="blocked and unblocked solutions differ "
                                   "by max |diff| = "
                                   f"{_diff(state.primal, base_state.primal):.3e}"
                                   f" (rtol={agreement_rtol}, "
                                   f"atol={agreement_atol})",
                            max_abs_diff=_diff(state.primal,
                                               base_state.primal),
                            replay=replay_command(case.spec, 0)))
                if blk_report.converged:
                    cert = kkt_certificate(state, kmat, gram, constraint,
                                           rho=blk_report.rho)
                    report.comparisons += 1
                    if not cert.satisfied(kkt_tol):
                        report.disagreements.append(Disagreement(
                            kind="kkt", case=case.spec, backend=label,
                            reference="kkt-oracle", mode=0,
                            detail=f"max KKT residual "
                                   f"{cert.max_residual:.3e} > {kkt_tol}",
                            max_abs_diff=cert.max_residual,
                            replay=replay_command(case.spec, 0)))
    return report


# ----------------------------------------------------------------------
# Prox sweep
# ----------------------------------------------------------------------

def run_prox_sweep(seed: int, trials: int = 24,
                   tol: float = 1e-6) -> SweepReport:
    """Check every registered proximity operator against its definition."""
    cases = constraint_cases(seed)
    report = SweepReport(cases=len(cases))
    for i, (name, constraint, matrix, step) in enumerate(cases):
        gen = np.random.default_rng([0x9807, seed, i])
        check = check_prox(constraint, matrix, step, gen, trials=trials)
        report.comparisons += 1
        if not check.ok(tol):
            report.disagreements.append(Disagreement(
                kind="prox", case=f"constraint={name} seed={seed}",
                backend=f"prox[{name}]", reference="variational-oracle",
                detail=f"feasible={check.feasible}, "
                       f"worst objective violation "
                       f"{check.worst_violation:.3e}, worst directional "
                       f"derivative {check.worst_derivative:.3e}",
                max_abs_diff=max(check.worst_violation, 0.0)))
    return report


# ----------------------------------------------------------------------
# Whole-fit differencing (determinism / checkpoint / fault detection)
# ----------------------------------------------------------------------

def compare_factor_sets(case_spec: str, label_a: str, label_b: str,
                        factors_a: Sequence[np.ndarray],
                        factors_b: Sequence[np.ndarray],
                        bitwise: bool = True,
                        rtol: float = DEFAULT_RTOL,
                        atol: float = DEFAULT_ATOL) -> SweepReport:
    """Diff two factor lists mode by mode into a :class:`SweepReport`."""
    report = SweepReport(cases=1)
    require(len(factors_a) == len(factors_b),
            "factor lists must have matching mode counts")
    for mode, (fa, fb) in enumerate(zip(factors_a, factors_b)):
        fa, fb = np.asarray(fa), np.asarray(fb)
        report.comparisons += 1
        same = (np.array_equal(fa, fb) if bitwise
                else _agrees(fa, fb, rtol, atol))
        if not same:
            report.disagreements.append(Disagreement(
                kind="cross", case=case_spec, backend=label_b,
                reference=label_a, mode=mode,
                detail=("bitwise mismatch" if bitwise else
                        f"tolerance mismatch (rtol={rtol}, atol={atol})")
                       + f"; max |diff| = {_diff(fa, fb):.3e}",
                max_abs_diff=_diff(fa, fb),
                replay=replay_command(case_spec, mode)))
    return report


def compare_fits(case: TensorCase, options_a: AOADMMOptions,
                 options_b: AOADMMOptions, label_a: str = "fit-a",
                 label_b: str = "fit-b", bitwise: bool = True,
                 rtol: float = DEFAULT_RTOL,
                 atol: float = DEFAULT_ATOL) -> SweepReport:
    """Run ``fit_aoadmm`` under two option sets from one shared init and
    diff the resulting factors.

    This is how a deliberately perturbed kernel (via
    :class:`repro.robustness.faults.FaultInjector` on ``options_b``) is
    *caught*: the perturbed run's factors disagree with the clean run's,
    and the report's replay string rebuilds the exact tensor case.
    """
    from ..core.init import init_factors
    init = init_factors(case.tensor, options_a.rank, options_a.init,
                        seed=case.seed)
    result_a = fit_aoadmm(case.tensor, options_a,
                          initial_factors=[f.copy() for f in init])
    result_b = fit_aoadmm(case.tensor, options_b,
                          initial_factors=[f.copy() for f in init])
    return compare_factor_sets(case.spec, label_a, label_b,
                               result_a.model.factors,
                               result_b.model.factors,
                               bitwise=bitwise, rtol=rtol, atol=atol)


# ----------------------------------------------------------------------
# Storage-fault sweep: no silent wrong answer under disk corruption
# ----------------------------------------------------------------------

def run_storage_fault_sweep(cases: Sequence[TensorCase], rank: int = 4,
                            kinds: Sequence[str] | None = None,
                            max_iterations: int = 4,
                            seed: int = 0) -> SweepReport:
    """Prove the storage-integrity contract under injected disk faults.

    For each case the tensor is sharded to a store and a fit is run as
    the unfaulted anchor.  Then, for every storage fault kind
    (:data:`repro.robustness.faults.STORAGE_FAULT_KINDS`) and both
    rebuild postures, a slab is deterministically damaged on disk and
    the fit re-run:

    * store **with** its source attached — the slab must be
      quarantined and rebuilt, and the fit must complete **bitwise**
      identical to the unfaulted anchor;
    * store **without** a source — the fit must fail loudly with
      :class:`~repro.integrity.IntegrityError`; completing at all is a
      silent-wrong-answer finding.

    A kill-during-shard scenario (:class:`ShardCrashPlan`) additionally
    asserts the torn-write contract: the crashed target never parses as
    a store, and a clean re-shard fits bit-identically.
    """
    import shutil
    import tempfile
    import warnings
    from pathlib import Path

    from ..core.init import init_factors
    from ..integrity import IntegrityError
    from ..robustness.faults import (
        STORAGE_FAULT_KINDS,
        InjectedCrash,
        ShardCrashPlan,
        SlabFaultSpec,
        inject_slab_fault,
    )
    from ..tensor.store import ShardedTensorStore

    if kinds is None:
        kinds = STORAGE_FAULT_KINDS
    report = SweepReport()
    options = AOADMMOptions(rank=rank,
                            max_outer_iterations=max_iterations)
    for case_index, case in enumerate(cases):
        tensor = case.tensor
        if tensor.nnz == 0:
            continue  # nothing on disk to damage
        report.cases += 1
        init = init_factors(tensor, rank, options.init, seed=case.seed)
        root = Path(tempfile.mkdtemp(prefix="repro-storage-sweep-"))
        try:
            anchor_store = ShardedTensorStore.create(
                tensor, root / "anchor", slab_nnz_target=32)
            anchor = fit_aoadmm(anchor_store, options,
                                initial_factors=[f.copy() for f in init])
            anchor_store.close()
            target_mode = case_index % tensor.nmodes

            for ki, kind in enumerate(kinds):
                for with_source in (True, False):
                    store_dir = root / f"{kind}-{int(with_source)}"
                    store = ShardedTensorStore.create(
                        tensor, store_dir, slab_nnz_target=32)
                    if not with_source:
                        store.close()
                        store = ShardedTensorStore.open(store_dir)
                    spec = SlabFaultSpec(kind, mode=target_mode, index=0,
                                         seed=seed + 31 * ki)
                    inject_slab_fault(store, spec)
                    label = (f"storage[{kind},"
                             f"source={'yes' if with_source else 'no'}]")
                    report.comparisons += 1
                    try:
                        with warnings.catch_warnings():
                            warnings.simplefilter("ignore", RuntimeWarning)
                            result = fit_aoadmm(
                                store, options,
                                initial_factors=[f.copy() for f in init])
                    except IntegrityError:
                        # Loud failure — always an acceptable outcome.
                        store.close()
                        continue
                    if not with_source:
                        report.disagreements.append(Disagreement(
                            kind="storage", case=case.spec, backend=label,
                            reference="IntegrityError",
                            detail="fit over a corrupt store with no "
                                   "rebuild source completed instead of "
                                   "failing loudly — silent wrong-answer "
                                   "path",
                            max_abs_diff=float("nan"),
                            replay=replay_command(case.spec)))
                    else:
                        sub = compare_factor_sets(
                            case.spec, "unfaulted", label,
                            anchor.model.factors, result.model.factors,
                            bitwise=True)
                        sub.cases = 0  # already counted above
                        report.merge(sub)
                    store.close()

            # Kill-during-shard: the target must never parse as a store.
            crash_dir = root / "crash"
            plan = ShardCrashPlan(at_slab=2)
            report.comparisons += 1
            try:
                ShardedTensorStore.create(tensor, crash_dir,
                                          slab_nnz_target=32,
                                          fault_hook=plan)
                crashed = not plan.fired
            except InjectedCrash:
                crashed = True
            if not crashed or ShardedTensorStore.is_store(crash_dir):
                report.disagreements.append(Disagreement(
                    kind="storage", case=case.spec,
                    backend="shard-crash[at_slab=2]",
                    reference="torn-write contract",
                    detail="a shard killed mid-write left a directory "
                           "that parses as a store",
                    max_abs_diff=float("nan"),
                    replay=replay_command(case.spec)))
            else:
                store = ShardedTensorStore.create(tensor, crash_dir,
                                                  slab_nnz_target=32)
                retry = fit_aoadmm(store, options,
                                   initial_factors=[f.copy()
                                                    for f in init])
                sub = compare_factor_sets(
                    case.spec, "unfaulted", "reshard-after-crash",
                    anchor.model.factors, retry.model.factors,
                    bitwise=True)
                sub.cases = 0  # already counted above
                report.merge(sub)
                store.close()
        finally:
            shutil.rmtree(root, ignore_errors=True)
    return report


# ----------------------------------------------------------------------
# CLI: fuzz entry point and failure replay
# ----------------------------------------------------------------------

def _parse_int_list(raw: str) -> tuple[int, ...]:
    return tuple(int(part) for part in raw.split(",") if part)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing",
        description="Cross-backend differential sweeps (fuzz + replay).")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed for the strategy generators")
    parser.add_argument("--cases", type=int, default=20,
                        help="number of strategy-generated tensors")
    parser.add_argument("--rank", type=int, default=4)
    parser.add_argument("--threads", type=_parse_int_list, default=(1, 2, 4),
                        help="comma-separated thread counts for tiled CSF")
    parser.add_argument("--slabs", type=_parse_int_list,
                        default=(32, 100_000),
                        help="comma-separated slab nnz targets")
    parser.add_argument("--executors", default="",
                        help="comma-separated executor names to pin as "
                             "explicit bitwise grid points (e.g. "
                             "'serial,process')")
    parser.add_argument("--no-admm", action="store_true",
                        help="skip the blocked-vs-unblocked ADMM sweep")
    parser.add_argument("--storage-faults", action="store_true",
                        help="also run the storage-fault sweep (slab "
                             "bit-rot, truncation, kill-during-shard): "
                             "faulted fits must be bit-identical after "
                             "rebuild or fail with IntegrityError")
    parser.add_argument("--replay", metavar="SPEC",
                        help="replay one case from its spec string "
                             "(e.g. 'v1:seed=123:index=7')")
    parser.add_argument("--mode", type=int, default=None,
                        help="with --replay: restrict to one mode")
    parser.add_argument("--backend", default=None,
                        help="with --replay: restrict to backends whose "
                             "name contains this string")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the report as JSON to PATH")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    executors = tuple(x for x in args.executors.split(",") if x)
    backends = mttkrp_backend_specs(threads=args.threads,
                                    slab_targets=args.slabs,
                                    executors=executors)
    if args.replay:
        case = case_from_spec(args.replay)
        if args.backend:
            backends = [b for b in backends if args.backend in b.name]
            if not backends:
                print(f"no backend matches {args.backend!r}",
                      file=sys.stderr)
                return 2
        modes = None if args.mode is None else (args.mode,)
        print(f"replaying {case.name}: {case.description}")
        report = run_mttkrp_sweep([case], rank=args.rank,
                                  backends=backends, modes=modes)
        if not args.no_admm:
            report.merge(run_admm_sweep([case], rank=args.rank))
    else:
        cases = tensor_cases(args.cases, args.seed)
        report = run_mttkrp_sweep(cases, rank=args.rank, backends=backends)
        if not args.no_admm:
            report.merge(run_admm_sweep(cases, rank=args.rank))
        report.merge(run_prox_sweep(args.seed))
        if args.storage_faults:
            # Whole fits per fault kind are expensive — a handful of
            # cases is plenty to prove the contract each night.
            report.merge(run_storage_fault_sweep(cases[:6], rank=args.rank,
                                                 seed=args.seed))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2)
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
