"""The paper's primary contribution: the accelerated AO-ADMM framework."""

from .cpd import CPModel, factor_match_score
from .options import AOADMMOptions
from .trace import FactorizationTrace, OuterIterationRecord
from .convergence import ConvergenceCriterion
from .init import init_factors
from .aoadmm import FactorizationResult, fit_aoadmm
from .als import fit_als
from .serialize import load_model, penalized_objective, save_model

__all__ = [
    "save_model",
    "load_model",
    "penalized_objective",
    "CPModel",
    "factor_match_score",
    "AOADMMOptions",
    "FactorizationTrace",
    "OuterIterationRecord",
    "ConvergenceCriterion",
    "init_factors",
    "FactorizationResult",
    "fit_aoadmm",
    "fit_als",
]
