"""Per-iteration records of a factorization run.

The trace is the raw material for every figure in the paper's evaluation:
error-vs-time and error-vs-iteration curves (Figure 6), kernel time
fractions (Figure 3), and the work-item descriptors the machine model
replays for the scaling studies (Figures 4-5).

The timing substrate is :mod:`repro.observability`: drivers run each
outer iteration under a :class:`~repro.observability.tracing.StageClock`
(stages ``"mttkrp"`` / ``"admm"`` / ``"other"``) and build the record
with :meth:`OuterIterationRecord.from_stages` — this module holds the
record *shape* (preserved field-for-field across the observability
refactor), not its own timing code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..observability.tracing import StageClock

#: The canonical stage names a driver's clock must use; anything else
#: accumulated on the clock is folded into ``other_seconds``.
STAGE_MTTKRP = "mttkrp"
STAGE_ADMM = "admm"
STAGE_OTHER = "other"


@dataclass
class OuterIterationRecord:
    """Everything measured during one outer AO iteration."""

    iteration: int
    relative_error: float
    #: Wall-clock seconds spent in MTTKRP during this iteration.
    mttkrp_seconds: float
    #: Wall-clock seconds spent in ADMM (or least-squares) updates.
    admm_seconds: float
    #: Everything else: Grams, representation rebuilds, error evaluation.
    other_seconds: float
    #: Inner ADMM iteration count per mode (max over blocks when blocked).
    inner_iterations: tuple[int, ...]
    #: Per-mode factor densities after the update (drives Table II).
    factor_densities: tuple[float, ...]
    #: Per-mode deep-factor representation used by MTTKRP this iteration.
    representations: tuple[str, ...]
    #: Optional: per-mode blocked reports (block rows + iterations); only
    #: retained when options.track_block_reports is set.
    block_reports: tuple[object, ...] | None = None
    #: Per-mode diagonal jitter the Cholesky path had to add to repair a
    #: rank-deficient / indefinite Gram (0.0 everywhere in healthy runs).
    jitter_added: tuple[float, ...] = ()
    #: Guard events (:class:`repro.robustness.guards.GuardEvent`) that
    #: fired during this iteration — repairs the run survived.
    guard_events: tuple[object, ...] = ()

    @classmethod
    def from_stages(cls, clock: StageClock, **fields) -> "OuterIterationRecord":
        """Build a record from a driver's per-iteration stage clock.

        ``clock`` carries the iteration's wall-clock split; every
        non-timing field (iteration, relative_error, ...) is passed
        through ``fields``.  Stages other than the canonical three are
        counted into ``other_seconds`` so no measured time is dropped.
        """
        totals = clock.totals()
        other = sum(v for k, v in totals.items()
                    if k not in (STAGE_MTTKRP, STAGE_ADMM))
        return cls(mttkrp_seconds=totals.get(STAGE_MTTKRP, 0.0),
                   admm_seconds=totals.get(STAGE_ADMM, 0.0),
                   other_seconds=other, **fields)

    @property
    def total_seconds(self) -> float:
        return self.mttkrp_seconds + self.admm_seconds + self.other_seconds

    @property
    def total_jitter(self) -> float:
        """Summed diagonal jitter across this iteration's mode updates."""
        return float(sum(self.jitter_added))


@dataclass
class FactorizationTrace:
    """Ordered list of outer-iteration records plus run-level metadata."""

    records: list[OuterIterationRecord] = field(default_factory=list)
    #: Seconds spent before the first iteration (init, CSF builds).
    setup_seconds: float = 0.0
    #: Run-level guard events that did not land in a completed record —
    #: i.e. the rollback/divergence event that aborted an iteration.
    guard_log: list = field(default_factory=list)

    def append(self, record: OuterIterationRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Figure/series extraction
    # ------------------------------------------------------------------
    def errors(self) -> np.ndarray:
        """Relative error after each outer iteration."""
        return np.array([r.relative_error for r in self.records])

    def cumulative_seconds(self) -> np.ndarray:
        """Wall-clock at the end of each outer iteration (incl. setup)."""
        totals = np.array([r.total_seconds for r in self.records])
        return self.setup_seconds + np.cumsum(totals)

    def time_fractions(self) -> dict[str, float]:
        """Fraction of total factorization time per kernel (Figure 3)."""
        mttkrp = sum(r.mttkrp_seconds for r in self.records)
        admm = sum(r.admm_seconds for r in self.records)
        other = sum(r.other_seconds for r in self.records) + self.setup_seconds
        total = mttkrp + admm + other
        if total <= 0.0:
            return {"mttkrp": 0.0, "admm": 0.0, "other": 0.0}
        return {"mttkrp": mttkrp / total, "admm": admm / total,
                "other": other / total}

    def total_seconds(self) -> float:
        """Total factorization wall-clock (Table II's metric)."""
        return self.setup_seconds + float(
            sum(r.total_seconds for r in self.records))

    def total_jitter(self) -> float:
        """Summed Cholesky jitter over the whole run (numerical repairs)."""
        return float(sum(r.total_jitter for r in self.records))

    def guard_events(self) -> list:
        """Every guard event of the run, in firing order.

        Concatenates the per-record events (repairs within completed
        iterations) with :attr:`guard_log` (the aborting event of a
        rollback/divergence stop, whose iteration never completed).
        """
        out: list = []
        for record in self.records:
            out.extend(record.guard_events)
        out.extend(self.guard_log)
        return out

    def final_error(self) -> float:
        """Relative error of the returned model."""
        return self.records[-1].relative_error if self.records else float("nan")

    def error_vs_time(self) -> tuple[np.ndarray, np.ndarray]:
        """(seconds, error) series — Figure 6 left column."""
        return self.cumulative_seconds(), self.errors()

    def error_vs_iteration(self) -> tuple[np.ndarray, np.ndarray]:
        """(iteration, error) series — Figure 6 right column."""
        its = np.arange(1, len(self.records) + 1)
        return its, self.errors()
