"""The AO-ADMM driver (paper Algorithm 2) with the paper's accelerations.

One outer iteration cycles over the modes; for each mode it

1. composes the Gram ``G`` from the cached per-mode Grams,
2. computes the MTTKRP ``K`` through the engine (CSF kernels, honoring the
   deep factor's dynamic sparse representation — Section IV-C),
3. runs the inner ADMM — full-matrix (baseline) or blockwise
   (Section IV-B) — warm-started from the previous outer iteration, and
4. refreshes the mode's Gram and its factor representation.

The relative error is evaluated from the *last* mode's MTTKRP via the norm
expansion identity, so convergence checking adds no kernel work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..admm.blocked import blocked_admm_update
from ..admm.rho import make_rho_policy
from ..admm.solver import admm_update
from ..admm.state import AdmmState
from ..kernels.dispatch import MTTKRPEngine
from ..linalg.grams import GramCache
from ..sparse.analysis import density
from ..tensor.coo import COOTensor
from ..validation import require
from .convergence import ConvergenceCriterion
from .cpd import CPModel
from .init import init_factors
from .options import AOADMMOptions
from .trace import FactorizationTrace, OuterIterationRecord


@dataclass
class FactorizationResult:
    """Everything a factorization run returns."""

    model: CPModel
    trace: FactorizationTrace
    converged: bool
    #: "tolerance" or "max_iterations".
    stop_reason: str
    options: AOADMMOptions

    @property
    def iterations(self) -> int:
        return len(self.trace)

    @property
    def relative_error(self) -> float:
        return self.trace.final_error()


def fit_aoadmm(tensor: COOTensor,
               options: AOADMMOptions | None = None,
               initial_factors: list[np.ndarray] | None = None,
               engine: MTTKRPEngine | None = None) -> FactorizationResult:
    """Factorize *tensor* with (accelerated) AO-ADMM.

    Parameters
    ----------
    tensor:
        The sparse tensor in COO format.
    options:
        Run configuration; defaults reproduce the paper's setup.
    initial_factors:
        Explicit starting point (e.g. to compare base vs blocked from
        identical initializations, as Figure 6 requires).  Overrides
        ``options.init`` / ``options.seed``.
    engine:
        A pre-built :class:`MTTKRPEngine` — pass one to amortize CSF
        construction across runs of the same tensor (the benchmark
        harness does this).

    Returns
    -------
    FactorizationResult
        The model, the per-iteration trace, and stop diagnostics.
    """
    options = options or AOADMMOptions()
    require(tensor.nmodes >= 2, "factorization needs at least two modes")
    require(tensor.nnz > 0, "cannot factor an empty tensor")
    constraints = options.resolve_constraints(tensor.nmodes)
    if options.blocked:
        for c in constraints:
            require(c.row_separable,
                    f"constraint {c.name!r} is not row separable; use "
                    "blocked=False (Section IV-B restriction)")
    rho_policy = make_rho_policy(options.rho_policy)

    setup_start = time.perf_counter()
    if initial_factors is None:
        factors = init_factors(tensor, options.rank, options.init,
                               options.seed)
    else:
        require(len(initial_factors) == tensor.nmodes,
                "one initial factor per mode required")
        factors = [np.array(f, dtype=float, copy=True)
                   for f in initial_factors]

    if engine is None:
        engine = MTTKRPEngine(tensor, repr_policy=options.repr_policy,
                              sparsity_threshold=options.sparsity_threshold,
                              tol=options.factor_zero_tol,
                              threads=options.threads,
                              slab_nnz_target=options.slab_nnz_target)
        engine.trees.build_all()

    states = [AdmmState.from_factor(f) for f in factors]
    gram_cache = GramCache([s.primal for s in states])
    norm_x_sq = tensor.norm_squared()
    criterion = ConvergenceCriterion(options.outer_tolerance,
                                     options.max_outer_iterations)
    trace = FactorizationTrace()
    trace.setup_seconds = time.perf_counter() - setup_start

    nmodes = tensor.nmodes
    converged = False
    while True:
        mttkrp_seconds = 0.0
        admm_seconds = 0.0
        other_seconds = 0.0
        inner_iterations: list[int] = []
        block_reports: list[object] = []
        last_mttkrp: np.ndarray | None = None

        for mode in range(nmodes):
            tick = time.perf_counter()
            gram = gram_cache.gram_excluding(mode)
            other_seconds += time.perf_counter() - tick

            tick = time.perf_counter()
            current = [s.primal for s in states]
            kmat = engine.mttkrp(current, mode)
            mttkrp_seconds += time.perf_counter() - tick

            tick = time.perf_counter()
            if options.blocked:
                report = blocked_admm_update(
                    states[mode], kmat, gram, constraints[mode],
                    rho_policy=rho_policy,
                    tolerance=options.inner_tolerance,
                    max_iterations=options.max_inner_iterations,
                    block_size=options.block_size,
                    threads=options.threads)
                inner_iterations.append(report.iterations)
            else:
                report = admm_update(
                    states[mode], kmat, gram, constraints[mode],
                    rho_policy=rho_policy,
                    tolerance=options.inner_tolerance,
                    max_iterations=options.max_inner_iterations)
                inner_iterations.append(report.iterations)
            admm_seconds += time.perf_counter() - tick
            if options.track_block_reports:
                block_reports.append(report)

            tick = time.perf_counter()
            gram_cache.set_factor(mode, states[mode].primal)
            engine.update_factor(mode, states[mode].primal)
            other_seconds += time.perf_counter() - tick

            last_mttkrp = kmat

        # Relative error from the last mode's MTTKRP: K was computed with
        # the other factors at their current values, and only mode N-1's
        # factor changed afterwards, so <X, X_hat> = <K, A_{N-1}>.
        tick = time.perf_counter()
        assert last_mttkrp is not None
        inner = float(np.einsum("ij,ij->", last_mttkrp,
                                states[nmodes - 1].primal))
        model_sq = max(float(gram_cache.gram_all().sum()), 0.0)
        err_sq = max(norm_x_sq - 2.0 * inner + model_sq, 0.0)
        relative_error = float(np.sqrt(err_sq / norm_x_sq))
        other_seconds += time.perf_counter() - tick

        densities = tuple(density(s.primal, options.factor_zero_tol)
                          for s in states)
        representations = tuple(engine.representation(m)
                                for m in range(nmodes))
        trace.append(OuterIterationRecord(
            iteration=len(trace) + 1,
            relative_error=relative_error,
            mttkrp_seconds=mttkrp_seconds,
            admm_seconds=admm_seconds,
            other_seconds=other_seconds,
            inner_iterations=tuple(inner_iterations),
            factor_densities=densities,
            representations=representations,
            block_reports=tuple(block_reports) if block_reports else None,
        ))

        record = trace.records[-1]
        stop_reason = ""
        if criterion.update(relative_error):
            stop_reason = criterion.reason
        if not stop_reason and options.callback is not None \
                and options.callback(record):
            stop_reason = "callback"
        if not stop_reason and options.time_budget_seconds is not None \
                and trace.total_seconds() >= options.time_budget_seconds:
            stop_reason = "time_budget"
        if stop_reason:
            converged = stop_reason == "tolerance"
            break

    model = CPModel([s.primal.copy() for s in states])
    return FactorizationResult(model=model, trace=trace, converged=converged,
                               stop_reason=stop_reason, options=options)
