"""The AO-ADMM driver (paper Algorithm 2) with the paper's accelerations.

One outer iteration cycles over the modes; for each mode it

1. composes the Gram ``G`` from the cached per-mode Grams,
2. computes the MTTKRP ``K`` through the engine (CSF kernels, honoring the
   deep factor's dynamic sparse representation — Section IV-C),
3. runs the inner ADMM — full-matrix (baseline) or blockwise
   (Section IV-B) — warm-started from the previous outer iteration, and
4. refreshes the mode's Gram and its factor representation.

The relative error is evaluated from the *last* mode's MTTKRP via the norm
expansion identity, so convergence checking adds no kernel work.

Robustness (``repro.robustness``): the loop is wired with numerical
guards — MTTKRP outputs, post-update primal/dual states, and the error
series are health-checked every iteration per ``options.guard_policy`` —
and with periodic checkpointing (``options.checkpoint_every`` /
``checkpoint_path``).  A checkpointed run resumes **bit-identically**
via ``fit_aoadmm(..., resume_from=path)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..admm.blocked import blocked_admm_update
from ..admm.rho import make_rho_policy
from ..admm.solver import admm_update
from ..admm.state import AdmmState
from ..kernels.dispatch import MTTKRPEngine, make_engine
from ..linalg.grams import GramCache
from ..observability import StageClock, record_admm_report, record_iteration, span
from ..robustness.checkpoint import (
    Checkpoint,
    CheckpointStore,
    resolve_resume,
    save_checkpoint,
    verify_checkpoint,
)
from ..robustness.guards import HealthMonitor, RollbackRequested
from ..sparse.analysis import density
from ..types import TensorSource
from ..validation import require
from .convergence import ConvergenceCriterion
from .cpd import CPModel
from .init import init_factors
from .options import AOADMMOptions, options_from_kwargs
from .trace import FactorizationTrace, OuterIterationRecord


@dataclass
class FactorizationResult:
    """Everything a factorization run returns."""

    model: CPModel
    trace: FactorizationTrace
    converged: bool
    #: Why the run stopped:
    #:
    #: * ``"tolerance"`` — the relative error improved by less than
    #:   ``options.outer_tolerance`` (the only reason with
    #:   ``converged=True``);
    #: * ``"max_iterations"`` — ``options.max_outer_iterations`` reached;
    #: * ``"callback"`` — ``options.callback`` returned truthy;
    #: * ``"time_budget"`` — ``options.time_budget_seconds`` exceeded;
    #: * ``"rollback"`` — a numerical guard fired under the ``rollback``
    #:   policy and the best iterate was restored;
    #: * ``"diverged"`` — the divergence guard fired (non-``raise``
    #:   policy) and the best iterate was restored;
    #: * ``"preempted"`` — ``options.preempt_flag`` was set (e.g. by a
    #:   SIGTERM handler); a final checkpoint was written when
    #:   checkpointing is configured, so the run resumes bit-identically.
    stop_reason: str
    options: AOADMMOptions

    @property
    def iterations(self) -> int:
        return len(self.trace)

    @property
    def relative_error(self) -> float:
        return self.trace.final_error()


def fit_aoadmm(tensor: TensorSource,
               options: AOADMMOptions | None = None,
               initial_factors: list[np.ndarray] | None = None,
               engine: MTTKRPEngine | None = None,
               resume_from: "str | Path | Checkpoint | None" = None,
               **legacy_kwargs: object) -> FactorizationResult:
    """Factorize *tensor* with (accelerated) AO-ADMM.

    Parameters
    ----------
    tensor:
        Any :class:`~repro.types.TensorSource` — an in-core
        :class:`~repro.tensor.coo.COOTensor` / CSF tensor, or an
        out-of-core :class:`~repro.tensor.store.ShardedTensorStore`
        (streamed under ``options.max_bytes_in_core``).
    options:
        Run configuration; defaults reproduce the paper's setup.
    initial_factors:
        Explicit starting point (e.g. to compare base vs blocked from
        identical initializations, as Figure 6 requires).  Overrides
        ``options.init`` / ``options.seed``.
    engine:
        A pre-built :class:`MTTKRPEngine` — pass one to amortize CSF
        construction across runs of the same tensor (the benchmark
        harness does this).
    resume_from:
        A checkpoint path (or loaded
        :class:`~repro.robustness.checkpoint.Checkpoint`) written by a
        previous run with ``options.checkpoint_every`` set.  The run
        continues bit-identically from the checkpointed iteration; the
        tensor and the numerics-affecting options must match (verified).
    **legacy_kwargs:
        Deprecated flat-kwargs configuration (``rank=16``,
        ``blocked=True``, historical aliases like ``n_components`` /
        ``tol`` — see :data:`repro.core.options.LEGACY_KWARGS`).  Emits a
        :class:`DeprecationWarning` and is translated onto *options* via
        :func:`repro.core.options.options_from_kwargs`; pass an
        :class:`AOADMMOptions` instead.

    Returns
    -------
    FactorizationResult
        The model, the per-iteration trace, and stop diagnostics.

    Raises
    ------
    repro.robustness.guards.NumericalFaultError
        When a numerical guard fires under ``guard_policy="raise"``.
    """
    if legacy_kwargs:
        import warnings
        warnings.warn(
            "passing factorization settings as flat keyword arguments to "
            "fit_aoadmm() is deprecated; build an AOADMMOptions (or use "
            "repro.fit(...)) instead: "
            + ", ".join(sorted(legacy_kwargs)),
            DeprecationWarning, stacklevel=2)
        options = options_from_kwargs(base=options, **legacy_kwargs)
    options = options or AOADMMOptions()
    require(tensor.nmodes >= 2, "factorization needs at least two modes")
    require(tensor.nnz > 0, "cannot factor an empty tensor")
    constraints = options.resolve_constraints(tensor.nmodes)
    if options.blocked:
        for c in constraints:
            require(c.row_separable,
                    f"constraint {c.name!r} is not row separable; use "
                    "blocked=False (Section IV-B restriction)")
    rho_policy = make_rho_policy(options.rho_policy)

    setup_start = time.perf_counter()
    checkpoint: Checkpoint | None = None
    if resume_from is not None:
        require(initial_factors is None,
                "resume_from and initial_factors are mutually exclusive")
        checkpoint = resolve_resume(resume_from)
        verify_checkpoint(checkpoint, tensor, options)

    if checkpoint is not None:
        states = checkpoint.states()
    else:
        if initial_factors is None:
            factors = init_factors(tensor, options.rank, options.init,
                                   options.seed)
        else:
            require(len(initial_factors) == tensor.nmodes,
                    "one initial factor per mode required")
            factors = [np.array(f, dtype=float, copy=True)
                       for f in initial_factors]
        states = [AdmmState.from_factor(f) for f in factors]

    owned_engine = engine is None
    if engine is None:
        engine = make_engine(tensor, repr_policy=options.repr_policy,
                             sparsity_threshold=options.sparsity_threshold,
                             tol=options.factor_zero_tol,
                             threads=options.threads,
                             slab_nnz_target=options.slab_nnz_target,
                             executor=options.executor,
                             max_bytes_in_core=options.max_bytes_in_core,
                             rank=options.rank, tune=options.tune)
    if checkpoint is not None:
        # Rebuild the dynamic factor representations (Section IV-C) the
        # uninterrupted run would carry at this point — they are a pure
        # function of the current factor values.
        for mode, state in enumerate(states):
            engine.update_factor(mode, state.primal)

    gram_cache = GramCache([s.primal for s in states])
    norm_x_sq = tensor.norm_squared()
    criterion = ConvergenceCriterion(options.outer_tolerance,
                                     options.max_outer_iterations)
    if checkpoint is not None:
        trace = checkpoint.trace
        trace.setup_seconds += time.perf_counter() - setup_start
    else:
        trace = FactorizationTrace()
        trace.setup_seconds = time.perf_counter() - setup_start

    monitor: HealthMonitor | None = None
    if options.guard_policy != "off":
        monitor = HealthMonitor(options.guard_policy,
                                options.divergence_patience)
        monitor.commit(states,
                       trace.final_error() if len(trace) else float("inf"),
                       len(trace))
    injector = options.fault_injector

    store: CheckpointStore | None = None
    if options.checkpoint_keep_last is not None:
        store = CheckpointStore(options.checkpoint_path,
                                keep_last=options.checkpoint_keep_last)

    def write_checkpoint(iteration: int) -> None:
        if injector is not None:
            injector.check_checkpoint_write(iteration)
        if store is not None:
            written = store.save(tensor, options, states, trace,
                                 rhos=last_rhos)
        else:
            written = save_checkpoint(options.checkpoint_path, tensor,
                                      options, states, trace,
                                      rhos=last_rhos)
        if injector is not None:
            injector.corrupt_checkpoint(written, iteration)

    nmodes = tensor.nmodes
    converged = False
    stop_reason = ""
    if checkpoint is not None and len(trace):
        # Replay the last recorded iteration's stop checks: a checkpoint
        # taken exactly at a stopping point must stop immediately (with
        # the same reason) instead of running one extra iteration; a
        # mid-run checkpoint leaves the criterion in exactly the state
        # the uninterrupted run had, so the resumed run stops where the
        # uninterrupted one does.
        errors = trace.errors()
        criterion.restore(float(errors[-2]) if len(errors) >= 2 else None,
                          len(errors) - 1)
        if criterion.update(float(errors[-1])):
            stop_reason = criterion.reason
        if not stop_reason and options.callback is not None \
                and options.callback(trace.records[-1]):
            stop_reason = "callback"
        if not stop_reason and options.time_budget_seconds is not None \
                and trace.total_seconds() >= options.time_budget_seconds:
            stop_reason = "time_budget"
        converged = stop_reason == "tolerance"

    last_rhos = [0.0] * nmodes
    clock = StageClock(scope="aoadmm")
    while not stop_reason:
        iteration = len(trace) + 1
        if injector is not None:
            # Environment faults (stall / shm_oom) fire here, before any
            # kernel work, so the supervisor's watchdog and retry paths
            # see them exactly as a wedged pool or mmap failure would
            # present.
            injector.pre_iteration(iteration)
        clock.reset()
        inner_iterations: list[int] = []
        block_reports: list[object] = []
        jitter: list[float] = []
        last_mttkrp: np.ndarray | None = None

        try:
            with span("aoadmm.iteration", iteration=iteration):
                for mode in range(nmodes):
                    with clock.stage("other"):
                        gram = gram_cache.gram_excluding(mode)
                    if injector is not None:
                        gram = injector.corrupt_gram(gram, iteration, mode)

                    with clock.stage("mttkrp"):
                        current = [s.primal for s in states]
                        kmat = engine.mttkrp(current, mode)
                    if injector is not None:
                        kmat = injector.corrupt_mttkrp(kmat, iteration, mode)
                    if monitor is not None:
                        kmat = monitor.check_mttkrp(kmat, iteration, mode)

                    with clock.stage("admm"):
                        if options.blocked:
                            report = blocked_admm_update(
                                states[mode], kmat, gram, constraints[mode],
                                rho_policy=rho_policy,
                                tolerance=options.inner_tolerance,
                                max_iterations=options.max_inner_iterations,
                                block_size=options.block_size,
                                threads=options.threads)
                        else:
                            report = admm_update(
                                states[mode], kmat, gram, constraints[mode],
                                rho_policy=rho_policy,
                                tolerance=options.inner_tolerance,
                                max_iterations=options.max_inner_iterations)
                        inner_iterations.append(report.iterations)
                    record_admm_report(report, mode, options.blocked)
                    last_rhos[mode] = report.rho
                    jitter.append(report.jitter_added)
                    if options.track_block_reports:
                        block_reports.append(report)
                    if monitor is not None:
                        monitor.check_state(states[mode], iteration, mode)

                    with clock.stage("other"):
                        gram_cache.set_factor(mode, states[mode].primal)
                        engine.update_factor(mode, states[mode].primal)

                    last_mttkrp = kmat

                # Relative error from the last mode's MTTKRP: K was computed
                # with the other factors at their current values, and only
                # mode N-1's factor changed afterwards, so <X, X_hat> = <K,
                # A_{N-1}>.
                with clock.stage("other"):
                    assert last_mttkrp is not None
                    inner = float(np.einsum("ij,ij->", last_mttkrp,
                                            states[nmodes - 1].primal))
                    model_sq = max(float(gram_cache.gram_all().sum()), 0.0)
                    err_sq = max(norm_x_sq - 2.0 * inner + model_sq, 0.0)
                    relative_error = float(np.sqrt(err_sq / norm_x_sq))
                if injector is not None:
                    relative_error = injector.corrupt_error(relative_error,
                                                            iteration)
                if monitor is not None:
                    monitor.observe_error(relative_error, iteration)
        except RollbackRequested as rollback:
            assert monitor is not None
            trace.guard_log.append(rollback.event)
            monitor.restore(states)
            stop_reason = rollback.stop_reason
            break

        densities = tuple(density(s.primal, options.factor_zero_tol)
                          for s in states)
        representations = tuple(engine.representation(m)
                                for m in range(nmodes))
        trace.append(OuterIterationRecord.from_stages(
            clock,
            iteration=iteration,
            relative_error=relative_error,
            inner_iterations=tuple(inner_iterations),
            factor_densities=densities,
            representations=representations,
            block_reports=tuple(block_reports) if block_reports else None,
            jitter_added=tuple(jitter),
            guard_events=(monitor.drain_iteration_events()
                          if monitor is not None else ()),
        ))

        record = trace.records[-1]
        record_iteration(record, scope="aoadmm")
        if monitor is not None:
            monitor.commit(states, relative_error, iteration)
        checkpointed = False
        if options.checkpoint_every is not None \
                and iteration % options.checkpoint_every == 0:
            write_checkpoint(iteration)
            checkpointed = True

        stop_reason = ""
        if criterion.update(relative_error):
            stop_reason = criterion.reason
        if not stop_reason and options.callback is not None \
                and options.callback(record):
            stop_reason = "callback"
        if not stop_reason and options.time_budget_seconds is not None \
                and trace.total_seconds() >= options.time_budget_seconds:
            stop_reason = "time_budget"
        if not stop_reason and options.preempt_flag is not None \
                and options.preempt_flag.is_set():
            stop_reason = "preempted"
            # Persist the completed iteration so the preempted run
            # resumes bit-identically; skip when this iteration's
            # periodic checkpoint already captured exactly this state.
            if options.checkpoint_path is not None and not checkpointed:
                write_checkpoint(iteration)
        if stop_reason:
            converged = stop_reason == "tolerance"
            break

    model = CPModel([s.primal.copy() for s in states])
    if engine.executor_events:
        # Pool-failure fallbacks are guard events of the run, not just
        # of the engine: persist them with the numerical-guard log.
        trace.guard_log.extend(engine.executor_events)
        engine.executor_events.clear()
    if owned_engine:
        # Release the engine's shared-memory segments (no-op for
        # in-process executors); a caller-supplied engine stays open.
        engine.close()
    return FactorizationResult(model=model, trace=trace, converged=converged,
                               stop_reason=stop_reason, options=options)
