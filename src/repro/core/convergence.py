"""Outer-loop convergence detection (paper Section V-A).

"Convergence is detected when the relative error improves less than 1e-6
or if we exceed 200 outer iterations."
"""

from __future__ import annotations

from ..config import MAX_OUTER_ITERATIONS, OUTER_TOLERANCE
from ..validation import require


class ConvergenceCriterion:
    """Stateful improvement tracker for the outer AO loop."""

    def __init__(self, tolerance: float = OUTER_TOLERANCE,
                 max_iterations: int = MAX_OUTER_ITERATIONS):
        require(tolerance >= 0.0, "tolerance must be non-negative")
        require(max_iterations >= 1, "need at least one iteration")
        self.tolerance = float(tolerance)
        self.max_iterations = int(max_iterations)
        self._previous: float | None = None
        self._iterations = 0
        #: Why the loop stopped: "", "tolerance", or "max_iterations".
        self.reason = ""

    @property
    def iterations(self) -> int:
        """Iterations observed so far."""
        return self._iterations

    def restore(self, previous_error: float | None, iterations: int) -> None:
        """Reinstate mid-run progress (checkpoint resume).

        After ``restore(err_k, k)`` the criterion behaves exactly as it
        did right after observing iteration ``k`` of the original run,
        so a resumed factorization stops at the same iteration an
        uninterrupted one would.
        """
        require(iterations >= 0, "iteration count must be non-negative")
        self._previous = (None if previous_error is None
                          else float(previous_error))
        self._iterations = int(iterations)

    def update(self, relative_error: float) -> bool:
        """Record one outer iteration's error; True when the loop should stop.

        Improvement is measured as ``previous - current`` (signed): an
        error that worsens also fails to improve by the tolerance and
        therefore stops the loop, matching the paper's criterion.
        """
        self._iterations += 1
        stop = False
        if self._previous is not None:
            if self._previous - relative_error < self.tolerance:
                stop = True
                self.reason = "tolerance"
        self._previous = relative_error
        if not stop and self._iterations >= self.max_iterations:
            stop = True
            self.reason = "max_iterations"
        return stop
