"""Factor initialization strategies.

``"uniform"`` (the paper's "initialize randomly") draws U(0,1) factors —
appropriate for non-negative data.  ``"normal"`` draws Gaussians (signed
factorizations).  ``"hosvd"`` seeds each factor with leading singular
vectors of the sparse unfoldings — deterministic given the seed and often
saves outer iterations.

All strategies rescale so the initial model's norm matches the tensor's
(``||X_hat_0|| ~= ||X||``), which keeps the first ADMM rho on the right
scale and avoids the flat early iterations an arbitrary scaling causes.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.linalg

from ..linalg.norms import model_norm_squared
from ..tensor.coo import COOTensor
from ..tensor.matricize import matricize_coo
from ..types import VALUE_DTYPE, SeedLike, TensorSource, as_generator
from ..validation import check_rank, require


def init_factors(tensor: TensorSource, rank: int, method: str = "uniform",
                 seed: SeedLike = None) -> list[np.ndarray]:
    """Build one initial factor per mode.

    Parameters
    ----------
    method:
        ``"uniform"``, ``"normal"``, or ``"hosvd"``.
    """
    rank = check_rank(rank)
    rng = as_generator(seed)
    if method == "hosvd":
        # HOSVD builds sparse unfoldings from explicit coordinates;
        # out-of-core stores never materialize those in one piece.
        require(isinstance(tensor, COOTensor),
                "hosvd initialization needs an in-core COOTensor "
                f"(got {type(tensor).__name__}); use init='uniform' or "
                "init='normal' for out-of-core sources")
    if method == "uniform":
        factors = [rng.uniform(0.0, 1.0, size=(extent, rank))
                   for extent in tensor.shape]
    elif method == "normal":
        factors = [rng.standard_normal((extent, rank))
                   for extent in tensor.shape]
    elif method == "hosvd":
        factors = _hosvd_factors(tensor, rank, rng)
    else:
        raise ValueError(f"unknown init method {method!r}")
    factors = [np.ascontiguousarray(f, dtype=VALUE_DTYPE) for f in factors]
    return _rescale_to_tensor(factors, tensor)


def _hosvd_factors(tensor: COOTensor, rank: int,
                   rng: np.random.Generator) -> list[np.ndarray]:
    """Leading left singular vectors per unfolding, padded with noise.

    ``svds`` requires ``k < min(matrix shape)``; short modes get as many
    singular vectors as available plus random non-negative columns.  The
    absolute value is taken so non-negative constraints start feasible-ish.
    """
    factors = []
    for mode in range(tensor.nmodes):
        unfolding = matricize_coo(tensor, mode)
        k = min(rank, min(unfolding.shape) - 1)
        if k >= 1:
            # A seeded start vector keeps svds (ARPACK) deterministic.
            v0 = rng.uniform(0.1, 1.0, size=min(unfolding.shape))
            u, _, _ = scipy.sparse.linalg.svds(unfolding, k=k, v0=v0)
            u = np.abs(u[:, ::-1])  # svds returns ascending singular values
        else:
            u = np.empty((unfolding.shape[0], 0))
        if u.shape[1] < rank:
            pad = rng.uniform(
                0.0, 1.0, size=(unfolding.shape[0], rank - u.shape[1]))
            scale = u.max() if u.size else 1.0
            u = np.hstack([u, pad * (scale if scale > 0 else 1.0)])
        factors.append(u)
    return factors


def _rescale_to_tensor(factors: list[np.ndarray],
                       tensor: TensorSource) -> list[np.ndarray]:
    """Scale all factors so the initial model norm matches ``||X||``."""
    norm_x = tensor.norm()
    if norm_x <= 0.0:
        return factors
    model_norm = float(np.sqrt(max(model_norm_squared(factors), 0.0)))
    if model_norm <= 0.0:
        return factors
    scale = (norm_x / model_norm) ** (1.0 / len(factors))
    return [f * scale for f in factors]
