"""Options for the AO-ADMM driver.

:class:`AOADMMOptions` is the one configuration object every driver
(`fit_aoadmm`, the baselines, the CLI, ``repro.fit``) accepts.  The
legacy flat-kwargs style (``fit_aoadmm(tensor, rank=16, blocked=True,
...)``) is deprecated; :func:`options_from_kwargs` is the single
translation path from flat keyword arguments — current field names or
historical aliases — to an options instance, used by both the
:func:`~repro.core.aoadmm.fit_aoadmm` deprecation shim and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Sequence

from ..config import (
    ADMM_TOLERANCE,
    DEFAULT_BLOCK_SIZE,
    MAX_ADMM_ITERATIONS,
    MAX_OUTER_ITERATIONS,
    OUTER_TOLERANCE,
    SPARSITY_THRESHOLD,
)
from ..constraints.base import Constraint
from ..constraints.registry import make_constraint
from ..types import SeedLike
from ..validation import require


@dataclass
class AOADMMOptions:
    """Everything configurable about a factorization run.

    Defaults reproduce the paper's experimental setup: non-negative
    factorization, blocked ADMM with 50-row blocks, outer tolerance 1e-6,
    at most 200 outer iterations.

    Attributes
    ----------
    constraints:
        A single spec applied to every mode, or one spec per mode.  Specs
        are constraint names (see
        :func:`repro.constraints.registry.available_constraints`) or
        :class:`~repro.constraints.base.Constraint` instances.
    blocked:
        ``True`` runs the blockwise reformulation (the paper's
        contribution); ``False`` the baseline full-matrix ADMM.
    repr_policy:
        Deep-factor representation during MTTKRP: ``"dense"``, ``"csr"``,
        ``"hybrid"``, or ``"auto"`` (Table II's DENSE / CSR / CSR-H).
    factor_zero_tol:
        Magnitude at or below which a factor entry counts as zero for
        sparsity analysis and compression.
    threads:
        Thread count for the real pool used by blocked ADMM and by the
        slab-tiled MTTKRP kernels (results are bit-identical for any
        value; scalability is studied on the machine model).
    executor:
        Execution backend for the slab-tiled MTTKRP kernels:
        ``"serial"``, ``"thread"``, ``"process"``, or an
        :class:`~repro.parallel.executor.ExecutorBase` instance.
        ``None`` (the default) resolves the ``REPRO_EXECUTOR``
        environment variable, falling back to ``"thread"``.  The process
        executor runs slab batches in a persistent shared-memory worker
        pool, sidestepping the GIL; results are bit-identical across all
        executors (see ``docs/parallelism.md``).
    slab_nnz_target:
        Non-zeros per MTTKRP slab for the engine's CSF tilings
        (Section IV-A slice parallelism).  ``None`` (the default) lets
        the backend autotuner choose per mode (see ``tune``); an
        explicit value pins every mode and disables tuning.
    tune:
        MTTKRP backend autotuning mode
        (:mod:`repro.kernels.autotune`): ``"model"`` ranks the
        csf-family slab plans on the analytic cost model, ``"measure"``
        refines with timed calibration probes persisted in the on-disk
        tuning cache, ``"off"`` keeps the default/explicit slab target.
        ``None`` (the default) resolves the ``REPRO_TUNE`` environment
        variable, falling back to ``"model"``.  Like
        ``threads``/``slab_nnz_target`` this is a performance knob:
        every candidate plan is bit-identical, so results never depend
        on the tune mode.
    max_bytes_in_core:
        Byte budget for the out-of-core slab residency set when the
        tensor is a :class:`~repro.tensor.store.ShardedTensorStore`
        (or a path ``repro.fit`` opens through ``open_tensor``).
        ``None`` defers to the store's own budget / the
        ``REPRO_MAX_BYTES_IN_CORE`` environment variable.  Like
        ``threads``/``slab_nnz_target`` this is a performance knob:
        results are bit-identical for any value, so it does not
        participate in checkpoint compatibility.
    guard_policy:
        Numerical-guard reaction (see :mod:`repro.robustness.guards`):
        ``"raise"`` (default — abort loudly on NaN/Inf/divergence),
        ``"rollback"`` (restore the best iterate and stop), ``"repair"``
        (zero the bad entries and continue), or ``"off"``.
    divergence_patience:
        Consecutive error-rising iterations counted as divergence.
    checkpoint_every:
        Write a resumable checkpoint every this many outer iterations
        (requires ``checkpoint_path``); ``None`` disables checkpointing.
    checkpoint_path:
        ``.npz`` destination for checkpoints (overwritten atomically on
        each write; see :mod:`repro.robustness.checkpoint`).
    checkpoint_keep_last:
        Retain this many versioned checkpoint files
        (``{stem}.itNNNNNNNN.npz`` siblings of ``checkpoint_path``),
        pruning older versions only after the newest has been fsynced.
        ``None`` keeps the legacy single-file overwrite behaviour.
    preempt_flag:
        A ``threading.Event``-like object (anything with ``is_set()``)
        polled between outer iterations.  When set, the driver writes a
        final checkpoint (if checkpointing is configured) and returns
        with ``stop_reason="preempted"`` — the graceful-preemption hook
        the supervisor's SIGTERM/SIGINT handlers use.
    fault_injector:
        A :class:`repro.robustness.faults.FaultInjector` for testing the
        guards; ``None`` (the default) in production runs.
    """

    rank: int = 10
    constraints: object = "nonneg"
    blocked: bool = True
    block_size: int = DEFAULT_BLOCK_SIZE
    inner_tolerance: float = ADMM_TOLERANCE
    max_inner_iterations: int = MAX_ADMM_ITERATIONS
    outer_tolerance: float = OUTER_TOLERANCE
    max_outer_iterations: int = MAX_OUTER_ITERATIONS
    rho_policy: object = "trace"
    repr_policy: str = "dense"
    sparsity_threshold: float = SPARSITY_THRESHOLD
    factor_zero_tol: float = 0.0
    init: str = "uniform"
    seed: SeedLike = None
    threads: int | None = 1
    executor: object = None
    slab_nnz_target: int | None = None
    tune: str | None = None
    max_bytes_in_core: int | None = None
    track_block_reports: bool = False
    #: Called after every outer iteration with the fresh
    #: :class:`~repro.core.trace.OuterIterationRecord`; returning a truthy
    #: value stops the factorization (stop_reason "callback").
    callback: object = None
    #: Stop once the accumulated factorization time exceeds this many
    #: seconds (checked between outer iterations; stop_reason "time_budget").
    time_budget_seconds: float | None = None
    guard_policy: str = "raise"
    divergence_patience: int = 3
    checkpoint_every: int | None = None
    checkpoint_path: object = None
    checkpoint_keep_last: int | None = None
    preempt_flag: object = None
    fault_injector: object = None

    def __post_init__(self) -> None:
        require(self.rank >= 1, "rank must be positive")
        require(self.max_outer_iterations >= 1, "need at least one iteration")
        require(self.inner_tolerance > 0.0, "inner tolerance must be positive")
        require(self.outer_tolerance >= 0.0,
                "outer tolerance must be non-negative")
        if self.slab_nnz_target is not None:
            require(self.slab_nnz_target >= 1,
                    "slab_nnz_target must be positive")
        if self.tune is not None:
            require(self.tune in ("off", "model", "measure"),
                    f"unknown tune mode {self.tune!r} "
                    "(choose from ('off', 'model', 'measure'))")
        if self.max_bytes_in_core is not None:
            require(self.max_bytes_in_core >= 1,
                    "max_bytes_in_core must be positive")
        if isinstance(self.executor, str):
            from ..parallel.executor import EXECUTOR_NAMES
            require(self.executor in EXECUTOR_NAMES,
                    f"unknown executor {self.executor!r} "
                    f"(choose from {EXECUTOR_NAMES})")
        if self.time_budget_seconds is not None:
            require(self.time_budget_seconds > 0.0,
                    "time budget must be positive")
        if self.callback is not None:
            require(callable(self.callback), "callback must be callable")
        require(self.guard_policy in ("off", "raise", "rollback", "repair"),
                f"unknown guard policy {self.guard_policy!r}")
        require(self.divergence_patience >= 1,
                "divergence patience must be at least 1")
        if self.checkpoint_every is not None:
            require(self.checkpoint_every >= 1,
                    "checkpoint_every must be positive")
            require(self.checkpoint_path is not None,
                    "checkpoint_every requires checkpoint_path")
        if self.checkpoint_keep_last is not None:
            require(self.checkpoint_keep_last >= 1,
                    "checkpoint_keep_last must be at least 1")
            require(self.checkpoint_path is not None,
                    "checkpoint_keep_last requires checkpoint_path")
        if self.preempt_flag is not None:
            require(callable(getattr(self.preempt_flag, "is_set", None)),
                    "preempt_flag must expose is_set() (Event-like)")

    def resolve_constraints(self, nmodes: int) -> list[Constraint]:
        """Materialize one constraint instance per mode."""
        spec = self.constraints
        if isinstance(spec, (str, Constraint)):
            return [make_constraint(spec) for _ in range(nmodes)]
        specs = list(spec)  # type: ignore[arg-type]
        require(len(specs) == nmodes,
                f"got {len(specs)} constraints for {nmodes} modes")
        return [make_constraint(s) for s in specs]


#: Historical flat-kwarg spellings -> :class:`AOADMMOptions` field.  The
#: right-hand names (the fields themselves) are also accepted verbatim by
#: :func:`options_from_kwargs`, so the table only lists the renames.
LEGACY_KWARGS: dict[str, str] = {
    # sklearn-style spellings from the earliest prototype API.
    "n_components": "rank",
    "random_state": "seed",
    "tol": "outer_tolerance",
    "max_iter": "max_outer_iterations",
    # boolean-soup / abbreviated spellings.
    "constraint": "constraints",
    "use_blocked": "blocked",
    "blocksize": "block_size",
    "inner_tol": "inner_tolerance",
    "max_inner_iter": "max_inner_iterations",
    "n_threads": "threads",
    "representation": "repr_policy",
    "initialization": "init",
}

_FIELD_NAMES = frozenset(f.name for f in fields(AOADMMOptions))


def translate_kwarg(name: str) -> str:
    """Map a flat kwarg (field name or legacy alias) to its options field.

    Raises :class:`ValueError` for names that are neither, listing the
    alias table so callers get an actionable message.
    """
    canonical = LEGACY_KWARGS.get(name, name)
    if canonical not in _FIELD_NAMES:
        known = ", ".join(sorted(LEGACY_KWARGS))
        raise ValueError(
            f"unknown option {name!r}: not an AOADMMOptions field and not "
            f"a recognized legacy alias (aliases: {known})")
    return canonical


def options_from_kwargs(base: AOADMMOptions | None = None,
                        **kwargs: object) -> AOADMMOptions:
    """Build :class:`AOADMMOptions` from flat keyword arguments.

    *base* (default: fresh defaults) supplies every field not mentioned;
    *kwargs* may use current field names or the :data:`LEGACY_KWARGS`
    aliases.  This is the single kwargs->Options translation path — the
    ``fit_aoadmm`` deprecation shim and the CLI both go through it.
    """
    translated: dict[str, object] = {}
    for name, value in kwargs.items():
        canonical = translate_kwarg(name)
        require(canonical not in translated,
                f"option {canonical!r} given twice (alias collision)")
        translated[canonical] = value
    return replace(base or AOADMMOptions(), **translated)
