"""CP model persistence and objective evaluation.

Save/load uses NumPy's ``.npz`` container — one array per factor plus
optional weights — matching what the CLI's ``--output`` writes, so models
round-trip between the API and the command line.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..constraints.base import Constraint
from ..tensor.coo import COOTensor
from ..validation import require
from .cpd import CPModel

_WEIGHTS_KEY = "weights"


def save_model(model: CPModel, path: str | Path) -> Path:
    """Write *model* to an ``.npz`` file; returns the path."""
    path = Path(path)
    arrays = {f"mode{m}": factor
              for m, factor in enumerate(model.factors)}
    if model.weights is not None:
        arrays[_WEIGHTS_KEY] = model.weights
    np.savez(path, **arrays)
    # np.savez appends .npz when missing; normalize the returned path.
    return path if path.suffix == ".npz" else path.with_name(
        path.name + ".npz")


def load_model(path: str | Path) -> CPModel:
    """Read a :class:`CPModel` previously written by :func:`save_model`."""
    with np.load(Path(path)) as data:
        modes = sorted(k for k in data.files if k.startswith("mode"))
        require(modes, f"{path} contains no factor arrays")
        # Validate contiguous mode numbering.
        expected = [f"mode{m}" for m in range(len(modes))]
        require(modes == expected,
                f"{path} has non-contiguous factor keys {modes}")
        factors = [np.array(data[k]) for k in expected]
        weights = (np.array(data[_WEIGHTS_KEY])
                   if _WEIGHTS_KEY in data.files else None)
    return CPModel(factors, weights)


def penalized_objective(model: CPModel, tensor: COOTensor,
                        constraints: "list[Constraint] | None" = None
                        ) -> float:
    """Equation (1)'s objective: ``1/2 ||X - X_hat||_F^2 + sum_m r(A_m)``.

    The quantity AO-ADMM monotonically decreases (up to inner-solve
    inexactness).  Indicator constraints contribute 0 when feasible and
    ``inf`` otherwise, so a finite value certifies feasibility too.
    """
    norm_x_sq = tensor.norm_squared()
    err_sq = (norm_x_sq - 2.0 * model.inner_with(tensor)
              + model.norm_squared())
    objective = 0.5 * max(err_sq, 0.0)
    if constraints is not None:
        require(len(constraints) == model.nmodes,
                "one constraint per mode required")
        for constraint, factor in zip(constraints, model.factors):
            objective += constraint.penalty(factor)
    return float(objective)
