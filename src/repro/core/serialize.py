"""CP model / optimizer-state persistence and objective evaluation.

Save/load uses NumPy's ``.npz`` container — one array per factor plus
optional weights — matching what the CLI's ``--output`` writes, so models
round-trip between the API and the command line.

The lower half of the module is the generic state-persistence layer the
checkpoint subsystem (:mod:`repro.robustness.checkpoint`) builds on:
atomic ``.npz`` writes with a JSON metadata side-channel, and stable
content fingerprints for integrity checks.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from pathlib import Path

import numpy as np

from ..constraints.base import Constraint
from ..integrity import IntegrityError
from ..tensor.coo import COOTensor
from ..validation import require
from .cpd import CPModel

_WEIGHTS_KEY = "weights"
_MODE_KEY = re.compile(r"mode(\d+)")
#: Reserved key carrying the JSON metadata blob in state ``.npz`` files.
_META_KEY = "__meta__"
#: Metadata key carrying the SHA-1 over every payload array, in sorted
#: key order — the bit-rot detector :func:`load_state_npz` verifies.
PAYLOAD_SHA_KEY = "payload_sha1"


def save_model(model: CPModel, path: str | Path) -> Path:
    """Write *model* to an ``.npz`` file; returns the path."""
    path = Path(path)
    arrays = {f"mode{m}": factor
              for m, factor in enumerate(model.factors)}
    if model.weights is not None:
        arrays[_WEIGHTS_KEY] = model.weights
    np.savez(path, **arrays)
    # np.savez appends .npz when missing; normalize the returned path.
    return path if path.suffix == ".npz" else path.with_name(
        path.name + ".npz")


def load_model(path: str | Path) -> CPModel:
    """Read a :class:`CPModel` previously written by :func:`save_model`."""
    with np.load(Path(path)) as data:
        # Sort numerically: lexicographic order breaks at >= 10 modes
        # ("mode10" < "mode2").
        modes = sorted((k for k in data.files if _MODE_KEY.fullmatch(k)),
                       key=lambda k: int(_MODE_KEY.fullmatch(k).group(1)))
        require(bool(modes), f"{path} contains no factor arrays")
        # Validate contiguous mode numbering.
        expected = [f"mode{m}" for m in range(len(modes))]
        require(modes == expected,
                f"{path} has non-contiguous factor keys {modes}")
        factors = [np.array(data[k]) for k in expected]
        weights = (np.array(data[_WEIGHTS_KEY])
                   if _WEIGHTS_KEY in data.files else None)
    return CPModel(factors, weights)


# ----------------------------------------------------------------------
# Generic state persistence (checkpoint substrate)
# ----------------------------------------------------------------------

def array_fingerprint(*arrays: np.ndarray) -> str:
    """Order-sensitive SHA-1 over the raw bytes of *arrays*.

    Used to fingerprint tensors (coords + values) and factor sets (the
    Gram-cache inputs) so a resumed run can verify it is continuing from
    exactly the state that was checkpointed.
    """
    digest = hashlib.sha1()
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def payload_fingerprint(arrays: dict[str, np.ndarray]) -> str:
    """SHA-1 over every payload array, in sorted key order.

    The whole-payload integrity fingerprint :func:`save_state_npz`
    embeds in the metadata blob and :func:`load_state_npz` verifies —
    a flipped bit in *any* array (factors, duals, trace history)
    changes it, closing the gap left by fingerprints that only cover
    the primal factors.
    """
    keys = sorted(arrays)
    digest = hashlib.sha1()
    for key in keys:
        digest.update(key.encode())
        digest.update(b"\0")
    digest.update(array_fingerprint(
        *(arrays[k] for k in keys)).encode() if keys else b"")
    return digest.hexdigest()


def save_state_npz(path: str | Path, arrays: dict[str, np.ndarray],
                   meta: dict, fsync: bool = False,
                   checksum: bool = True) -> Path:
    """Atomically write *arrays* plus a JSON *meta* blob to ``path``.

    The write goes through a temporary file in the destination directory
    followed by ``os.replace``, so a crash mid-checkpoint can never leave
    a truncated file where a good previous checkpoint used to be.  With
    ``fsync=True`` the temporary file (and, best-effort, the directory
    entry) are flushed to stable storage before the rename — the
    checkpoint retention layer prunes older versions only after this
    barrier, so a power loss can never leave *zero* durable checkpoints.

    With *checksum* (the default) a :func:`payload_fingerprint` over
    every array is embedded in the metadata under
    :data:`PAYLOAD_SHA_KEY`; :func:`load_state_npz` verifies it, so
    bit-rot inside the container is detected at load time rather than
    propagated into a resumed fit.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    require(_META_KEY not in arrays,
            f"array key {_META_KEY!r} is reserved for metadata")
    if checksum:
        meta = dict(meta)
        meta[PAYLOAD_SHA_KEY] = payload_fingerprint(arrays)
    payload = dict(arrays)
    payload[_META_KEY] = np.array(json.dumps(meta, sort_keys=True))
    fd, tmp_name = tempfile.mkstemp(suffix=".npz", dir=path.parent)
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **payload)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
        if fsync:
            try:
                dir_fd = os.open(path.parent, os.O_RDONLY)
            except OSError:  # pragma: no cover - exotic filesystems
                pass
            else:
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise
    return path


def load_state_npz(path: str | Path,
                   verify: bool = True) -> tuple[dict[str, np.ndarray], dict]:
    """Read back ``(arrays, meta)`` written by :func:`save_state_npz`.

    When the metadata carries a :data:`PAYLOAD_SHA_KEY` fingerprint
    (every file written by this version does) and *verify* is on, the
    payload is re-fingerprinted and a mismatch raises
    :class:`~repro.integrity.IntegrityError` — the checkpoint store's
    newest-loadable fallback treats that exactly like an unreadable
    file: quarantine and fall back, never resume from rotted state.
    Files written before payload checksums existed load unverified.
    """
    path = Path(path)
    with np.load(path) as data:
        require(_META_KEY in data.files,
                f"{path} is not a repro state file (missing metadata)")
        meta = json.loads(str(data[_META_KEY]))
        arrays = {k: np.array(data[k]) for k in data.files
                  if k != _META_KEY}
    expected = meta.get(PAYLOAD_SHA_KEY)
    if verify and expected is not None:
        actual = payload_fingerprint(arrays)
        if actual != expected:
            raise IntegrityError(
                f"{path}: payload checksum mismatch (stored "
                f"{expected[:12]}…, recomputed {actual[:12]}…) — the "
                f"file was corrupted after it was written", path=path)
    return arrays, meta


def penalized_objective(model: CPModel, tensor: COOTensor,
                        constraints: "list[Constraint] | None" = None
                        ) -> float:
    """Equation (1)'s objective: ``1/2 ||X - X_hat||_F^2 + sum_m r(A_m)``.

    The quantity AO-ADMM monotonically decreases (up to inner-solve
    inexactness).  Indicator constraints contribute 0 when feasible and
    ``inf`` otherwise, so a finite value certifies feasibility too.
    """
    norm_x_sq = tensor.norm_squared()
    err_sq = (norm_x_sq - 2.0 * model.inner_with(tensor)
              + model.norm_squared())
    objective = 0.5 * max(err_sq, 0.0)
    if constraints is not None:
        require(len(constraints) == model.nmodes,
                "one constraint per mode required")
        for constraint, factor in zip(constraints, model.factors):
            objective += constraint.penalty(factor)
    return float(objective)
