"""Unconstrained alternating least squares (ALS) baseline.

AO with no constraint degenerates to classic CP-ALS (paper Section II-C):
each mode update is the exact normal-equations solve
``A_m = K (G)^-1`` — no inner iterations, no duals.  Used as the
reference point for the overhead constrained factorization adds.
"""

from __future__ import annotations

import time

import numpy as np

from ..kernels.dispatch import MTTKRPEngine, make_engine
from ..linalg.cholesky import CholeskyFactor
from ..linalg.grams import GramCache
from ..observability import StageClock, record_iteration, span
from ..tensor.coo import COOTensor
from ..validation import require
from .convergence import ConvergenceCriterion
from .cpd import CPModel
from .init import init_factors
from .options import AOADMMOptions
from .trace import FactorizationTrace, OuterIterationRecord
from .aoadmm import FactorizationResult


def fit_als(tensor: COOTensor,
            options: AOADMMOptions | None = None,
            initial_factors: list[np.ndarray] | None = None,
            engine: MTTKRPEngine | None = None) -> FactorizationResult:
    """Unconstrained CP-ALS with the same tracing as :func:`fit_aoadmm`.

    ``options.constraints`` is ignored (ALS is the unconstrained limit);
    everything else — rank, tolerances, init — behaves identically.
    """
    options = options or AOADMMOptions()
    require(tensor.nmodes >= 2, "factorization needs at least two modes")
    require(tensor.nnz > 0, "cannot factor an empty tensor")

    setup_start = time.perf_counter()
    if initial_factors is None:
        factors = init_factors(tensor, options.rank, options.init,
                               options.seed)
    else:
        factors = [np.array(f, dtype=float, copy=True)
                   for f in initial_factors]
    if engine is None:
        engine = make_engine(tensor, rank=options.rank, tune=options.tune)

    gram_cache = GramCache(factors)
    norm_x_sq = tensor.norm_squared()
    criterion = ConvergenceCriterion(options.outer_tolerance,
                                     options.max_outer_iterations)
    trace = FactorizationTrace()
    trace.setup_seconds = time.perf_counter() - setup_start

    nmodes = tensor.nmodes
    converged = False
    clock = StageClock(scope="als")
    while True:
        clock.reset()
        last_mttkrp: np.ndarray | None = None

        with span("als.iteration", iteration=len(trace) + 1):
            for mode in range(nmodes):
                with clock.stage("other"):
                    gram = gram_cache.gram_excluding(mode)

                with clock.stage("mttkrp"):
                    kmat = engine.mttkrp(factors, mode)

                with clock.stage("admm"):
                    factors[mode] = CholeskyFactor(gram).solve_t(kmat)

                with clock.stage("other"):
                    gram_cache.set_factor(mode, factors[mode])
                last_mttkrp = kmat

            with clock.stage("other"):
                assert last_mttkrp is not None
                inner = float(np.einsum("ij,ij->", last_mttkrp,
                                        factors[nmodes - 1]))
                model_sq = max(float(gram_cache.gram_all().sum()), 0.0)
                err_sq = max(norm_x_sq - 2.0 * inner + model_sq, 0.0)
                relative_error = float(np.sqrt(err_sq / norm_x_sq))

        trace.append(OuterIterationRecord.from_stages(
            clock,
            iteration=len(trace) + 1,
            relative_error=relative_error,
            inner_iterations=tuple(1 for _ in range(nmodes)),
            factor_densities=tuple(1.0 for _ in range(nmodes)),
            representations=tuple("dense" for _ in range(nmodes)),
        ))
        record_iteration(trace.records[-1], scope="als")
        if criterion.update(relative_error):
            converged = criterion.reason == "tolerance"
            break

    model = CPModel([f.copy() for f in factors])
    return FactorizationResult(model=model, trace=trace, converged=converged,
                               stop_reason=criterion.reason, options=options)
