"""The CP decomposition model object.

A rank-``F`` CPD approximates a tensor as the sum of ``F`` outer products
(paper Figure 1).  :class:`CPModel` bundles the factor matrices with
optional component weights, and provides evaluation utilities — notably
the efficient relative error of Section V-A, computed without ever
reconstructing the tensor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
import scipy.optimize

from ..linalg.norms import (
    column_norms,
    model_norm_squared,
    normalize_factors,
)
from ..tensor.coo import COOTensor
from ..tensor.dense import dense_from_factors
from ..tensor.random import cp_values_at
from ..types import VALUE_DTYPE, FactorList
from ..validation import check_factor, check_rank, require


@dataclass
class CPModel:
    """A (weighted) CP decomposition."""

    factors: list[np.ndarray]
    weights: np.ndarray | None = None

    def __post_init__(self) -> None:
        require(len(self.factors) >= 1, "need at least one factor")
        rank = np.asarray(self.factors[0]).shape[1]
        self.factors = [check_factor(f, rank=rank, name=f"factor {m}")
                        for m, f in enumerate(self.factors)]
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=VALUE_DTYPE)
            require(self.weights.shape == (rank,),
                    "weights must have one entry per component")

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """Number of components F."""
        return self.factors[0].shape[1]

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the reconstructed tensor."""
        return tuple(f.shape[0] for f in self.factors)

    @property
    def nmodes(self) -> int:
        return len(self.factors)

    def copy(self) -> "CPModel":
        """Deep copy."""
        return CPModel([f.copy() for f in self.factors],
                       None if self.weights is None else self.weights.copy())

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _effective_factors(self) -> list[np.ndarray]:
        """Factors with the weights folded into the first mode."""
        if self.weights is None:
            return list(self.factors)
        return [self.factors[0] * self.weights] + list(self.factors[1:])

    def norm_squared(self) -> float:
        """``||X_hat||_F^2`` via the Gram identity (never reconstructs)."""
        return max(model_norm_squared(self._effective_factors()), 0.0)

    def values_at(self, coords: np.ndarray) -> np.ndarray:
        """Model values at given ``(nmodes, n)`` coordinates."""
        return cp_values_at(self._effective_factors(), coords)

    def inner_with(self, tensor: COOTensor) -> float:
        """``<X, X_hat> = sum_p x_p * xhat_p`` over the tensor's support.

        Exact: the inner product only involves coordinates where X is
        non-zero, so evaluating the (dense) model at those points suffices.
        """
        if tensor.nnz == 0:
            return 0.0
        return float(np.dot(tensor.vals, self.values_at(tensor.coords)))

    def relative_error(self, tensor: COOTensor) -> float:
        """``||X - X_hat||_F / ||X||_F`` via the expansion identity.

        ``||X - X_hat||^2 = ||X||^2 - 2 <X, X_hat> + ||X_hat||^2`` —
        ``O(nnz * F)`` work, no reconstruction (Section V-A convention).
        """
        norm_x_sq = tensor.norm_squared()
        require(norm_x_sq > 0.0, "tensor norm is zero")
        err_sq = norm_x_sq - 2.0 * self.inner_with(tensor) + self.norm_squared()
        return float(np.sqrt(max(err_sq, 0.0) / norm_x_sq))

    def to_dense(self) -> np.ndarray:
        """Full reconstruction (small models / tests only)."""
        return dense_from_factors(self.factors, self.weights)

    # ------------------------------------------------------------------
    # Post-processing
    # ------------------------------------------------------------------
    def normalized(self) -> "CPModel":
        """Unit-norm columns with magnitudes absorbed into weights."""
        factors, weights = normalize_factors(self._effective_factors())
        return CPModel(factors, weights)

    def component_order(self) -> np.ndarray:
        """Component indices sorted by decreasing weight/magnitude."""
        normalized = self.normalized()
        return np.argsort(-np.abs(normalized.weights))

    def factor_density(self, mode: int, tol: float = 0.0) -> float:
        """Density of one factor — the quantity driving Table II."""
        factor = self.factors[mode]
        if factor.size == 0:
            return 0.0
        return float(np.count_nonzero(np.abs(factor) > tol)) / factor.size


def factor_match_score(model_a: CPModel | Sequence[np.ndarray],
                       model_b: CPModel | Sequence[np.ndarray]) -> float:
    """Factor match score (FMS) between two CP models in ``[0, 1]``.

    Components are matched with the Hungarian algorithm on the product of
    per-mode cosine similarities; the score is the mean matched similarity.
    1.0 means the models' components coincide up to permutation + scaling.
    """
    a = model_a if isinstance(model_a, CPModel) else CPModel(list(model_a))
    b = model_b if isinstance(model_b, CPModel) else CPModel(list(model_b))
    require(a.nmodes == b.nmodes, "models must have the same mode count")
    na = a.normalized()
    nb = b.normalized()
    sim = np.ones((na.rank, nb.rank), dtype=VALUE_DTYPE)
    for fa, fb in zip(na.factors, nb.factors):
        sim *= np.abs(fa.T @ fb)
    rows, cols = scipy.optimize.linear_sum_assignment(-sim)
    return float(sim[rows, cols].mean())
