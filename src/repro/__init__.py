"""repro — Constrained sparse tensor factorization with accelerated AO-ADMM.

A from-scratch Python reproduction of Smith, Beri & Karypis,
*"Constrained Tensor Factorization with Accelerated AO-ADMM"* (ICPP 2017):

* sparse tensor substrate (COO + compressed sparse fiber),
* MTTKRP kernels, including sparse-factor (CSR / hybrid) variants,
* an ADMM inner solver with a library of proximity operators,
* the paper's blockwise ADMM reformulation,
* the AO-ADMM outer driver plus ALS / MU / PGD baselines, and
* a simulated shared-memory machine for the scalability studies.

Quickstart
----------
>>> import repro
>>> from repro.tensor import noisy_lowrank_coo
>>> tensor, truth = noisy_lowrank_coo((60, 50, 40), rank=5, nnz=5000, seed=0)
>>> result = repro.fit(tensor, rank=5, constraints="nonneg", seed=0,
...                    max_outer_iterations=20)
>>> all((f >= 0).all() for f in result.factors)
True
>>> bool(result.trace.errors()[-1] <= result.trace.errors()[0])
True

Real tensors load with :func:`load_tns`; metrics for a run come back on
the result (``repro.fit(..., observe=True)`` -> ``result.metrics``) or
process-wide via :class:`Observability` / ``REPRO_OBSERVE=1``.
"""

from .api import METHODS, FitResult, fit
from .config import DEFAULTS, Defaults
from .constraints import (
    Box,
    Constraint,
    ElasticNet,
    L1,
    L2Squared,
    NonNegative,
    NonNegativeL1,
    RowNormBall,
    RowSimplex,
    Unconstrained,
    available_constraints,
    make_constraint,
)
from .core import (
    AOADMMOptions,
    CPModel,
    FactorizationResult,
    FactorizationTrace,
    factor_match_score,
    fit_als,
    fit_aoadmm,
    init_factors,
    load_model,
    penalized_objective,
    save_model,
)
from .core.options import LEGACY_KWARGS, options_from_kwargs
from .integrity import (
    VERIFY_ENV_VAR,
    ChecksumManifest,
    IntegrityError,
    checksum_file,
    verify_reads_enabled,
)
from .observability import Observability, configure, get_observability
from .robustness import (
    Backoff,
    Checkpoint,
    CheckpointStore,
    Deadline,
    FaultInjector,
    FaultSpec,
    FitStalled,
    FitSupervisor,
    GuardEvent,
    HealthMonitor,
    NumericalFaultError,
    RetryBudgetExceeded,
    RetryPolicy,
    SupervisorOptions,
    SupervisorReport,
    Watchdog,
    WorkerFault,
    WorkerFaultPlan,
    load_checkpoint,
    resolve_resume,
    save_checkpoint,
    supervise_fit,
    verify_checkpoint,
)
from .tensor import (
    COOTensor,
    CSFTensor,
    ShardedTensorStore,
    load_tns,
    open_tensor,
    save_tns,
)
from .types import TensorSource

__version__ = "1.0.0"

#: Deprecated top-level spellings -> (module path, attribute).  Kept
#: importable through ``__getattr__`` below with a DeprecationWarning
#: (mirroring the legacy flat-kwargs pattern): ``repro.open_tensor`` /
#: ``repro.load_tns`` / ``repro.save_tns`` are the supported spellings.
_DEPRECATED_ATTRS = {
    "read_tns": ("repro.tensor.io", "read_tns", "repro.open_tensor"),
    "write_tns": ("repro.tensor.io", "write_tns", "repro.save_tns"),
}


def __getattr__(name: str):
    entry = _DEPRECATED_ATTRS.get(name)
    if entry is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module_path, attr, replacement = entry
    import importlib
    import warnings
    warnings.warn(
        f"repro.{name} is deprecated; use {replacement} (the unified "
        "TensorSource front door) instead",
        DeprecationWarning, stacklevel=2)
    return getattr(importlib.import_module(module_path), attr)

__all__ = [
    "fit",
    "FitResult",
    "METHODS",
    "Observability",
    "configure",
    "get_observability",
    "LEGACY_KWARGS",
    "options_from_kwargs",
    "DEFAULTS",
    "Defaults",
    "Constraint",
    "Unconstrained",
    "NonNegative",
    "L1",
    "NonNegativeL1",
    "L2Squared",
    "ElasticNet",
    "Box",
    "RowSimplex",
    "RowNormBall",
    "make_constraint",
    "available_constraints",
    "AOADMMOptions",
    "CPModel",
    "FactorizationResult",
    "FactorizationTrace",
    "factor_match_score",
    "fit_als",
    "fit_aoadmm",
    "init_factors",
    "save_model",
    "load_model",
    "penalized_objective",
    "ChecksumManifest",
    "IntegrityError",
    "VERIFY_ENV_VAR",
    "checksum_file",
    "verify_reads_enabled",
    "Backoff",
    "Checkpoint",
    "CheckpointStore",
    "Deadline",
    "FaultInjector",
    "FaultSpec",
    "FitStalled",
    "FitSupervisor",
    "GuardEvent",
    "HealthMonitor",
    "NumericalFaultError",
    "RetryBudgetExceeded",
    "RetryPolicy",
    "SupervisorOptions",
    "SupervisorReport",
    "Watchdog",
    "WorkerFault",
    "WorkerFaultPlan",
    "load_checkpoint",
    "resolve_resume",
    "save_checkpoint",
    "supervise_fit",
    "verify_checkpoint",
    "COOTensor",
    "CSFTensor",
    "ShardedTensorStore",
    "TensorSource",
    "open_tensor",
    "read_tns",
    "write_tns",
    "load_tns",
    "save_tns",
    "__version__",
]
