"""Tensor and factor-row partitioning for the distributed driver.

The coarse-grained decomposition of Smith & Karypis's medium-grained
lineage, simplified to 1-D: non-zeros are split into ``P`` contiguous
mode-0 slice ranges with balanced non-zero counts, and every mode's
factor rows are split into ``P`` contiguous ranges aligned to ADMM block
boundaries (so the distributed blocked solve is bit-identical to the
shared-memory one).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..parallel.partition import balanced_chunks
from ..tensor.coo import COOTensor
from ..validation import require


def _align(boundary: int, block_size: int, upper: int) -> int:
    """Round a row boundary to a multiple of the ADMM block size."""
    aligned = round(boundary / block_size) * block_size
    return int(min(max(aligned, 0), upper))


def row_ranges(rows: int, parts: int, block_size: int = 1) -> list[slice]:
    """Split ``range(rows)`` into ``parts`` contiguous ranges whose
    boundaries are multiples of *block_size* (except possibly the last).
    Some ranges may be empty when rows < parts * block_size."""
    require(parts >= 1, "parts must be positive")
    raw = np.linspace(0, rows, parts + 1)
    bounds = [0]
    for b in raw[1:-1]:
        bounds.append(_align(int(b), block_size, rows))
    bounds.append(rows)
    # Enforce monotonicity after alignment.
    for i in range(1, len(bounds)):
        bounds[i] = max(bounds[i], bounds[i - 1])
    return [slice(bounds[i], bounds[i + 1]) for i in range(parts)]


@dataclass(frozen=True)
class DistributedPartition:
    """Everything one distributed run needs to know about data placement."""

    #: One tensor shard per rank (slice ranges of mode 0, nnz balanced).
    shards: tuple[COOTensor, ...]
    #: Per-mode, per-rank factor row ranges (block aligned).
    factor_ranges: tuple[tuple[slice, ...], ...]

    @property
    def size(self) -> int:
        return len(self.shards)

    def shard_nnz(self) -> tuple[int, ...]:
        return tuple(s.nnz for s in self.shards)

    def imbalance(self) -> float:
        """max shard nnz / mean shard nnz."""
        counts = np.array(self.shard_nnz(), dtype=float)
        mean = counts.mean() if counts.size else 0.0
        return float(counts.max() / mean) if mean > 0 else 1.0


def partition_tensor(tensor: COOTensor, parts: int,
                     block_size: int = 50) -> DistributedPartition:
    """Build a :class:`DistributedPartition` of *tensor* into *parts*.

    Non-zeros are assigned by contiguous mode-0 slice ranges chosen to
    balance the per-rank non-zero counts (the MTTKRP work).  Every shard
    keeps the *global* shape so factor indices remain global — shards
    simply contain disjoint subsets of the non-zeros.
    """
    require(parts >= 1, "parts must be positive")
    counts = tensor.mode_slice_counts(0).astype(np.float64)
    chunks = balanced_chunks(counts, parts)
    # balanced_chunks may return fewer chunks; pad with empty ranges.
    while len(chunks) < parts:
        chunks.append(slice(tensor.shape[0], tensor.shape[0]))

    shards = []
    mode0 = tensor.coords[0]
    for rng in chunks:
        mask = (mode0 >= rng.start) & (mode0 < rng.stop)
        shards.append(COOTensor(tensor.coords[:, mask], tensor.vals[mask],
                                tensor.shape))

    franges = tuple(
        tuple(row_ranges(extent, parts, block_size))
        for extent in tensor.shape)
    return DistributedPartition(shards=tuple(shards),
                                factor_ranges=franges)
