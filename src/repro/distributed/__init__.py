"""Distributed-memory AO-ADMM (the extension paper Section IV-B sketches).

"Since each block is processed independently, no communication needs to
occur beyond the MTTKRP operation, which has efficient distributed-memory
algorithms [17], [23]."

This subpackage realizes that sketch on a simulated message-passing
substrate (we have one process, not a cluster):

* :mod:`repro.distributed.comm` — an in-process communicator that
  executes rank-parallel sections sequentially while accounting every
  collective's bytes and a latency/bandwidth time model;
* :mod:`repro.distributed.partition` — non-zero-balanced 1-D tensor
  partitions with factor row ranges aligned to ADMM block boundaries;
* :mod:`repro.distributed.daoadmm` — the distributed driver: local
  MTTKRP + one allreduce per mode, then fully local blocked ADMM on each
  rank's row range, then an allgather of the updated rows.

Numerical results are *identical* to the shared-memory blocked solver
(asserted in tests): distribution changes where work runs, not what is
computed.
"""

from .comm import CollectiveLog, SimComm
from .partition import DistributedPartition, partition_tensor
from .daoadmm import DistributedResult, fit_aoadmm_distributed

__all__ = [
    "SimComm",
    "CollectiveLog",
    "DistributedPartition",
    "partition_tensor",
    "DistributedResult",
    "fit_aoadmm_distributed",
]
