"""A simulated message-passing communicator.

Executes "rank-parallel" numerical work in-process (sequentially) while
modelling the communication a real MPI job would pay.  Collectives take
NumPy arrays exactly as ``mpi4py``'s buffer interface would, so the
calling code reads like an MPI program; every call is logged with its
byte volume and charged against a latency + bandwidth time model

``T(op) = alpha * ceil(log2 P) + bytes_on_wire / beta``

(the standard tree/butterfly collective model).  The simulated times feed
the distributed scaling study; the numerics are exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..validation import require


class WorkerFailure(RuntimeError):
    """A simulated rank failed or timed out during its local compute.

    ``kind`` is ``"crash"`` (permanent — the rank is gone) or
    ``"timeout"`` (transient — a retry may succeed).  Raised by the
    fault-injection harness inside a rank's local MTTKRP; the
    distributed driver catches it and retries or re-partitions.
    """

    def __init__(self, rank: int, kind: str = "crash", detail: str = ""):
        self.rank = int(rank)
        self.kind = kind
        super().__init__(f"rank {rank} {kind}"
                         + (f": {detail}" if detail else ""))


@dataclass(frozen=True)
class CollectiveRecord:
    """One logged collective operation."""

    op: str
    bytes_on_wire: int
    seconds: float


@dataclass
class CollectiveLog:
    """Accumulated communication accounting."""

    records: list[CollectiveRecord] = field(default_factory=list)

    def total_bytes(self) -> int:
        return sum(r.bytes_on_wire for r in self.records)

    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.records)

    def count(self, op: str | None = None) -> int:
        if op is None:
            return len(self.records)
        return sum(1 for r in self.records if r.op == op)


class SimComm:
    """An MPI-like world of ``size`` ranks.

    Parameters
    ----------
    size:
        Number of ranks.
    latency:
        Per-collective-stage latency ``alpha`` (seconds).
    bandwidth:
        Per-link bandwidth ``beta`` (bytes/second).
    """

    def __init__(self, size: int, latency: float = 10e-6,
                 bandwidth: float = 10e9):
        require(size >= 1, "world size must be positive")
        require(latency >= 0 and bandwidth > 0, "bad network parameters")
        self.size = int(size)
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)
        self.log = CollectiveLog()

    # ------------------------------------------------------------------
    def _charge(self, op: str, bytes_on_wire: int) -> None:
        stages = max(1, math.ceil(math.log2(self.size))) \
            if self.size > 1 else 0
        seconds = (stages * self.latency
                   + bytes_on_wire / self.bandwidth) if self.size > 1 \
            else 0.0
        self.log.records.append(
            CollectiveRecord(op=op, bytes_on_wire=bytes_on_wire,
                             seconds=seconds))

    def without_rank(self, rank: int) -> "SimComm":
        """A world with *rank* removed (failover re-partition fallback).

        The returned communicator shares this one's :class:`CollectiveLog`
        so the accounting spans the whole run, pre- and post-failover.
        """
        require(self.size > 1, "cannot remove the last rank")
        require(0 <= rank < self.size, f"rank {rank} out of range")
        shrunk = SimComm(self.size - 1, latency=self.latency,
                         bandwidth=self.bandwidth)
        shrunk.log = self.log
        return shrunk

    # ------------------------------------------------------------------
    def allreduce_sum(self, contributions: list[np.ndarray]) -> np.ndarray:
        """Sum one array per rank; every rank receives the total.

        Wire volume follows the ring/recursive-halving allreduce:
        ``2 * (P-1)/P * n`` elements per rank.
        """
        require(len(contributions) == self.size,
                "one contribution per rank required")
        total = contributions[0].copy()
        for arr in contributions[1:]:
            total += arr
        n_bytes = total.nbytes
        wire = int(2 * (self.size - 1) / max(self.size, 1) * n_bytes)
        self._charge("allreduce", wire)
        return total

    def allgather_rows(self, parts: list[np.ndarray]) -> np.ndarray:
        """Concatenate per-rank row blocks; every rank receives the whole.

        Wire volume: each rank sends its part to P-1 peers along a ring —
        ``(P-1)/P * total`` bytes on the wire per rank direction.
        """
        require(len(parts) == self.size, "one part per rank required")
        out = np.concatenate(parts, axis=0)
        wire = int((self.size - 1) / max(self.size, 1) * out.nbytes)
        self._charge("allgather", wire)
        return out

    def broadcast(self, value: np.ndarray) -> np.ndarray:
        """Root sends to everyone (tree)."""
        self._charge("broadcast", int(value.nbytes))
        return value

    def barrier(self) -> None:
        """Synchronize (latency only)."""
        self._charge("barrier", 0)
