"""Distributed AO-ADMM driver.

Per outer iteration, per mode:

1. every rank computes the MTTKRP of its tensor shard (local, zero
   communication) — the shards partition the non-zeros, so the local
   results **sum** to the global ``K``;
2. one ``allreduce`` combines them — the only communication the
   blockwise formulation needs, exactly as Section IV-B observes;
3. every rank runs blocked ADMM on its (block-aligned) row range of the
   factor — fully local: blocks never talk to each other;
4. an ``allgather`` reassembles the updated factor for the next mode's
   MTTKRP.

Because the math is unchanged, the distributed trace matches the
shared-memory blocked solver's trace exactly (tested); the value of this
module is the *communication accounting* (bytes, collective counts, and
a latency/bandwidth time estimate) and the per-rank compute times it
reports, which together give the strong-scaling estimate in
``benchmarks/bench_distributed_scaling.py``.

Fault tolerance: a rank that fails or times out during its local MTTKRP
(simulated via :class:`repro.robustness.faults.WorkerFaultPlan`, raising
:class:`~repro.distributed.comm.WorkerFailure`) is first retried
(``max_retries``); a rank that keeps failing is dropped — the tensor is
re-partitioned over the survivors, the shard engines are rebuilt, and
the run continues.  A retried rank changes nothing (local MTTKRPs are
idempotent, so the retried trace is bit-identical to the healthy one);
a re-partition preserves the math but sums the allreduce over a
different shard count, so the post-failover trace matches the healthy
run to floating-point summation order (~1 ulp; tested).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..admm.blocked import blocked_admm_update
from ..admm.rho import make_rho_policy
from ..admm.state import AdmmState
from ..core.convergence import ConvergenceCriterion
from ..core.cpd import CPModel
from ..core.init import init_factors
from ..core.options import AOADMMOptions
from ..core.trace import FactorizationTrace, OuterIterationRecord
from ..kernels.dispatch import MTTKRPEngine
from ..linalg.grams import GramCache
from ..observability import StageClock, record_iteration, span
from ..sparse.analysis import density
from ..tensor.coo import COOTensor
from ..validation import require
from .comm import CollectiveLog, SimComm, WorkerFailure
from .partition import DistributedPartition, partition_tensor


@dataclass(frozen=True)
class FailoverEvent:
    """One handled worker failure (what happened and what was done)."""

    #: Outer iteration (1-based) during which the failure occurred.
    iteration: int
    #: Mode whose local MTTKRP the rank was computing.
    mode: int
    #: Original rank id (stable across re-partitions).
    rank: int
    #: ``"crash"`` or ``"timeout"``.
    kind: str
    #: ``"retry"`` (the rank was retried) or ``"repartition"`` (the rank
    #: was dropped and its shard redistributed over the survivors).
    action: str


@dataclass
class DistributedResult:
    """Model + trace + the distributed-execution accounting."""

    model: CPModel
    trace: FactorizationTrace
    converged: bool
    stop_reason: str
    options: AOADMMOptions
    #: Communication accounting from the simulated communicator.
    comm_log: CollectiveLog
    #: Per-rank compute seconds (MTTKRP + ADMM), summed over the run.
    #: Indexed by *original* rank id; a dropped rank stops accumulating.
    rank_compute_seconds: tuple[float, ...]
    #: The final partition (post-failover when ranks were dropped).
    partition: DistributedPartition
    #: Every handled worker failure, in order (empty in healthy runs).
    failover_events: tuple[FailoverEvent, ...] = ()

    @property
    def relative_error(self) -> float:
        return self.trace.final_error()

    def estimated_parallel_seconds(self) -> float:
        """Strong-scaling estimate: slowest rank's compute + all comm."""
        return max(self.rank_compute_seconds) + self.comm_log.total_seconds()

    def estimated_speedup(self) -> float:
        """Estimated speedup over running all compute on one rank."""
        serial = sum(self.rank_compute_seconds)
        parallel = self.estimated_parallel_seconds()
        return serial / parallel if parallel > 0 else float("inf")


def fit_aoadmm_distributed(tensor: COOTensor,
                           options: AOADMMOptions | None = None,
                           ranks: int = 4,
                           comm: SimComm | None = None,
                           initial_factors: list[np.ndarray] | None = None,
                           fault_plan: object = None,
                           max_retries: int = 1
                           ) -> DistributedResult:
    """Factorize *tensor* with the distributed blocked AO-ADMM.

    Parameters
    ----------
    ranks:
        Simulated world size.
    comm:
        A pre-built :class:`SimComm` (for custom network parameters).
    fault_plan:
        A :class:`repro.robustness.faults.WorkerFaultPlan` (or anything
        with its ``maybe_fail(rank, iteration, mode)`` protocol) that
        injects simulated worker failures; ``None`` in production runs.
    max_retries:
        Failed-worker retries per failure before the rank is dropped and
        the tensor re-partitioned over the survivors.

    Notes
    -----
    Numerics are identical to ``fit_aoadmm(..., blocked=True)`` with the
    same options whenever the factor row ranges are block aligned (the
    partitioner guarantees this), because blocked ADMM's blocks are
    independent — distribution only relabels which rank owns which block.
    """
    options = options or AOADMMOptions()
    require(options.blocked,
            "the distributed driver implements the blocked variant only "
            "(unblocked ADMM would need per-inner-iteration collectives)")
    constraints = options.resolve_constraints(tensor.nmodes)
    for c in constraints:
        require(c.row_separable,
                f"constraint {c.name!r} is not row separable")
    rho_policy = make_rho_policy(options.rho_policy)
    require(max_retries >= 0, "max_retries must be non-negative")
    comm = comm or SimComm(ranks)
    require(comm.size == ranks, "comm world size must match ranks")

    setup_start = time.perf_counter()
    partition = partition_tensor(tensor, ranks,
                                 block_size=options.block_size)
    engines = [MTTKRPEngine(shard) for shard in partition.shards]
    for engine in engines:
        engine.trees.build_all()
    #: Original ids of the ranks still alive (index = current rank).
    live = list(range(ranks))
    failover: list[FailoverEvent] = []

    if initial_factors is None:
        factors = init_factors(tensor, options.rank, options.init,
                               options.seed)
    else:
        factors = [np.array(f, dtype=float, copy=True)
                   for f in initial_factors]
    states = [AdmmState.from_factor(f) for f in factors]
    gram_cache = GramCache([s.primal for s in states])
    norm_x_sq = tensor.norm_squared()
    criterion = ConvergenceCriterion(options.outer_tolerance,
                                     options.max_outer_iterations)
    trace = FactorizationTrace()
    trace.setup_seconds = time.perf_counter() - setup_start
    rank_seconds = [0.0] * ranks

    nmodes = tensor.nmodes
    converged = False
    iteration = 0
    clock = StageClock(scope="daoadmm")
    while True:
        iteration += 1
        clock.reset()
        inner_iterations: list[int] = []
        jitter: list[float] = []
        last_mttkrp: np.ndarray | None = None

        with span("daoadmm.iteration", iteration=iteration):
            for mode in range(nmodes):
                with clock.stage("other"):
                    gram = gram_cache.gram_excluding(mode)

                # (1) local MTTKRPs, (2) allreduce.  A failing rank is
                # retried; one that keeps failing is dropped and the tensor
                # re-partitioned over the survivors (local MTTKRPs are
                # idempotent, so recomputing after a failure is safe).
                current = [s.primal for s in states]
                retries_left = max_retries
                with clock.stage("mttkrp"):
                    while True:
                        try:
                            locals_k = []
                            for r, orig in enumerate(live):
                                tick = time.perf_counter()
                                if fault_plan is not None:
                                    fault_plan.maybe_fail(orig, iteration,
                                                          mode)
                                locals_k.append(
                                    engines[r].mttkrp(current, mode))
                                rank_seconds[orig] += \
                                    time.perf_counter() - tick
                            break
                        except WorkerFailure as failure:
                            if retries_left > 0:
                                retries_left -= 1
                                failover.append(FailoverEvent(
                                    iteration=iteration, mode=mode,
                                    rank=failure.rank, kind=failure.kind,
                                    action="retry"))
                                continue
                            if len(live) == 1:
                                raise  # no survivor to fail over to
                            failover.append(FailoverEvent(
                                iteration=iteration, mode=mode,
                                rank=failure.rank, kind=failure.kind,
                                action="repartition"))
                            comm = comm.without_rank(
                                live.index(failure.rank))
                            live.remove(failure.rank)
                            partition = partition_tensor(
                                tensor, len(live),
                                block_size=options.block_size)
                            engines = [MTTKRPEngine(shard)
                                       for shard in partition.shards]
                            for engine in engines:
                                engine.trees.build_all()
                            retries_left = max_retries
                kmat = comm.allreduce_sum(locals_k)

                # (3) fully local blocked ADMM per rank's row range.
                with clock.stage("admm"):
                    parts = []
                    max_inner = 0
                    mode_jitter = 0.0
                    for r, rng in enumerate(partition.factor_ranges[mode]):
                        tick = time.perf_counter()
                        local_state = AdmmState(
                            states[mode].primal[rng].copy(),
                            states[mode].dual[rng].copy())
                        if local_state.rows:
                            report = blocked_admm_update(
                                local_state, kmat[rng], gram,
                                constraints[mode],
                                rho_policy=rho_policy,
                                tolerance=options.inner_tolerance,
                                max_iterations=options.max_inner_iterations,
                                block_size=options.block_size,
                                threads=1)
                            max_inner = max(max_inner, report.iterations)
                            mode_jitter = max(mode_jitter,
                                              report.jitter_added)
                        parts.append(local_state)
                        rank_seconds[live[r]] += time.perf_counter() - tick
                inner_iterations.append(max_inner)
                jitter.append(mode_jitter)

                # (4) allgather the updated rows (and duals stay local, but
                # we reassemble them too since every rank re-enters ADMM
                # warm).
                primal = comm.allgather_rows([p.primal for p in parts])
                dual = np.concatenate([p.dual for p in parts], axis=0)
                states[mode] = AdmmState(primal, dual)

                with clock.stage("other"):
                    gram_cache.set_factor(mode, states[mode].primal)
                last_mttkrp = kmat

            with clock.stage("other"):
                assert last_mttkrp is not None
                inner = float(np.einsum("ij,ij->", last_mttkrp,
                                        states[nmodes - 1].primal))
                model_sq = max(float(gram_cache.gram_all().sum()), 0.0)
                err = float(np.sqrt(max(norm_x_sq - 2 * inner + model_sq,
                                        0.0) / norm_x_sq))

        trace.append(OuterIterationRecord.from_stages(
            clock,
            iteration=len(trace) + 1, relative_error=err,
            inner_iterations=tuple(inner_iterations),
            factor_densities=tuple(
                density(s.primal, options.factor_zero_tol)
                for s in states),
            representations=tuple("dense" for _ in range(nmodes)),
            jitter_added=tuple(jitter)))
        record_iteration(trace.records[-1], scope="daoadmm")
        if criterion.update(err):
            converged = criterion.reason == "tolerance"
            break

    model = CPModel([s.primal.copy() for s in states])
    return DistributedResult(
        model=model, trace=trace, converged=converged,
        stop_reason=criterion.reason, options=options,
        comm_log=comm.log, rank_compute_seconds=tuple(rank_seconds),
        partition=partition, failover_events=tuple(failover))
