"""FROSTT ``.tns`` file I/O.

The FROSTT text format stores one non-zero per line: ``i_1 i_2 ... i_N value``
with **1-based** indices.  Comment lines start with ``#``.  Files may be
gzip-compressed (detected by the ``.gz`` suffix).
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Sequence

import numpy as np

from ..types import INDEX_DTYPE, VALUE_DTYPE
from ..validation import require
from .coo import COOTensor


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_tns(path: str | Path,
             shape: Sequence[int] | None = None) -> COOTensor:
    """Read a FROSTT ``.tns`` file into a :class:`COOTensor`.

    Parameters
    ----------
    shape:
        Optional explicit shape.  When omitted, extents are inferred as the
        per-mode maximum index.
    """
    path = Path(path)
    with _open_text(path, "r") as handle:
        lines = [line for line in handle
                 if line.strip() and not line.lstrip().startswith("#")]
    if lines:
        data = np.loadtxt(lines, dtype=np.float64, ndmin=2)
    else:
        data = np.empty((0, 0))
    if data.size == 0:
        require(shape is not None,
                "cannot infer the shape of an empty tensor file")
        nmodes = len(shape)  # type: ignore[arg-type]
        return COOTensor(np.empty((nmodes, 0), dtype=INDEX_DTYPE),
                         np.empty(0, dtype=VALUE_DTYPE), shape)
    nmodes = data.shape[1] - 1
    require(nmodes >= 1, f"{path}: lines need >= 2 columns")
    coords = data[:, :nmodes].T.astype(INDEX_DTYPE) - 1  # 1-based on disk
    vals = np.ascontiguousarray(data[:, nmodes], dtype=VALUE_DTYPE)
    if shape is None:
        shape = tuple(int(c.max()) + 1 for c in coords)
    return COOTensor(coords, vals, shape)


def write_tns(tensor: COOTensor, path: str | Path,
              header: str | None = None) -> Path:
    """Write a :class:`COOTensor` to a FROSTT ``.tns`` file (1-based)."""
    path = Path(path)
    with _open_text(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        coords = tensor.coords + 1
        buf = io.StringIO()
        for p in range(tensor.nnz):
            idx = " ".join(str(coords[m, p]) for m in range(tensor.nmodes))
            buf.write(f"{idx} {tensor.vals[p]:.17g}\n")
        handle.write(buf.getvalue())
    return path


#: Preferred public names — ``repro.load_tns`` / ``repro.save_tns`` read
#: better at the call site than the historical read/write spellings.
load_tns = read_tns
save_tns = write_tns
