"""FROSTT ``.tns`` file I/O.

The FROSTT text format stores one non-zero per line: ``i_1 i_2 ... i_N value``
with **1-based** indices.  Comment lines start with ``#``.  Files may be
gzip-compressed (detected by the ``.gz`` suffix).

Parsing streams the file in bounded line chunks (:data:`READ_CHUNK_LINES`
at a time), so converting a large ``.tns`` into shards never holds the
whole *text* in memory — only the growing numeric arrays.  Each chunk
goes through the same ``np.loadtxt`` float parser the monolithic reader
used, so parsed values are bit-identical regardless of chunking.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Sequence

import numpy as np

from ..types import INDEX_DTYPE, VALUE_DTYPE
from ..validation import require
from .coo import COOTensor

#: Lines parsed per chunk by :func:`read_tns`.  Bounds peak text-buffer
#: memory at roughly ``chunk * average_line_length`` bytes.
READ_CHUNK_LINES = 262_144


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def _iter_data_chunks(handle, chunk_lines: int):
    """Yield lists of non-comment, non-blank lines, at most *chunk_lines* each."""
    chunk: list[str] = []
    for line in handle:
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        chunk.append(line)
        if len(chunk) >= chunk_lines:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def read_tns(path: str | Path,
             shape: Sequence[int] | None = None,
             chunk_lines: int = READ_CHUNK_LINES) -> COOTensor:
    """Read a FROSTT ``.tns`` file into a :class:`COOTensor`.

    Parameters
    ----------
    shape:
        Optional explicit shape.  When omitted, extents are inferred as the
        per-mode maximum index.
    chunk_lines:
        Lines parsed per streaming chunk (memory/SYSCALL trade-off; the
        parsed tensor is bit-identical for any value).
    """
    path = Path(path)
    require(chunk_lines >= 1, "chunk_lines must be positive")
    coord_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []
    ncols: int | None = None
    with _open_text(path, "r") as handle:
        for chunk in _iter_data_chunks(handle, chunk_lines):
            data = np.loadtxt(chunk, dtype=np.float64, ndmin=2)
            if ncols is None:
                ncols = data.shape[1]
                require(ncols >= 2, f"{path}: lines need >= 2 columns")
            else:
                require(data.shape[1] == ncols,
                        f"{path}: inconsistent column count "
                        f"({data.shape[1]} after {ncols})")
            nmodes = ncols - 1
            coord_parts.append(
                data[:, :nmodes].T.astype(INDEX_DTYPE) - 1)  # 1-based
            val_parts.append(
                np.ascontiguousarray(data[:, nmodes], dtype=VALUE_DTYPE))
    if ncols is None:
        require(shape is not None,
                "cannot infer the shape of an empty tensor file")
        nmodes = len(shape)  # type: ignore[arg-type]
        return COOTensor(np.empty((nmodes, 0), dtype=INDEX_DTYPE),
                         np.empty(0, dtype=VALUE_DTYPE), shape)
    coords = (coord_parts[0] if len(coord_parts) == 1
              else np.concatenate(coord_parts, axis=1))
    vals = (val_parts[0] if len(val_parts) == 1
            else np.concatenate(val_parts))
    if shape is None:
        shape = tuple(int(c.max()) + 1 for c in coords)
    return COOTensor(np.ascontiguousarray(coords), vals, shape)


def write_tns(tensor, path: str | Path,
              header: str | None = None) -> Path:
    """Write a tensor to a FROSTT ``.tns`` file (1-based indices).

    Accepts a :class:`COOTensor` directly; any other
    :class:`~repro.types.TensorSource` (CSF tree, sharded store) is
    expanded through its ``to_coo()``.
    """
    if not isinstance(tensor, COOTensor):
        to_coo = getattr(tensor, "to_coo", None)
        require(callable(to_coo),
                f"cannot write {type(tensor).__name__} as .tns "
                "(no to_coo conversion)")
        tensor = to_coo()
    path = Path(path)
    with _open_text(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        coords = tensor.coords + 1
        buf = io.StringIO()
        for p in range(tensor.nnz):
            idx = " ".join(str(coords[m, p]) for m in range(tensor.nmodes))
            buf.write(f"{idx} {tensor.vals[p]:.17g}\n")
        handle.write(buf.getvalue())
    return path


def load_tns(path: str | Path, max_bytes_in_core: int | None = None,
             shape: Sequence[int] | None = None):
    """Open *path* through the unified ``open_tensor`` front door.

    Returns an in-core :class:`COOTensor` by default; with
    ``max_bytes_in_core`` (or ``REPRO_MAX_BYTES_IN_CORE`` in the
    environment) the tensor is sharded to a temporary on-disk store and
    returned as a budget-bounded
    :class:`~repro.tensor.store.ShardedTensorStore`.  *path* may also
    name an existing store directory.
    """
    from .store import open_tensor
    return open_tensor(path, max_bytes_in_core=max_bytes_in_core,
                       shape=shape)


#: Preferred public save spelling — pairs with :func:`load_tns`.
save_tns = write_tns
