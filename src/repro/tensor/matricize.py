"""Tensor matricization (unfolding) for sparse COO tensors.

The mode-``n`` unfolding ``X_(n)`` follows the Kolda & Bader convention:
tensor element ``(i_0, ..., i_{N-1})`` maps to row ``i_n`` and column

``j = sum_{k != n} i_k * prod_{l < k, l != n} I_l``

i.e. among the remaining modes, **lower-numbered modes vary fastest**.  This
matches the Khatri-Rao ordering used in :mod:`repro.linalg.khatri_rao`, so
that ``X_(0) ~= A0 @ kr(A_{N-1}, ..., A_1).T``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from ..types import INDEX_DTYPE
from ..validation import check_mode
from .coo import COOTensor


def _other_modes(nmodes: int, mode: int) -> list[int]:
    """Remaining modes in increasing order (fastest-varying first)."""
    return [m for m in range(nmodes) if m != mode]


def linearize_indices(coords: np.ndarray, shape: Sequence[int],
                      modes: Sequence[int]) -> np.ndarray:
    """Linearize the coordinates of *modes* with the first mode fastest.

    ``j = coords[modes[0]] + coords[modes[1]] * I_{modes[0]} + ...``
    """
    out = np.zeros(coords.shape[1], dtype=INDEX_DTYPE)
    stride = 1
    for m in modes:
        out += coords[m] * stride
        stride *= int(shape[m])
    return out


def delinearize_indices(linear: np.ndarray, shape: Sequence[int],
                        modes: Sequence[int]) -> np.ndarray:
    """Invert :func:`linearize_indices`; returns ``(len(modes), n)`` coords."""
    linear = np.asarray(linear, dtype=INDEX_DTYPE)
    out = np.empty((len(modes), linear.shape[0]), dtype=INDEX_DTYPE)
    rem = linear.copy()
    for row, m in enumerate(modes):
        extent = int(shape[m])
        out[row] = rem % extent
        rem //= extent
    return out


def matricize_coo(tensor: COOTensor, mode: int) -> sp.csr_matrix:
    """Return the sparse mode-*mode* unfolding ``X_(mode)`` as CSR.

    The result has shape ``(I_mode, prod of other extents)``.  Used by the
    reference (oracle) MTTKRP and by tests; production kernels work on the
    COO/CSF structures directly and never materialize this matrix.
    """
    mode = check_mode(mode, tensor.nmodes)
    others = _other_modes(tensor.nmodes, mode)
    rows = tensor.coords[mode]
    cols = linearize_indices(tensor.coords, tensor.shape, others)
    ncols = 1
    for m in others:
        ncols *= tensor.shape[m]
    mat = sp.coo_matrix(
        (tensor.vals, (rows, cols)), shape=(tensor.shape[mode], ncols)
    )
    return mat.tocsr()


def matricize_dense(dense: np.ndarray, mode: int) -> np.ndarray:
    """Dense mode-*mode* unfolding with the same column convention."""
    dense = np.asarray(dense)
    mode = check_mode(mode, dense.ndim)
    others = _other_modes(dense.ndim, mode)
    # moveaxis puts `mode` first; remaining axes keep increasing order.
    moved = np.moveaxis(dense, mode, 0)
    # Column index must have others[0] fastest => reverse the remaining axes
    # before the C-order reshape (C-order makes the LAST axis fastest).
    moved = moved.transpose((0,) + tuple(range(moved.ndim - 1, 0, -1)))
    return moved.reshape(dense.shape[mode], -1)
