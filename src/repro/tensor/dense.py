"""Dense reconstruction helpers (reference implementations for tests).

These are deliberately simple and allocate the full tensor; they exist so
that every sparse kernel in the library has an independent dense oracle to
be verified against.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..types import VALUE_DTYPE, FactorList
from ..validation import check_factor, require


def dense_from_factors(factors: FactorList,
                       weights: np.ndarray | None = None) -> np.ndarray:
    """Reconstruct the dense tensor of a CPD model.

    ``T[i, j, ..., z] = sum_f w[f] * A0[i, f] * A1[j, f] * ... * An[z, f]``

    Parameters
    ----------
    factors:
        One ``(I_m, F)`` matrix per mode.
    weights:
        Optional per-component weights ``(F,)``; defaults to all ones.
    """
    require(len(factors) >= 1, "need at least one factor")
    rank = factors[0].shape[1]
    mats = [check_factor(f, rank=rank, name=f"factor {m}")
            for m, f in enumerate(factors)]
    if weights is None:
        weights = np.ones(rank, dtype=VALUE_DTYPE)
    weights = np.asarray(weights, dtype=VALUE_DTYPE)
    require(weights.shape == (rank,), "weights must have one entry per component")

    # einsum over an arbitrary number of modes: 'if,jf,kf->ijk' etc.
    letters = "abcdefghijklmnopqrstuvwxy"
    require(len(mats) <= len(letters), "too many modes for dense reconstruction")
    subs = ",".join(f"{letters[m]}z" for m in range(len(mats)))
    out_sub = "".join(letters[m] for m in range(len(mats)))
    scaled = [mats[0] * weights] + [np.asarray(m) for m in mats[1:]]
    return np.einsum(f"{subs}->{out_sub}", *scaled, optimize=True)


def khatri_rao_reconstruct(factors: FactorList, mode: int) -> np.ndarray:
    """Mode-*mode* matricization of the CPD model, ``A_m @ KR(others).T``.

    The Khatri-Rao product runs over all other modes in **decreasing** mode
    order (the Kolda & Bader convention), matching
    :func:`repro.linalg.khatri_rao.khatri_rao_excluding`.
    """
    from ..linalg.khatri_rao import khatri_rao_excluding

    kr = khatri_rao_excluding(factors, mode)
    return np.asarray(factors[mode]) @ kr.T


def relative_error_dense(dense: np.ndarray, factors: FactorList,
                         weights: np.ndarray | None = None) -> float:
    """``||X - X_hat||_F / ||X||_F`` computed via full reconstruction."""
    recon = dense_from_factors(factors, weights)
    num = float(np.linalg.norm(dense - recon))
    den = float(np.linalg.norm(dense))
    return num / den if den else num
