"""Random sparse tensor generators.

Two families:

* :func:`random_coo` — i.i.d. uniform coordinates (structureless; used for
  kernel correctness tests and micro-benchmarks).
* :func:`lowrank_coo` / :func:`noisy_lowrank_coo` — tensors *planted* with
  non-negative low-rank structure whose non-zero locations follow the same
  factor-driven probabilities.  These make the convergence experiments
  meaningful: AO-ADMM has an actual low-error solution to find, and the
  per-slice non-zero counts inherit the factors' skew (the "high-signal
  rows" of Section IV-B).

The dataset-shaped generators in :mod:`repro.datasets.synthetic` build on
these with Zipf-distributed mode marginals.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..types import INDEX_DTYPE, VALUE_DTYPE, SeedLike, as_generator
from ..validation import check_rank, check_shape, require
from .coo import COOTensor


def random_coo(shape: Sequence[int], nnz: int,
               seed: SeedLike = None,
               value_dist: str = "uniform") -> COOTensor:
    """A tensor with *nnz* uniformly placed non-zeros.

    Duplicate coordinates are summed, so the resulting ``nnz`` may be
    slightly below the request on dense shapes.

    Parameters
    ----------
    value_dist:
        ``"uniform"`` (values in ``(0, 1]``), ``"normal"`` (standard
        normal), or ``"ones"``.
    """
    shape = check_shape(shape)
    require(nnz >= 0, "nnz must be non-negative")
    rng = as_generator(seed)
    coords = np.empty((len(shape), nnz), dtype=INDEX_DTYPE)
    for m, extent in enumerate(shape):
        coords[m] = rng.integers(0, extent, size=nnz, dtype=INDEX_DTYPE)
    if value_dist == "uniform":
        vals = rng.uniform(np.finfo(float).eps, 1.0, size=nnz)
    elif value_dist == "normal":
        vals = rng.standard_normal(nnz)
    elif value_dist == "ones":
        vals = np.ones(nnz, dtype=VALUE_DTYPE)
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown value_dist {value_dist!r}")
    return COOTensor(coords, vals, shape).deduplicate()


def random_factors(shape: Sequence[int], rank: int, seed: SeedLike = None,
                   nonneg: bool = True,
                   sparsity: float = 0.0) -> list[np.ndarray]:
    """Random factor matrices, optionally non-negative and/or sparse.

    Parameters
    ----------
    sparsity:
        Fraction of entries zeroed out uniformly at random (``0`` = dense).
    """
    shape = check_shape(shape)
    rank = check_rank(rank)
    require(0.0 <= sparsity < 1.0, "sparsity must be in [0, 1)")
    rng = as_generator(seed)
    factors = []
    for extent in shape:
        if nonneg:
            mat = rng.uniform(0.0, 1.0, size=(extent, rank))
        else:
            mat = rng.standard_normal((extent, rank))
        if sparsity > 0.0:
            mask = rng.uniform(size=mat.shape) < sparsity
            mat[mask] = 0.0
        factors.append(np.ascontiguousarray(mat, dtype=VALUE_DTYPE))
    return factors


def _sample_coords_from_factors(factors: Sequence[np.ndarray], nnz: int,
                                rng: np.random.Generator) -> np.ndarray:
    """Sample coordinates proportional to the rank-1 component masses.

    For each sample, draw a component ``f`` proportional to the component's
    total mass, then draw each mode index from that component's (normalized)
    column.  This yields exactly the CP model's probability mass when the
    factors are non-negative.
    """
    rank = factors[0].shape[1]
    # Component masses: prod over modes of column sums.
    col_sums = np.stack([np.abs(f).sum(axis=0) for f in factors])  # (N, F)
    comp_mass = np.prod(np.maximum(col_sums, 1e-300), axis=0)
    comp_p = comp_mass / comp_mass.sum()
    comps = rng.choice(rank, size=nnz, p=comp_p)

    coords = np.empty((len(factors), nnz), dtype=INDEX_DTYPE)
    for m, factor in enumerate(factors):
        probs = np.abs(factor) / np.maximum(np.abs(factor).sum(axis=0), 1e-300)
        # Vectorized per-component sampling: group samples by component.
        order = np.argsort(comps, kind="stable")
        sorted_comps = comps[order]
        starts = np.flatnonzero(
            np.r_[True, sorted_comps[1:] != sorted_comps[:-1]])
        bounds = np.r_[starts, nnz]
        out = np.empty(nnz, dtype=INDEX_DTYPE)
        for idx in range(len(starts)):
            f = sorted_comps[starts[idx]]
            count = bounds[idx + 1] - bounds[idx]
            out[order[starts[idx]:bounds[idx + 1]]] = rng.choice(
                factor.shape[0], size=count, p=probs[:, f])
        coords[m] = out
    return coords


def lowrank_coo(shape: Sequence[int], rank: int, nnz: int,
                seed: SeedLike = None,
                factors: Sequence[np.ndarray] | None = None
                ) -> tuple[COOTensor, list[np.ndarray]]:
    """A sparse tensor whose non-zeros carry exact low-rank values.

    Non-zero locations are sampled from the CP model's own mass, and the
    stored values are the exact model values at those locations.  Returns
    the tensor and the ground-truth factors.
    """
    shape = check_shape(shape)
    rank = check_rank(rank)
    rng = as_generator(seed)
    if factors is None:
        factors = random_factors(shape, rank, seed=rng, nonneg=True)
    coords = _sample_coords_from_factors(factors, nnz, rng)
    # Deduplicate the *locations* first, then evaluate: the stored values
    # are exact model samples, so repeated draws must not be summed.
    locs = COOTensor(coords, np.ones(coords.shape[1]), shape).deduplicate()
    vals = cp_values_at(factors, locs.coords)
    return COOTensor(locs.coords, vals, shape), list(factors)


def noisy_lowrank_coo(shape: Sequence[int], rank: int, nnz: int,
                      noise: float = 0.1, seed: SeedLike = None,
                      factors: Sequence[np.ndarray] | None = None
                      ) -> tuple[COOTensor, list[np.ndarray]]:
    """Like :func:`lowrank_coo` with relative Gaussian noise on the values.

    ``noise`` is the standard deviation relative to the RMS model value;
    values are clipped at zero to keep the tensor non-negative (matching the
    count/rating data of the paper's corpora).
    """
    require(noise >= 0.0, "noise must be non-negative")
    tensor, factors = lowrank_coo(shape, rank, nnz, seed=seed,
                                  factors=factors)
    rng = as_generator(seed if not isinstance(seed, np.random.Generator)
                       else seed)
    if noise > 0.0 and tensor.nnz:
        rms = float(np.sqrt(np.mean(tensor.vals ** 2)))
        tensor.vals = tensor.vals + rng.normal(
            0.0, noise * rms, size=tensor.nnz)
        np.maximum(tensor.vals, 0.0, out=tensor.vals)
        tensor = tensor.drop_zeros()
    return tensor, factors


def cp_values_at(factors: Sequence[np.ndarray],
                 coords: np.ndarray) -> np.ndarray:
    """Evaluate the CP model at the given coordinates.

    ``vals[p] = sum_f prod_m factors[m][coords[m, p], f]`` — an out-of-core
    friendly gather that never materializes the dense tensor.
    """
    nnz = coords.shape[1]
    rank = factors[0].shape[1]
    acc = np.ones((nnz, rank), dtype=VALUE_DTYPE)
    for m, factor in enumerate(factors):
        acc *= factor[coords[m]]
    return acc.sum(axis=1)
