"""Compressed Sparse Fiber (CSF) tensors.

CSF (Smith & Karypis, "SPLATT") is the higher-order generalization of CSR:
the modes of a sparse tensor are compressed recursively so that each
root-to-leaf path encodes one non-zero's coordinates (paper Figure 2).  The
format removes the duplication of slice/fiber indices that COO carries, and
— more importantly for MTTKRP — makes the fiber structure explicit, so the
kernel can hoist factor rows out of inner loops (paper Algorithm 3).

Representation
--------------
For an ``N``-mode tensor ordered by ``mode_order`` (``mode_order[0]`` is the
root):

* ``fids[l]`` — for level ``l``, the mode-``mode_order[l]`` index of every
  node at that level.  Level ``N-1`` (the leaves) has one node per non-zero.
* ``fptr[l]`` — for levels ``0 .. N-2``, a pointer array of length
  ``nnodes(l) + 1`` delimiting each node's children at level ``l+1``.
* ``vals`` — the non-zero values, one per leaf, in tree order.

Construction sorts the COO tensor lexicographically by ``mode_order`` and
finds the unique prefixes of every length — an ``O(nnz log nnz)`` one-time
cost, amortized over the whole factorization (the tensor's sparsity pattern
is static; see Section IV-C of the paper for the contrast with the dynamic
factor sparsity).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..types import INDEX_DTYPE, VALUE_DTYPE
from ..validation import check_mode, require
from .coo import COOTensor


def default_mode_order(nmodes: int, root: int) -> tuple[int, ...]:
    """Mode order with *root* first and remaining modes in increasing order."""
    root = check_mode(root, nmodes)
    return (root,) + tuple(m for m in range(nmodes) if m != root)


class CSFTensor:
    """A sparse tensor compressed as a forest of fiber trees.

    Use :meth:`from_coo` to construct.  The class is immutable after
    construction; all arrays are private to the instance.
    """

    __slots__ = ("shape", "mode_order", "fids", "fptr", "vals")

    def __init__(self, shape: tuple[int, ...], mode_order: tuple[int, ...],
                 fids: list[np.ndarray], fptr: list[np.ndarray],
                 vals: np.ndarray):
        self.shape = shape
        self.mode_order = mode_order
        self.fids = fids
        self.fptr = fptr
        self.vals = vals

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, tensor: COOTensor,
                 mode_order: Sequence[int] | None = None) -> "CSFTensor":
        """Compress a COO tensor.

        Parameters
        ----------
        tensor:
            Source tensor.  Duplicate coordinates must already be summed
            (see :meth:`COOTensor.deduplicate`); duplicates would create
            leaves with equal coordinates, which the MTTKRP kernels handle
            but reconstruction queries do not expect.
        mode_order:
            Permutation of the modes; ``mode_order[0]`` becomes the root
            level.  Defaults to ``(0, 1, ..., N-1)``.
        """
        nmodes = tensor.nmodes
        if mode_order is None:
            mode_order = tuple(range(nmodes))
        else:
            mode_order = tuple(check_mode(m, nmodes) for m in mode_order)
            require(sorted(mode_order) == list(range(nmodes)),
                    "mode_order must be a permutation of all modes")

        sorted_coo = tensor.sort_lex(mode_order)
        coords, vals = sorted_coo.coords, sorted_coo.vals
        nnz = sorted_coo.nnz

        if nnz == 0:
            fids = [np.empty(0, dtype=INDEX_DTYPE) for _ in range(nmodes)]
            fptr = [np.zeros(1, dtype=INDEX_DTYPE) for _ in range(nmodes - 1)]
            return cls(tensor.shape, mode_order, fids,
                       fptr, np.empty(0, dtype=VALUE_DTYPE))

        # `changed[l][p]` - True when the length-(l+1) prefix of non-zero p
        # differs from non-zero p-1.  A change at a shorter prefix implies a
        # change at every longer prefix, so we accumulate with |=.
        fids: list[np.ndarray] = []
        starts_per_level: list[np.ndarray] = []
        changed = np.zeros(nnz, dtype=bool)
        changed[0] = True
        for level in range(nmodes):
            mode = mode_order[level]
            if level < nmodes - 1:
                changed = changed.copy()
                changed[1:] |= coords[mode, 1:] != coords[mode, :-1]
                starts = np.flatnonzero(changed)
                starts_per_level.append(starts.astype(INDEX_DTYPE))
                fids.append(coords[mode, starts].copy())
            else:
                # Leaves: one node per non-zero.
                starts_per_level.append(
                    np.arange(nnz, dtype=INDEX_DTYPE))
                fids.append(coords[mode].copy())

        fptr: list[np.ndarray] = []
        for level in range(nmodes - 1):
            upper = starts_per_level[level]
            lower = starts_per_level[level + 1]
            bounds = np.concatenate(
                [upper, np.array([nnz], dtype=INDEX_DTYPE)])
            fptr.append(np.searchsorted(lower, bounds).astype(INDEX_DTYPE))

        return cls(tensor.shape, mode_order, fids, fptr, vals.copy())

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def nmodes(self) -> int:
        """Tensor order."""
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Number of non-zeros (leaves)."""
        return self.vals.shape[0]

    def nnodes(self, level: int) -> int:
        """Number of nodes at *level* (0 = roots, N-1 = leaves)."""
        return self.fids[level].shape[0]

    @property
    def nfibers(self) -> int:
        """Nodes at the second-to-last level — the fibers of Algorithm 3."""
        if self.nmodes == 1:
            return self.nnodes(0)
        return self.nnodes(self.nmodes - 2)

    @property
    def nslices(self) -> int:
        """Number of non-empty root slices."""
        return self.nnodes(0)

    def children_counts(self, level: int) -> np.ndarray:
        """Number of children of every node at *level* (< leaves)."""
        return np.diff(self.fptr[level])

    def buffers(self) -> dict[str, np.ndarray]:
        """Stable, named export of every level array.

        The contract backing shared-memory registration
        (:mod:`repro.parallel.shm`): keys are ``fids{l}`` for every
        level, ``fptr{l}`` for levels ``0..N-2``, and ``vals``; the
        returned arrays are the tensor's own (zero-copy), in the exact
        layout a worker needs to rebuild slab views byte-for-byte.  The
        tensor is immutable after construction, so the export never goes
        stale.
        """
        out: dict[str, np.ndarray] = {"vals": self.vals}
        for level, arr in enumerate(self.fids):
            out[f"fids{level}"] = arr
        for level, arr in enumerate(self.fptr):
            out[f"fptr{level}"] = arr
        return out

    def storage_bytes(self) -> int:
        """Bytes used by the index and value arrays (for the cost model)."""
        total = self.vals.nbytes
        for arr in self.fids:
            total += arr.nbytes
        for arr in self.fptr:
            total += arr.nbytes
        return total

    def norm_squared(self) -> float:
        """Squared Frobenius norm, summed in leaf (lex-sorted) order.

        Part of the :class:`~repro.types.TensorSource` surface.  The
        leaves are a permutation of the originating COO values, so the
        floating-point sum can differ from the COO's in the last ulp;
        pipelines that need the trace bit-identical across backends
        evaluate ``norm_squared()`` once on the canonical source (the
        drivers do, and the sharded store freezes the COO's value in
        its metadata).
        """
        return float(np.dot(self.vals, self.vals))

    def norm(self) -> float:
        """Frobenius norm (square root of :meth:`norm_squared`)."""
        return float(np.sqrt(np.dot(self.vals, self.vals)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = "/".join(str(self.nnodes(l)) for l in range(self.nmodes))
        return (f"CSFTensor(shape={self.shape}, order={self.mode_order}, "
                f"nodes={sizes})")

    # ------------------------------------------------------------------
    # Conversion back (round-trip support + tests)
    # ------------------------------------------------------------------
    def to_coo(self) -> COOTensor:
        """Expand back to coordinate format (lex-sorted by ``mode_order``)."""
        nmodes = self.nmodes
        nnz = self.nnz
        coords = np.empty((nmodes, nnz), dtype=INDEX_DTYPE)
        if nnz:
            # Expand each level's node ids down to the leaves.
            for level in range(nmodes):
                ids = self.fids[level]
                for lower in range(level, nmodes - 1):
                    ids = np.repeat(ids, np.diff(self.fptr[lower]))
                coords[self.mode_order[level]] = ids
        return COOTensor(coords, self.vals.copy(), self.shape)

    def expand_to_level(self, arr: np.ndarray, level: int,
                        target: int) -> np.ndarray:
        """Repeat a per-node array at *level* down to *target* level nodes."""
        require(0 <= level <= target < self.nmodes, "bad level pair")
        out = arr
        for lower in range(level, target):
            out = np.repeat(out, np.diff(self.fptr[lower]), axis=0)
        return out


class AllModeCSF:
    """A bundle of CSF representations, one rooted at each mode.

    SPLATT's ``ALLMODE`` allocation: MTTKRP for mode ``m`` always runs the
    efficient *root-mode* kernel on ``csf(m)``.  Trees are built lazily and
    cached, so a factorization touching all modes pays each sort exactly
    once.
    """

    def __init__(self, tensor: COOTensor):
        self._tensor = tensor
        self._trees: dict[int, CSFTensor] = {}

    @property
    def tensor(self) -> COOTensor:
        """The underlying COO tensor."""
        return self._tensor

    @property
    def nmodes(self) -> int:
        return self._tensor.nmodes

    def csf(self, mode: int) -> CSFTensor:
        """The CSF tree rooted at *mode* (built on first request)."""
        mode = check_mode(mode, self._tensor.nmodes)
        tree = self._trees.get(mode)
        if tree is None:
            order = default_mode_order(self._tensor.nmodes, mode)
            tree = CSFTensor.from_coo(self._tensor, order)
            self._trees[mode] = tree
        return tree

    def build_all(self) -> "AllModeCSF":
        """Eagerly build every tree (useful before timing loops)."""
        for mode in range(self._tensor.nmodes):
            self.csf(mode)
        return self

    def storage_bytes(self) -> int:
        """Total bytes of all built trees."""
        return sum(t.storage_bytes() for t in self._trees.values())
