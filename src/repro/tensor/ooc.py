"""Slab residency management for out-of-core MTTKRP.

Two pieces, composed by
:class:`repro.kernels.dispatch.StreamingMTTKRPEngine`:

* :class:`SlabCache` — an LRU residency set over ``(mode, slab)`` keys
  under a ``max_bytes_in_core`` byte budget.  Byte accounting uses the
  slab's *stored* bytes (exactly what the memmap can page in), and the
  cache always allows the **most recently touched** slab to stay
  resident even when it alone exceeds the budget — a budget below one
  slab's working set degrades to load-evict churn, never to a
  deadlock.
* :class:`SlabStreamer` — in-order iteration over one mode's slabs
  with one-slab-ahead prefetch issued through the engine's executor
  backend (:meth:`repro.parallel.executor.ExecutorBase.submit_one`;
  slab loading is file I/O, which releases the GIL, so thread-based
  prefetch genuinely overlaps the parent's compute).

Neither piece touches values: eviction drops array references (the
memmap pages go with them) and a reload maps the identical bytes from
disk, so residency decisions are **bit-invisible** to the kernels —
the streaming MTTKRP stays bit-identical to the in-core engines for
any budget, eviction order, or prefetch schedule.

Every load / hit / eviction / prefetch is mirrored into
:mod:`repro.observability` (``slab_*`` counters and residency gauges)
when observability is enabled.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from ..integrity import IntegrityError
from ..observability import record_slab_event
from ..validation import require

#: Cache keys are ``(root_mode, slab_index)`` pairs.
SlabKey = tuple[int, int]


class SlabCache:
    """LRU residency set of loaded slabs under a byte budget.

    ``max_bytes_in_core=None`` disables eviction (everything loaded
    stays resident — the "in-core after first sweep" mode); a budget
    evicts least-recently-used slabs after each insertion until the
    resident bytes fit, while always keeping at least the slab just
    touched.
    """

    def __init__(self, max_bytes_in_core: int | None = None):
        if max_bytes_in_core is not None:
            require(int(max_bytes_in_core) >= 1,
                    "max_bytes_in_core must be positive")
            max_bytes_in_core = int(max_bytes_in_core)
        self.max_bytes_in_core = max_bytes_in_core
        #: key -> (slab, nbytes); insertion/refresh order == LRU order.
        self._resident: "OrderedDict[SlabKey, tuple[object, int]]" = \
            OrderedDict()
        self.resident_bytes = 0
        self.hits = 0
        self.misses = 0
        self.loads = 0
        self.evictions = 0
        #: Peak resident bytes ever observed (budget-compliance probe).
        self.peak_resident_bytes = 0

    # ------------------------------------------------------------------
    def __contains__(self, key: SlabKey) -> bool:
        return key in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def resident_keys(self) -> list[SlabKey]:
        """Resident keys, least recently used first."""
        return list(self._resident)

    def get(self, key: SlabKey, loader: Callable[[], object],
            nbytes: int) -> object:
        """The slab under *key*, loading via *loader* on a miss."""
        entry = self._resident.get(key)
        if entry is not None:
            self._resident.move_to_end(key)
            self.hits += 1
            record_slab_event("hit", key[0], key[1], entry[1],
                              self.resident_bytes, len(self._resident))
            return entry[0]
        self.misses += 1
        slab = loader()
        self.loads += 1
        self.put(key, slab, nbytes)
        record_slab_event("load", key[0], key[1], nbytes,
                          self.resident_bytes, len(self._resident))
        return slab

    def put(self, key: SlabKey, slab: object, nbytes: int) -> None:
        """Insert (or refresh) *key*, then evict LRU slabs over budget."""
        nbytes = int(nbytes)
        old = self._resident.pop(key, None)
        if old is not None:
            self.resident_bytes -= old[1]
        self._resident[key] = (slab, nbytes)
        self.resident_bytes += nbytes
        self.peak_resident_bytes = max(self.peak_resident_bytes,
                                       self.resident_bytes)
        self._evict_over_budget()

    def _evict_over_budget(self) -> None:
        if self.max_bytes_in_core is None:
            return
        # Never evict the most recently touched slab (the last key):
        # the kernel is about to (or still does) read it.
        while (self.resident_bytes > self.max_bytes_in_core
               and len(self._resident) > 1):
            key, (_, nbytes) = self._resident.popitem(last=False)
            self.resident_bytes -= nbytes
            self.evictions += 1
            record_slab_event("evict", key[0], key[1], nbytes,
                              self.resident_bytes, len(self._resident))

    def clear(self) -> None:
        """Drop every resident slab (counters keep their totals)."""
        self._resident.clear()
        self.resident_bytes = 0

    def stats(self) -> dict:
        """Counter snapshot (tests / benchmark reporting)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "loads": self.loads,
            "evictions": self.evictions,
            "resident_bytes": self.resident_bytes,
            "resident_count": len(self._resident),
            "peak_resident_bytes": self.peak_resident_bytes,
        }


class SlabStreamer:
    """Stream one mode's slabs through a :class:`SlabCache` with prefetch.

    The streamer issues the load of slab ``k+1`` through the
    executor's :meth:`~repro.parallel.executor.ExecutorBase.submit_one`
    before handing slab ``k`` to the kernel, so disk I/O overlaps the
    parent's sweep.  A prefetched slab enters the cache (and its byte
    accounting) only when consumed, in iteration order — residency
    decisions stay deterministic regardless of I/O timing, which keeps
    eviction traces reproducible run to run.
    """

    def __init__(self, store, cache: SlabCache, executor=None,
                 prefetch: bool = True):
        self.store = store
        self.cache = cache
        self.executor = executor
        self.prefetch = bool(prefetch) and executor is not None
        self.prefetches = 0

    def _loader(self, mode: int, index: int) -> Callable[[], object]:
        return lambda: self.store.load_slab(mode, index)

    def iter_mode(self, mode: int):
        """Yield ``CSFSlab`` objects of *mode* in index order."""
        count = self.store.slab_count(mode)
        pending_index: int | None = None
        pending = None
        for index in range(count):
            if pending_index == index and pending is not None:
                # Consume the prefetch: falls back to a synchronous
                # load if the async read failed (e.g. a torn-down
                # prefetch pool) — the bytes are the same either way.
                # An IntegrityError is NOT a prefetch hiccup: the slab
                # itself is damaged and unrecoverable, so retrying the
                # read synchronously would just re-detect it — re-raise
                # loudly instead of looping on corrupt bytes.
                try:
                    slab = pending.result()
                except IntegrityError:
                    raise
                except Exception:
                    slab = None
                nbytes = self.store.slab_nbytes(mode, index)
                if slab is not None and (mode, index) not in self.cache:
                    self.cache.misses += 1
                    self.cache.loads += 1
                    self.cache.put((mode, index), slab, nbytes)
                    record_slab_event("load", mode, index, nbytes,
                                      self.cache.resident_bytes,
                                      len(self.cache))
                    current = slab
                else:
                    current = self.cache.get(
                        (mode, index), self._loader(mode, index), nbytes)
            else:
                current = self.cache.get(
                    (mode, index), self._loader(mode, index),
                    self.store.slab_nbytes(mode, index))
            pending_index = pending = None
            nxt = index + 1
            if self.prefetch and nxt < count and (mode, nxt) not in self.cache:
                pending = self.executor.submit_one(
                    self.store.load_slab, mode, nxt)
                pending_index = nxt
                self.prefetches += 1
                record_slab_event("prefetch", mode, nxt,
                                  self.store.slab_nbytes(mode, nxt),
                                  self.cache.resident_bytes,
                                  len(self.cache))
            yield current
