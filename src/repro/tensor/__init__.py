"""Sparse tensor substrate: COO and CSF storage, I/O, and generators.

This subpackage is the Python re-implementation of the storage layer the
paper builds on (SPLATT's coordinate and compressed-sparse-fiber formats).
"""

from .coo import COOTensor
from .csf import CSFTensor
from .tiling import CSFSlab, CSFTiling, nnz_per_root_slice, tile_csf
from .dense import dense_from_factors, khatri_rao_reconstruct
from .matricize import matricize_coo, linearize_indices, delinearize_indices
from .random import (
    random_coo,
    lowrank_coo,
    noisy_lowrank_coo,
)
from .io import load_tns, read_tns, save_tns, write_tns
from .store import ShardedTensorStore, open_tensor, resolve_byte_budget
from .ooc import SlabCache, SlabStreamer
from .stats import TensorStats, compute_stats

__all__ = [
    "COOTensor",
    "CSFTensor",
    "CSFSlab",
    "CSFTiling",
    "nnz_per_root_slice",
    "tile_csf",
    "dense_from_factors",
    "khatri_rao_reconstruct",
    "matricize_coo",
    "linearize_indices",
    "delinearize_indices",
    "random_coo",
    "lowrank_coo",
    "noisy_lowrank_coo",
    "read_tns",
    "write_tns",
    "load_tns",
    "save_tns",
    "ShardedTensorStore",
    "open_tensor",
    "resolve_byte_budget",
    "SlabCache",
    "SlabStreamer",
    "TensorStats",
    "compute_stats",
]
