"""Shape and skew statistics of sparse tensors.

These drive two things:

* the dataset summary table (paper Table I), and
* the machine model's workload descriptors — fiber/slice counts determine
  MTTKRP memory traffic, and the skew of per-slice non-zero counts
  determines load imbalance and the "high-signal rows" effect of
  Section IV-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .coo import COOTensor
from .csf import AllModeCSF


@dataclass(frozen=True)
class TensorStats:
    """Summary statistics of a sparse tensor."""

    shape: tuple[int, ...]
    nnz: int
    density: float
    #: Non-empty slice count per mode.
    nonempty_slices: tuple[int, ...]
    #: Fibers (distinct leading index pairs) of the mode-rooted CSF trees.
    fibers_per_mode: tuple[int, ...]
    #: Gini coefficient of per-slice nnz, per mode (0 = uniform, ->1 = skewed).
    slice_skew: tuple[float, ...]
    #: Maximum per-slice nnz divided by the mean, per mode (imbalance factor).
    slice_imbalance: tuple[float, ...]

    def summary_row(self) -> dict[str, object]:
        """Row for the Table-I-style dataset summary."""
        row: dict[str, object] = {
            "NNZ": self.nnz,
            "density": self.density,
        }
        for m, extent in enumerate(self.shape):
            row[f"dim{m}"] = extent
        return row


def gini(counts: np.ndarray) -> float:
    """Gini coefficient of a non-negative count vector.

    Returns 0 for uniform loads; approaches 1 when a few slices hold all
    the non-zeros (the power-law regime of the paper's corpora).
    """
    counts = np.sort(np.asarray(counts, dtype=np.float64))
    total = counts.sum()
    if total <= 0 or counts.size == 0:
        return 0.0
    n = counts.size
    # Standard formula: G = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float(2.0 * np.dot(ranks, counts) / (n * total) - (n + 1.0) / n)


def compute_stats(tensor: COOTensor,
                  with_fibers: bool = True) -> TensorStats:
    """Compute :class:`TensorStats` for *tensor*.

    ``with_fibers=False`` skips CSF construction (cheaper for quick summaries).
    """
    skew = []
    imbalance = []
    nonempty = []
    for m in range(tensor.nmodes):
        counts = tensor.mode_slice_counts(m)
        pos = counts[counts > 0]
        nonempty.append(int(pos.size))
        skew.append(gini(pos))
        imbalance.append(
            float(pos.max() / pos.mean()) if pos.size else 0.0)

    if with_fibers and tensor.nnz:
        trees = AllModeCSF(tensor)
        fibers = tuple(int(trees.csf(m).nfibers)
                       for m in range(tensor.nmodes))
    else:
        fibers = tuple(0 for _ in range(tensor.nmodes))

    return TensorStats(
        shape=tensor.shape,
        nnz=tensor.nnz,
        density=tensor.density,
        nonempty_slices=tuple(nonempty),
        fibers_per_mode=fibers,
        slice_skew=tuple(skew),
        slice_imbalance=tuple(imbalance),
    )
