"""Out-of-core sharded tensor store (`ROADMAP` item 1).

A :class:`ShardedTensorStore` is the on-disk twin of the in-core
ALLMODE engine state: for every mode it persists the mode-rooted CSF
tree, pre-split into the **same nnz-balanced root-slice slabs** the
in-core tiled kernels use (:class:`repro.tensor.tiling.CSFTiling` over
:func:`repro.parallel.partition.balanced_chunks`).  Each slab is one
packed binary file of 64-byte-aligned level arrays that
``numpy.memmap`` maps back lazily, so a fit only ever pages in the
slabs it is currently sweeping.

Why per-mode trees on disk: the streaming MTTKRP path then always runs
the **root** kernel, whose slabs write disjoint output rows — no
nnz-sized scatter buffer has to stay resident, and the per-slab sweep
is the same monolithic upward sweep the in-core kernels use, so the
results are **bit-identical** to the in-core engines for any byte
budget, eviction order, or prefetch schedule (the family contract the
differential harness enforces).

``meta.json`` carries the tensor-level facts the drivers need without
touching a single slab: shape, nnz, ``norm_squared`` (stored via
``repr`` so the JSON round-trip is exact — the relative-error trace
depends on it bit-for-bit), and the same SHA-1 fingerprint
:func:`repro.robustness.checkpoint.tensor_fingerprint` computes for
in-core tensors, so checkpoints interoperate across in-core and
sharded runs of the same data.

:func:`open_tensor` is the single front door that picks in-core vs.
out-of-core; see its docstring for the dispatch rules.

Storage integrity (:mod:`repro.integrity`): every slab file carries a
chunked CRC-32 manifest in ``meta.json``, verified on first touch (and
on every read under ``REPRO_VERIFY_READS=1``).  A slab that fails
verification — torn, truncated, or bit-rotted — is quarantined to
``<file>.corrupt`` and transparently rebuilt when the store still
holds (or was handed via :meth:`ShardedTensorStore.attach_source`) the
tensor it was sharded from; otherwise the read raises
:class:`~repro.integrity.IntegrityError` instead of feeding damaged
bytes to a kernel.  Store creation is torn-write-safe: slabs are
written into a hidden staging directory, (optionally) fsynced, moved
into place, and ``meta.json`` is published atomically **last** — a
crash mid-shard can never leave a directory that parses as a store.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import threading
import warnings
import weakref
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..integrity import (
    ChecksumManifest,
    IntegrityError,
    StreamingChecksummer,
    verify_file,
    verify_manifest,
    verify_reads_enabled,
)
from ..observability import record_integrity_event
from ..types import INDEX_DTYPE, VALUE_DTYPE, TensorSource
from ..validation import check_mode, require
from .coo import COOTensor
from .csf import CSFTensor, default_mode_order
from .tiling import CSFSlab, CSFTiling

STORE_FORMAT = "repro-sharded-tensor"
#: Version 2 added per-slab checksum manifests; version-1 stores still
#: open (their slabs are size-checked but not checksum-verifiable).
STORE_VERSION = 2

#: The manifest file every store directory carries.
META_FILE = "meta.json"

#: Offset alignment of arrays inside a slab file (cache-line friendly,
#: and safe for any dtype's alignment requirement under memmap).
_ALIGN = 64

#: Environment variable supplying a default in-core byte budget.
BUDGET_ENV_VAR = "REPRO_MAX_BYTES_IN_CORE"

#: Name prefix of store directories created implicitly by
#: :func:`open_tensor` (leak-check key, mirroring ``repro_shm_``).
TEMP_SHARD_PREFIX = "repro_shards_"

#: Name prefix of the hidden staging directory :meth:`create` shards
#: into before publishing; a surviving one marks a crashed shard (fsck
#: detects and removes it).
STAGING_PREFIX = ".staging-"

#: Suffix a corrupt slab file is renamed to when quarantined.
SLAB_QUARANTINE_SUFFIX = ".corrupt"


def _fingerprint_arrays(*arrays: np.ndarray) -> str:
    """Order-sensitive SHA-1 over raw array bytes.

    Byte-for-byte the same digest as
    :func:`repro.core.serialize.array_fingerprint` (re-implemented here
    to keep the tensor layer import-independent of the core layer);
    ``tests/test_store.py`` pins the two together.
    """
    digest = hashlib.sha1()
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


#: Malformed ``REPRO_MAX_BYTES_IN_CORE`` values already warned about —
#: the budget is resolved on every engine build, so a typo'd shell
#: profile must warn once, not once per fit (the ``REPRO_EXECUTOR`` /
#: ``REPRO_NUM_THREADS`` warn-once contract).
_WARNED_ENV_VALUES: set[str] = set()


def resolve_byte_budget(max_bytes_in_core: int | None = None) -> int | None:
    """An explicit byte budget, else ``REPRO_MAX_BYTES_IN_CORE``, else None.

    A malformed environment value warns once per distinct value and is
    ignored (same contract as ``REPRO_EXECUTOR`` /
    ``REPRO_NUM_THREADS``: a typo in a shell profile must not crash —
    or spam — library calls).
    """
    if max_bytes_in_core is not None:
        budget = int(max_bytes_in_core)
        require(budget >= 1, "max_bytes_in_core must be positive")
        return budget
    raw = os.environ.get(BUDGET_ENV_VAR)
    if not raw:
        return None
    try:
        budget = int(raw)
        if budget < 1:
            raise ValueError(budget)
    except ValueError:
        if raw not in _WARNED_ENV_VALUES:
            _WARNED_ENV_VALUES.add(raw)
            warnings.warn(
                f"ignoring malformed {BUDGET_ENV_VAR}={raw!r} "
                "(need a positive integer byte count)",
                RuntimeWarning, stacklevel=2)
        return None
    return budget


class ShardedTensorStore:
    """A sparse tensor sharded into per-mode CSF slab files on disk.

    Satisfies :class:`repro.types.TensorSource`; build with
    :meth:`create`, reopen with :meth:`open` (or via
    :func:`open_tensor`).  All index/value bytes live on disk; the
    resident-set policy (LRU under ``max_bytes_in_core``) is the
    streaming engine's job (:mod:`repro.tensor.ooc`), not the store's —
    the store only maps slabs on demand.
    """

    def __init__(self, path: Path, meta: dict,
                 max_bytes_in_core: int | None = None,
                 cleanup_root: "Path | None" = None,
                 source: "COOTensor | None" = None):
        self.path = Path(path)
        self.meta = meta
        #: Default in-core byte budget a streaming engine over this
        #: store should honor (``None`` = no eviction pressure).
        self.max_bytes_in_core = max_bytes_in_core
        self.closed = False
        #: The tensor this store was sharded from, when still known —
        #: set by :meth:`create` and :meth:`attach_source`.  With a
        #: source at hand a corrupt slab is quarantined and rebuilt
        #: transparently instead of failing the read.
        self._source = source
        #: ``(mode, index)`` pairs whose checksum this handle has
        #: already verified — reads verify on first touch, and on every
        #: touch under ``REPRO_VERIFY_READS=1``.
        self._verified: set[tuple[int, int]] = set()
        #: Serializes verify/quarantine/rebuild against the prefetch
        #: thread (both it and the consumer call :meth:`load_slab`).
        self._integrity_lock = threading.Lock()
        self._cleanup_root = cleanup_root
        if cleanup_root is not None:
            # An implicitly created temp store cleans up after itself
            # even when close() is never called.
            self._finalizer = weakref.finalize(
                self, shutil.rmtree, str(cleanup_root), True)
        else:
            self._finalizer = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, tensor: COOTensor, path: "str | Path",
               slab_nnz_target: int | None = None,
               cleanup_root: "Path | None" = None,
               durable: bool = True,
               fault_hook: "Callable[[str], None] | None" = None,
               ) -> "ShardedTensorStore":
        """Shard *tensor* into a new store directory at *path*.

        One mode-rooted CSF tree per mode (the ALLMODE policy the
        in-core engine uses), each split by :class:`CSFTiling` into the
        nnz-balanced slabs that become the unit of disk I/O, residency,
        and eviction.  The directory must not already contain a store.

        The shard is **torn-write-safe**: slabs are written (and, with
        *durable*, fsynced) into a hidden staging directory inside
        *path*, moved into place, and ``meta.json`` is published
        atomically *last* — a crash at any point leaves either a
        complete store or a directory with no manifest, never a
        half-store that parses.  Leftover ``modeN`` debris from a
        previously crashed shard at the same *path* is replaced.
        *durable* is on for user-named stores and off for the
        self-cleaning temp stores :func:`open_tensor` creates (their
        lifetime is the process, so crash durability buys nothing).

        *fault_hook*, when given, is called with each slab's relative
        path just before it is written — the fault-injection seam
        :class:`repro.robustness.faults.ShardCrashPlan` uses to prove
        the crash contract.

        The returned store keeps a reference to *tensor* as its
        **source**, so a slab that later fails verification is rebuilt
        in place instead of failing the read.
        """
        require(isinstance(tensor, COOTensor),
                "ShardedTensorStore.create shards a COOTensor")
        path = Path(path)
        require(not (path / META_FILE).exists(),
                f"{path} already contains a sharded tensor store")
        path.mkdir(parents=True, exist_ok=True)
        staging = Path(tempfile.mkdtemp(prefix=STAGING_PREFIX, dir=path))
        try:
            modes_meta = []
            for mode in range(tensor.nmodes):
                order = default_mode_order(tensor.nmodes, mode)
                csf = CSFTensor.from_coo(tensor, mode_order=order)
                tiling = CSFTiling(csf, slab_nnz_target=slab_nnz_target)
                (staging / f"mode{mode}").mkdir(exist_ok=True)
                slabs_meta = []
                for slab in tiling:
                    rel = f"mode{mode}/slab{slab.index:05d}.bin"
                    if fault_hook is not None:
                        fault_hook(rel)
                    slabs_meta.append(
                        _write_slab(staging / rel, rel, slab,
                                    durable=durable))
                modes_meta.append({
                    "mode": mode,
                    "mode_order": list(order),
                    "slabs": slabs_meta,
                })
            meta = {
                "format": STORE_FORMAT,
                "version": STORE_VERSION,
                "shape": list(tensor.shape),
                "nnz": int(tensor.nnz),
                # json emits repr(float); repr round-trips doubles
                # exactly, so norm_squared() stays bit-identical to the
                # in-core one.
                "norm_squared": tensor.norm_squared(),
                "fingerprint": {
                    "shape": list(tensor.shape),
                    "nnz": int(tensor.nnz),
                    "sha1": _fingerprint_arrays(tensor.coords,
                                                tensor.vals),
                },
                "slab_nnz_target": slab_nnz_target,
                "modes": modes_meta,
            }
            # Publish: mode directories first, the manifest last — the
            # store only becomes visible (is_store / open) once every
            # byte it names is already in its final place.
            for mode in range(tensor.nmodes):
                target = path / f"mode{mode}"
                if target.exists():
                    shutil.rmtree(target)
                os.replace(staging / f"mode{mode}", target)
            if durable:
                _fsync_dir(path)
            _write_meta(path, meta, durable=durable)
        finally:
            shutil.rmtree(staging, ignore_errors=True)
        return cls(path, meta, cleanup_root=cleanup_root, source=tensor)

    @classmethod
    def open(cls, path: "str | Path",
             max_bytes_in_core: int | None = None) -> "ShardedTensorStore":
        """Open an existing store directory."""
        path = Path(path)
        meta_path = path / META_FILE
        require(meta_path.is_file(),
                f"{path} is not a sharded tensor store (no {META_FILE})")
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        require(meta.get("format") == STORE_FORMAT,
                f"{path}: unrecognized store format {meta.get('format')!r}")
        require(int(meta.get("version", 0)) <= STORE_VERSION,
                f"{path}: store version {meta.get('version')} is newer "
                f"than this library understands ({STORE_VERSION})")
        return cls(path, meta,
                   max_bytes_in_core=resolve_byte_budget(max_bytes_in_core))

    @staticmethod
    def is_store(path: "str | Path") -> bool:
        """Whether *path* is a store directory (has a manifest)."""
        return (Path(path) / META_FILE).is_file()

    # ------------------------------------------------------------------
    # TensorSource surface
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(int(s) for s in self.meta["shape"])

    @property
    def nmodes(self) -> int:
        return len(self.meta["shape"])

    @property
    def nnz(self) -> int:
        return int(self.meta["nnz"])

    def norm_squared(self) -> float:
        """Squared Frobenius norm (bit-identical to the source tensor's)."""
        return float(self.meta["norm_squared"])

    def norm(self) -> float:
        """Frobenius norm."""
        return float(np.sqrt(self.norm_squared()))

    def fingerprint(self) -> dict:
        """The checkpoint-layer tensor fingerprint (shape, nnz, SHA-1).

        Equal to ``tensor_fingerprint(coo)`` of the tensor this store
        was created from, so checkpoints written by an in-core run
        resume against the sharded store and vice versa.
        """
        fp = self.meta["fingerprint"]
        return {"shape": list(fp["shape"]), "nnz": int(fp["nnz"]),
                "sha1": fp["sha1"]}

    # ------------------------------------------------------------------
    # Slab access
    # ------------------------------------------------------------------
    def mode_order(self, mode: int) -> tuple[int, ...]:
        """Mode order of the tree rooted at *mode*."""
        mode = check_mode(mode, self.nmodes)
        return tuple(self.meta["modes"][mode]["mode_order"])

    def slab_count(self, mode: int) -> int:
        mode = check_mode(mode, self.nmodes)
        return len(self.meta["modes"][mode]["slabs"])

    def slab_meta(self, mode: int, index: int) -> dict:
        mode = check_mode(mode, self.nmodes)
        return self.meta["modes"][mode]["slabs"][index]

    def slab_nbytes(self, mode: int, index: int) -> int:
        """On-disk (== resident) bytes of one slab's arrays."""
        return int(self.slab_meta(mode, index)["nbytes"])

    def load_slab(self, mode: int, index: int) -> CSFSlab:
        """Map one slab back as a :class:`CSFSlab` over memmapped arrays.

        The returned arrays are read-only ``np.memmap`` views — pages
        fault in lazily and are released when the slab object is
        dropped (which is exactly what the LRU eviction in
        :class:`repro.tensor.ooc.SlabCache` does).

        This is a **verified read**: the slab file is always
        size-checked against what the manifest promises, and its
        checksum is verified on this handle's first touch of the slab
        (every touch under ``REPRO_VERIFY_READS=1``).  A slab that
        fails is quarantined to ``*.corrupt`` and rebuilt from the
        store's source tensor when one is attached; without a source
        the read raises :class:`~repro.integrity.IntegrityError` —
        never a cryptic memmap error, never silently damaged bytes.
        """
        self._check_open()
        mode = check_mode(mode, self.nmodes)
        smeta = self.slab_meta(mode, index)
        index = int(smeta["index"])
        with self._integrity_lock:
            deep = (verify_reads_enabled()
                    or (mode, index) not in self._verified)
            problem = self.slab_problem(mode, index, deep=deep)
            if problem is not None:
                self._recover_slab(mode, index, problem)
            self._verified.add((mode, index))
        mm = np.memmap(self.path / smeta["file"], dtype=np.uint8, mode="r")
        arrays = {}
        for name, spec in smeta["arrays"].items():
            count = int(np.prod(spec["shape"], dtype=np.int64))
            arrays[name] = np.frombuffer(
                mm, dtype=np.dtype(spec["dtype"]), count=count,
                offset=int(spec["offset"])).reshape(spec["shape"])
        nmodes = self.nmodes
        tree = CSFTensor(
            self.shape, self.mode_order(mode),
            [arrays[f"fids{level}"] for level in range(nmodes)],
            [arrays[f"fptr{level}"] for level in range(nmodes - 1)],
            arrays["vals"])
        node_ranges = tuple((int(lo), int(hi))
                            for lo, hi in smeta["node_ranges"])
        return CSFSlab(int(smeta["index"]), tree, node_ranges)

    def iter_slabs(self, mode: int):
        """Yield every slab of *mode* in index order (no caching)."""
        for index in range(self.slab_count(mode)):
            yield self.load_slab(mode, index)

    # ------------------------------------------------------------------
    # Integrity: verification, quarantine, rebuild
    # ------------------------------------------------------------------
    def slab_path(self, mode: int, index: int) -> Path:
        """Absolute path of one slab's backing file."""
        return self.path / self.slab_meta(mode, index)["file"]

    def slab_checksum(self, mode: int, index: int) -> "ChecksumManifest | None":
        """The manifest recorded at shard time (None for v1 stores)."""
        recorded = self.slab_meta(mode, index).get("checksum")
        return (ChecksumManifest.from_dict(recorded)
                if recorded is not None else None)

    def slab_problem(self, mode: int, index: int,
                     deep: bool = True) -> "str | None":
        """Read-only integrity check of one slab; ``None`` means clean.

        Never quarantines, never rebuilds — the detection half that
        :meth:`load_slab` and the fsck scrubber share.  The shallow
        check (always) stats the file against the length the manifest
        promises; *deep* additionally streams the chunked checksum.
        """
        self._check_open()
        mode = check_mode(mode, self.nmodes)
        smeta = self.slab_meta(mode, index)
        file_path = self.path / smeta["file"]
        try:
            size = file_path.stat().st_size
        except FileNotFoundError:
            return "slab file is missing"
        expected = self.slab_checksum(mode, index)
        if expected is None:
            # v1 store: no checksum was recorded; the array table still
            # tells us how long the file must at least be.
            promised = _promised_slab_bytes(smeta)
            if size < promised:
                return (f"truncated: {size} bytes on disk, header "
                        f"promises {promised}")
            return None
        if size != expected.length:
            direction = "truncated" if size < expected.length else "grew"
            return (f"{direction}: {size} bytes on disk, manifest "
                    f"promises {expected.length}")
        if not deep:
            return None
        return verify_file(file_path, expected)

    def quarantine_slab(self, mode: int, index: int,
                        reason: str) -> "Path | None":
        """Move a damaged slab file aside to ``*.corrupt``.

        Returns the quarantine path (``None`` when the file was already
        gone).  The evidence is preserved for forensics; fsck reports
        quarantined files and ``--repair`` cleans them up.
        """
        smeta = self.slab_meta(mode, index)
        file_path = self.path / smeta["file"]
        quarantined = file_path.with_name(
            file_path.name + SLAB_QUARANTINE_SUFFIX)
        try:
            os.replace(file_path, quarantined)
        except FileNotFoundError:
            quarantined = None
        record_integrity_event("quarantine", artifact=smeta["file"],
                               detail=str(reason))
        warnings.warn(
            f"quarantined corrupt slab {file_path} "
            f"({reason})" + (f" -> {quarantined.name}"
                             if quarantined is not None else ""),
            RuntimeWarning, stacklevel=2)
        self._verified.discard((mode, int(smeta["index"])))
        return quarantined

    def rebuild_slab(self, mode: int, index: int) -> Path:
        """Deterministically re-shard one slab from the source tensor.

        Requires a source (:meth:`create` retains one,
        :meth:`attach_source` supplies one later).  The rebuilt bytes
        must match the checksum recorded at shard time — a mismatch
        means the attached tensor is not the one this store was sharded
        from, and raises :class:`IntegrityError` rather than silently
        swapping in different data.
        """
        self._check_open()
        mode = check_mode(mode, self.nmodes)
        require(self._source is not None,
                "cannot rebuild a slab without a source tensor "
                "(attach_source a tensor with the store's fingerprint)")
        smeta = self.slab_meta(mode, index)
        file_path = self.path / smeta["file"]
        order = tuple(self.meta["modes"][mode]["mode_order"])
        csf = CSFTensor.from_coo(self._source, mode_order=order)
        tiling = CSFTiling(
            csf, slab_nnz_target=self.meta.get("slab_nnz_target"))
        rebuilt = None
        for slab in tiling:
            if slab.index == int(smeta["index"]):
                rebuilt = slab
                break
        require(rebuilt is not None,
                f"deterministic re-shard of mode {mode} did not produce "
                f"slab {smeta['index']} — store meta is inconsistent")
        tmp = file_path.with_name(file_path.name + ".rebuild")
        new_meta = _write_slab(tmp, smeta["file"], rebuilt, durable=True)
        recorded = self.slab_checksum(mode, index)
        if recorded is not None:
            problem = verify_manifest(
                ChecksumManifest.from_dict(new_meta["checksum"]), recorded)
            if problem is not None:
                tmp.unlink(missing_ok=True)
                raise IntegrityError(
                    f"{file_path}: rebuilt slab does not match the "
                    f"checksum recorded at shard time ({problem}) — the "
                    f"attached source is not the tensor this store was "
                    f"sharded from", path=file_path)
        os.replace(tmp, file_path)
        record_integrity_event("rebuild", artifact=smeta["file"],
                               nbytes=int(new_meta["nbytes"]))
        self._verified.add((mode, int(smeta["index"])))
        return file_path

    def attach_source(self, tensor: COOTensor) -> None:
        """Attach the tensor this store was sharded from.

        Enables transparent quarantine-and-rebuild on a reopened store
        (``fsck --repair --source``).  The tensor must carry the exact
        fingerprint recorded in ``meta.json`` — same bytes, same order.
        """
        require(isinstance(tensor, COOTensor),
                "attach_source needs the original COOTensor")
        fp = self.fingerprint()
        require(tuple(fp["shape"]) == tuple(int(s) for s in tensor.shape)
                and int(fp["nnz"]) == int(tensor.nnz)
                and fp["sha1"] == _fingerprint_arrays(tensor.coords,
                                                      tensor.vals),
                "attach_source: tensor fingerprint does not match this "
                "store (different data, order, or dtype)")
        self._source = tensor

    def has_source(self) -> bool:
        """Whether a rebuild source is currently attached."""
        return self._source is not None

    def _recover_slab(self, mode: int, index: int, problem: str) -> None:
        """Quarantine a damaged slab, then rebuild or raise."""
        smeta = self.slab_meta(mode, index)
        file_path = self.path / smeta["file"]
        record_integrity_event("mismatch", artifact=smeta["file"],
                               detail=problem)
        quarantined = self.quarantine_slab(mode, index, problem)
        if self._source is None:
            where = (f"; evidence preserved at {quarantined}"
                     if quarantined is not None else "")
            raise IntegrityError(
                f"{file_path}: {problem}{where}. No source tensor is "
                f"attached, so the slab cannot be rebuilt — re-shard "
                f"the tensor, or run `python -m repro fsck "
                f"{self.path} --repair --source <tensor>`",
                path=file_path, quarantined=quarantined)
        self.rebuild_slab(mode, index)

    # ------------------------------------------------------------------
    # Whole-tensor queries (conversion / tests — not the streaming path)
    # ------------------------------------------------------------------
    def to_coo(self) -> COOTensor:
        """Materialize the whole tensor in core (lex-sorted by mode 0).

        For conversion and testing; the factorization path never calls
        this.
        """
        self._check_open()
        coords_parts: list[np.ndarray] = []
        vals_parts: list[np.ndarray] = []
        for slab in self.iter_slabs(0):
            coo = slab.tree.to_coo()
            coords_parts.append(coo.coords)
            vals_parts.append(coo.vals)
        if not coords_parts:
            return COOTensor(np.empty((self.nmodes, 0), dtype=INDEX_DTYPE),
                             np.empty(0, dtype=VALUE_DTYPE), self.shape)
        return COOTensor(np.concatenate(coords_parts, axis=1),
                         np.concatenate(vals_parts), self.shape)

    def storage_bytes(self) -> int:
        """Total slab bytes on disk (== the full in-core CSF footprint)."""
        return sum(int(s["nbytes"])
                   for m in self.meta["modes"] for s in m["slabs"])

    def slab_files(self) -> list[Path]:
        """Every slab file of the store (leak-check support)."""
        return [self.path / s["file"]
                for m in self.meta["modes"] for s in m["slabs"]]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        require(not self.closed, "sharded tensor store is closed")

    def close(self) -> None:
        """Close the store; removes the directory when it owns a temp one.

        Idempotent.  Stores opened on user-provided paths are left on
        disk; stores :func:`open_tensor` implicitly created in a temp
        directory are deleted — the "no leaked shard files" guarantee.
        """
        if self.closed:
            return
        self.closed = True
        if self._cleanup_root is not None:
            if self._finalizer is not None:
                self._finalizer.detach()
            shutil.rmtree(self._cleanup_root, ignore_errors=True)

    def __enter__(self) -> "ShardedTensorStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ShardedTensorStore(path={str(self.path)!r}, "
                f"shape={self.shape}, nnz={self.nnz}, "
                f"bytes={self.storage_bytes()})")


def _write_slab(file_path: Path, rel: str, slab: CSFSlab,
                durable: bool = False) -> dict:
    """Pack one slab's level arrays into an aligned binary file.

    The chunked CRC-32 manifest is accumulated **while writing** (no
    second read pass) and returned in the slab record's ``checksum``
    key; *durable* fsyncs the file before returning.
    """
    arrays = slab.tree.buffers()
    manifest: dict[str, dict] = {}
    offset = 0
    summer = StreamingChecksummer()
    with open(file_path, "wb") as handle:
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            aligned = -(-offset // _ALIGN) * _ALIGN
            if aligned > offset:
                pad = b"\0" * (aligned - offset)
                handle.write(pad)
                summer.update(pad)
            manifest[name] = {
                "offset": aligned,
                "shape": [int(s) for s in arr.shape],
                "dtype": arr.dtype.str,
            }
            data = arr.tobytes()
            handle.write(data)
            summer.update(data)
            offset = aligned + arr.nbytes
        if durable:
            handle.flush()
            os.fsync(handle.fileno())
    return {
        "index": slab.index,
        "file": rel,
        "nnz": int(slab.nnz),
        "nbytes": int(sum(np.prod(s["shape"], dtype=np.int64)
                          * np.dtype(s["dtype"]).itemsize
                          for s in manifest.values())),
        "node_ranges": [[int(lo), int(hi)]
                        for lo, hi in slab.node_ranges],
        "arrays": manifest,
        "checksum": summer.manifest().to_dict(),
    }


def _promised_slab_bytes(smeta: dict) -> int:
    """Minimum file length the slab's array table implies (v1 stores)."""
    end = 0
    for spec in smeta["arrays"].values():
        count = int(np.prod(spec["shape"], dtype=np.int64))
        end = max(end, int(spec["offset"])
                  + count * np.dtype(spec["dtype"]).itemsize)
    return end


def _fsync_dir(path: Path) -> None:
    """fsync a directory so renames inside it survive a crash."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-specific
        pass
    finally:
        os.close(fd)


def _write_meta(path: Path, meta: dict, durable: bool = True) -> None:
    """Publish ``meta.json`` atomically (tmp + fsync + rename)."""
    tmp = path / (META_FILE + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=1)
        if durable:
            handle.flush()
            os.fsync(handle.fileno())
    os.replace(tmp, path / META_FILE)
    if durable:
        _fsync_dir(path)


# ----------------------------------------------------------------------
# The unified front door
# ----------------------------------------------------------------------
def open_tensor(source: "str | Path | TensorSource",
                max_bytes_in_core: int | None = None,
                shard_dir: "str | Path | None" = None,
                slab_nnz_target: int | None = None,
                shape: Sequence[int] | None = None) -> TensorSource:
    """Open *source* as a :class:`~repro.types.TensorSource`.

    The single entry point behind ``repro.fit(path_or_tensor, ...)``
    and ``repro.load_tns``.  Dispatch rules:

    * a **store directory** (contains ``meta.json``) opens as a
      :class:`ShardedTensorStore` carrying the byte budget;
    * a **``.tns`` / ``.tns.gz`` file** reads in-core
      (:class:`~repro.tensor.coo.COOTensor`) when no byte budget is in
      effect, and is sharded into a store when one is — into
      *shard_dir* when given, else a self-cleaning temp directory the
      returned store removes on ``close()``;
    * an existing **tensor object** (COO/CSF/store) passes through
      unchanged — unless it is a ``COOTensor`` and a byte budget is in
      effect, in which case it is sharded the same way.

    The byte budget is *max_bytes_in_core* when given, else the
    ``REPRO_MAX_BYTES_IN_CORE`` environment variable, else none.
    """
    budget = resolve_byte_budget(max_bytes_in_core)
    if isinstance(source, ShardedTensorStore):
        if budget is not None:
            source.max_bytes_in_core = budget
        return source
    if isinstance(source, (str, Path)):
        path = Path(source)
        if ShardedTensorStore.is_store(path):
            return ShardedTensorStore.open(path, max_bytes_in_core=budget)
        require(path.is_file(),
                f"{path} is neither a tensor file nor a store directory")
        from .io import read_tns
        tensor: TensorSource = read_tns(path, shape=shape)
        if budget is None:
            return tensor
        return _shard_in_core(tensor, budget, shard_dir, slab_nnz_target)
    require(isinstance(source, TensorSource),
            f"cannot open {type(source).__name__!r} as a tensor: need a "
            "path, a COOTensor/CSFTensor, or a ShardedTensorStore")
    if budget is not None and isinstance(source, COOTensor):
        return _shard_in_core(source, budget, shard_dir, slab_nnz_target)
    return source


def _shard_in_core(tensor: COOTensor, budget: int,
                   shard_dir: "str | Path | None",
                   slab_nnz_target: int | None) -> ShardedTensorStore:
    if shard_dir is not None:
        store = ShardedTensorStore.create(
            tensor, shard_dir, slab_nnz_target=slab_nnz_target)
    else:
        # Self-cleaning temp store: its lifetime is this process, so
        # fsync durability buys nothing — skip it (durable=False).
        tmp = Path(tempfile.mkdtemp(prefix=TEMP_SHARD_PREFIX))
        store = ShardedTensorStore.create(
            tensor, tmp / "store", slab_nnz_target=slab_nnz_target,
            cleanup_root=tmp, durable=False)
    store.max_bytes_in_core = budget
    return store
