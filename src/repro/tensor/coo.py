"""Coordinate (COO) sparse tensor.

The COO layout is the interchange format of the library: tensors are read
from disk or generated into COO, and the compute kernels either consume it
directly (:mod:`repro.kernels.mttkrp_coo`) or compress it into CSF trees
(:class:`repro.tensor.csf.CSFTensor`).

Coordinates are stored as a single ``(nmodes, nnz)`` ``int64`` array; values
as a ``(nnz,)`` ``float64`` array.  Storing one row per mode (instead of one
row per non-zero) keeps each mode's indices contiguous, which is what the
sort and segment kernels want.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..types import INDEX_DTYPE, VALUE_DTYPE, SeedLike, as_generator
from ..validation import (
    check_coords,
    check_mode,
    check_shape,
    check_values,
    require,
)


class COOTensor:
    """A sparse tensor in coordinate format.

    Parameters
    ----------
    coords:
        ``(nmodes, nnz)`` integer array; ``coords[m, p]`` is the mode-``m``
        index of the ``p``-th non-zero.
    vals:
        ``(nnz,)`` array of non-zero values.
    shape:
        Extent of each mode.

    Notes
    -----
    The constructor validates bounds but does **not** deduplicate repeated
    coordinates; call :meth:`deduplicate` when the provenance of the data
    does not guarantee uniqueness (e.g. after random sampling).
    """

    __slots__ = ("coords", "vals", "shape")

    def __init__(self, coords: np.ndarray, vals: np.ndarray,
                 shape: Sequence[int]):
        self.shape = check_shape(shape)
        self.coords = check_coords(coords, self.shape)
        self.vals = check_values(vals, self.coords.shape[1])

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def nmodes(self) -> int:
        """Number of modes (tensor order)."""
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return self.coords.shape[1]

    @property
    def density(self) -> float:
        """nnz divided by the product of the extents."""
        total = 1.0
        for extent in self.shape:
            total *= float(extent)
        return self.nnz / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"COOTensor(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.3e})"
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(cls, mode_indices: Iterable[np.ndarray],
                    vals: np.ndarray,
                    shape: Sequence[int] | None = None) -> "COOTensor":
        """Build from per-mode index arrays.

        When *shape* is omitted it is inferred as ``max(index) + 1`` per mode.
        """
        cols = [np.asarray(ix, dtype=INDEX_DTYPE) for ix in mode_indices]
        require(len(cols) >= 1, "need at least one mode of indices")
        coords = np.vstack(cols)
        if shape is None:
            if coords.shape[1] == 0:
                raise ValueError("cannot infer shape from an empty tensor")
            shape = tuple(int(c.max()) + 1 for c in coords)
        return cls(coords, np.asarray(vals, dtype=VALUE_DTYPE), shape)

    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "COOTensor":
        """Extract the entries of a dense array with ``|value| > tol``."""
        dense = np.asarray(dense, dtype=VALUE_DTYPE)
        mask = np.abs(dense) > tol
        coords = np.vstack([ix.astype(INDEX_DTYPE) for ix in np.nonzero(mask)])
        return cls(coords, dense[mask], dense.shape)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (small tensors / tests only).

        Duplicate coordinates are summed, matching :meth:`deduplicate`.
        """
        out = np.zeros(self.shape, dtype=VALUE_DTYPE)
        np.add.at(out, tuple(self.coords), self.vals)
        return out

    def copy(self) -> "COOTensor":
        """Deep copy."""
        return COOTensor(self.coords.copy(), self.vals.copy(), self.shape)

    # ------------------------------------------------------------------
    # Reorganization
    # ------------------------------------------------------------------
    def sort_lex(self, mode_order: Sequence[int] | None = None) -> "COOTensor":
        """Return a tensor sorted lexicographically by *mode_order*.

        ``mode_order[0]`` is the primary (slowest varying) key.  The default
        order is ``(0, 1, ..., N-1)``.
        """
        order = self._normalize_order(mode_order)
        # np.lexsort sorts by the LAST key first, so feed keys reversed.
        perm = np.lexsort(tuple(self.coords[m] for m in reversed(order)))
        return COOTensor(self.coords[:, perm], self.vals[perm], self.shape)

    def permutation_lex(self, mode_order: Sequence[int] | None = None
                        ) -> np.ndarray:
        """Return the permutation that :meth:`sort_lex` would apply."""
        order = self._normalize_order(mode_order)
        return np.lexsort(tuple(self.coords[m] for m in reversed(order)))

    def _normalize_order(self, mode_order: Sequence[int] | None
                         ) -> tuple[int, ...]:
        if mode_order is None:
            return tuple(range(self.nmodes))
        order = tuple(check_mode(m, self.nmodes) for m in mode_order)
        require(
            sorted(order) == list(range(self.nmodes)),
            f"mode order {order} is not a permutation of all modes",
        )
        return order

    def deduplicate(self) -> "COOTensor":
        """Sum values at repeated coordinates; result is lex-sorted."""
        if self.nnz == 0:
            return self.copy()
        sorted_self = self.sort_lex()
        coords, vals = sorted_self.coords, sorted_self.vals
        changed = np.zeros(coords.shape[1], dtype=bool)
        changed[0] = True
        for m in range(self.nmodes):
            changed[1:] |= coords[m, 1:] != coords[m, :-1]
        starts = np.flatnonzero(changed)
        summed = np.add.reduceat(vals, starts)
        return COOTensor(coords[:, starts], summed, self.shape)

    def permute_modes(self, mode_order: Sequence[int]) -> "COOTensor":
        """Reorder the tensor's modes (a transpose)."""
        order = self._normalize_order(mode_order)
        coords = self.coords[list(order)]
        shape = tuple(self.shape[m] for m in order)
        return COOTensor(coords, self.vals.copy(), shape)

    def drop_zeros(self, tol: float = 0.0) -> "COOTensor":
        """Remove stored entries with ``|value| <= tol``."""
        keep = np.abs(self.vals) > tol
        return COOTensor(self.coords[:, keep], self.vals[keep], self.shape)

    # ------------------------------------------------------------------
    # Reductions and queries
    # ------------------------------------------------------------------
    def norm(self) -> float:
        """Frobenius norm ``sqrt(sum of squared values)``."""
        return float(np.sqrt(np.dot(self.vals, self.vals)))

    def norm_squared(self) -> float:
        """Squared Frobenius norm."""
        return float(np.dot(self.vals, self.vals))

    def mode_slice_counts(self, mode: int) -> np.ndarray:
        """Non-zero count of every slice along *mode* (length = extent)."""
        mode = check_mode(mode, self.nmodes)
        return np.bincount(self.coords[mode], minlength=self.shape[mode])

    def nonempty_slices(self, mode: int) -> np.ndarray:
        """Sorted unique indices with at least one non-zero along *mode*."""
        mode = check_mode(mode, self.nmodes)
        return np.unique(self.coords[mode])

    def __eq__(self, other: object) -> bool:
        """Exact structural equality after deduplication and sorting."""
        if not isinstance(other, COOTensor):
            return NotImplemented
        if self.shape != other.shape:
            return False
        a, b = self.deduplicate(), other.deduplicate()
        return (
            a.nnz == b.nnz
            and bool(np.array_equal(a.coords, b.coords))
            and bool(np.allclose(a.vals, b.vals))
        )

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("COOTensor is mutable and unhashable")

    # ------------------------------------------------------------------
    # Randomized helpers
    # ------------------------------------------------------------------
    def sample_nonzeros(self, count: int, seed: SeedLike = None
                        ) -> "COOTensor":
        """Uniformly subsample *count* stored non-zeros (without replacement)."""
        require(0 <= count <= self.nnz, "sample size out of range")
        rng = as_generator(seed)
        pick = rng.choice(self.nnz, size=count, replace=False)
        pick.sort()
        return COOTensor(self.coords[:, pick], self.vals[pick], self.shape)
