"""Slab tiling of CSF trees (paper Section IV-A slice parallelism).

The paper parallelizes MTTKRP over the *slices* of the CSF tree
(Algorithm 3's outer loop); SPLATT and its descendants generalize that to
contiguous groups of root slices — *slabs* — sized so that work is balanced
by non-zero count rather than by slice count (real tensors are heavily
skewed; see the Zipf marginals in :mod:`repro.datasets.powerlaw`).

A :class:`CSFSlab` is a fully self-contained sub-tree: because slabs are
contiguous *complete* sub-forests (they split only at root-slice
boundaries), every node of the original tree belongs to exactly one slab,
and each level of a slab is a contiguous range of the parent's node
arrays.  The slab's ``fids``/``vals`` are therefore zero-copy views; only
the pointer arrays are rebased (one small copy per slab, made **once** —
the tensor's sparsity pattern is static across the whole factorization).

Consequences the kernels rely on:

* every fiber/segment of the original tree lies inside exactly one slab,
  so per-slab upward (``reduceat``) and downward (``repeat``) sweeps
  compute **bit-identical** node values to the monolithic sweep;
* root-slice ids are unique and ascending across slabs, so the root-mode
  kernel writes disjoint output rows with no reduction;
* each slab's leaf range ``[leaf_lo, leaf_hi)`` tiles ``range(nnz)``, so
  leaf/internal kernels can write per-node products into disjoint ranges
  of one shared buffer and finish with a single deterministic scatter.
"""

from __future__ import annotations

import numpy as np

from ..config import DEFAULT_SLAB_NNZ
from ..parallel.partition import balanced_chunks
from ..validation import require
from .csf import CSFTensor


def nnz_per_root_slice(csf: CSFTensor) -> np.ndarray:
    """Non-zero count under every root node (the slab-balancing weights)."""
    if csf.nslices == 0:
        return np.zeros(0, dtype=np.int64)
    ptr = csf.fptr[0]
    for level in range(1, csf.nmodes - 1):
        ptr = csf.fptr[level][ptr]
    return np.diff(ptr)


class CSFSlab:
    """One contiguous root-slice slab of a CSF tree.

    Attributes
    ----------
    index:
        Position of the slab within its tiling (stable scheduling key).
    tree:
        A rebased :class:`CSFTensor` over this slab's nodes only —
        ``fids``/``vals`` are views into the parent, ``fptr`` arrays are
        rebased copies so the standard kernels work unchanged.
    node_ranges:
        Per level, the ``(start, stop)`` range this slab occupies in the
        parent tree's node arrays.  ``node_ranges[-1]`` is the leaf (and
        value) range; ranges at every level tile the parent exactly.
    """

    __slots__ = ("index", "tree", "node_ranges")

    def __init__(self, index: int, tree: CSFTensor,
                 node_ranges: tuple[tuple[int, int], ...]):
        self.index = index
        self.tree = tree
        self.node_ranges = node_ranges

    @property
    def nnz(self) -> int:
        return self.tree.nnz

    @property
    def root_range(self) -> tuple[int, int]:
        """Root-node range in the parent tree."""
        return self.node_ranges[0]

    @property
    def leaf_range(self) -> tuple[int, int]:
        """Leaf/value range in the parent tree (== COO position range)."""
        return self.node_ranges[-1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lo, hi = self.root_range
        return (f"CSFSlab(index={self.index}, roots=[{lo}:{hi}), "
                f"nnz={self.nnz})")


def _make_slab(csf: CSFTensor, index: int, roots: slice) -> CSFSlab:
    nmodes = csf.nmodes
    lo, hi = roots.start, roots.stop
    ranges: list[tuple[int, int]] = [(lo, hi)]
    for level in range(nmodes - 1):
        lo, hi = int(csf.fptr[level][lo]), int(csf.fptr[level][hi])
        ranges.append((lo, hi))
    fids = [csf.fids[level][ranges[level][0]:ranges[level][1]]
            for level in range(nmodes)]
    fptr = [csf.fptr[level][ranges[level][0]:ranges[level][1] + 1]
            - csf.fptr[level][ranges[level][0]]
            for level in range(nmodes - 1)]
    vals = csf.vals[ranges[-1][0]:ranges[-1][1]]
    tree = CSFTensor(csf.shape, csf.mode_order, fids, fptr, vals)
    return CSFSlab(index, tree, tuple(ranges))


def root_prefix_tree(csf: CSFTensor, max_nnz: int) -> CSFTensor:
    """A self-contained sub-tree over the first root slices of *csf*.

    Takes the shortest root-slice prefix holding at least *max_nnz*
    non-zeros (the whole tree if it has fewer) and rebases it exactly
    like a :class:`CSFSlab` — ``fids``/``vals`` stay zero-copy views, so
    the sub-tree shares the parent's memory.  The autotuner uses this as
    a cheap calibration workload: the prefix runs the same kernels over
    the same physical layout as the full tree, just over fewer slices.
    """
    require(max_nnz >= 1, "max_nnz must be positive")
    if csf.nslices == 0 or csf.nnz <= max_nnz:
        return csf
    cumulative = np.cumsum(nnz_per_root_slice(csf))
    stop = int(np.searchsorted(cumulative, max_nnz)) + 1
    stop = min(stop, csf.nslices)
    return _make_slab(csf, 0, slice(0, stop)).tree


class CSFTiling:
    """A partition of a CSF tree into balanced, independent slabs.

    Parameters
    ----------
    csf:
        The tree to tile.
    slab_nnz_target:
        Desired non-zeros per slab; the slab count is
        ``ceil(nnz / target)`` capped at the slice count (slabs never
        split a root slice).  ``None`` uses
        :data:`repro.config.DEFAULT_SLAB_NNZ`.
    n_slabs:
        Explicit slab count (overrides *slab_nnz_target*).

    The decomposition is *static*: built once per tree and reused for the
    whole factorization, exactly like the tree itself.  Slab boundaries
    come from :func:`repro.parallel.partition.balanced_chunks` over the
    per-slice non-zero counts — the same weight-balanced contiguous
    partitioner blocked ADMM uses for its row blocks.
    """

    def __init__(self, csf: CSFTensor,
                 slab_nnz_target: int | None = None,
                 n_slabs: int | None = None):
        self.csf = csf
        if slab_nnz_target is None:
            slab_nnz_target = DEFAULT_SLAB_NNZ
        require(slab_nnz_target >= 1, "slab_nnz_target must be positive")
        self.slab_nnz_target = int(slab_nnz_target)
        weights = nnz_per_root_slice(csf)
        if n_slabs is None:
            n_slabs = -(-csf.nnz // self.slab_nnz_target) if csf.nnz else 0
        require(n_slabs >= 0, "n_slabs must be non-negative")
        n_slabs = max(1, min(int(n_slabs), csf.nslices)) if csf.nslices \
            else 0
        chunks = balanced_chunks(weights, n_slabs) if n_slabs else []
        self.slabs: list[CSFSlab] = [
            _make_slab(csf, i, roots) for i, roots in enumerate(chunks)]

    @property
    def slab_count(self) -> int:
        return len(self.slabs)

    @property
    def slab_nnz(self) -> np.ndarray:
        """Per-slab non-zero counts (the schedulable work-item weights)."""
        return np.array([s.nnz for s in self.slabs], dtype=np.int64)

    def __iter__(self):
        return iter(self.slabs)

    def __len__(self) -> int:
        return len(self.slabs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CSFTiling(slabs={self.slab_count}, "
                f"target={self.slab_nnz_target}, nnz={self.csf.nnz})")


def tile_csf(csf: CSFTensor, slab_nnz_target: int | None = None,
             n_slabs: int | None = None) -> CSFTiling:
    """Convenience constructor mirroring :class:`CSFTiling`."""
    return CSFTiling(csf, slab_nnz_target=slab_nnz_target, n_slabs=n_slabs)
