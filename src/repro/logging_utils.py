"""Logging helpers.

The library logs through the standard :mod:`logging` module under the
``"repro"`` namespace and never configures the root logger, so that embedding
applications keep full control.  :func:`enable_console_logging` is a
convenience for scripts and examples.
"""

from __future__ import annotations

import logging
import sys


def get_logger(name: str) -> logging.Logger:
    """Return a logger inside the ``repro`` namespace.

    ``get_logger("core.aoadmm")`` yields the ``repro.core.aoadmm`` logger.
    """
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def enable_console_logging(level: int = logging.INFO) -> logging.Handler:
    """Attach a stderr handler to the ``repro`` logger (idempotent-ish).

    Returns the handler so callers can remove it again.
    """
    logger = logging.getLogger("repro")
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
    )
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler
