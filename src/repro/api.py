"""The one-call front door: ``repro.fit``.

``fit`` is a thin façade over the method drivers — it builds the
:class:`~repro.core.options.AOADMMOptions`, dispatches to
:func:`~repro.core.aoadmm.fit_aoadmm` (or a baseline), and packages the
outcome together with an observability snapshot into a
:class:`FitResult`.  It adds **no numerics of its own**: the factors it
returns are bit-identical to calling the underlying driver directly with
the same options (tested).

>>> import repro
>>> from repro.tensor import noisy_lowrank_coo
>>> tensor, _ = noisy_lowrank_coo((30, 25, 20), rank=4, nnz=2000, seed=0)
>>> result = repro.fit(tensor, rank=4, constraints="nonneg", seed=0,
...                    max_outer_iterations=5)
>>> result.stop_reason
'max_iterations'
>>> all((f >= 0).all() for f in result.factors)
True
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .core.aoadmm import FactorizationResult, fit_aoadmm
from .core.cpd import CPModel
from .core.options import AOADMMOptions, options_from_kwargs
from .core.trace import FactorizationTrace
from .observability import Observability, empty_snapshot, get_observability
from .robustness.supervisor import (
    FitSupervisor,
    SupervisorOptions,
    SupervisorReport,
)
from .types import TensorSource
from .validation import require

#: method name -> driver; every driver shares the
#: ``(tensor, options, initial_factors, engine)`` signature and returns a
#: :class:`FactorizationResult`.
METHODS = ("aoadmm", "als", "mu", "pgd")


def _driver(method: str):
    if method == "aoadmm":
        return fit_aoadmm
    if method == "als":
        from .core.als import fit_als
        return fit_als
    if method == "mu":
        from .baselines.mu_ntf import fit_mu
        return fit_mu
    if method == "pgd":
        from .baselines.pgd_ntf import fit_pgd
        return fit_pgd
    raise ValueError(f"unknown method {method!r}; choose from {METHODS}")


@dataclass
class FitResult:
    """What ``repro.fit`` returns: model + trace + metrics + diagnostics."""

    model: CPModel
    trace: FactorizationTrace
    #: Metrics snapshot (``MetricsRegistry.snapshot()`` shape) covering the
    #: run; empty when observability was disabled.
    metrics: dict
    stop_reason: str
    converged: bool
    options: AOADMMOptions
    method: str
    #: The underlying driver's result, for anything not surfaced here.
    raw: FactorizationResult
    #: Recovery audit trail when the run was supervised
    #: (``fit(..., supervise=...)``); ``None`` otherwise.
    supervisor: "SupervisorReport | None" = None

    @property
    def factors(self) -> list[np.ndarray]:
        return self.model.factors

    @property
    def relative_error(self) -> float:
        return self.trace.final_error()

    @property
    def iterations(self) -> int:
        return len(self.trace)


def fit(tensor: "TensorSource | str | Path",
        rank: int | None = None,
        constraints: object | None = None,
        method: str = "aoadmm",
        observe: "bool | Observability | None" = None,
        options: AOADMMOptions | None = None,
        initial_factors: "list[np.ndarray] | None" = None,
        engine: object = None,
        resume_from: object = None,
        supervise: "bool | SupervisorOptions | None" = None,
        **option_kwargs: object) -> FitResult:
    """Factorize *tensor* and return a :class:`FitResult`.

    Parameters
    ----------
    tensor:
        Any :class:`~repro.types.TensorSource` (an in-core
        :class:`~repro.tensor.coo.COOTensor` / CSF tensor, or an
        out-of-core :class:`~repro.tensor.store.ShardedTensorStore`),
        or a **path** — a ``.tns``/``.tns.gz`` file or a sharded store
        directory — opened through
        :func:`~repro.tensor.store.open_tensor` honoring
        ``max_bytes_in_core`` (the option or the
        ``REPRO_MAX_BYTES_IN_CORE`` environment variable).
    rank, constraints:
        The two settings everyone touches, promoted to positional-friendly
        arguments; ``None`` leaves the (given or default) *options* value.
    method:
        ``"aoadmm"`` (the paper's solver), or a baseline: ``"als"``
        (unconstrained), ``"mu"`` (multiplicative updates), ``"pgd"``
        (projected gradient).
    observe:
        * ``None`` — respect the process-wide observability state
          (``REPRO_OBSERVE`` / :func:`repro.observability.configure`);
        * ``True`` — collect metrics for this call in a fresh registry
          (process-wide state untouched afterwards);
        * ``False`` — force metrics off for this call;
        * an :class:`~repro.observability.Observability` — record into it.

        Whatever the source, ``FitResult.metrics`` holds the snapshot.
    options:
        Full configuration object; ``rank`` / ``constraints`` /
        ``**option_kwargs`` are applied on top of it.
    initial_factors, engine, resume_from:
        Forwarded to the driver (``resume_from`` is AO-ADMM only).
    supervise:
        Run under the resilient
        :class:`~repro.robustness.supervisor.FitSupervisor` (AO-ADMM
        only): a heartbeat watchdog interrupts stalled runs, transient
        faults (broken worker pools, shared-memory exhaustion,
        checkpoint I/O errors) are retried with backoff from the newest
        valid checkpoint, execution degrades
        ``process -> thread -> serial`` under repeated pressure, and
        SIGTERM/SIGINT preempt gracefully (checkpoint + resumable
        ``stop_reason="preempted"``).  ``True`` uses default
        :class:`~repro.robustness.supervisor.SupervisorOptions`; pass an
        instance to tune.  The recovery audit trail lands in
        ``FitResult.supervisor`` and the run's ``trace.guard_log``.
    **option_kwargs:
        Any other :class:`AOADMMOptions` field (or legacy alias), e.g.
        ``blocked=False, seed=0, max_outer_iterations=50``.  Notably
        ``executor="process"`` (or ``REPRO_EXECUTOR=process`` in the
        environment) runs the MTTKRP slab kernels in a shared-memory
        worker pool instead of threads — bit-identical results, no GIL
        (see ``docs/parallelism.md``).
    """
    require(method in METHODS,
            f"unknown method {method!r}; choose from {METHODS}")
    if rank is not None:
        option_kwargs["rank"] = rank
    if constraints is not None:
        option_kwargs["constraints"] = constraints
    options = options_from_kwargs(base=options, **option_kwargs)

    if isinstance(tensor, (str, Path)):
        from .tensor.store import open_tensor
        tensor = open_tensor(tensor,
                             max_bytes_in_core=options.max_bytes_in_core,
                             slab_nnz_target=options.slab_nnz_target)
    require(isinstance(tensor, TensorSource),
            f"tensor must be a TensorSource or a path, got "
            f"{type(tensor).__name__}")

    driver_kwargs: dict[str, object] = {
        "options": options,
        "initial_factors": initial_factors,
        "engine": engine,
    }
    if resume_from is not None:
        require(method == "aoadmm",
                "resume_from is only supported by method='aoadmm'")
        driver_kwargs["resume_from"] = resume_from
    driver = _driver(method)

    report: "SupervisorReport | None" = None
    if supervise:
        require(method == "aoadmm",
                "supervise is only supported by method='aoadmm'")
        require(engine is None,
                "supervise owns the engine lifecycle (the degradation "
                "ladder swaps executors); do not pass engine=")
        sup_options = (supervise if isinstance(supervise,
                                               SupervisorOptions)
                       else None)

        def run():
            return FitSupervisor(tensor, options, supervisor=sup_options,
                                 initial_factors=initial_factors,
                                 resume_from=resume_from).run()
    else:
        def run():
            return driver(tensor, **driver_kwargs), None

    if observe is None:
        result, report = run()
        handle = get_observability()
        metrics = handle.snapshot() if handle.enabled else empty_snapshot()
    else:
        handle = (observe if isinstance(observe, Observability)
                  else Observability(enabled=bool(observe)))
        with handle.activate():
            result, report = run()
        metrics = handle.snapshot() if handle.enabled else empty_snapshot()

    return FitResult(model=result.model, trace=result.trace,
                     metrics=metrics, stop_reason=result.stop_reason,
                     converged=result.converged, options=result.options,
                     method=method, raw=result, supervisor=report)
