"""Unified observability: metrics, tracing, and profiling hooks.

The single telemetry spine of the reproduction.  Every signal the paper's
evaluation is built from — per-kernel MTTKRP timings, ADMM
inner-iteration counts per block, sparsity fractions behind the CSR/CSR-H
switch (Smith et al., ICPP 2017, §IV-V) — flows through one process-wide
:class:`MetricsRegistry`, is timed with :func:`span` context managers,
and is exported as JSON-lines, a human report table, or Prometheus text.

Usage::

    import repro.observability as obs

    handle = obs.configure(enabled=True)   # or REPRO_OBSERVE=1 in the env
    result = repro.fit(tensor, rank=16)    # hot paths record themselves
    print(handle.report())                 # human table
    handle.export_jsonl("metrics.jsonl")   # lossless snapshot
    handle.reset()                         # explicit reset semantics

Observability is **disabled by default** and the disabled fast path is
near-zero overhead (no-op instruments, a shared no-op span) — bounded by
``benchmarks/bench_observability_overhead.py`` in CI.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path

from .export import prometheus_text, read_jsonl, report, write_jsonl
from .hooks import (
    add_hook,
    mttkrp_flops_bytes,
    record_admm_report,
    record_cache_event,
    record_executor_batches,
    record_executor_fallback,
    record_integrity_event,
    record_iteration,
    record_mttkrp_call,
    record_representation,
    record_slab_event,
    record_supervisor_event,
    record_tiling,
    record_tune_decision,
    record_tune_probe,
    record_tune_quarantine,
    remove_hook,
    roofline_seconds,
)
from .registry import (
    ITERATION_BUCKETS,
    SECONDS_BUCKETS,
    MetricsRegistry,
    empty_snapshot,
    render_key,
)
from .state import ENV_VAR, active_registry, is_enabled, set_active_registry
from .tracing import StageClock, Stopwatch, current_span_path, span


class Observability:
    """A handle bundling one registry with its exporters.

    The process-wide handle is reached through :func:`get_observability`
    / :func:`configure`; independent instances can be created for
    isolated measurement (tests do this) and made active with
    :meth:`activate`.
    """

    def __init__(self, enabled: bool = True,
                 registry: MetricsRegistry | None = None):
        self.registry = (registry if registry is not None
                         else MetricsRegistry(enabled=enabled))

    # -- state ----------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def enable(self) -> "Observability":
        self.registry.enabled = True
        return self

    def disable(self) -> "Observability":
        self.registry.enabled = False
        return self

    @contextmanager
    def activate(self):
        """Make this handle's registry the active one within the block."""
        previous = set_active_registry(self.registry)
        try:
            yield self
        finally:
            set_active_registry(previous)

    # -- snapshot / reset ----------------------------------------------
    def snapshot(self) -> dict:
        return self.registry.snapshot()

    def reset(self) -> None:
        self.registry.reset()

    # -- exporters ------------------------------------------------------
    def report(self, title: str = "observability report") -> str:
        return report(self.snapshot(), title=title)

    def export_jsonl(self, path: "str | Path") -> Path:
        return write_jsonl(self.snapshot(), path)

    def prometheus_text(self) -> str:
        return prometheus_text(self.snapshot())


#: The process-wide handle, wrapping the registry instrumented code uses.
_PROCESS = Observability(registry=active_registry())


def get_observability() -> Observability:
    """The process-wide observability handle."""
    _PROCESS.registry = active_registry()
    return _PROCESS


def configure(enabled: bool | None = None) -> Observability:
    """Configure (and return) the process-wide handle.

    ``configure(enabled=True)`` switches recording on,
    ``configure(enabled=False)`` back to the no-op fast path;
    ``configure()`` just returns the handle.
    """
    handle = get_observability()
    if enabled is not None:
        handle.registry.enabled = bool(enabled)
    return handle


__all__ = [
    "Observability",
    "MetricsRegistry",
    "configure",
    "get_observability",
    "active_registry",
    "set_active_registry",
    "is_enabled",
    "span",
    "current_span_path",
    "StageClock",
    "Stopwatch",
    "report",
    "write_jsonl",
    "read_jsonl",
    "prometheus_text",
    "empty_snapshot",
    "render_key",
    "add_hook",
    "remove_hook",
    "record_mttkrp_call",
    "record_cache_event",
    "record_executor_batches",
    "record_executor_fallback",
    "record_integrity_event",
    "record_tiling",
    "record_representation",
    "record_admm_report",
    "record_iteration",
    "record_slab_event",
    "record_supervisor_event",
    "record_tune_decision",
    "record_tune_probe",
    "record_tune_quarantine",
    "mttkrp_flops_bytes",
    "roofline_seconds",
    "SECONDS_BUCKETS",
    "ITERATION_BUCKETS",
    "ENV_VAR",
]
