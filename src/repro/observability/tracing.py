"""Span-based tracing and the always-on stage clocks.

Two timing primitives with different contracts:

* :func:`span` — *observability* timing.  Monotonic
  (``time.perf_counter``), nests through a thread-local stack (each
  ``parallel_for`` worker gets its own stack, so spans opened inside
  worker threads aggregate safely), and lands in the active registry as
  a ``span_seconds`` histogram labeled with the ``/``-joined span path.
  When observability is disabled, ``span()`` returns one shared no-op
  context manager — the near-zero fast path.

* :class:`StageClock` / :class:`Stopwatch` — *trace* timing.  The
  drivers' per-iteration records (``mttkrp_seconds`` etc.) are part of
  the documented trace format and must be populated whether or not
  observability is enabled, so these always measure.  They are the
  substrate ``repro.bench.timers`` and ``repro.core.trace`` consume.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict

from .state import active_registry, is_enabled

_LOCAL = threading.local()


def _stack() -> list:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


class _NullSpan:
    """Shared no-op span for disabled mode."""

    __slots__ = ()
    #: Mirrors :attr:`_Span.seconds` so callers can read it either way.
    seconds = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("name", "tags", "path", "seconds", "_start")

    def __init__(self, name: str, tags: dict):
        self.name = name
        self.tags = tags
        self.path = name
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "_Span":
        stack = _stack()
        self.path = (stack[-1].path + "/" + self.name) if stack else self.name
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        registry = active_registry()
        if registry.enabled:
            registry.histogram("span_seconds", span=self.path,
                               **self.tags).observe(self.seconds)


def span(name: str, **tags: object):
    """Open a timing span; a context manager.

    >>> with span("mttkrp", mode=1):
    ...     pass

    Nesting composes the registry label: a ``span("solve")`` opened
    inside ``span("iteration")`` lands under ``iteration/solve``.
    Returns a shared no-op when observability is disabled.
    """
    if not is_enabled():
        return NULL_SPAN
    return _Span(name, tags)


def current_span_path() -> str | None:
    """The ``/``-joined path of the innermost open span on this thread."""
    stack = _stack()
    return stack[-1].path if stack else None


# ----------------------------------------------------------------------
# Always-on clocks (trace substrate)
# ----------------------------------------------------------------------
class Stopwatch:
    """A context-manager stopwatch accumulating into :attr:`seconds`.

    >>> with Stopwatch() as t:
    ...     pass
    >>> t.seconds >= 0.0
    True
    """

    __slots__ = ("seconds", "_start")

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.seconds += time.perf_counter() - self._start
        self._start = None


class StageClock:
    """Accumulates wall-clock per named stage (always on).

    The drivers run every outer iteration under one of these —
    ``clock.stage("mttkrp")`` / ``"admm"`` / ``"other"`` — and
    :meth:`repro.core.trace.OuterIterationRecord.from_stages` turns the
    totals into the per-iteration trace record.  When observability is
    enabled each stage exit additionally lands in the active registry
    (``stage_seconds`` histogram keyed by stage name), so the trace and
    the metrics are two views of the same measurement.

    >>> clock = StageClock()
    >>> with clock.stage("mttkrp"):
    ...     pass
    >>> set(clock.totals()) == {"mttkrp"}
    True
    """

    __slots__ = ("_totals", "scope")

    def __init__(self, scope: str | None = None) -> None:
        self._totals: dict[str, float] = defaultdict(float)
        #: Optional label distinguishing which driver is reporting
        #: (``"aoadmm"``, ``"als"``, ...) in the shared registry.
        self.scope = scope

    class _Stage:
        __slots__ = ("_owner", "_name", "_start")

        def __init__(self, owner: "StageClock", name: str) -> None:
            self._owner = owner
            self._name = name
            self._start = 0.0

        def __enter__(self) -> "StageClock._Stage":
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc) -> None:
            elapsed = time.perf_counter() - self._start
            owner = self._owner
            owner._totals[self._name] += elapsed
            registry = active_registry()
            if registry.enabled:
                labels = ({"stage": self._name, "scope": owner.scope}
                          if owner.scope else {"stage": self._name})
                registry.histogram("stage_seconds", **labels).observe(elapsed)

    def stage(self, name: str) -> "StageClock._Stage":
        """Context manager accumulating into *name*."""
        return StageClock._Stage(self, name)

    def seconds(self, name: str) -> float:
        """Total accumulated for one stage (0.0 if never entered)."""
        return self._totals.get(name, 0.0)

    def totals(self) -> dict[str, float]:
        """Seconds per stage."""
        return dict(self._totals)

    def fractions(self) -> dict[str, float]:
        """Normalized per-stage shares."""
        total = sum(self._totals.values())
        if total <= 0.0:
            return {k: 0.0 for k in self._totals}
        return {k: v / total for k, v in self._totals.items()}

    def reset(self) -> None:
        """Zero every stage (for per-iteration reuse)."""
        self._totals.clear()
