"""The process-wide observability state.

A single mutable slot holding the active :class:`MetricsRegistry`.
Instrumented code reads it through :func:`active_registry` /
:func:`is_enabled`; the :class:`~repro.observability.Observability`
handle swaps it.  Kept in its own module so ``tracing`` and ``hooks``
can share it without importing the package ``__init__`` (no cycles).
"""

from __future__ import annotations

import os

from .registry import MetricsRegistry

#: Environment variable that enables observability at import time
#: (``REPRO_OBSERVE=1``); anything false-y ("", "0") leaves it disabled.
ENV_VAR = "REPRO_OBSERVE"


def _env_enabled() -> bool:
    return os.environ.get(ENV_VAR, "") not in ("", "0", "false", "no")


class _State:
    __slots__ = ("registry",)

    def __init__(self) -> None:
        self.registry = MetricsRegistry(enabled=_env_enabled())


_STATE = _State()


def active_registry() -> MetricsRegistry:
    """The registry instrumented code currently reports into."""
    return _STATE.registry


def set_active_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the active registry; returns the previous one."""
    previous = _STATE.registry
    _STATE.registry = registry
    return previous


def is_enabled() -> bool:
    """Cheap hot-path check: is observability currently recording?"""
    return _STATE.registry.enabled
