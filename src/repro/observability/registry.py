"""The process-wide metrics registry.

One coherent home for every measurement the reproduction makes — the
per-kernel timings, ADMM inner-iteration counts, and representation
switches that back the paper's Tables I-II and Figures 3-6 — replacing
the ad-hoc per-call stats dicts that used to live in each module.

Three instrument kinds, with explicit snapshot/reset semantics:

* :class:`Counter` — monotonically increasing event counts
  (``mttkrp_calls``, ``mttkrp_cache_hits``);
* :class:`Gauge` — last-written values (``slab_imbalance``,
  ``csrh_dense_col_ratio``);
* :class:`Histogram` — bucketed distributions with count/sum/min/max
  (``admm_inner_iterations``, span durations).

Instruments are keyed by ``(name, labels)``; labels are small
``str -> str|int|float`` dicts (``mode=1``).  All mutation goes through
one lock — the hot paths only touch the registry when observability is
enabled, and a single uncontended lock acquisition is far below the cost
of the kernels being measured.

Disabled mode: :meth:`MetricsRegistry.counter` (etc.) return a shared
no-op instrument, so instrumented code pays one attribute load and one
predictable branch — the no-op fast path the overhead benchmark bounds.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Mapping, Sequence

LabelValue = "str | int | float | bool"

#: Default histogram buckets for durations in seconds (geometric,
#: microseconds to tens of seconds).
SECONDS_BUCKETS: tuple[float, ...] = tuple(
    10.0 ** e for e in range(-6, 2)) + (30.0, 120.0)

#: Default buckets for small iteration counts (ADMM inner loops cap at
#: 50 by default; Fibonacci-ish edges keep the tail resolved).
ITERATION_BUCKETS: tuple[float, ...] = (1, 2, 3, 5, 8, 13, 21, 34, 50, 100)


def render_key(name: str, labels: Mapping[str, object]) -> str:
    """Canonical ``name{k=v,...}`` key (labels sorted; stable across runs)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class _NullInstrument:
    """Shared do-nothing instrument returned while disabled."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class Histogram:
    """Bucketed distribution with count / sum / min / max.

    ``buckets`` are upper bounds of cumulative-style bins; an implicit
    ``+Inf`` bucket catches the overflow (Prometheus convention).
    """

    __slots__ = ("_lock", "buckets", "counts", "count", "total",
                 "minimum", "maximum")

    def __init__(self, lock: threading.Lock,
                 buckets: Sequence[float] = SECONDS_BUCKETS):
        self._lock = lock
        self.buckets = tuple(float(b) for b in buckets)
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be sorted")
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.counts[bisect.bisect_left(self.buckets, value)] += 1
            self.count += 1
            self.total += value
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Process-wide counters / gauges / histograms with snapshot semantics.

    >>> reg = MetricsRegistry()
    >>> reg.counter("mttkrp_calls", mode=0).inc()
    >>> reg.snapshot()["counters"]["mttkrp_calls{mode=0}"]
    1
    >>> reg.reset()
    >>> reg.snapshot()["counters"]
    {}
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: (name, labels) per key, for exporters that need them apart.
        self._meta: dict[str, tuple[str, dict[str, object]]] = {}

    # ------------------------------------------------------------------
    # Instrument accessors (create on first use; no-op while disabled)
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: object):
        if not self.enabled:
            return NULL_INSTRUMENT
        key = render_key(name, labels)
        inst = self._counters.get(key)
        if inst is None:
            with self._lock:
                inst = self._counters.setdefault(key, Counter(self._lock))
                self._meta.setdefault(key, (name, dict(labels)))
        return inst

    def gauge(self, name: str, **labels: object):
        if not self.enabled:
            return NULL_INSTRUMENT
        key = render_key(name, labels)
        inst = self._gauges.get(key)
        if inst is None:
            with self._lock:
                inst = self._gauges.setdefault(key, Gauge(self._lock))
                self._meta.setdefault(key, (name, dict(labels)))
        return inst

    def histogram(self, name: str,
                  buckets: Sequence[float] | None = None,
                  **labels: object):
        if not self.enabled:
            return NULL_INSTRUMENT
        key = render_key(name, labels)
        inst = self._histograms.get(key)
        if inst is None:
            with self._lock:
                inst = self._histograms.setdefault(
                    key, Histogram(self._lock,
                                   buckets if buckets is not None
                                   else SECONDS_BUCKETS))
                self._meta.setdefault(key, (name, dict(labels)))
        return inst

    # ------------------------------------------------------------------
    # Snapshot / reset
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A plain-data, JSON-serializable view of every instrument.

        The snapshot is decoupled from the registry: instruments keep
        accumulating afterwards and the snapshot does not change.
        """
        with self._lock:
            return {
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {
                    k: {
                        "count": h.count,
                        "sum": h.total,
                        "min": h.minimum if h.count else None,
                        "max": h.maximum if h.count else None,
                        "buckets": list(h.buckets),
                        "counts": list(h.counts),
                    }
                    for k, h in self._histograms.items()
                },
            }

    def labels_of(self, key: str) -> tuple[str, dict[str, object]]:
        """``(name, labels)`` of a rendered instrument key."""
        return self._meta.get(key, (key, {}))

    def reset(self) -> None:
        """Drop every instrument (counts return to zero on next use)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._meta.clear()


def empty_snapshot() -> dict:
    """The snapshot of a fresh (or disabled) registry."""
    return {"counters": {}, "gauges": {}, "histograms": {}}
