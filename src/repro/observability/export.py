"""Exporters for metrics snapshots.

Three formats, all pure functions of a
:meth:`~repro.observability.registry.MetricsRegistry.snapshot` dict:

* **JSON-lines** — one instrument per line, lossless
  (:func:`write_jsonl` / :func:`read_jsonl` round-trip to the identical
  snapshot; tested);
* **human report table** — rendered through
  :func:`repro.bench.tables.format_table`, the same formatter the
  paper-style benchmark tables use;
* **Prometheus text exposition** — opt-in scrape-compatible dump
  (counters, gauges, and cumulative ``_bucket``/``_sum``/``_count``
  histogram series).
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path

_KEY_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")


def parse_key(key: str) -> tuple[str, dict[str, str]]:
    """Split a rendered ``name{k=v,...}`` key back into (name, labels)."""
    match = _KEY_RE.match(key)
    if match is None:  # pragma: no cover - render_key never produces this
        return key, {}
    name = match.group("name")
    raw = match.group("labels")
    if not raw:
        return name, {}
    labels = dict(part.split("=", 1) for part in raw.split(","))
    return name, labels


# ----------------------------------------------------------------------
# JSON-lines
# ----------------------------------------------------------------------
def snapshot_lines(snapshot: dict) -> list[str]:
    """Serialize a snapshot as JSONL strings (one instrument per line)."""
    lines = []
    for kind in ("counters", "gauges", "histograms"):
        for key, value in snapshot.get(kind, {}).items():
            name, labels = parse_key(key)
            entry: dict = {"kind": kind[:-1], "name": name, "labels": labels}
            if kind == "histograms":
                entry.update(value)
            else:
                entry["value"] = value
            lines.append(json.dumps(entry, sort_keys=True))
    return lines


def write_jsonl(snapshot: dict, path: "str | Path") -> Path:
    """Write a snapshot to *path* as JSON-lines; returns the path."""
    path = Path(path)
    path.write_text("\n".join(snapshot_lines(snapshot)) + "\n")
    return path


def read_jsonl(path: "str | Path") -> dict:
    """Parse a JSONL export back into the identical snapshot dict."""
    from .registry import render_key

    snapshot: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        entry = json.loads(line)
        key = render_key(entry["name"], entry["labels"])
        kind = entry["kind"] + "s"
        if kind == "histograms":
            snapshot[kind][key] = {
                "count": entry["count"], "sum": entry["sum"],
                "min": entry["min"], "max": entry["max"],
                "buckets": entry["buckets"], "counts": entry["counts"],
            }
        else:
            snapshot[kind][key] = entry["value"]
    return snapshot


# ----------------------------------------------------------------------
# Human report
# ----------------------------------------------------------------------
def report(snapshot: dict, title: str = "observability report") -> str:
    """Render a snapshot as aligned ASCII tables (counters, gauges,
    histograms with count/mean/min/max)."""
    from ..bench.tables import format_table  # lazy: avoids import cycle

    sections: list[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        rows = [{"counter": k, "value": v}
                for k, v in sorted(counters.items())]
        sections.append(format_table(rows, title=f"{title} — counters"))
    gauges = snapshot.get("gauges", {})
    if gauges:
        rows = [{"gauge": k, "value": v} for k, v in sorted(gauges.items())]
        sections.append(format_table(rows, title=f"{title} — gauges"))
    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = []
        for key, h in sorted(histograms.items()):
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            rows.append({"histogram": key, "count": h["count"],
                         "mean": mean,
                         "min": h["min"] if h["min"] is not None else "",
                         "max": h["max"] if h["max"] is not None else "",
                         "sum": h["sum"]})
        sections.append(format_table(rows, title=f"{title} — histograms"))
    if not sections:
        return f"{title}: (no metrics recorded)"
    return "\n\n".join(sections)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _prom_name(name: str) -> str:
    return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def prometheus_text(snapshot: dict) -> str:
    """Prometheus text-format dump of a snapshot (opt-in exporter)."""
    out: list[str] = []
    for key, value in sorted(snapshot.get("counters", {}).items()):
        name, labels = parse_key(key)
        pname = _prom_name(name) + "_total"
        out.append(f"# TYPE {pname} counter")
        out.append(f"{pname}{_prom_labels(labels)} {value}")
    for key, value in sorted(snapshot.get("gauges", {}).items()):
        name, labels = parse_key(key)
        pname = _prom_name(name)
        out.append(f"# TYPE {pname} gauge")
        out.append(f"{pname}{_prom_labels(labels)} {value}")
    for key, h in sorted(snapshot.get("histograms", {}).items()):
        name, labels = parse_key(key)
        pname = _prom_name(name)
        out.append(f"# TYPE {pname} histogram")
        cumulative = 0
        for bound, count in zip(h["buckets"], h["counts"]):
            cumulative += count
            lbl = dict(labels)
            lbl["le"] = repr(float(bound)) if not math.isinf(bound) else "+Inf"
            out.append(f"{pname}_bucket{_prom_labels(lbl)} {cumulative}")
        lbl = dict(labels)
        lbl["le"] = "+Inf"
        out.append(f"{pname}_bucket{_prom_labels(lbl)} {h['count']}")
        out.append(f"{pname}_sum{_prom_labels(labels)} {h['sum']}")
        out.append(f"{pname}_count{_prom_labels(labels)} {h['count']}")
    return "\n".join(out) + ("\n" if out else "")
