"""Profiling hooks: the instrumentation points the runtime calls into.

Each ``record_*`` function is a cheap early-return no-op while
observability is disabled; when enabled it turns one runtime event —
an MTTKRP call, an inner ADMM solve, a factor-representation switch, a
finished outer iteration — into registry counters/gauges/histograms,
and forwards the raw payload to any registered pluggable hooks.

The MTTKRP hook also derives analytic flop/byte estimates and the
single-core roofline time from :mod:`repro.machine.spec`, so measured
kernel seconds can be read against what the machine model says the
hardware allows (the ROADMAP's "as fast as the hardware allows" check).
"""

from __future__ import annotations

from typing import Callable

from ..machine.spec import PAPER_MACHINE, MachineSpec
from .registry import ITERATION_BUCKETS
from .state import active_registry, is_enabled

#: Pluggable hooks: ``hook(event: str, payload: dict)`` called on every
#: recorded event while observability is enabled.
_HOOKS: list[Callable[[str, dict], None]] = []


def add_hook(hook: Callable[[str, dict], None]) -> None:
    """Register a pluggable profiling hook (called as ``hook(event, payload)``)."""
    _HOOKS.append(hook)


def remove_hook(hook: Callable[[str, dict], None]) -> None:
    """Unregister a previously added hook (no error if absent)."""
    try:
        _HOOKS.remove(hook)
    except ValueError:
        pass


def _emit(event: str, payload: dict) -> None:
    for hook in _HOOKS:
        hook(event, payload)


# ----------------------------------------------------------------------
# Kernel-level estimates (machine/spec.py)
# ----------------------------------------------------------------------
def mttkrp_flops_bytes(tensor_nnz: int, gathered_nnz: int,
                       rank: int) -> tuple[float, float]:
    """Analytic (flops, DRAM bytes) estimate of one MTTKRP call.

    Mirrors :func:`repro.machine.kernels.mttkrp_kernel_cost` at summary
    granularity: ~3 flops per gathered factor entry (multiply into the
    running Hadamard product plus the fiber/slice accumulations), and
    read traffic of the tensor's values+indices plus the gathered factor
    rows.  ``gathered_nnz`` is the *stored* entries the leaf gather
    touches — for sparse factor representations it is what shrinks.
    """
    flops = 3.0 * float(gathered_nnz)
    bytes_ = 12.0 * float(tensor_nnz) + 8.0 * float(gathered_nnz) \
        + 8.0 * float(tensor_nnz) / max(float(rank), 1.0)
    return flops, bytes_


def roofline_seconds(flops: float, dram_bytes: float,
                     machine: MachineSpec = PAPER_MACHINE,
                     threads: int = 1) -> float:
    """Single-socket roofline lower bound for an estimated kernel."""
    compute = flops / machine.flops(threads, efficiency=0.5)
    memory = dram_bytes / machine.bandwidth(threads, "read")
    return max(compute, memory)


# ----------------------------------------------------------------------
# Instrumentation points
# ----------------------------------------------------------------------
def record_mttkrp_call(stats, rank: int | None = None) -> None:
    """One engine/dispatch MTTKRP call (an ``MTTKRPCallStats``)."""
    if not is_enabled():
        return
    reg = active_registry()
    mode = stats.mode
    reg.counter("mttkrp_calls", mode=mode,
                representation=stats.representation).inc()
    reg.histogram("mttkrp_seconds", mode=mode).observe(stats.seconds)
    reg.counter("mttkrp_gathered_nnz", mode=mode).inc(stats.gathered_nnz)
    if stats.bytes_allocated:
        reg.counter("mttkrp_workspace_bytes_allocated",
                    mode=mode).inc(stats.bytes_allocated)
    if rank is not None:
        flops, bytes_ = mttkrp_flops_bytes(stats.tensor_nnz,
                                           stats.gathered_nnz, rank)
        reg.counter("mttkrp_est_flops", mode=mode).inc(int(flops))
        reg.counter("mttkrp_est_bytes", mode=mode).inc(int(bytes_))
        floor = roofline_seconds(flops, bytes_)
        if stats.seconds > 0.0:
            reg.gauge("mttkrp_roofline_fraction",
                      mode=mode).set(floor / stats.seconds)
    _emit("mttkrp", {"stats": stats, "rank": rank})


def record_executor_batches(executor: str, kind: str,
                            batch_stats: list) -> None:
    """Per-worker batch stats of one offloaded MTTKRP call.

    Workers cannot write into the parent's registry (separate
    processes), so they measure locally — slab count, non-zeros,
    wall-clock seconds, pid — and return the numbers with the batch
    result; the parent merges them here, next to the call-level
    ``mttkrp`` stats.  The imbalance gauge (slowest batch over mean) is
    the measured analogue of the machine model's slab-imbalance
    estimate.
    """
    if not is_enabled() or not batch_stats:
        return
    reg = active_registry()
    seconds = [float(s["seconds"]) for s in batch_stats]
    for s in batch_stats:
        reg.histogram("mttkrp_worker_seconds",
                      executor=executor).observe(float(s["seconds"]))
        reg.counter("mttkrp_worker_slabs",
                    executor=executor).inc(int(s["slabs"]))
        reg.counter("mttkrp_worker_nnz",
                    executor=executor).inc(int(s["nnz"]))
    reg.counter("mttkrp_offloaded_batches", executor=executor,
                kind=kind).inc(len(batch_stats))
    mean = sum(seconds) / len(seconds)
    if mean > 0.0:
        reg.gauge("mttkrp_worker_imbalance",
                  executor=executor).set(max(seconds) / mean)
    _emit("executor_batches", {"executor": executor, "kind": kind,
                               "stats": batch_stats})


def record_executor_fallback(from_executor: str, to_executor: str,
                             detail: str = "") -> None:
    """A broken process pool forced a fall-back to another executor."""
    if not is_enabled():
        return
    active_registry().counter("executor_fallbacks",
                              source=from_executor,
                              target=to_executor).inc()
    _emit("executor_fallback", {"from": from_executor,
                                "to": to_executor, "detail": detail})


def record_supervisor_event(kind: str, attempt: int,
                            detail: str = "") -> None:
    """One recovery action of the fit supervisor.

    ``kind`` is the supervisor's event vocabulary — ``"stall"``,
    ``"retry"``, ``"degrade"``, ``"resume"``, ``"restart"``,
    ``"preempted"``, ``"checkpoint_quarantined"`` — so dashboards can
    tell a run that merely *finished* from one that survived three pool
    losses and a corrupted checkpoint along the way.
    """
    if not is_enabled():
        return
    reg = active_registry()
    reg.counter("supervisor_events", kind=kind).inc()
    reg.gauge("supervisor_attempt").set(attempt)
    _emit("supervisor", {"kind": kind, "attempt": attempt,
                         "detail": detail})


def record_cache_event(cache: str, hit: bool) -> None:
    """A memoization lookup (e.g. the ``mttkrp(method="csf")`` tree memo).

    Cached calls used to vanish from the stats stream entirely; routing
    them here keeps every invocation visible (``*_cache_hits`` /
    ``*_cache_misses`` counters).
    """
    if not is_enabled():
        return
    reg = active_registry()
    reg.counter(f"{cache}_cache_hits" if hit
                else f"{cache}_cache_misses").inc()
    _emit("cache", {"cache": cache, "hit": hit})


def record_tiling(tiling, root_mode: int) -> None:
    """A freshly built slab tiling: slab count and nnz imbalance."""
    if not is_enabled():
        return
    reg = active_registry()
    reg.gauge("slab_count", mode=root_mode).set(tiling.slab_count)
    nnz = [slab.nnz for slab in tiling.slabs]
    if nnz:
        mean = sum(nnz) / len(nnz)
        imbalance = (max(nnz) / mean) if mean > 0 else 1.0
        reg.gauge("slab_imbalance", mode=root_mode).set(imbalance)
    _emit("tiling", {"tiling": tiling, "root_mode": root_mode})


def record_representation(mode: int, name: str, rep: object = None) -> None:
    """A factor-representation decision (Section IV-C dynamic switching)."""
    if not is_enabled():
        return
    reg = active_registry()
    reg.counter("factor_repr_updates", mode=mode, representation=name).inc()
    n_dense = getattr(rep, "n_dense_cols", None)
    if name == "csr-h" and n_dense is not None:
        ncols = rep.shape[1]
        reg.gauge("csrh_dense_col_ratio",
                  mode=mode).set(n_dense / ncols if ncols else 0.0)
    _emit("representation", {"mode": mode, "name": name, "rep": rep})


def record_admm_report(report, mode: int, blocked: bool) -> None:
    """One inner ADMM solve (blocked or full-matrix) for one mode.

    Blocked reports contribute one histogram observation *per block* —
    the per-block inner-iteration distribution is the paper's
    non-uniform-convergence evidence (Section III-B / IV-B).
    """
    if not is_enabled():
        return
    reg = active_registry()
    hist = reg.histogram("admm_inner_iterations", buckets=ITERATION_BUCKETS,
                         mode=mode)
    block_iters = getattr(report, "block_iterations", None)
    if blocked and block_iters is not None:
        for iters in block_iters:
            hist.observe(iters)
        reg.counter("admm_block_solves", mode=mode).inc(len(block_iters))
    else:
        hist.observe(report.iterations)
    reg.counter("admm_updates", mode=mode).inc()
    reg.gauge("admm_rho", mode=mode).set(report.rho)
    if report.jitter_added:
        reg.counter("cholesky_jitter_events", mode=mode).inc()
    _emit("admm", {"report": report, "mode": mode, "blocked": blocked})


def record_slab_event(kind: str, mode: int, slab: int, nbytes: int,
                      resident_bytes: int, resident_count: int) -> None:
    """One residency-set transition of the out-of-core slab cache.

    ``kind`` is the cache's event vocabulary — ``"load"`` (slab read
    from disk into the residency set), ``"hit"`` (already resident),
    ``"evict"`` (dropped to fit ``max_bytes_in_core``), ``"prefetch"``
    (read issued ahead of consumption through the executor).  The
    gauges track the residency set *after* the transition, so a
    dashboard shows the byte budget actually being honoured.
    """
    if not is_enabled():
        return
    reg = active_registry()
    if kind == "load":
        reg.counter("slab_loads", mode=mode).inc()
        reg.counter("slab_bytes_read", mode=mode).inc(int(nbytes))
    elif kind == "hit":
        reg.counter("slab_hits", mode=mode).inc()
    elif kind == "evict":
        reg.counter("slab_evictions", mode=mode).inc()
    elif kind == "prefetch":
        reg.counter("slab_prefetches", mode=mode).inc()
    reg.gauge("slab_resident_bytes").set(int(resident_bytes))
    reg.gauge("slab_resident_count").set(int(resident_count))
    _emit("slab", {"kind": kind, "mode": mode, "slab": slab,
                   "nbytes": nbytes, "resident_bytes": resident_bytes,
                   "resident_count": resident_count})


def record_tune_probe(mode: int, backend: str, probe_nnz: int,
                      seconds: float, scaled_seconds: float) -> None:
    """One timed calibration probe of the MTTKRP backend autotuner.

    ``seconds`` is the raw best-of-N prefix timing; ``scaled_seconds``
    the per-nnz extrapolation to the full tree the selector compares.
    """
    if not is_enabled():
        return
    reg = active_registry()
    reg.counter("tune_probes", mode=mode, backend=backend).inc()
    reg.histogram("tune_probe_seconds", mode=mode,
                  backend=backend).observe(seconds)
    reg.gauge("tune_probe_scaled_seconds", mode=mode,
              backend=backend).set(scaled_seconds)
    _emit("tune_probe", {"mode": mode, "backend": backend,
                         "probe_nnz": probe_nnz, "seconds": seconds,
                         "scaled_seconds": scaled_seconds})


def record_tune_decision(decision) -> None:
    """One per-mode backend selection (a ``ModeDecision``)."""
    if not is_enabled():
        return
    reg = active_registry()
    reg.counter("tune_decisions", mode=decision.mode,
                backend=decision.backend, source=decision.source).inc()
    reg.gauge("tune_slab_nnz_target",
              mode=decision.mode).set(decision.slab_nnz_target)
    _emit("tune_decision", {"decision": decision})


def record_integrity_event(kind: str, artifact: str = "",
                           nbytes: int = 0, detail: str = "") -> None:
    """One storage-integrity event (:mod:`repro.integrity`).

    ``kind`` is the integrity vocabulary — ``"scrub"`` (bytes verified
    against a manifest; ``nbytes`` counts them), ``"mismatch"`` (a
    checksum/size verification failed), ``"quarantine"`` (a corrupt
    artifact was renamed aside as ``.corrupt``), ``"rebuild"`` (a
    quarantined slab was regenerated from its source tensor),
    ``"repair"`` (fsck resolved a finding).  ``artifact`` labels the
    artifact class (``"slab"``, ``"checkpoint"``, ``"tuning-cache"``,
    ...), so dashboards can tell slab bit-rot from checkpoint bit-rot.
    The supervisor listens to the pluggable-hook mirror of these events
    to surface quarantines/rebuilds as GuardEvents in the run's trace.
    """
    if not is_enabled():
        return
    reg = active_registry()
    if kind == "scrub":
        reg.counter("integrity_bytes_scrubbed", artifact=artifact
                    ).inc(int(nbytes))
    elif kind == "mismatch":
        reg.counter("integrity_mismatches", artifact=artifact).inc()
    elif kind == "quarantine":
        reg.counter("integrity_quarantines", artifact=artifact).inc()
    elif kind == "rebuild":
        reg.counter("integrity_rebuilds", artifact=artifact).inc()
    elif kind == "repair":
        reg.counter("integrity_repairs", artifact=artifact).inc()
    _emit("integrity", {"kind": kind, "artifact": artifact,
                        "nbytes": int(nbytes), "detail": detail})


def record_tune_quarantine(kind: str) -> None:
    """A corrupt tuning-cache file or entry was quarantined."""
    if not is_enabled():
        return
    active_registry().counter("tune_cache_quarantined", kind=kind).inc()
    _emit("tune_quarantine", {"kind": kind})


def record_iteration(record, scope: str = "aoadmm") -> None:
    """A completed outer iteration (an ``OuterIterationRecord``)."""
    if not is_enabled():
        return
    reg = active_registry()
    reg.counter("outer_iterations", scope=scope).inc()
    reg.histogram("iteration_seconds",
                  scope=scope).observe(record.total_seconds)
    reg.gauge("relative_error", scope=scope).set(record.relative_error)
    for mode, inner in enumerate(record.inner_iterations):
        reg.histogram("inner_iterations_per_mode",
                      buckets=ITERATION_BUCKETS, scope=scope,
                      mode=mode).observe(inner)
    if record.guard_events:
        reg.counter("guard_events", scope=scope).inc(len(record.guard_events))
    _emit("iteration", {"record": record, "scope": scope})
