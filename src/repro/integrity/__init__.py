"""Storage integrity: checksummed artifacts, verified reads, fsck.

The platform persists load-bearing state in three places — memmapped
slab files under a :class:`~repro.tensor.store.ShardedTensorStore`,
versioned ``.npz`` checkpoints, and the autotuner's
:class:`~repro.kernels.autotune.TuningCache` — and a fit warm-started
from any of them is only as trustworthy as those bytes.  This package
makes every one of them end-to-end verifiable:

* :mod:`repro.integrity.checksum` — the chunked CRC-32 core with a
  canonical manifest format (:class:`ChecksumManifest`) embedded in
  ``meta.json`` slab records and state-file metadata, plus
  :class:`IntegrityError`, the one loud failure every corruption path
  funnels into;
* **verified reads** — slab checksums are verified on first touch, and
  on *every* read when ``REPRO_VERIFY_READS=1``
  (:func:`verify_reads_enabled`); corrupt slabs are quarantined to
  ``<file>.corrupt`` and transparently rebuilt when the store still
  knows its source tensor;
* :mod:`repro.integrity.fsck` — the ``python -m repro fsck`` scrubber
  that walks stores, checkpoint directories, and tuning caches,
  reporting per-artifact verdicts and (with ``repair=True``)
  quarantining, rebuilding, and cleaning up partial shards.

Detection counters (``integrity_bytes_scrubbed`` /
``integrity_mismatches`` / ``integrity_quarantines`` /
``integrity_rebuilds``) flow through the observability registry; the
contract — enforced by the differential harness's storage-fault sweep —
is that under any injected slab corruption a fit either completes
bit-identical to the unfaulted run (after quarantine + rebuild) or
fails loudly with :class:`IntegrityError`.  No silent wrong answers.
"""

from __future__ import annotations

import os
import warnings

from .checksum import (
    ALGORITHM,
    CHUNK_BYTES,
    ChecksumManifest,
    IntegrityError,
    StreamingChecksummer,
    checksum_bytes,
    checksum_file,
    verify_file,
    verify_manifest,
)

#: Environment variable switching slab reads to verify-every-read.
VERIFY_ENV_VAR = "REPRO_VERIFY_READS"

_TRUE_VALUES = frozenset({"1", "true", "yes", "on"})
_FALSE_VALUES = frozenset({"", "0", "false", "no", "off"})

#: Malformed ``REPRO_VERIFY_READS`` values already warned about (the
#: warn-once-per-value contract of ``REPRO_EXECUTOR`` et al.).
_WARNED_ENV_VALUES: set[str] = set()


def verify_reads_enabled() -> bool:
    """Whether every slab read must re-verify its checksum.

    Default (unset/falsey): slabs are verified on **first touch** per
    store handle only.  ``REPRO_VERIFY_READS=1`` verifies on every
    read.  An unrecognized value warns once per value and — because
    verification is always safe, only slower — enables verification.
    """
    raw = os.environ.get(VERIFY_ENV_VAR, "")
    lowered = raw.strip().lower()
    if lowered in _FALSE_VALUES:
        return False
    if lowered in _TRUE_VALUES:
        return True
    if raw not in _WARNED_ENV_VALUES:
        _WARNED_ENV_VALUES.add(raw)
        warnings.warn(
            f"unrecognized {VERIFY_ENV_VAR}={raw!r}; treating it as "
            "enabled (verification is safe) — use 1/0 to silence this",
            RuntimeWarning, stacklevel=2)
    return True


__all__ = [
    "ALGORITHM",
    "CHUNK_BYTES",
    "ChecksumManifest",
    "IntegrityError",
    "StreamingChecksummer",
    "checksum_bytes",
    "checksum_file",
    "verify_file",
    "verify_manifest",
    "VERIFY_ENV_VAR",
    "verify_reads_enabled",
]
