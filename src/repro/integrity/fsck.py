"""The ``repro fsck`` scrubber: walk, verify, and repair persisted state.

One engine audits every artifact class the platform persists:

* **sharded tensor stores** — every slab is checksum-scrubbed against
  the manifest (:meth:`ShardedTensorStore.slab_problem`, read-only);
  stale ``.staging-*`` directories from a crashed shard are flagged;
  with ``repair=True`` a damaged slab is quarantined and — when the
  original tensor is supplied via *source* — deterministically rebuilt
  in place;
* **checkpoint files / directories** — each ``.npz`` is loaded with
  payload-checksum verification; with ``repair=True`` a rotted file is
  quarantined to ``.corrupt`` so the resume fallback walks past it;
* **tuning caches** — each entry is validated by the same rules the
  autotuner's read path applies; with ``repair=True`` invalid entries
  are dropped (and an unparseable file quarantined).

Detection is **read-only**: a plain ``fsck`` run never mutates anything,
so it is safe against a store a fit is concurrently reading.  Verdicts
are per artifact — ``clean`` / ``corrupt`` / ``repaired`` /
``quarantined`` / ``skipped`` — and :attr:`FsckReport.ok` is ``True``
exactly when no unrepaired corruption remains, which is what the CLI
turns into its exit code.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..observability import record_integrity_event
from .checksum import IntegrityError

#: Verdicts an :class:`ArtifactReport` can carry.
VERDICTS = ("clean", "corrupt", "repaired", "quarantined", "skipped")


@dataclass
class ArtifactReport:
    """One scrubbed artifact and what happened to it."""

    path: str
    #: ``slab`` / ``staging`` / ``checkpoint`` / ``tuning-cache`` /
    #: ``tuning-entry`` / ``quarantine`` / ``other``.
    kind: str
    verdict: str
    detail: str = ""


@dataclass
class FsckReport:
    """Everything one fsck run looked at, with per-artifact verdicts."""

    root: str
    repair: bool = False
    artifacts: list[ArtifactReport] = field(default_factory=list)

    def add(self, path: "str | Path", kind: str, verdict: str,
            detail: str = "") -> ArtifactReport:
        report = ArtifactReport(str(path), kind, verdict, detail)
        self.artifacts.append(report)
        return report

    def merge(self, other: "FsckReport") -> None:
        self.artifacts.extend(other.artifacts)

    def count(self, verdict: str) -> int:
        return sum(1 for a in self.artifacts if a.verdict == verdict)

    @property
    def ok(self) -> bool:
        """No unrepaired corruption remains."""
        return self.count("corrupt") == 0

    def summary(self) -> str:
        lines = [f"fsck {self.root}"
                 f" ({'repair' if self.repair else 'check only'})"]
        for a in self.artifacts:
            line = f"  [{a.verdict:>11}] {a.kind:<13} {a.path}"
            if a.detail:
                line += f"  — {a.detail}"
            lines.append(line)
        counts = ", ".join(f"{self.count(v)} {v}" for v in VERDICTS
                           if self.count(v))
        lines.append(f"  {len(self.artifacts)} artifact(s): "
                     f"{counts or 'nothing found'}")
        lines.append("  OK" if self.ok else "  CORRUPTION REMAINS")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({
            "root": self.root,
            "repair": self.repair,
            "ok": self.ok,
            "counts": {v: self.count(v) for v in VERDICTS},
            "artifacts": [asdict(a) for a in self.artifacts],
        }, indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# Per-class scrubbers
# ----------------------------------------------------------------------

def fsck_store(path: "str | Path", repair: bool = False,
               source=None) -> FsckReport:
    """Scrub one sharded tensor store directory."""
    from ..tensor.store import META_FILE, STAGING_PREFIX, ShardedTensorStore
    path = Path(path)
    report = FsckReport(root=str(path), repair=repair)
    try:
        store = ShardedTensorStore.open(path)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the scrub
        report.add(path / META_FILE, "store-meta", "corrupt",
                   f"{type(exc).__name__}: {exc}")
        return report
    if source is not None:
        store.attach_source(source)
    for mode in range(store.nmodes):
        for index in range(store.slab_count(mode)):
            rel = store.slab_meta(mode, index)["file"]
            problem = store.slab_problem(mode, index, deep=True)
            if problem is None:
                report.add(path / rel, "slab", "clean")
                continue
            record_integrity_event("mismatch", artifact=rel,
                                   detail=problem)
            if not repair:
                report.add(path / rel, "slab", "corrupt", problem)
                continue
            store.quarantine_slab(mode, index, problem)
            if store.has_source():
                store.rebuild_slab(mode, index)
                report.add(path / rel, "slab", "repaired",
                           f"{problem}; rebuilt from source")
            else:
                report.add(path / rel, "slab", "corrupt",
                           f"{problem}; quarantined, but no source to "
                           f"rebuild from (pass --source)")
    # Debris: a staging directory only survives a crashed shard; the
    # quarantine files are preserved evidence from earlier repairs.
    for staging in sorted(path.glob(STAGING_PREFIX + "*")):
        if repair:
            import shutil
            shutil.rmtree(staging, ignore_errors=True)
            record_integrity_event("repair", artifact=staging.name,
                                   detail="removed stale staging dir")
            report.add(staging, "staging", "repaired",
                       "stale staging directory removed")
        else:
            report.add(staging, "staging", "corrupt",
                       "stale staging directory from a crashed shard")
    for evidence in sorted(path.rglob("*.corrupt")):
        report.add(evidence, "quarantine", "skipped",
                   "quarantined evidence from an earlier repair")
    return report


def fsck_state_file(path: "str | Path", repair: bool = False) -> FsckReport:
    """Scrub one ``.npz`` state/checkpoint file (payload checksum)."""
    from ..core.serialize import load_state_npz
    path = Path(path)
    report = FsckReport(root=str(path), repair=repair)
    try:
        nbytes = path.stat().st_size
    except OSError as exc:
        report.add(path, "checkpoint", "corrupt",
                   f"unreadable: {exc}")
        return report
    try:
        load_state_npz(path, verify=True)
    except IntegrityError as exc:
        problem = str(exc)
    except Exception as exc:  # noqa: BLE001 - truncated zip, garbage, ...
        problem = f"{type(exc).__name__}: {exc}"
    else:
        record_integrity_event("scrub", artifact=path.name, nbytes=nbytes)
        report.add(path, "checkpoint", "clean")
        return report
    record_integrity_event("mismatch", artifact=path.name, detail=problem)
    if not repair:
        report.add(path, "checkpoint", "corrupt", problem)
        return report
    import os
    target = path.with_name(path.name + ".corrupt")
    os.replace(path, target)
    record_integrity_event("quarantine", artifact=path.name,
                           detail=problem)
    report.add(path, "checkpoint", "quarantined",
               f"{problem}; moved to {target.name} (resume falls back "
               f"to the next older version)")
    return report


def fsck_tuning_cache(path: "str | Path",
                      repair: bool = False) -> FsckReport:
    """Scrub one tuning-cache JSON file entry by entry."""
    from ..kernels.autotune import TuningCache
    path = Path(path)
    report = FsckReport(root=str(path), repair=repair)
    cache = TuningCache(path)
    audit = cache.scrub(repair=repair)
    if not audit["exists"]:
        report.add(path, "tuning-cache", "skipped", "no cache file")
        return report
    if audit["parse_error"] is not None:
        record_integrity_event("mismatch", artifact=path.name,
                               detail=audit["parse_error"])
        verdict = "quarantined" if repair else "corrupt"
        report.add(path, "tuning-cache", verdict, audit["parse_error"])
        return report
    if not audit["invalid"]:
        report.add(path, "tuning-cache", "clean",
                   f"{audit['entries']} entr"
                   f"{'y' if audit['entries'] == 1 else 'ies'}")
        return report
    for key in audit["invalid"]:
        record_integrity_event("mismatch", artifact=path.name, detail=key)
        if repair:
            record_integrity_event("repair", artifact=path.name,
                                   detail=f"dropped {key}")
            report.add(path, "tuning-entry", "repaired",
                       f"dropped invalid entry {key!r}")
        else:
            report.add(path, "tuning-entry", "corrupt",
                       f"invalid entry {key!r}")
    return report


def _looks_like_tuning_cache(path: Path) -> bool:
    """Whether a JSON file is plausibly an autotune cache.

    A cache is a dict whose keys all carry the ``v<N>:`` version
    prefix; an empty dict counts.  Unparseable files count too — a
    corrupted cache must not dodge the scrub by being unreadable.
    """
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return True
    return isinstance(data, dict) and all(
        isinstance(k, str) and k.startswith("v") and ":" in k
        for k in data)


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------

def fsck_path(path: "str | Path", repair: bool = False,
              source=None) -> FsckReport:
    """Scrub whatever lives at *path* (the ``repro fsck`` entry point).

    Dispatch: a store directory (has ``meta.json``) scrubs as a store;
    an ``.npz`` file as a checkpoint; a ``.json`` file as a tuning
    cache; any other directory is walked recursively and every
    recognized artifact inside it is scrubbed.  *source* (the original
    :class:`~repro.tensor.coo.COOTensor`) enables slab rebuilds during
    store repair.
    """
    from ..tensor.store import META_FILE, ShardedTensorStore
    path = Path(path)
    if path.name == META_FILE and path.is_file():
        return fsck_store(path.parent, repair=repair, source=source)
    if path.is_dir():
        if ShardedTensorStore.is_store(path):
            return fsck_store(path, repair=repair, source=source)
        report = FsckReport(root=str(path), repair=repair)
        entries = sorted(path.iterdir())
        if not entries:
            report.add(path, "other", "skipped", "empty directory")
        for entry in entries:
            if entry.is_dir():
                report.merge(fsck_path(entry, repair=repair,
                                       source=source))
            elif entry.suffix == ".npz":
                report.merge(fsck_state_file(entry, repair=repair))
            elif entry.suffix == ".json":
                # Only judge a JSON file by tuning-cache rules when it
                # plausibly is one — a walked-over metrics export must
                # not be reported as a corrupt cache.
                if _looks_like_tuning_cache(entry):
                    report.merge(fsck_tuning_cache(entry, repair=repair))
                else:
                    report.add(entry, "other", "skipped",
                               "JSON file, not a tuning cache")
            elif entry.name.endswith(".corrupt"):
                report.add(entry, "quarantine", "skipped",
                           "quarantined evidence from an earlier repair")
        return report
    if path.suffix == ".npz":
        return fsck_state_file(path, repair=repair)
    if path.suffix == ".json":
        return fsck_tuning_cache(path, repair=repair)
    report = FsckReport(root=str(path), repair=repair)
    if path.exists():
        report.add(path, "other", "skipped", "not a recognized artifact")
    else:
        report.add(path, "other", "corrupt", "path does not exist")
    return report
