"""Chunked CRC-32 checksums: the storage-integrity substrate.

Every persisted artifact the platform computes on — slab files in a
:class:`~repro.tensor.store.ShardedTensorStore`, checkpoint ``.npz``
payloads, the autotuner's :class:`~repro.kernels.autotune.TuningCache`
— is covered by one canonical manifest format so a flipped bit or a
torn page is *detected* before it reaches a kernel, never computed on
silently.

The algorithm is deliberately boring: ``zlib.crc32`` over fixed-size
chunks (1 MiB, a multiple of the 64-byte slab alignment) plus one
running digest over the whole stream.  CRC-32 is not cryptographic —
the threat model is bit-rot, truncation, and torn writes, not an
adversary — and it runs at memory bandwidth, so verified reads stay
cheap enough to leave on (``REPRO_VERIFY_READS=1``) in CI.  Chunking
buys two things: verification streams in bounded memory (no slab has
to be resident twice), and a mismatch localizes to the damaged chunk,
which the report surfaces for forensics.

:class:`StreamingChecksummer` computes the manifest *while bytes are
written* (the sharder uses it so checksumming adds no second pass);
:func:`checksum_file` / :func:`verify_file` are the at-rest form the
fsck scrubber and verified reads use.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from pathlib import Path

from ..validation import require

#: Bytes per checksum chunk.  A multiple of the slab writer's 64-byte
#: alignment, large enough that manifests stay small (one crc per MiB).
CHUNK_BYTES = 1 << 20

#: Manifest format tag; bump when the layout changes incompatibly.
ALGORITHM = "crc32/chunked-v1"


class IntegrityError(RuntimeError):
    """Persisted bytes failed verification (corrupt, torn, or truncated).

    Raised instead of letting damaged bytes flow into a kernel.  Carries
    the offending ``path`` and, when the artifact was moved aside, the
    ``quarantined`` path so the caller's error message (and the user)
    can find the evidence.
    """

    def __init__(self, message: str, path: "str | Path | None" = None,
                 quarantined: "str | Path | None" = None):
        super().__init__(message)
        self.path = Path(path) if path is not None else None
        self.quarantined = (Path(quarantined)
                            if quarantined is not None else None)


@dataclass(frozen=True)
class ChecksumManifest:
    """Canonical sidecar record of one artifact's checksums.

    JSON-stable (:meth:`to_dict` / :meth:`from_dict`): crcs are plain
    unsigned ints, so the manifest embeds directly in ``meta.json``
    slab records and state-file metadata blobs.
    """

    #: Format tag (:data:`ALGORITHM`).
    algorithm: str
    #: Chunk size the stream was split at.
    chunk_bytes: int
    #: Total byte length of the covered stream.
    length: int
    #: Per-chunk ``zlib.crc32`` values, in stream order.
    chunks: tuple[int, ...]
    #: Running crc32 over the whole stream (cheap whole-file check).
    digest: int

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "chunk_bytes": self.chunk_bytes,
            "length": self.length,
            "chunks": list(self.chunks),
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ChecksumManifest":
        require(payload.get("algorithm") == ALGORITHM,
                f"unrecognized checksum algorithm "
                f"{payload.get('algorithm')!r} (this build understands "
                f"{ALGORITHM!r})")
        return cls(
            algorithm=str(payload["algorithm"]),
            chunk_bytes=int(payload["chunk_bytes"]),
            length=int(payload["length"]),
            chunks=tuple(int(c) for c in payload["chunks"]),
            digest=int(payload["digest"]),
        )


class StreamingChecksummer:
    """Accumulate the manifest of a stream as it is produced.

    Feed every byte written with :meth:`update` (chunk boundaries are
    handled internally — writes need not align), then read
    :meth:`manifest` once after the last byte.
    """

    def __init__(self, chunk_bytes: int = CHUNK_BYTES):
        require(chunk_bytes >= 1, "chunk_bytes must be positive")
        self.chunk_bytes = int(chunk_bytes)
        self._length = 0
        self._digest = 0
        self._chunks: list[int] = []
        self._chunk_crc = 0
        self._chunk_fill = 0

    def update(self, data: "bytes | memoryview") -> None:
        view = memoryview(data).cast("B")
        self._digest = zlib.crc32(view, self._digest)
        self._length += len(view)
        offset = 0
        while offset < len(view):
            take = min(self.chunk_bytes - self._chunk_fill,
                       len(view) - offset)
            self._chunk_crc = zlib.crc32(view[offset:offset + take],
                                         self._chunk_crc)
            self._chunk_fill += take
            offset += take
            if self._chunk_fill == self.chunk_bytes:
                self._chunks.append(self._chunk_crc)
                self._chunk_crc = 0
                self._chunk_fill = 0

    def manifest(self) -> ChecksumManifest:
        chunks = list(self._chunks)
        if self._chunk_fill:
            chunks.append(self._chunk_crc)
        return ChecksumManifest(algorithm=ALGORITHM,
                                chunk_bytes=self.chunk_bytes,
                                length=self._length,
                                chunks=tuple(chunks),
                                digest=self._digest)


def checksum_bytes(data: "bytes | memoryview",
                   chunk_bytes: int = CHUNK_BYTES) -> ChecksumManifest:
    """Manifest of an in-memory byte string."""
    summer = StreamingChecksummer(chunk_bytes)
    summer.update(data)
    return summer.manifest()


def checksum_file(path: "str | Path",
                  chunk_bytes: int = CHUNK_BYTES) -> ChecksumManifest:
    """Manifest of a file's current on-disk bytes (streamed read)."""
    summer = StreamingChecksummer(chunk_bytes)
    with open(path, "rb") as handle:
        while True:
            block = handle.read(chunk_bytes)
            if not block:
                break
            summer.update(block)
    return summer.manifest()


def verify_manifest(actual: ChecksumManifest,
                    expected: ChecksumManifest) -> str | None:
    """``None`` when *actual* matches *expected*, else a problem string.

    Length mismatches report as truncation/growth; content mismatches
    name the damaged chunk indices so forensics can find the bytes.
    """
    if actual.length != expected.length:
        direction = ("truncated" if actual.length < expected.length
                     else "grew")
        return (f"{direction}: {actual.length} bytes on disk, manifest "
                f"promises {expected.length}")
    if actual.chunk_bytes != expected.chunk_bytes:
        # Re-chunk via the digest only (different chunk size, same data
        # is still verifiable at whole-stream granularity).
        if actual.digest != expected.digest:
            return "checksum mismatch (whole-stream digest)"
        return None
    bad = [i for i, (a, e) in enumerate(zip(actual.chunks,
                                            expected.chunks)) if a != e]
    if bad or actual.digest != expected.digest:
        where = (f"chunk(s) {', '.join(str(i) for i in bad)} of "
                 f"{len(expected.chunks)}" if bad else "digest")
        return f"checksum mismatch in {where}"
    return None


def verify_file(path: "str | Path",
                expected: ChecksumManifest) -> str | None:
    """Scrub a file against its manifest; ``None`` means clean.

    Bytes read for verification are reported to the observability
    registry (``integrity_bytes_scrubbed``) so dashboards can see scrub
    throughput; a missing file reports as its own problem rather than
    raising.
    """
    from ..observability import record_integrity_event
    path = Path(path)
    try:
        actual = checksum_file(path, expected.chunk_bytes)
    except FileNotFoundError:
        return "file is missing"
    except OSError as exc:
        return f"unreadable: {exc}"
    record_integrity_event("scrub", artifact=path.name,
                           nbytes=actual.length)
    return verify_manifest(actual, expected)
