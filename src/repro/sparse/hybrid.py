"""The hybrid dense-columns + CSR-columns factor (paper's CSR-H).

Construction (Section IV-C): sort columns by non-zero count, call a column
"dense" when it exceeds the average column density, store the dense columns
as a plain matrix and the rest in CSR.  During MTTKRP the dense prefix is
computed while (on the paper's hardware) the CSR tail streams in via
software prefetch; here the prefetch overlap is represented in the machine
cost model, while the arithmetic split is exact.

Column order is permuted internally; :meth:`gather_scale_rows` returns rows
in the *original* column order, so kernels never see the permutation.
"""

from __future__ import annotations

import numpy as np

from ..types import INDEX_DTYPE, VALUE_DTYPE
from ..validation import require
from .analysis import dense_column_mask
from .csr import CSRMatrix


class HybridFactor:
    """Dense-prefix + CSR-tail representation of a factor matrix."""

    __slots__ = ("shape", "perm", "inv_perm", "dense_part", "csr_part",
                 "n_dense_cols")

    def __init__(self, dense: np.ndarray, tol: float = 0.0):
        dense = np.asarray(dense, dtype=VALUE_DTYPE)
        require(dense.ndim == 2, "dense matrix required")
        self.shape = dense.shape

        mask = dense_column_mask(dense, tol)
        order = np.argsort(~mask, kind="stable")  # dense columns first
        self.perm = order.astype(INDEX_DTYPE)
        self.inv_perm = np.empty_like(self.perm)
        self.inv_perm[self.perm] = np.arange(
            self.perm.shape[0], dtype=INDEX_DTYPE)
        self.n_dense_cols = int(mask.sum())

        permuted = dense[:, self.perm]
        self.dense_part = np.ascontiguousarray(
            permuted[:, :self.n_dense_cols])
        self.csr_part = CSRMatrix.from_dense(
            permuted[:, self.n_dense_cols:], tol=tol)

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Dense-prefix cells plus CSR-tail stored non-zeros."""
        return self.dense_part.size + self.csr_part.nnz

    @property
    def density(self) -> float:
        """Effective stored density of the hybrid."""
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def storage_bytes(self) -> int:
        """Bytes of the dense block, the CSR arrays, and the permutation."""
        return (self.dense_part.nbytes + self.csr_part.storage_bytes()
                + self.perm.nbytes)

    def to_dense(self) -> np.ndarray:
        """Reconstruct the factor in its original column order."""
        permuted = np.concatenate(
            [self.dense_part, self.csr_part.to_dense()], axis=1)
        return permuted[:, self.inv_perm]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"HybridFactor(shape={self.shape}, "
                f"dense_cols={self.n_dense_cols}, "
                f"csr_nnz={self.csr_part.nnz})")

    # ------------------------------------------------------------------
    def gather_scale_rows(self, row_index: np.ndarray,
                          scale: np.ndarray) -> np.ndarray:
        """``out[p, :] = scale[p] * self[row_index[p], :]`` (original order).

        The dense prefix is a contiguous fancy-index gather; the tail goes
        through :meth:`CSRMatrix.gather_scale_rows`.
        """
        row_index = np.asarray(row_index, dtype=INDEX_DTYPE)
        scale = np.asarray(scale, dtype=VALUE_DTYPE)
        n = row_index.shape[0]
        out = np.empty((n, self.shape[1]), dtype=VALUE_DTYPE)
        permuted = out[:, :]  # filled in permuted order, unpermuted below
        if self.n_dense_cols:
            permuted[:, :self.n_dense_cols] = (
                self.dense_part[row_index] * scale[:, None])
        if self.csr_part.shape[1]:
            permuted[:, self.n_dense_cols:] = (
                self.csr_part.gather_scale_rows(row_index, scale))
        return permuted[:, self.inv_perm]

    def gathered_nnz(self, row_index: np.ndarray) -> int:
        """Stored entries a gather touches (dense prefix counts fully)."""
        row_index = np.asarray(row_index, dtype=INDEX_DTYPE)
        return (row_index.shape[0] * self.n_dense_cols
                + self.csr_part.gathered_nnz(row_index))
