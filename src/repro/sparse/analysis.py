"""Density analysis and the sparsify/representation decision.

The paper's empirical rule (Section V-E): a factor is *gainfully treated as
sparse* when its density falls below 20%.  Columns are called "dense" when
they hold more non-zeros than the average column (Section IV-C); the hybrid
structure places those first.
"""

from __future__ import annotations

import numpy as np

from ..config import SPARSITY_THRESHOLD
from ..validation import require


def density(matrix: np.ndarray, tol: float = 0.0) -> float:
    """Fraction of entries with ``|value| > tol``."""
    matrix = np.asarray(matrix)
    if matrix.size == 0:
        return 0.0
    return float(np.count_nonzero(np.abs(matrix) > tol)) / matrix.size


def column_densities(matrix: np.ndarray, tol: float = 0.0) -> np.ndarray:
    """Per-column density (fraction of non-zero rows)."""
    matrix = np.asarray(matrix)
    if matrix.shape[0] == 0:
        return np.zeros(matrix.shape[1])
    return np.count_nonzero(
        np.abs(matrix) > tol, axis=0) / float(matrix.shape[0])


def dense_column_mask(matrix: np.ndarray, tol: float = 0.0) -> np.ndarray:
    """Columns holding more non-zeros than the average column.

    This is the paper's definition of a "dense" column for the hybrid
    structure.  Returns a boolean mask over columns.
    """
    cols = column_densities(matrix, tol)
    if cols.size == 0:
        return np.zeros(0, dtype=bool)
    return cols > cols.mean()


def should_sparsify(matrix: np.ndarray, tol: float = 0.0,
                    threshold: float = SPARSITY_THRESHOLD) -> bool:
    """Paper's 20% rule: sparsify when density drops below *threshold*."""
    require(0.0 < threshold <= 1.0, "threshold must be in (0, 1]")
    return density(matrix, tol) < threshold


def choose_representation(matrix: np.ndarray, tol: float = 0.0,
                          threshold: float = SPARSITY_THRESHOLD,
                          allow_hybrid: bool = True) -> str:
    """Pick ``"dense"``, ``"csr"``, or ``"hybrid"`` for a factor.

    Heuristic consistent with the paper's discussion: below the density
    threshold prefer a sparse structure; use the hybrid when the column
    non-zero distribution is skewed enough that a dense prefix captures a
    large share of the non-zeros (otherwise the prefix buys nothing and
    plain CSR has less overhead).
    """
    if not should_sparsify(matrix, tol, threshold):
        return "dense"
    if not allow_hybrid:
        return "csr"
    cols = column_densities(matrix, tol)
    if cols.size == 0 or cols.sum() == 0.0:
        return "csr"
    mask = cols > cols.mean()
    dense_share = cols[mask].sum() / cols.sum() if mask.any() else 0.0
    dense_frac = mask.mean()
    # A small set of columns holding a large share of the mass is the
    # profile the hybrid was designed for.
    if dense_share >= 0.5 and dense_frac <= 0.5:
        return "hybrid"
    return "csr"
