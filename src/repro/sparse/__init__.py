"""Sparse factor-matrix substrate (Section IV-C of the paper).

Factor matrices become sparse dynamically under L1 regularization; this
subpackage provides the CSR and hybrid dense+CSR representations the
sparse MTTKRP kernels consume, plus the density analysis that decides when
sparsifying pays off.
"""

from .csr import CSRMatrix
from .hybrid import HybridFactor
from .analysis import (
    density,
    column_densities,
    dense_column_mask,
    should_sparsify,
    choose_representation,
)
from .autotune import (
    FactorProfile,
    RepresentationCosts,
    autotune_representation,
    price_representations,
)

__all__ = [
    "FactorProfile",
    "RepresentationCosts",
    "autotune_representation",
    "price_representations",
    "CSRMatrix",
    "HybridFactor",
    "density",
    "column_densities",
    "dense_column_mask",
    "should_sparsify",
    "choose_representation",
]
