"""A purpose-built CSR matrix for sparse factor matrices.

Why not ``scipy.sparse.csr_matrix``?  The MTTKRP kernels need exactly one
operation — *gather rows by a (large, repeated) index vector and scale each
gathered row* — plus cheap construction from a dense matrix every time the
factor is re-sparsified (the sparsity pattern is dynamic, Section IV-C).
Owning the three arrays keeps those operations allocation-lean and lets the
machine model count the structure's exact memory traffic (indptr + indices
+ values), which is what distinguishes CSR from CSR-H in the paper.

The class interoperates with SciPy via :meth:`to_scipy` /
:meth:`from_scipy` for tests.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..types import INDEX_DTYPE, VALUE_DTYPE
from ..validation import require


class CSRMatrix:
    """Compressed sparse row matrix (float64 values, int64 indices)."""

    __slots__ = ("indptr", "indices", "data", "shape")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 data: np.ndarray, shape: tuple[int, int]):
        self.indptr = np.ascontiguousarray(indptr, dtype=INDEX_DTYPE)
        self.indices = np.ascontiguousarray(indices, dtype=INDEX_DTYPE)
        self.data = np.ascontiguousarray(data, dtype=VALUE_DTYPE)
        self.shape = (int(shape[0]), int(shape[1]))
        require(self.indptr.shape == (self.shape[0] + 1,),
                "indptr length must be nrows + 1")
        require(self.indices.shape == self.data.shape,
                "indices and data must align")
        require(int(self.indptr[-1]) == self.indices.shape[0],
                "indptr[-1] must equal nnz")

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Stored non-zero count."""
        return self.data.shape[0]

    @property
    def density(self) -> float:
        """nnz / (rows * cols)."""
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def row_nnz(self) -> np.ndarray:
        """Non-zeros per row."""
        return np.diff(self.indptr)

    def storage_bytes(self) -> int:
        """Bytes of the three CSR arrays (for the machine cost model)."""
        return self.indptr.nbytes + self.indices.nbytes + self.data.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
                f"density={self.density:.3f})")

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "CSRMatrix":
        """Compress a dense matrix, dropping ``|value| <= tol``.

        This is the ``O(K F)`` conversion of Section IV-C whose cost must be
        amortized by the sparse kernels' savings.
        """
        dense = np.asarray(dense, dtype=VALUE_DTYPE)
        require(dense.ndim == 2, "dense matrix required")
        mask = np.abs(dense) > tol
        counts = mask.sum(axis=1)
        indptr = np.zeros(dense.shape[0] + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=indptr[1:])
        rows, cols = np.nonzero(mask)
        return cls(indptr, cols.astype(INDEX_DTYPE), dense[rows, cols],
                   dense.shape)

    def to_dense(self) -> np.ndarray:
        """Expand back to a dense matrix."""
        out = np.zeros(self.shape, dtype=VALUE_DTYPE)
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        out[rows, self.indices] = self.data
        return out

    @classmethod
    def from_scipy(cls, mat: sp.spmatrix) -> "CSRMatrix":
        """Adopt a SciPy sparse matrix."""
        csr = mat.tocsr()
        return cls(csr.indptr, csr.indices, csr.data, csr.shape)

    def to_scipy(self) -> sp.csr_matrix:
        """View as ``scipy.sparse.csr_matrix`` (shares arrays)."""
        return sp.csr_matrix(
            (self.data, self.indices, self.indptr), shape=self.shape)

    # ------------------------------------------------------------------
    # The kernel primitive
    # ------------------------------------------------------------------
    def gather_scale_rows(self, row_index: np.ndarray,
                          scale: np.ndarray) -> np.ndarray:
        """Dense ``out[p, :] = scale[p] * self[row_index[p], :]``.

        This is the leaf-level access of sparse-factor MTTKRP (the modified
        line 9 of paper Algorithm 3): each tensor non-zero ``p`` pulls one
        row of the sparse factor and scales it by the tensor value.  Work
        and traffic scale with the *gathered* non-zero count, not with
        ``len(row_index) * F``.

        Returns a dense ``(len(row_index), F)`` array — the accumulation
        buffers above the leaf level are dense regardless (sums of sparse
        rows fill in quickly).
        """
        row_index = np.asarray(row_index, dtype=INDEX_DTYPE)
        scale = np.asarray(scale, dtype=VALUE_DTYPE)
        require(row_index.shape == scale.shape,
                "row_index and scale must align")
        starts = self.indptr[row_index]
        counts = self.indptr[row_index + 1] - starts
        total = int(counts.sum())
        out = np.zeros((row_index.shape[0], self.shape[1]),
                       dtype=VALUE_DTYPE)
        if total == 0:
            return out
        # Flat gather positions: for each output row p, the slice
        # [starts[p], starts[p] + counts[p]) of indices/data.
        flat = _expand_ranges(starts, counts)
        out_rows = np.repeat(
            np.arange(row_index.shape[0], dtype=INDEX_DTYPE), counts)
        out[out_rows, self.indices[flat]] = self.data[flat]
        out *= scale[:, None]
        return out

    def gathered_nnz(self, row_index: np.ndarray) -> int:
        """Non-zeros that :meth:`gather_scale_rows` would touch."""
        row_index = np.asarray(row_index, dtype=INDEX_DTYPE)
        return int(
            (self.indptr[row_index + 1] - self.indptr[row_index]).sum())


def _expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[i], starts[i] + counts[i])`` vectorized."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    # Classic trick: cumulative offsets with per-range resets.
    out = np.ones(total, dtype=INDEX_DTYPE)
    ends = np.cumsum(counts)
    out[0] = starts[0] if counts[0] > 0 else 0
    # Positions where a new range begins (skip empty ranges).
    nonempty = counts > 0
    first_pos = (ends - counts)[nonempty]
    jumps = starts[nonempty]
    out[first_pos] = jumps
    prev_ends = np.zeros_like(jumps)
    prev_ends[1:] = starts[nonempty][:-1] + counts[nonempty][:-1] - 1
    out[first_pos[1:]] = jumps[1:] - prev_ends[1:]
    np.cumsum(out, out=out)
    return out
