"""Cost-model-driven factor-representation selection (paper future work).

Section VI: "further investigation is required in order to automatically
select the best data structure for the sparse matrix factors during
MTTKRP."  The heuristic in :mod:`repro.sparse.analysis` uses density and
column-skew rules; this module instead *prices* each representation with
the machine cost model — gather traffic, CSR row-chain latency, the
hybrid's prefix overhead and prefetch hiding, and the per-outer-iteration
construction cost — and picks the cheapest.

The chooser works from measurable factor statistics only, so the engine
can call it every outer iteration without touching the tensor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.cache import miss_rate
from ..machine.spec import MachineSpec, PAPER_MACHINE
from ..validation import require
from .analysis import column_densities, dense_column_mask

_BYTES = 8
_IDX_BYTES = 8


@dataclass(frozen=True)
class FactorProfile:
    """Everything the pricing needs to know about a factor."""

    rows: int
    rank: int
    #: Stored density (nnz / rows / rank).
    density: float
    #: Fraction of columns a dense prefix would keep (above-mean rule).
    dense_col_frac: float
    #: Fraction of the stored non-zeros those columns hold.
    dense_col_share: float

    @classmethod
    def from_matrix(cls, matrix: np.ndarray,
                    tol: float = 0.0) -> "FactorProfile":
        matrix = np.asarray(matrix)
        require(matrix.ndim == 2, "factor matrix required")
        cols = column_densities(matrix, tol)
        mask = dense_column_mask(matrix, tol)
        total = cols.sum()
        share = float(cols[mask].sum() / total) if total > 0 else 0.0
        return cls(rows=matrix.shape[0], rank=matrix.shape[1],
                   density=float(cols.mean()) if cols.size else 0.0,
                   dense_col_frac=float(mask.mean()) if mask.size else 0.0,
                   dense_col_share=share)


@dataclass(frozen=True)
class RepresentationCosts:
    """Modelled per-MTTKRP seconds of each representation + the choice."""

    dense_seconds: float
    csr_seconds: float
    hybrid_seconds: float
    #: Construction cost charged to the sparse representations.
    build_seconds: float
    best: str

    def as_dict(self) -> dict[str, float]:
        return {"dense": self.dense_seconds, "csr": self.csr_seconds,
                "csr-h": self.hybrid_seconds}


def price_representations(profile: FactorProfile, accesses: float,
                          machine: MachineSpec = PAPER_MACHINE,
                          threads: int | None = None,
                          admm_iterations: float = 10.0
                          ) -> RepresentationCosts:
    """Price dense / CSR / CSR-H for a factor read *accesses* times.

    ``accesses`` is the number of row gathers per MTTKRP — the tensor's
    non-zero count for the deep factor.  Construction (the ``O(rows *
    rank)`` compression pass of Section IV-C) is amortized over nothing:
    it recurs every outer iteration because the sparsity is dynamic, so
    it is charged in full to the sparse representations.
    """
    require(accesses >= 0, "accesses must be non-negative")
    threads = threads or machine.cores
    bw = machine.bandwidth(threads, "read")

    row_bytes = profile.rank * _BYTES
    ws_dense = profile.rows * row_bytes
    dense_secs = (accesses * row_bytes
                  * miss_rate(ws_dense, machine.llc_bytes)) / bw

    stored_row = profile.density * profile.rank * (_BYTES + _IDX_BYTES)
    ws_csr = profile.rows * (stored_row + _IDX_BYTES)
    csr_secs = (accesses * stored_row
                * miss_rate(ws_csr, machine.llc_bytes)) / bw
    latency = (accesses * machine.csr_row_latency
               / (threads * machine.memory_parallelism))
    csr_secs += latency

    prefix = profile.dense_col_frac * profile.rank * _BYTES
    tail = ((1.0 - profile.dense_col_share) * profile.density
            * profile.rank * (_BYTES + _IDX_BYTES))
    ws_h = profile.rows * (prefix + tail + _IDX_BYTES)
    hybrid_secs = (accesses * (prefix + tail)
                   * miss_rate(ws_h, machine.llc_bytes)) / bw
    hybrid_secs += latency * (1.0 - machine.prefetch_hide)

    # Construction: one streaming pass over the dense factor.
    build = (profile.rows * row_bytes * 2) / bw
    csr_secs += build
    hybrid_secs += build

    costs = {"dense": dense_secs, "csr": csr_secs, "csr-h": hybrid_secs}
    best = min(costs, key=costs.get)  # type: ignore[arg-type]
    return RepresentationCosts(dense_seconds=dense_secs,
                               csr_seconds=csr_secs,
                               hybrid_seconds=hybrid_secs,
                               build_seconds=build, best=best)


def autotune_representation(matrix: np.ndarray, accesses: float,
                            machine: MachineSpec = PAPER_MACHINE,
                            tol: float = 0.0,
                            threads: int | None = None) -> str:
    """Pick ``"dense"``, ``"csr"``, or ``"csr-h"`` for *matrix* by price."""
    profile = FactorProfile.from_matrix(matrix, tol)
    return price_representations(profile, accesses, machine,
                                 threads=threads).best
