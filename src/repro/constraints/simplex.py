"""Row simplex constraint (rows are probability distributions).

One of the paper's named row-separable examples (Section IV-A).  The
projection uses the sort-based algorithm of Duchi et al. (2008),
vectorized over all rows at once.
"""

from __future__ import annotations

import numpy as np

from ..validation import require
from .base import Constraint


def project_rows_simplex(matrix: np.ndarray,
                         radius: float = 1.0) -> np.ndarray:
    """Project every row of *matrix* onto the simplex of the given radius.

    ``{y : y >= 0, sum(y) = radius}``, Euclidean projection, vectorized
    (one sort per row, computed as a single batched sort).
    """
    require(radius > 0.0, "simplex radius must be positive")
    matrix = np.asarray(matrix, dtype=np.float64)
    n, f = matrix.shape
    if f == 0 or n == 0:
        return matrix.copy()
    # Descending sort per row.
    u = -np.sort(-matrix, axis=1)
    css = np.cumsum(u, axis=1) - radius
    ks = np.arange(1, f + 1, dtype=np.float64)
    # cond[i, k] is True while u_k > (cumsum_k - radius) / (k+1); the set of
    # True entries is a prefix, so the count locates the last valid k (rho).
    cond = u - css / ks > 0.0
    rho = np.maximum(cond.sum(axis=1), 1)
    theta = css[np.arange(n), rho - 1] / rho
    return np.maximum(matrix - theta[:, None], 0.0)


class RowSimplex(Constraint):
    """Indicator of ``{H : H >= 0, H @ 1 = radius}`` row-wise."""

    name = "simplex"

    def __init__(self, radius: float = 1.0):
        require(radius > 0.0, "simplex radius must be positive")
        self.radius = float(radius)

    def prox(self, matrix: np.ndarray, step: float) -> np.ndarray:
        return project_rows_simplex(matrix, self.radius)

    def penalty(self, matrix: np.ndarray) -> float:
        return 0.0 if self.is_feasible(matrix) else float("inf")

    def is_feasible(self, matrix: np.ndarray, atol: float = 1e-6) -> bool:
        if (matrix < -atol).any():
            return False
        sums = matrix.sum(axis=1)
        return bool(np.allclose(sums, self.radius, atol=atol * matrix.shape[1]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RowSimplex(radius={self.radius})"
