"""Row-wise Euclidean norm ball constraint."""

from __future__ import annotations

import numpy as np

from ..validation import require
from .base import Constraint


class RowNormBall(Constraint):
    """Indicator of ``||H[i, :]||_2 <= radius`` for every row.

    Projection rescales any row outside the ball back onto its surface.
    Bounds the energy any single slice can carry — a common stabilizer for
    recommender-style factorizations.
    """

    name = "norm_ball"

    def __init__(self, radius: float = 1.0):
        require(radius > 0.0, "radius must be positive")
        self.radius = float(radius)

    def prox(self, matrix: np.ndarray, step: float) -> np.ndarray:
        norms = np.sqrt(np.einsum("ij,ij->i", matrix, matrix))
        over = norms > self.radius
        if over.any():
            matrix[over] *= (self.radius / norms[over])[:, None]
        return matrix

    def penalty(self, matrix: np.ndarray) -> float:
        return 0.0 if self.is_feasible(matrix) else float("inf")

    def is_feasible(self, matrix: np.ndarray, atol: float = 1e-9) -> bool:
        norms = np.sqrt(np.einsum("ij,ij->i", matrix, matrix))
        return bool((norms <= self.radius + atol).all())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RowNormBall(radius={self.radius})"
