"""Non-negativity: the paper's primary constraint (rank-50 NNCPD runs)."""

from __future__ import annotations

import numpy as np

from .base import Constraint


class NonNegative(Constraint):
    """Indicator of the non-negative orthant.

    ``prox`` projects by zeroing negative entries — elementwise, hence
    trivially row separable.
    """

    name = "nonneg"

    def prox(self, matrix: np.ndarray, step: float) -> np.ndarray:
        return np.maximum(matrix, 0.0, out=matrix)

    def penalty(self, matrix: np.ndarray) -> float:
        return 0.0 if self.is_feasible(matrix) else float("inf")

    def is_feasible(self, matrix: np.ndarray, atol: float = 1e-9) -> bool:
        return bool((matrix >= -atol).all())
