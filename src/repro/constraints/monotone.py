"""Row-monotonicity constraint via isotonic regression.

Huang et al.'s AO-ADMM menu includes monotonic factors (useful when a
mode has an ordered interpretation — time, dosage, severity): each row of
``H`` is constrained to be non-decreasing across components.  The prox is
the Euclidean projection onto the monotone cone, computed with the Pool
Adjacent Violators Algorithm (PAVA).

Row separable, so fully compatible with the blocked reformulation.
"""

from __future__ import annotations

import numpy as np

from .base import Constraint

try:  # SciPy >= 1.12 ships a C implementation.
    from scipy.optimize import isotonic_regression as _scipy_isotonic
except ImportError:  # pragma: no cover - old SciPy
    _scipy_isotonic = None


def _pava_row(row: np.ndarray) -> np.ndarray:
    """Classic stack-based PAVA for one row (reference / fallback)."""
    levels: list[float] = []
    widths: list[int] = []
    for value in row:
        level, width = float(value), 1
        while levels and levels[-1] > level:
            prev_level = levels.pop()
            prev_width = widths.pop()
            level = ((prev_level * prev_width + level * width)
                     / (prev_width + width))
            width += prev_width
        levels.append(level)
        widths.append(width)
    out = np.empty_like(row, dtype=np.float64)
    pos = 0
    for level, width in zip(levels, widths):
        out[pos:pos + width] = level
        pos += width
    return out


def isotonic_projection_rows(matrix: np.ndarray) -> np.ndarray:
    """Project every row onto ``{y : y_0 <= y_1 <= ... <= y_{F-1}}``.

    Rows that are already monotone (the common case after the first few
    ADMM iterations) are passed through untouched; only violating rows
    run PAVA.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.shape[1] <= 1 or matrix.shape[0] == 0:
        return matrix.copy()
    out = matrix.copy()
    violating = np.flatnonzero((np.diff(matrix, axis=1) < 0).any(axis=1))
    for i in violating:
        if _scipy_isotonic is not None:
            out[i] = _scipy_isotonic(matrix[i]).x
        else:  # pragma: no cover - old SciPy
            out[i] = _pava_row(matrix[i])
    return out


class MonotoneRows(Constraint):
    """Rows constrained non-decreasing across components."""

    name = "monotone"

    def prox(self, matrix: np.ndarray, step: float) -> np.ndarray:
        return isotonic_projection_rows(matrix)

    def penalty(self, matrix: np.ndarray) -> float:
        return 0.0 if self.is_feasible(matrix) else float("inf")

    def is_feasible(self, matrix: np.ndarray, atol: float = 1e-9) -> bool:
        return bool((np.diff(matrix, axis=1) >= -atol).all())
