"""Constraint interface.

A constraint/regularization is a penalty ``r(H)`` in the objective
(Equation 1 of the paper).  ADMM only interacts with it through the
**proximity operator**

``prox_{r, step}(V) = argmin_H  r(H) + 1/(2 * step) * ||H - V||_F^2``

evaluated with ``step = 1/rho`` in Algorithm 1 line 8.  Constraints are
encoded by letting ``r`` be an indicator function (``prox`` is then the
Euclidean projection); regularizations use finite penalties.
"""

from __future__ import annotations

import abc

import numpy as np


class Constraint(abc.ABC):
    """A penalty term ``r(.)`` applied to one factor matrix."""

    #: Whether ``prox`` acts on each row independently.  Row-separable
    #: penalties admit the blockwise ADMM reformulation (Section IV-B);
    #: the blocked solver refuses non-separable ones.
    row_separable: bool = True

    #: Short identifier used in options, traces, and benchmark tables.
    name: str = "constraint"

    @abc.abstractmethod
    def prox(self, matrix: np.ndarray, step: float) -> np.ndarray:
        """Return ``prox_{r, step}(matrix)``.

        Implementations may write into *matrix* and return it (callers pass
        freshly computed ``H_tilde - U`` buffers); they must not retain a
        reference.
        """

    @abc.abstractmethod
    def penalty(self, matrix: np.ndarray) -> float:
        """Evaluate ``r(matrix)``.

        Indicator constraints return ``0.0`` when feasible and ``inf``
        otherwise; regularizers return their finite value.  Used by tests
        and by objective-value reporting — never inside the solver loop.
        """

    def is_feasible(self, matrix: np.ndarray, atol: float = 1e-9) -> bool:
        """Whether *matrix* satisfies the constraint (regularizers: always)."""
        return bool(np.isfinite(self.penalty(matrix)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Unconstrained(Constraint):
    """``r = 0``: ADMM degenerates to the plain least-squares update."""

    name = "none"

    def prox(self, matrix: np.ndarray, step: float) -> np.ndarray:
        return matrix

    def penalty(self, matrix: np.ndarray) -> float:
        return 0.0
