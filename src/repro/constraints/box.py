"""Box (interval) constraints."""

from __future__ import annotations

import numpy as np

from ..validation import require
from .base import Constraint


class Box(Constraint):
    """Indicator of ``lower <= H <= upper`` elementwise; prox is clipping.

    Useful for bounded data such as ratings (e.g. ``Box(0, 5)``).
    """

    name = "box"

    def __init__(self, lower: float = 0.0, upper: float = 1.0):
        require(lower < upper, "lower bound must be below upper bound")
        self.lower = float(lower)
        self.upper = float(upper)

    def prox(self, matrix: np.ndarray, step: float) -> np.ndarray:
        return np.clip(matrix, self.lower, self.upper, out=matrix)

    def penalty(self, matrix: np.ndarray) -> float:
        return 0.0 if self.is_feasible(matrix) else float("inf")

    def is_feasible(self, matrix: np.ndarray, atol: float = 1e-9) -> bool:
        return bool(((matrix >= self.lower - atol)
                     & (matrix <= self.upper + atol)).all())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Box({self.lower}, {self.upper})"
