"""Column-smoothness regularization — a deliberately NON-row-separable
penalty.

``r(H) = (weight/2) * sum_f sum_i (H[i+1, f] - H[i, f])^2`` couples
adjacent *rows* (useful when a mode is ordered: time-binned factors
should vary smoothly).  Its prox solves, per column,

``(I + weight * step * D^T D) y = v``

with ``D`` the first-difference operator — a tridiagonal SPD solve done
once for all columns via a banded Cholesky.

Because rows are coupled, this constraint is **not** row separable: the
blocked reformulation of Section IV-B does not apply, and
:func:`repro.admm.blocked.blocked_admm_update` (and the driver with
``blocked=True``) must refuse it.  It exists both as a genuinely useful
penalty and as the library's living example of that restriction.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from ..validation import require
from .base import Constraint


class ColumnSmoothness(Constraint):
    """Quadratic smoothness across each column's rows (mode ordering)."""

    row_separable = False
    name = "smooth"

    def __init__(self, weight: float = 1.0):
        require(weight >= 0.0, "weight must be non-negative")
        self.weight = float(weight)
        self._cache: tuple[int, float, np.ndarray] | None = None

    def _banded_system(self, n: int, scale: float) -> np.ndarray:
        """Lower-banded representation of ``I + scale * D^T D``."""
        ab = np.zeros((2, n))
        ab[0, :] = 1.0 + 2.0 * scale
        ab[0, 0] = 1.0 + scale
        ab[0, -1] = 1.0 + scale
        ab[1, :-1] = -scale
        return ab

    def prox(self, matrix: np.ndarray, step: float) -> np.ndarray:
        n = matrix.shape[0]
        scale = self.weight * step
        if scale == 0.0 or n <= 1:
            return matrix
        cached = self._cache
        if cached is None or cached[0] != n or cached[1] != scale:
            ab = self._banded_system(n, scale)
            self._cache = (n, scale, ab)
        else:
            ab = cached[2]
        return scipy.linalg.solveh_banded(ab, matrix, lower=True,
                                          check_finite=False)

    def penalty(self, matrix: np.ndarray) -> float:
        diffs = np.diff(matrix, axis=0)
        return 0.5 * self.weight * float(
            np.einsum("ij,ij->", diffs, diffs))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnSmoothness(weight={self.weight})"
