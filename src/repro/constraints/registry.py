"""Name-based constraint construction.

Lets options files, CLIs, and benchmarks specify constraints as strings —
``make_constraint("nonneg")`` or ``make_constraint("l1", weight=0.1)`` —
mirroring how the paper's SPLATT extension exposes them.
"""

from __future__ import annotations

from typing import Callable

from .base import Constraint, Unconstrained
from .box import Box
from .cardinality import RowCardinality
from .l1 import L1, NonNegativeL1
from .l2 import ElasticNet, L2Squared
from .maxnorm import RowNormBall
from .monotone import MonotoneRows
from .nonneg import NonNegative
from .simplex import RowSimplex
from .smoothness import ColumnSmoothness

_FACTORIES: dict[str, Callable[..., Constraint]] = {
    "none": Unconstrained,
    "nonneg": NonNegative,
    "l1": L1,
    "nonneg_l1": NonNegativeL1,
    "l2": L2Squared,
    "elastic_net": ElasticNet,
    "box": Box,
    "simplex": RowSimplex,
    "norm_ball": RowNormBall,
    "monotone": MonotoneRows,
    "cardinality": RowCardinality,
    "smooth": ColumnSmoothness,
}


def available_constraints() -> tuple[str, ...]:
    """Names accepted by :func:`make_constraint`."""
    return tuple(sorted(_FACTORIES))


def make_constraint(spec: str | Constraint, **kwargs) -> Constraint:
    """Build a constraint from a name (or pass an instance through).

    Keyword arguments are forwarded to the constructor, e.g.
    ``make_constraint("l1", weight=0.1)``.
    """
    if isinstance(spec, Constraint):
        if kwargs:
            raise ValueError("cannot pass kwargs with a constraint instance")
        return spec
    try:
        factory = _FACTORIES[spec]
    except KeyError:
        raise ValueError(
            f"unknown constraint {spec!r}; available: "
            f"{', '.join(available_constraints())}") from None
    return factory(**kwargs)
