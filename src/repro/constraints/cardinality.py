"""Hard per-row cardinality (k-sparsity) constraint.

``r(H) = indicator{ nnz(H[i, :]) <= k  for every row }`` — the nonconvex
"exactly interpretable" alternative to L1.  The prox is the row-wise hard
threshold: keep each row's ``k`` largest-magnitude entries.  Nonconvex,
so ADMM is a heuristic here (standard practice; convergence to a local
point), but the prox itself is exact and row separable.
"""

from __future__ import annotations

import numpy as np

from ..validation import require
from .base import Constraint


def keep_top_k_rows(matrix: np.ndarray, k: int) -> np.ndarray:
    """Zero all but the ``k`` largest-|.| entries of every row."""
    matrix = np.asarray(matrix, dtype=np.float64)
    n, f = matrix.shape
    if k >= f or n == 0:
        return matrix.copy()
    # argpartition per row: indices of the f-k smallest |values|.
    drop = np.argpartition(np.abs(matrix), f - k - 1, axis=1)[:, :f - k]
    out = matrix.copy()
    np.put_along_axis(out, drop, 0.0, axis=1)
    return out


class RowCardinality(Constraint):
    """At most ``k`` non-zeros per row (hard sparsity)."""

    name = "cardinality"

    def __init__(self, k: int = 3, nonneg: bool = False):
        require(k >= 1, "k must be positive")
        self.k = int(k)
        #: Also clip to the non-negative orthant after thresholding.
        self.nonneg = bool(nonneg)

    def prox(self, matrix: np.ndarray, step: float) -> np.ndarray:
        if self.nonneg:
            matrix = np.maximum(matrix, 0.0)
        return keep_top_k_rows(matrix, self.k)

    def penalty(self, matrix: np.ndarray) -> float:
        return 0.0 if self.is_feasible(matrix) else float("inf")

    def is_feasible(self, matrix: np.ndarray, atol: float = 0.0) -> bool:
        counts = (np.abs(matrix) > atol).sum(axis=1)
        if (counts > self.k).any():
            return False
        if self.nonneg and (matrix < -1e-12).any():
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RowCardinality(k={self.k}, nonneg={self.nonneg})"
