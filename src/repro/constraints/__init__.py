"""Constraints and regularizations as proximity operators.

AO-ADMM's flexibility (the reason the paper builds on it) comes from the
fact that a new constraint only requires a proximity operator — line 8 of
Algorithm 1.  This subpackage implements the paper's examples
(non-negativity, L1 sparsity, row simplex) and several more, each flagged
with whether it is *row separable*, the property that legitimizes the
blockwise reformulation of Section IV-B.
"""

from .base import Constraint, Unconstrained
from .nonneg import NonNegative
from .l1 import L1, NonNegativeL1
from .l2 import L2Squared, ElasticNet
from .box import Box
from .simplex import RowSimplex, project_rows_simplex
from .maxnorm import RowNormBall
from .monotone import MonotoneRows, isotonic_projection_rows
from .cardinality import RowCardinality, keep_top_k_rows
from .smoothness import ColumnSmoothness
from .registry import make_constraint, available_constraints

__all__ = [
    "Constraint",
    "Unconstrained",
    "NonNegative",
    "L1",
    "NonNegativeL1",
    "L2Squared",
    "ElasticNet",
    "Box",
    "RowSimplex",
    "project_rows_simplex",
    "RowNormBall",
    "MonotoneRows",
    "isotonic_projection_rows",
    "RowCardinality",
    "keep_top_k_rows",
    "ColumnSmoothness",
    "make_constraint",
    "available_constraints",
]
