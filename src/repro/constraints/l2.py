"""Quadratic (ridge) regularization and the elastic net."""

from __future__ import annotations

import numpy as np

from ..validation import require
from .base import Constraint


class L2Squared(Constraint):
    """``r(H) = weight * ||H||_F^2``; prox is a uniform shrink.

    ``prox_{r, step}(V) = V / (1 + 2 * weight * step)``.
    """

    name = "l2"

    def __init__(self, weight: float = 0.1):
        require(weight >= 0.0, "L2 weight must be non-negative")
        self.weight = float(weight)

    def prox(self, matrix: np.ndarray, step: float) -> np.ndarray:
        matrix /= (1.0 + 2.0 * self.weight * step)
        return matrix

    def penalty(self, matrix: np.ndarray) -> float:
        return self.weight * float(np.einsum("ij,ij->", matrix, matrix))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"L2Squared(weight={self.weight})"


class ElasticNet(Constraint):
    """``r(H) = l1 * ||H||_1 + l2 * ||H||_F^2``.

    Prox composes exactly: soft-threshold then shrink.
    """

    name = "elastic_net"

    def __init__(self, l1: float = 0.1, l2: float = 0.1):
        require(l1 >= 0.0 and l2 >= 0.0, "weights must be non-negative")
        self.l1 = float(l1)
        self.l2 = float(l2)

    def prox(self, matrix: np.ndarray, step: float) -> np.ndarray:
        threshold = self.l1 * step
        out = np.abs(matrix)
        out -= threshold
        np.maximum(out, 0.0, out=out)
        out *= np.sign(matrix)
        out /= (1.0 + 2.0 * self.l2 * step)
        return out

    def penalty(self, matrix: np.ndarray) -> float:
        return (self.l1 * float(np.abs(matrix).sum())
                + self.l2 * float(np.einsum("ij,ij->", matrix, matrix)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ElasticNet(l1={self.l1}, l2={self.l2})"
