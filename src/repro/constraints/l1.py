"""L1 (lasso) regularization — the sparsity driver of Table II."""

from __future__ import annotations

import numpy as np

from ..validation import require
from .base import Constraint


class L1(Constraint):
    """``r(H) = weight * ||H||_1``; prox is soft thresholding.

    The paper's Table II uses ``weight = 1e-1`` on every factor to induce
    the dynamic factor sparsity the CSR/CSR-H kernels exploit.
    """

    name = "l1"

    def __init__(self, weight: float = 0.1):
        require(weight >= 0.0, "L1 weight must be non-negative")
        self.weight = float(weight)

    def prox(self, matrix: np.ndarray, step: float) -> np.ndarray:
        threshold = self.weight * step
        out = np.abs(matrix, out=None)
        out -= threshold
        np.maximum(out, 0.0, out=out)
        out *= np.sign(matrix)
        return out

    def penalty(self, matrix: np.ndarray) -> float:
        return self.weight * float(np.abs(matrix).sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"L1(weight={self.weight})"


class NonNegativeL1(Constraint):
    """Non-negativity plus L1: ``prox(v) = max(v - weight*step, 0)``.

    The composition is exact here (the orthant is invariant under soft
    thresholding), giving sparse *and* non-negative factors — the usual
    choice for interpretable topic-like components.
    """

    name = "nonneg_l1"

    def __init__(self, weight: float = 0.1):
        require(weight >= 0.0, "L1 weight must be non-negative")
        self.weight = float(weight)

    def prox(self, matrix: np.ndarray, step: float) -> np.ndarray:
        matrix -= self.weight * step
        return np.maximum(matrix, 0.0, out=matrix)

    def penalty(self, matrix: np.ndarray) -> float:
        if (matrix < 0).any():
            return float("inf")
        return self.weight * float(matrix.sum())

    def is_feasible(self, matrix: np.ndarray, atol: float = 1e-9) -> bool:
        return bool((matrix >= -atol).all())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NonNegativeL1(weight={self.weight})"
