"""Global defaults shared across the library.

Values follow the paper's experimental methodology (Section V-A):

* outer convergence when the relative error improves by less than ``1e-6``,
* at most ``200`` outer iterations,
* ADMM inner tolerance ``1e-2`` on both the primal and dual residuals (the
  standard AO-ADMM choice from Huang et al.),
* row blocks of ``50`` rows for the blocked reformulation (Section IV-B:
  "we empirically found that blocks of 50 rows offered a good trade-off"),
* factors treated as sparse when density drops below ``20%`` (Section V-E).
"""

from __future__ import annotations

from dataclasses import dataclass


#: Outer-loop convergence tolerance on relative-error improvement.
OUTER_TOLERANCE = 1e-6

#: Maximum number of outer AO iterations.
MAX_OUTER_ITERATIONS = 200

#: Inner ADMM tolerance on the relative primal and dual residuals.
ADMM_TOLERANCE = 1e-2

#: Maximum number of inner ADMM iterations per mode update.
MAX_ADMM_ITERATIONS = 50

#: Default number of rows per block in blocked ADMM.
DEFAULT_BLOCK_SIZE = 50

#: Density below which a factor is gainfully treated as sparse (Section V-E).
SPARSITY_THRESHOLD = 0.20

#: Default non-zeros per MTTKRP slab (Section IV-A slice parallelism,
#: generalized to nnz-balanced contiguous slice groups).  ~64k non-zeros
#: keep a slab's values + leaf ids around one megabyte — large enough to
#: amortize per-slab dispatch, small enough to load-balance skewed tensors.
DEFAULT_SLAB_NNZ = 65536

#: Slab-nnz targets the MTTKRP backend autotuner prices against each
#: other (:mod:`repro.kernels.autotune`).  The ladder spans roughly a
#: cache-resident slab (8k nnz) to a dispatch-amortizing one (256k nnz);
#: :data:`DEFAULT_SLAB_NNZ` is always included as a candidate.
AUTOTUNE_SLAB_LADDER = (8192, 65536, 262144)

#: Non-zeros a calibration probe runs over (a root-slice prefix of the
#: real tree, capped here so probing stays a fixed, small cost even on
#: huge tensors).
AUTOTUNE_PROBE_NNZ = 131072

#: Below this many non-zeros measured probes are noise-dominated (the
#: whole kernel runs in microseconds), so ``tune="measure"`` falls back
#: to the analytic model instead of timing anything.
AUTOTUNE_MIN_PROBE_NNZ = 16384


@dataclass(frozen=True)
class Defaults:
    """Immutable bundle of the library-wide defaults.

    Useful for passing a consistent configuration between components and for
    overriding everything at once in tests.
    """

    outer_tolerance: float = OUTER_TOLERANCE
    max_outer_iterations: int = MAX_OUTER_ITERATIONS
    admm_tolerance: float = ADMM_TOLERANCE
    max_admm_iterations: int = MAX_ADMM_ITERATIONS
    block_size: int = DEFAULT_BLOCK_SIZE
    sparsity_threshold: float = SPARSITY_THRESHOLD
    slab_nnz: int = DEFAULT_SLAB_NNZ


DEFAULTS = Defaults()
