"""Dataset substrate: synthetic stand-ins for the FROSTT corpora.

The paper evaluates on Reddit, NELL, Amazon, and Patents (Table I) —
95M to 3.5B non-zeros.  We cannot ship those, so each dataset gets a
seeded generator that reproduces its *shape statistics* — dimension
ratios, sparsity regime, per-mode power-law skew — at a tractable scale,
with planted non-negative low-rank structure so factorization converges
meaningfully.  Full-scale statistical descriptors (for the machine model)
are derived from the same specs without materializing any tensor.
"""

from .powerlaw import (
    zipf_weights,
    zipf_expected_counts,
    compressed_zipf_counts,
    distinct_values_estimate,
)
from .registry import (
    DatasetSpec,
    DATASETS,
    dataset_names,
    get_spec,
)
from .synthetic import generate_dataset
from .loader import load_dataset, clear_cache

__all__ = [
    "zipf_weights",
    "zipf_expected_counts",
    "compressed_zipf_counts",
    "distinct_values_estimate",
    "DatasetSpec",
    "DATASETS",
    "dataset_names",
    "get_spec",
    "generate_dataset",
    "load_dataset",
    "clear_cache",
]
