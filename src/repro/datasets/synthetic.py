"""Scaled synthetic instances of the Table I corpora.

Generation recipe (per dataset spec):

1. draw ground-truth non-negative factors whose **row magnitudes follow
   the spec's per-mode Zipf exponents** — the "prolific users / popular
   items" skew the blocked solver exploits;
2. sample non-zero coordinates from the CP model's own probability mass
   (so slice marginals inherit the skew and the tensor genuinely contains
   the planted structure); and
3. store the exact model values plus relative Gaussian noise, clipped
   non-negative.

The returned ground truth lets tests measure recovery (factor match
score), not just loss.
"""

from __future__ import annotations

import numpy as np

from ..tensor.coo import COOTensor
from ..tensor.random import _sample_coords_from_factors, cp_values_at
from ..types import SeedLike, VALUE_DTYPE, as_generator
from ..validation import require
from .powerlaw import zipf_weights
from .registry import DatasetSpec, get_spec


def skewed_factors(shape: tuple[int, ...], rank: int,
                   exponents: tuple[float, ...],
                   rng: np.random.Generator) -> list[np.ndarray]:
    """Non-negative factors with Zipf-distributed row magnitudes.

    Each row's scale is the Zipf weight of a randomly assigned rank, so
    the factor's marginal mass is heavy-tailed without all heavy rows
    being adjacent (coordinates get shuffled).
    """
    require(len(exponents) == len(shape),
            "one Zipf exponent per mode required")
    factors = []
    for extent, exponent in zip(shape, exponents):
        base = rng.uniform(0.2, 1.0, size=(extent, rank))
        scales = zipf_weights(extent, exponent) * extent
        rng.shuffle(scales)
        factors.append(np.ascontiguousarray(base * scales[:, None],
                                            dtype=VALUE_DTYPE))
    return factors


def generate_dataset(spec: DatasetSpec | str, preset: str = "small",
                     seed: SeedLike = None
                     ) -> tuple[COOTensor, list[np.ndarray]]:
    """Generate a scaled instance of *spec*; returns (tensor, truth factors).

    Deterministic for a fixed ``(spec, preset, seed)`` triple.  The default
    seed is derived from the dataset name so every dataset is reproducible
    yet distinct.
    """
    spec = get_spec(spec) if isinstance(spec, str) else spec
    scale = spec.preset(preset)
    if seed is None:
        seed = abs(hash(("repro-dataset", spec.name))) % (2**31)
    rng = as_generator(seed)

    truth = skewed_factors(scale.shape, spec.planted_rank,
                           spec.zipf_exponents, rng)

    # Structured part: factor-driven locations, exact model values,
    # duplicates summed (count data semantics).
    n_struct = scale.nnz
    coords = _sample_coords_from_factors(truth, n_struct, rng)
    vals = cp_values_at(truth, coords)
    if spec.noise > 0.0:
        rms = float(np.sqrt(np.mean(vals ** 2))) if vals.size else 0.0
        vals = vals + rng.normal(0.0, spec.noise * rms, size=vals.shape)
        np.maximum(vals, 0.0, out=vals)
    structured = COOTensor(coords, vals, scale.shape).deduplicate()

    tau = float(spec.unstructured_energy)
    if tau > 0.0 and structured.nnz:
        # Unstructured part: uniform coordinates over the skewed marginals'
        # support would re-concentrate, so draw fully uniform coordinates;
        # rescale its values so it carries exactly `tau` of total energy.
        n_bg = max(int(0.25 * scale.nnz), 1)
        bg_coords = np.vstack([
            rng.integers(0, extent, size=n_bg) for extent in scale.shape])
        bg_vals = rng.exponential(1.0, size=n_bg)
        bg = COOTensor(bg_coords, bg_vals, scale.shape).deduplicate()
        e_struct = structured.norm_squared()
        e_bg = bg.norm_squared()
        if e_bg > 0.0:
            bg.vals *= np.sqrt(tau / (1.0 - tau) * e_struct / e_bg)
            merged = COOTensor(
                np.hstack([structured.coords, bg.coords]),
                np.hstack([structured.vals, bg.vals]),
                scale.shape).deduplicate()
            structured = merged

    tensor = structured.drop_zeros()
    # Normalize to unit RMS value so regularization weights are comparable
    # across datasets and with the paper's 1e-1 L1 setting (relative error
    # is scale invariant, so nothing else changes).
    if tensor.nnz:
        rms = float(np.sqrt(np.mean(tensor.vals ** 2)))
        if rms > 0:
            tensor.vals /= rms
            truth = [f / rms ** (1.0 / len(truth)) for f in truth]
    return tensor, truth
