"""In-memory (and optional on-disk) dataset cache.

Benchmarks call :func:`load_dataset` repeatedly; generation is a few
seconds for the larger presets, so instances are memoized per
``(name, preset, seed)``.  Set ``cache_dir`` to persist as ``.tns`` files
between processes.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..tensor.coo import COOTensor
from ..tensor.io import read_tns, write_tns
from ..types import SeedLike
from .registry import get_spec
from .synthetic import generate_dataset

_MEMORY_CACHE: dict[tuple, tuple[COOTensor, list[np.ndarray] | None]] = {}


def clear_cache() -> None:
    """Drop all memoized datasets (tests use this to bound memory)."""
    _MEMORY_CACHE.clear()


def load_dataset(name: str, preset: str = "small", seed: SeedLike = None,
                 cache_dir: str | Path | None = None
                 ) -> tuple[COOTensor, list[np.ndarray] | None]:
    """Load (or generate) a dataset instance.

    Returns ``(tensor, truth_factors)``; the truth is ``None`` when the
    instance was re-read from a disk cache (factors are not persisted).
    """
    spec = get_spec(name)
    key = (spec.name, preset, None if isinstance(seed, np.random.Generator)
           else seed)
    if key in _MEMORY_CACHE:
        return _MEMORY_CACHE[key]

    if cache_dir is not None:
        path = Path(cache_dir) / f"{spec.name}-{preset}.tns"
        if path.exists():
            tensor = read_tns(path)
            result: tuple[COOTensor, list[np.ndarray] | None] = (tensor, None)
            _MEMORY_CACHE[key] = result
            return result

    tensor, truth = generate_dataset(spec, preset, seed)
    result = (tensor, truth)
    _MEMORY_CACHE[key] = result

    if cache_dir is not None:
        Path(cache_dir).mkdir(parents=True, exist_ok=True)
        write_tns(tensor, Path(cache_dir) / f"{spec.name}-{preset}.tns",
                  header=f"repro synthetic {spec.name} preset={preset}")
    return result
