"""Zipf / power-law utilities.

Real-world sparse tensors exhibit power-law non-zero distributions
(paper Section IV-B: "a product rating tensor ... will have some popular
items and prolific users, while on average each item and user only have a
few submitted ratings").  These helpers produce Zipf-distributed slice
masses both for generating scaled tensors and for describing full-scale
workloads analytically.
"""

from __future__ import annotations

import numpy as np

from ..validation import require


def zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Normalized Zipf probability over ``n`` ranks: ``p_r ~ r^-exponent``.

    ``exponent = 0`` degenerates to uniform.
    """
    require(n >= 1, "need at least one rank")
    require(exponent >= 0.0, "exponent must be non-negative")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def zipf_expected_counts(n: int, total: float,
                         exponent: float) -> np.ndarray:
    """Expected per-rank counts of *total* draws from a Zipf over *n* ranks."""
    return zipf_weights(n, exponent) * float(total)


def compressed_zipf_counts(n: int, total: float, exponent: float,
                           max_items: int = 65536
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Zipf expected counts compressed to at most *max_items* entries.

    Returns ``(counts, multiplicity)``: the first entries are the exact
    heavy head (multiplicity 1); the long tail is grouped into equal-rank
    bands whose members share the band's mean count.  Total mass
    ``sum(counts * multiplicity) == total`` is preserved exactly.

    This keeps full-scale descriptors (tens of millions of slices) small
    enough to replay through the machine scheduler, while preserving the
    head that actually causes load imbalance.
    """
    require(max_items >= 2, "need at least two items")
    if n <= max_items:
        counts = zipf_expected_counts(n, total, exponent)
        return counts, np.ones(n, dtype=np.int64)

    head_n = max_items // 2
    n_bands = max_items - head_n
    weights = zipf_weights(n, exponent)
    head = weights[:head_n] * total

    # Tail: group ranks head_n..n into equal-size bands.
    tail_weights = weights[head_n:]
    tail_total = tail_weights.sum() * total
    tail_n = n - head_n
    band_sizes = np.full(n_bands, tail_n // n_bands, dtype=np.int64)
    band_sizes[: tail_n % n_bands] += 1
    # Cumulative tail mass at band boundaries -> per-band mass.
    bounds = np.r_[0, np.cumsum(band_sizes)]
    cum = np.r_[0.0, np.cumsum(tail_weights)] * total
    band_mass = cum[bounds[1:]] - cum[bounds[:-1]]
    band_counts = band_mass / np.maximum(band_sizes, 1)

    counts = np.r_[head, band_counts]
    multiplicity = np.r_[np.ones(head_n, dtype=np.int64), band_sizes]
    return counts, multiplicity


def distinct_values_estimate(draws: np.ndarray | float,
                             universe: float) -> np.ndarray:
    """Expected distinct values among ``draws`` uniform picks from ``universe``.

    The balls-in-bins estimate ``U * (1 - exp(-d / U))`` — used to convert
    per-slice non-zero counts into per-slice fiber counts for the MTTKRP
    cost model (each fiber is a distinct middle-mode index within a slice).
    """
    require(universe >= 1, "universe must be positive")
    draws = np.asarray(draws, dtype=np.float64)
    return universe * (1.0 - np.exp(-draws / universe))
