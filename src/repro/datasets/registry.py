"""Dataset specifications mirroring the paper's Table I.

Each spec records the FROSTT tensor's full-scale shape and non-zero count
plus the statistical knobs (per-mode Zipf exponents, planted rank, noise)
used to generate shape-faithful scaled instances.  Scale presets:

* ``"tiny"`` — unit/integration tests (seconds).
* ``"small"`` — examples and convergence/fraction benchmarks.
* ``"medium"`` — the Table II timing runs.

Exponents are chosen to reproduce each corpus's qualitative skew: user/
item/word marginals are heavy-tailed (Reddit, Amazon), NELL's noun/verb
marginals extremely so (hypersparse with a dense core), while Patents'
year mode is short and near-uniform with word-word co-occurrence skew.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..validation import require


@dataclass(frozen=True)
class ScalePreset:
    """A generation size for a dataset."""

    shape: tuple[int, ...]
    nnz: int


@dataclass(frozen=True)
class DatasetSpec:
    """Statistical description of one corpus."""

    name: str
    #: Full-scale shape from Table I.
    full_shape: tuple[int, ...]
    #: Full-scale non-zero count from Table I.
    full_nnz: int
    #: Per-mode Zipf exponents of the marginal non-zero distributions.
    zipf_exponents: tuple[float, ...]
    #: Rank of the planted non-negative structure in generated instances.
    planted_rank: int
    #: Relative value noise of generated instances.
    noise: float
    #: Fraction of the tensor's energy carried by an unstructured
    #: (uniform-coordinate) component.  Real corpora are far from
    #: low-rank; this sets the achievable relative-error floor at
    #: roughly ``sqrt(unstructured_energy)``, letting each synthetic
    #: instance converge into its paper counterpart's error range.
    unstructured_energy: float = 0.0
    #: Scaled generation presets.
    presets: dict[str, ScalePreset] = field(default_factory=dict)
    description: str = ""

    def preset(self, name: str) -> ScalePreset:
        require(name in self.presets,
                f"dataset {self.name!r} has no preset {name!r}; "
                f"available: {sorted(self.presets)}")
        return self.presets[name]


DATASETS: dict[str, DatasetSpec] = {
    "reddit": DatasetSpec(
        name="reddit",
        full_shape=(310_000, 6_000, 510_000),
        full_nnz=95_000_000,
        zipf_exponents=(1.05, 0.80, 1.10),
        planted_rank=16,
        noise=0.2,
        unstructured_energy=0.74,
        presets={
            "tiny": ScalePreset((620, 60, 1020), 20_000),
            "small": ScalePreset((3100, 120, 5100), 250_000),
            "medium": ScalePreset((6200, 240, 10200), 700_000),
        },
        description="user x community x word comment counts (2007-2010)",
    ),
    "nell": DatasetSpec(
        name="nell",
        full_shape=(3_000_000, 2_000_000, 25_000_000),
        full_nnz=143_000_000,
        zipf_exponents=(1.25, 1.25, 1.35),
        planted_rank=16,
        noise=0.15,
        unstructured_energy=0.3,
        presets={
            "tiny": ScalePreset((3000, 2000, 9000), 15_000),
            "small": ScalePreset((20_000, 14_000, 60_000), 180_000),
            "medium": ScalePreset((40_000, 28_000, 120_000), 450_000),
        },
        description="noun x verb x noun triples (Never Ending Language "
                    "Learning); hypersparse with very long modes",
    ),
    "amazon": DatasetSpec(
        name="amazon",
        full_shape=(5_000_000, 18_000_000, 2_000_000),
        full_nnz=1_700_000_000,
        zipf_exponents=(1.00, 1.10, 0.95),
        planted_rank=16,
        noise=0.15,
        unstructured_energy=0.43,
        presets={
            "tiny": ScalePreset((1500, 4000, 700), 30_000),
            "small": ScalePreset((5000, 14_000, 2400), 400_000),
            "medium": ScalePreset((10_000, 28_000, 4800), 1_000_000),
        },
        description="user x item x word product reviews; non-zero heavy",
    ),
    "patents": DatasetSpec(
        name="patents",
        full_shape=(46, 240_000, 240_000),
        full_nnz=3_500_000_000,
        zipf_exponents=(0.10, 1.05, 1.05),
        planted_rank=16,
        noise=0.15,
        unstructured_energy=0.3,
        presets={
            "tiny": ScalePreset((46, 600, 600), 40_000),
            "small": ScalePreset((46, 2200, 2200), 500_000),
            "medium": ScalePreset((46, 4000, 4000), 1_200_000),
        },
        description="year x word x word co-occurrence probabilities; "
                    "short first mode, comparatively dense",
    ),
    # Not part of the paper's Table I: a four-mode FROSTT corpus that
    # exercises the general-order CSF/MTTKRP path (paper Figure 2 shows a
    # four-mode CSF; the algorithms are order-generic).
    "enron": DatasetSpec(
        name="enron",
        full_shape=(6_066, 5_699, 244_268, 1_176),
        full_nnz=54_000_000,
        zipf_exponents=(1.10, 1.10, 1.05, 0.30),
        planted_rank=12,
        noise=0.15,
        unstructured_energy=0.35,
        presets={
            "tiny": ScalePreset((300, 280, 1200, 60), 25_000),
            "small": ScalePreset((1200, 1100, 5000, 230), 300_000),
            "medium": ScalePreset((2400, 2200, 10_000, 470), 800_000),
        },
        description="sender x receiver x word x date e-mail corpus "
                    "(four modes; exercises general-order kernels)",
    ),
}


def dataset_names() -> tuple[str, ...]:
    """Names in the paper's Table I order."""
    return ("reddit", "nell", "amazon", "patents")


def all_dataset_names() -> tuple[str, ...]:
    """Every registered dataset, including the non-Table-I extras."""
    return tuple(DATASETS)


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by name."""
    require(name in DATASETS,
            f"unknown dataset {name!r}; available: {dataset_names()}")
    return DATASETS[name]
