"""Machine parameters.

``PAPER_MACHINE`` models the paper's testbed: two ten-core Intel Xeon
E5-2650v3 (Haswell, 2.3 GHz, 16 DP flops/cycle/core peak), 25 MB LLC per
socket, ~68 GB/s DRAM bandwidth per socket.  The bandwidth curve is the
usual saturating form — a single core sustains only a fraction of a
socket's bandwidth, and the aggregate plateaus well below ``cores x
single-core`` — which is precisely why the baseline's streaming ADMM stops
scaling (Section IV-B's "memory bandwidth" limitation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..validation import require


@dataclass(frozen=True)
class MachineSpec:
    """An analytical shared-memory machine."""

    #: Total cores (the paper machine has 2 x 10).
    cores: int = 20
    #: Peak double-precision flop rate of one core (flops/s).
    peak_flops_per_core: float = 36.8e9
    #: Read-dominated traffic (MTTKRP's streamed structure + gathers):
    #: single-core and saturated aggregate bandwidth (bytes/s).  Read
    #: streams scale close to linearly across the two sockets.
    read_bandwidth_single: float = 9e9
    read_bandwidth_peak: float = 105e9
    #: Read-modify-write streaming traffic (baseline ADMM's repeated
    #: passes over six tall matrices): write-allocate plus NUMA-remote
    #: stores cap the aggregate far below the read peak.
    stream_bandwidth_single: float = 11e9
    stream_bandwidth_peak: float = 60e9
    #: Total last-level cache (bytes); 2 x 25 MB for the paper machine.
    llc_bytes: int = 2 * 25 * 2**20
    #: Fixed + per-doubling cost of a barrier (seconds).
    barrier_base: float = 2e-6
    barrier_per_level: float = 1e-6
    #: Scheduler handshake per dynamically claimed chunk (seconds).
    dynamic_chunk_overhead: float = 5e-7
    #: Exposed latency of one dependent CSR row fetch (seconds) — the
    #: indptr -> indices/values chain of Section IV-C.
    csr_row_latency: float = 60e-9
    #: Outstanding misses one core overlaps (memory-level parallelism);
    #: divides the exposed latency of independent row chains.
    memory_parallelism: float = 8.0
    #: Fraction of CSR latency the hybrid's software prefetch hides while
    #: the dense prefix is being computed.
    prefetch_hide: float = 0.85

    def __post_init__(self) -> None:
        require(self.cores >= 1, "machine needs at least one core")
        require(self.read_bandwidth_peak >= self.read_bandwidth_single,
                "read peak below single-core bandwidth")
        require(self.stream_bandwidth_peak >= self.stream_bandwidth_single,
                "stream peak below single-core bandwidth")

    # ------------------------------------------------------------------
    def bandwidth(self, threads: int, kind: str = "read") -> float:
        """Sustained DRAM bandwidth with *threads* active (bytes/s).

        ``B(T) = min(T * single, peak)`` — linear until the memory
        controllers saturate.  ``kind`` selects the read-dominated or
        read-modify-write-streaming curve.
        """
        threads = min(max(int(threads), 1), self.cores)
        if kind == "read":
            single, peak = (self.read_bandwidth_single,
                            self.read_bandwidth_peak)
        elif kind == "stream":
            single, peak = (self.stream_bandwidth_single,
                            self.stream_bandwidth_peak)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown traffic kind {kind!r}")
        return min(threads * single, peak)

    def flops(self, threads: int, efficiency: float = 1.0) -> float:
        """Aggregate sustained flop rate for a kernel of given efficiency."""
        threads = min(max(int(threads), 1), self.cores)
        return self.peak_flops_per_core * efficiency * threads

    def barrier_cost(self, threads: int) -> float:
        """Cost of one barrier among *threads* (tree reduction model)."""
        threads = min(max(int(threads), 1), self.cores)
        if threads == 1:
            return 0.0
        return self.barrier_base + self.barrier_per_level * math.log2(threads)


#: The paper's evaluation machine (Section V-A).
PAPER_MACHINE = MachineSpec()
