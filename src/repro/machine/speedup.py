"""Scalability studies on the simulated machine (Figures 4 and 5).

``factorization_time`` times one outer AO-ADMM iteration — the kernel
sequence the real driver executes — at a given thread count;
``speedup_curve`` sweeps the paper's thread counts and normalizes by the
single-thread time.  Speedup is scale-free in the number of outer
iterations (every iteration runs the same kernels), so one iteration
suffices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..validation import require
from .cost import kernel_time
from .spec import MachineSpec, PAPER_MACHINE
from .workload import FactorizationWorkload

#: The thread counts of paper Figures 4-5.
THREAD_SWEEP = (1, 2, 4, 8, 10, 20)


@dataclass(frozen=True)
class SimulatedIteration:
    """Per-kernel seconds of one simulated outer iteration."""

    mttkrp_seconds: float
    admm_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.mttkrp_seconds + self.admm_seconds

    def fractions(self) -> dict[str, float]:
        """Figure-3-style kernel time fractions."""
        total = self.total_seconds
        if total <= 0:
            return {"mttkrp": 0.0, "admm": 0.0}
        return {"mttkrp": self.mttkrp_seconds / total,
                "admm": self.admm_seconds / total}


def factorization_time(workload: FactorizationWorkload, threads: int,
                       machine: MachineSpec = PAPER_MACHINE,
                       blocked: bool = False,
                       leaf_rep: str = "dense",
                       leaf_density: float = 1.0,
                       dense_col_frac: float = 0.05,
                       dense_col_share: float = 0.6) -> SimulatedIteration:
    """Simulate one outer iteration of AO-ADMM on *workload*.

    Parameters
    ----------
    blocked:
        Whether the inner solves use the blockwise reformulation.
    leaf_rep, leaf_density, dense_col_frac, dense_col_share:
        Deep-factor representation during MTTKRP (Table II's knobs).
    """
    require(threads >= 1, "threads must be positive")
    mttkrp = 0.0
    admm = 0.0
    for mode in workload.modes:
        mttkrp += kernel_time(
            mode.mttkrp_cost(workload.rank, machine, leaf_rep=leaf_rep,
                             leaf_density=leaf_density,
                             dense_col_frac=dense_col_frac,
                             dense_col_share=dense_col_share),
            threads, machine)
        admm += kernel_time(
            mode.admm_cost(workload.rank, machine, blocked=blocked),
            threads, machine)
    return SimulatedIteration(mttkrp_seconds=mttkrp, admm_seconds=admm)


def speedup_curve(workload: FactorizationWorkload,
                  machine: MachineSpec = PAPER_MACHINE,
                  blocked: bool = False,
                  threads: tuple[int, ...] = THREAD_SWEEP,
                  **kernel_kwargs) -> dict[int, float]:
    """Speedup over single-thread execution at each thread count.

    This regenerates one line of Figure 4 (``blocked=False``) or
    Figure 5 (``blocked=True``).
    """
    base = factorization_time(workload, 1, machine, blocked=blocked,
                              **kernel_kwargs).total_seconds
    out: dict[int, float] = {}
    for t in threads:
        current = factorization_time(workload, t, machine, blocked=blocked,
                                     **kernel_kwargs).total_seconds
        out[t] = base / current if current > 0 else float("inf")
    return out
