"""Kernel cost descriptors and the roofline-with-scheduling time model.

A :class:`KernelCost` is everything the simulator needs to time one kernel
execution at any thread count:

* total flops and a per-kernel compute efficiency (gather-heavy MTTKRP
  sustains a far lower fraction of peak than MKL's TRSM),
* total DRAM bytes (already cache-adjusted by the builders),
* optional per-work-item flop counts plus the schedule that distributes
  them (load imbalance comes out of replaying that schedule, exactly as
  the real runtime would distribute the work),
* barrier count and exposed serial latency.

``kernel_time`` combines them:

``time(T) = max(compute_makespan(T), dram_bytes / B(T) + latency/T)``
``        + barriers * barrier_cost(T) + chunk overheads``

— compute and memory overlap (out-of-order cores), synchronization does
not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..parallel.schedule import (
    DynamicSchedule,
    GuidedSchedule,
    StaticSchedule,
    run_schedule,
)
from ..validation import require
from .spec import MachineSpec

Schedule = StaticSchedule | DynamicSchedule | GuidedSchedule


@dataclass(frozen=True)
class KernelCost:
    """Machine-independent cost descriptor of one kernel execution."""

    #: Total floating-point operations.
    flops: float
    #: Total DRAM traffic in bytes (cache effects already applied).
    dram_bytes: float
    #: Sustained fraction of peak flops this kernel reaches on one core.
    compute_efficiency: float = 0.5
    #: Per-item flop counts for schedule replay (None = perfectly divisible).
    item_flops: np.ndarray | None = None
    #: How the items are distributed over threads.
    schedule: Schedule = field(default_factory=DynamicSchedule)
    #: Barriers executed during the kernel (baseline ADMM's fork-joins).
    barriers: int = 0
    #: Serial-dependency latency (seconds) exposed on the memory path,
    #: divided across threads (CSR row chains in sparse MTTKRP).
    latency_seconds: float = 0.0
    #: Which bandwidth curve the traffic uses: read-dominated ("read",
    #: MTTKRP) or read-modify-write streaming ("stream", baseline ADMM).
    traffic_kind: str = "read"

    def __post_init__(self) -> None:
        require(self.flops >= 0 and self.dram_bytes >= 0,
                "costs must be non-negative")
        require(0.0 < self.compute_efficiency <= 1.0,
                "efficiency must be in (0, 1]")

    def combined(self, other: "KernelCost") -> "KernelCost":
        """Aggregate two cost descriptors (schedules/items are dropped:
        combined costs are used for totals, not makespan replay)."""
        eff = ((self.flops * self.compute_efficiency
                + other.flops * other.compute_efficiency)
               / max(self.flops + other.flops, 1.0))
        return KernelCost(
            flops=self.flops + other.flops,
            dram_bytes=self.dram_bytes + other.dram_bytes,
            compute_efficiency=max(eff, 1e-3),
            barriers=self.barriers + other.barriers,
            latency_seconds=self.latency_seconds + other.latency_seconds,
            traffic_kind=self.traffic_kind,
        )


def kernel_time(cost: KernelCost, threads: int,
                machine: MachineSpec) -> float:
    """Simulated execution time of *cost* with *threads* threads."""
    require(threads >= 1, "threads must be positive")
    threads = min(threads, machine.cores)
    rate = machine.flops(threads, cost.compute_efficiency)

    sched_overhead = 0.0
    if cost.item_flops is not None and threads > 1:
        per_core = machine.peak_flops_per_core * cost.compute_efficiency
        durations = cost.item_flops / per_core
        outcome = run_schedule(
            durations, threads, cost.schedule,
            per_chunk_overhead=(
                machine.dynamic_chunk_overhead
                if not isinstance(cost.schedule, StaticSchedule) else 0.0))
        compute_time = outcome.makespan
    else:
        compute_time = cost.flops / rate

    memory_time = (
        cost.dram_bytes / machine.bandwidth(threads, cost.traffic_kind)
        + cost.latency_seconds
        / (threads * max(machine.memory_parallelism, 1.0)))
    time = max(compute_time, memory_time)
    time += cost.barriers * machine.barrier_cost(threads)
    return float(time + sched_overhead)
