"""Cache-residency traffic models.

Three access patterns matter in this workload, with very different DRAM
footprints:

* **streaming** — tall matrices passed over linearly every inner iteration
  (baseline ADMM): when the pass size exceeds the LLC nothing survives
  between passes, so every pass pays full traffic.
* **blocked** — a row block iterated repeatedly (blocked ADMM): the block
  working set is fetched once and stays resident while the block converges
  (Section IV-B's temporal locality), so traffic is first-touch only.
* **gather** — random-ish row reads of a factor (MTTKRP): misses depend on
  the factor's size relative to the cache, softened because CSF's sorted
  traversal gives ascending, prefetch-friendly index sequences.
"""

from __future__ import annotations

from ..validation import require


def miss_rate(working_set_bytes: float, llc_bytes: float,
              base: float = 0.02, cap: float = 0.5,
              locality: float = 0.045) -> float:
    """Fraction of gather accesses served from DRAM.

    ``base`` is the floor (cold/conflict misses when everything fits);
    above the LLC size the rate grows with the working-set ratio, damped
    by ``locality`` (CSF traversals visit leaf-factor rows in ascending
    index order per fiber, so adjacent accesses share lines and trigger
    hardware prefetch), and saturates at ``cap``.
    """
    require(llc_bytes > 0, "cache size must be positive")
    if working_set_bytes <= llc_bytes:
        return base
    ratio = working_set_bytes / llc_bytes
    return float(min(cap, base + locality * ratio))


def streaming_traffic(pass_bytes: float, passes: float,
                      llc_bytes: float) -> float:
    """DRAM traffic of *passes* linear sweeps over *pass_bytes*.

    A pass that fits in LLC is fetched once; larger passes pay full
    traffic every time (no reuse survives the sweep).
    """
    require(passes >= 0, "passes must be non-negative")
    if pass_bytes <= llc_bytes:
        return float(pass_bytes)
    return float(pass_bytes * passes)


def blocked_traffic(block_bytes: float, n_blocks: float,
                    iters_per_block: float, llc_bytes: float,
                    threads_sharing: int = 1) -> float:
    """DRAM traffic of per-block iterated sweeps.

    Each block is fetched once if its working set fits in the cache share
    of one thread; otherwise the overflow fraction is re-fetched every
    iteration.  This is the mechanism by which 50-row blocks turn the
    memory-bound baseline into compute-bound work.
    """
    require(threads_sharing >= 1, "threads_sharing must be positive")
    share = llc_bytes / threads_sharing
    if block_bytes <= share:
        return float(block_bytes * n_blocks)
    overflow = 1.0 - share / block_bytes
    per_block = block_bytes * (1.0 + overflow * max(iters_per_block - 1, 0))
    return float(per_block * n_blocks)
