"""Cost builders: translate kernel workloads into :class:`KernelCost`.

The builders mirror the real kernels' structure:

* MTTKRP (CSF root kernel) — per-slice work items, gather traffic for the
  deep factor with the cache model, per-fiber traffic for the middle
  factor, streamed tensor structure.  CSR / CSR-H representations change
  the gathered bytes and add row-chain latency (partially hidden by the
  hybrid's prefetch) — the Table II mechanics.
* baseline ADMM — per-inner-iteration streaming passes over six tall
  matrices plus four fork-join barriers per iteration.
* blocked ADMM — per-block compute items under a dynamic schedule, with
  first-touch-only DRAM traffic (the cache-residency payoff).

Compute efficiencies: gather-heavy MTTKRP sustains ~30% of peak; the
BLAS-3-ish ADMM substitutions ~80%.
"""

from __future__ import annotations

import numpy as np

from ..parallel.partition import balanced_chunks
from ..parallel.schedule import DynamicSchedule, StaticSchedule
from ..validation import require
from .cache import blocked_traffic, miss_rate, streaming_traffic
from .cost import KernelCost
from .spec import MachineSpec

#: Sustained fraction of peak for the irregular MTTKRP gather code.
MTTKRP_EFFICIENCY = 0.30
#: Sustained fraction of peak for the dense ADMM linear algebra.
ADMM_EFFICIENCY = 0.80

_BYTES = 8  # double precision
_IDX_BYTES = 8  # int64 indices


def mttkrp_kernel_cost(slice_nnz: np.ndarray, slice_fibers: np.ndarray,
                       rank: int, leaf_rows: int, mid_rows: int,
                       machine: MachineSpec,
                       leaf_rep: str = "dense",
                       leaf_density: float = 1.0,
                       dense_col_frac: float = 0.05,
                       dense_col_share: float = 0.6,
                       slab_nnz_target: "int | None" = None) -> KernelCost:
    """Cost of one root-mode MTTKRP.

    Parameters
    ----------
    slice_nnz, slice_fibers:
        Per-(non-empty-)slice non-zero and fiber counts — the schedulable
        work items.
    leaf_rows, mid_rows:
        Extents of the deep and middle factors (gather working sets).
    leaf_rep:
        ``"dense"``, ``"csr"``, or ``"csr-h"`` for the deep factor.
    leaf_density:
        Stored density of the deep factor (1.0 when dense).
    dense_col_frac:
        For ``"csr-h"``: fraction of the columns kept in the dense prefix.
        Every gather pays the full prefix width — this is the overhead
        that makes the hybrid lose on very long, mostly-empty modes
        (the paper's Amazon case).
    dense_col_share:
        For ``"csr-h"``: fraction of the stored non-zeros those prefix
        columns capture (removed from the CSR tail).
    slab_nnz_target:
        Replay the real kernels' slab decomposition: aggregate the
        per-slice items into nnz-balanced contiguous slabs (the same
        partitioner :class:`repro.tensor.tiling.CSFTiling` applies) and
        schedule slabs — not slices — as the dynamic work items.
        ``None`` keeps the per-slice granularity (the pre-tiling model).
    """
    slice_nnz = np.asarray(slice_nnz, dtype=np.float64)
    slice_fibers = np.asarray(slice_fibers, dtype=np.float64)
    require(slice_nnz.shape == slice_fibers.shape,
            "slice descriptors must align")
    require(leaf_rep in ("dense", "csr", "csr-h"),
            f"unknown representation {leaf_rep!r}")
    nnz = float(slice_nnz.sum())
    nfibers = float(slice_fibers.sum())
    nslices = float(slice_nnz.shape[0])

    # Flops: 2F per non-zero (scale + add) and 2F per fiber (scale + add),
    # scaled by the stored density when the leaf factor is compressed.
    leaf_flop_scale = leaf_density if leaf_rep != "dense" else 1.0
    item_flops = 2.0 * rank * (slice_nnz * leaf_flop_scale + slice_fibers)
    flops = float(item_flops.sum())

    # Tensor structure streamed once (values + leaf ids, fiber ids + ptrs).
    structure = (nnz * (_BYTES + _IDX_BYTES)
                 + nfibers * 2 * _IDX_BYTES
                 + nslices * 2 * _IDX_BYTES)

    # Deep-factor gather.
    row_bytes_dense = rank * _BYTES
    latency = 0.0
    if leaf_rep == "dense":
        ws = leaf_rows * row_bytes_dense
        gather = nnz * row_bytes_dense * miss_rate(ws, machine.llc_bytes)
    else:
        stored_row_bytes = leaf_density * rank * (_BYTES + _IDX_BYTES)
        ws = leaf_rows * (stored_row_bytes + _IDX_BYTES)
        if leaf_rep == "csr":
            gather = nnz * stored_row_bytes * miss_rate(ws, machine.llc_bytes)
            latency = nnz * machine.csr_row_latency
        else:  # csr-h
            # Dense prefix: every access reads the full prefix width,
            # stored zeros included; CSR tail: only its stored entries.
            prefix_bytes = dense_col_frac * rank * _BYTES
            tail_bytes = ((1.0 - dense_col_share) * leaf_density
                          * rank * (_BYTES + _IDX_BYTES))
            ws_h = leaf_rows * (prefix_bytes + tail_bytes + _IDX_BYTES)
            mr = miss_rate(ws_h, machine.llc_bytes)
            gather = nnz * (prefix_bytes + tail_bytes) * mr
            latency = (nnz * machine.csr_row_latency
                       * (1.0 - machine.prefetch_hide))

    # Middle-factor rows, one per fiber.
    mid_ws = mid_rows * row_bytes_dense
    mid = nfibers * row_bytes_dense * miss_rate(mid_ws, machine.llc_bytes)

    # Output rows: written (and read for the final store) once per slice.
    output = nslices * row_bytes_dense * 2

    # Slice items arrive rank-sorted from the descriptor builders; real
    # tensors interleave heavy and light slices, so shuffle
    # deterministically before replay (otherwise a dynamic chunk of
    # consecutive head slices fabricates imbalance that does not exist).
    n_items = item_flops.shape[0]
    item_nnz = slice_nnz
    if n_items > 1:
        perm = np.random.default_rng(0x5EED).permutation(n_items)
        item_flops = item_flops[perm]
        item_nnz = item_nnz[perm]
    if slab_nnz_target is not None and n_items:
        # Aggregate slices into the slabs the tiled kernels execute: the
        # slab is then the schedulable unit (claimed whole, chunk = 1).
        require(slab_nnz_target >= 1, "slab_nnz_target must be positive")
        n_slabs = max(1, int(-(-nnz // slab_nnz_target)))
        chunks = balanced_chunks(item_nnz, n_slabs)
        item_flops = np.array([float(item_flops[c].sum()) for c in chunks])
        n_items = item_flops.shape[0]
        chunk = 1
    else:
        chunk = max(1, n_items // (machine.cores * 512)) if n_items else 1
    return KernelCost(
        flops=flops,
        dram_bytes=structure + gather + mid + output,
        compute_efficiency=MTTKRP_EFFICIENCY,
        item_flops=item_flops,
        schedule=DynamicSchedule(chunk_size=chunk),
        barriers=1,
        latency_seconds=latency,
    )


def admm_baseline_cost(rows: int, rank: int, inner_iters: float,
                       machine: MachineSpec) -> KernelCost:
    """Cost of one full-matrix ADMM solve (paper Algorithm 1).

    Every inner iteration makes a linear pass over six ``rows x rank``
    matrices (K, H, U, aux, prev, residual scratch); four fork-join
    barriers separate the parallelized steps (solve / prox / dual /
    residual reduction).
    """
    require(inner_iters >= 0, "iteration count must be non-negative")
    per_iter_flops = rows * (2.0 * rank * rank + 12.0 * rank)
    chol_flops = rank ** 3 / 3.0
    pass_bytes = 6.0 * rows * rank * _BYTES
    traffic = streaming_traffic(pass_bytes, inner_iters, machine.llc_bytes)
    return KernelCost(
        flops=inner_iters * per_iter_flops + chol_flops,
        dram_bytes=traffic,
        compute_efficiency=ADMM_EFFICIENCY,
        item_flops=None,
        schedule=StaticSchedule(),
        barriers=int(round(4 * inner_iters)),
        traffic_kind="stream",
    )


def admm_blocked_cost(block_rows: np.ndarray, block_iters: np.ndarray,
                      rank: int, machine: MachineSpec) -> KernelCost:
    """Cost of one blocked ADMM solve (paper Section IV-B).

    Blocks are independent compute items claimed dynamically; each block's
    working set (five ``block_rows x rank`` panels) is fetched once and
    stays cache resident while the block iterates.
    """
    block_rows = np.asarray(block_rows, dtype=np.float64)
    block_iters = np.asarray(block_iters, dtype=np.float64)
    require(block_rows.shape == block_iters.shape,
            "block descriptors must align")
    per_row_iter_flops = 2.0 * rank * rank + 12.0 * rank
    item_flops = block_rows * block_iters * per_row_iter_flops
    chol_flops = rank ** 3 / 3.0

    avg_rows = float(block_rows.mean()) if block_rows.size else 0.0
    avg_iters = float(block_iters.mean()) if block_iters.size else 0.0
    block_bytes = 5.0 * avg_rows * rank * _BYTES
    traffic = blocked_traffic(block_bytes, block_rows.size, avg_iters,
                              machine.llc_bytes,
                              threads_sharing=machine.cores)
    return KernelCost(
        flops=float(item_flops.sum()) + chol_flops,
        dram_bytes=traffic,
        compute_efficiency=ADMM_EFFICIENCY,
        item_flops=item_flops,
        schedule=DynamicSchedule(chunk_size=1),
        barriers=1,
        traffic_kind="stream",
    )
