"""Full-scale workload descriptors for the machine simulator.

A :class:`FactorizationWorkload` captures, per mode, the schedulable work
of one outer AO-ADMM iteration at **paper scale** — per-slice MTTKRP items
and per-block ADMM items — without materializing any billion-non-zero
tensor.  Slice masses come from the dataset spec's Zipf marginals
(compressed head + banded tail, mass-exact); fiber counts from the
balls-in-bins estimate; ADMM iteration profiles either from a *measured*
scaled run or from a skew-derived default.

The simulator then times the identical kernel sequence the real driver
executes: for every mode, MTTKRP followed by the inner solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import DEFAULT_BLOCK_SIZE, MAX_ADMM_ITERATIONS
from ..datasets.powerlaw import (
    compressed_zipf_counts,
    distinct_values_estimate,
    zipf_weights,
)
from ..datasets.registry import DatasetSpec, get_spec
from ..validation import require
from .cost import KernelCost
from .kernels import admm_baseline_cost, admm_blocked_cost, mttkrp_kernel_cost
from .spec import MachineSpec


@dataclass(frozen=True)
class ModeWorkload:
    """One mode's per-outer-iteration work at full scale."""

    #: Rows of this mode's factor (the ADMM problem size).
    rows: int
    #: Extents of the deep and middle factors of this mode's CSF tree.
    leaf_rows: int
    mid_rows: int
    #: Per-slice non-zero / fiber counts (compressed: replay-ready items).
    slice_nnz: np.ndarray
    slice_fibers: np.ndarray
    #: Baseline ADMM inner iterations per outer iteration.
    inner_iters: float
    #: Blocked ADMM: per-block row counts and iteration counts.
    block_rows: np.ndarray
    block_iters: np.ndarray

    @property
    def nnz(self) -> float:
        """Total non-zeros seen by this mode's MTTKRP."""
        return float(self.slice_nnz.sum())

    def mttkrp_cost(self, rank: int, machine: MachineSpec,
                    leaf_rep: str = "dense", leaf_density: float = 1.0,
                    dense_col_frac: float = 0.05,
                    dense_col_share: float = 0.6,
                    slab_nnz_target: "int | None" = None) -> KernelCost:
        """MTTKRP cost for this mode (one call per outer iteration).

        Pass *slab_nnz_target* (e.g. from a measured
        :class:`repro.kernels.dispatch.MTTKRPCallStats` trace or the
        engine's configuration) to replay the slab-tiled decomposition
        instead of the per-slice one.
        """
        return mttkrp_kernel_cost(
            self.slice_nnz, self.slice_fibers, rank,
            self.leaf_rows, self.mid_rows, machine,
            leaf_rep=leaf_rep, leaf_density=leaf_density,
            dense_col_frac=dense_col_frac,
            dense_col_share=dense_col_share,
            slab_nnz_target=slab_nnz_target)

    def admm_cost(self, rank: int, machine: MachineSpec,
                  blocked: bool) -> KernelCost:
        """Inner-solve cost for this mode (one call per outer iteration)."""
        if blocked:
            return admm_blocked_cost(self.block_rows, self.block_iters,
                                     rank, machine)
        return admm_baseline_cost(self.rows, rank, self.inner_iters, machine)


@dataclass(frozen=True)
class FactorizationWorkload:
    """All modes of one outer iteration plus identification."""

    name: str
    rank: int
    modes: tuple[ModeWorkload, ...]

    @classmethod
    def from_spec(cls, spec: DatasetSpec | str, rank: int,
                  inner_iters: "float | list[float]" = 8.0,
                  block_size: int = DEFAULT_BLOCK_SIZE,
                  block_iter_profile: "list[np.ndarray] | None" = None,
                  max_items: int = 32768) -> "FactorizationWorkload":
        """Build a full-scale workload from a dataset spec.

        Parameters
        ----------
        inner_iters:
            Baseline inner-iteration count per outer iteration — a scalar
            or one value per mode; measure it on a scaled run for
            fidelity.
        block_iter_profile:
            Optional per-mode arrays of *measured* block iteration counts
            (from a scaled run's block reports); resampled to the
            full-scale block count.  Default derives block iterations from
            the mode's row skew (high-signal blocks iterate longer —
            Section IV-B).
        max_items:
            Compression budget for per-slice descriptors.
        """
        spec = get_spec(spec) if isinstance(spec, str) else spec
        nmodes = len(spec.full_shape)
        if isinstance(inner_iters, (int, float)):
            inner_list = [float(inner_iters)] * nmodes
        else:
            inner_list = [float(v) for v in inner_iters]
            require(len(inner_list) == nmodes,
                    "one inner-iteration count per mode required")

        modes = []
        for m in range(nmodes):
            others = [o for o in range(nmodes) if o != m]
            mid_mode, leaf_mode = others[0], others[-1]
            rows = spec.full_shape[m]
            counts, mult = compressed_zipf_counts(
                rows, spec.full_nnz, spec.zipf_exponents[m], max_items)
            fiber_universe = float(spec.full_shape[mid_mode])
            fibers = distinct_values_estimate(counts, fiber_universe)
            # Replay-ready items: the head stays one-item-per-slice; each
            # tail band (mass = counts * mult) is split into pieces no
            # larger than the largest head slice so band aggregation never
            # fabricates indivisible mega-items.
            slice_nnz, slice_fibers = _itemize_bands(counts, fibers, mult)

            block_rows_arr, block_iters_arr = _block_profile(
                rows, spec.full_nnz, spec.zipf_exponents[m], block_size,
                measured=(block_iter_profile[m]
                          if block_iter_profile is not None else None),
                inner_cap=MAX_ADMM_ITERATIONS)

            modes.append(ModeWorkload(
                rows=rows,
                leaf_rows=spec.full_shape[leaf_mode],
                mid_rows=spec.full_shape[mid_mode],
                slice_nnz=slice_nnz,
                slice_fibers=slice_fibers,
                inner_iters=inner_list[m],
                block_rows=block_rows_arr,
                block_iters=block_iters_arr,
            ))
        return cls(name=spec.name, rank=rank, modes=tuple(modes))


def measured_profile(result) -> tuple[list[float], list[np.ndarray] | None]:
    """Extract per-mode iteration profiles from a real factorization run.

    Returns ``(inner_iters, block_iter_profile)`` ready for
    :meth:`FactorizationWorkload.from_spec` — the bridge between the real
    scaled runs and the full-scale machine simulation.  ``result`` is a
    :class:`repro.core.aoadmm.FactorizationResult`; block profiles require
    the run to have used ``track_block_reports=True`` (otherwise ``None``).
    """
    records = result.trace.records
    require(len(records) > 0, "result has no iterations to profile")
    nmodes = len(records[0].inner_iterations)
    inner = [float(np.mean([r.inner_iterations[m] for r in records]))
             for m in range(nmodes)]

    block_profile: list[np.ndarray] | None = None
    if records[0].block_reports is not None:
        block_profile = []
        for m in range(nmodes):
            iters = np.concatenate([
                np.asarray(r.block_reports[m].block_iterations, dtype=float)
                for r in records])
            block_profile.append(iters)
    return inner, block_profile


def _itemize_bands(counts: np.ndarray, fibers: np.ndarray,
                   mult: np.ndarray,
                   pieces_per_band: int = 64
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Expand compressed (count, multiplicity) bands into schedulable items.

    Head entries (multiplicity 1) pass through unchanged.  Each tail band
    is emitted as up to *pieces_per_band* equal items carrying the band's
    total mass — small enough to schedule divisibly, few enough to stay
    cheap.  Mass totals are preserved exactly.
    """
    head = mult == 1
    nnz_items = [counts[head]]
    fib_items = [fibers[head]]
    tail_idx = np.flatnonzero(~head)
    for i in tail_idx:
        pieces = int(min(mult[i], pieces_per_band))
        nnz_items.append(np.full(pieces, counts[i] * mult[i] / pieces))
        fib_items.append(np.full(pieces, fibers[i] * mult[i] / pieces))
    return np.concatenate(nnz_items), np.concatenate(fib_items)


def _block_profile(rows: int, total_nnz: float, exponent: float,
                   block_size: int, measured: np.ndarray | None,
                   inner_cap: int,
                   max_blocks: int = 32768) -> tuple[np.ndarray, np.ndarray]:
    """Per-block (rows, iterations) descriptors for blocked ADMM.

    Without a measured profile, block iteration counts are derived from
    the Zipf row masses: a block's iteration count grows logarithmically
    with its rows' average non-zero mass relative to the mean — the
    high-signal-rows effect.  Blocks are formed over rank-ordered rows and
    then compressed to at most *max_blocks* items (masses preserved).
    """
    require(block_size >= 1, "block size must be positive")
    n_blocks = -(-rows // block_size)
    sizes = np.full(n_blocks, block_size, dtype=np.float64)
    if rows % block_size:
        sizes[-1] = rows % block_size

    if measured is not None and len(measured) > 0:
        measured = np.asarray(measured, dtype=np.float64)
        # Resample the measured block-iteration distribution (quantile
        # matching over block rank preserves its skew).
        q = (np.arange(n_blocks) + 0.5) / n_blocks
        iters = np.quantile(np.sort(measured)[::-1], 1 - q)
    else:
        budget = max(2, min(2 * n_blocks, 2 * max_blocks))
        counts, mult = compressed_zipf_counts(
            rows, total_nnz, exponent, max_items=budget)
        # Rank-quantile interpolation: each compressed item sits at the
        # centre of the rank range it represents.
        positions = (np.cumsum(mult) - mult / 2.0) / rows
        centers = (np.arange(n_blocks) + 0.5) / n_blocks
        per_row = np.interp(centers, positions, counts)
        mean = per_row.mean() if per_row.size else 1.0
        rel = per_row / max(mean, 1e-12)
        iters = np.clip(np.round(3.0 + 4.0 * np.log1p(rel)), 1, inner_cap)

    if n_blocks > max_blocks:
        # Band-compress: group blocks into max_blocks bands; each band item
        # represents its blocks' total rows at the band's mean iterations.
        bounds = np.linspace(0, n_blocks, max_blocks + 1).astype(np.int64)
        widths = np.diff(bounds)
        keep = widths > 0
        cum_rows = np.r_[0.0, np.cumsum(sizes)]
        band_rows = (cum_rows[bounds[1:]] - cum_rows[bounds[:-1]])[keep]
        cum_iters = np.r_[0.0, np.cumsum(iters * sizes)]
        band_mass = (cum_iters[bounds[1:]] - cum_iters[bounds[:-1]])[keep]
        band_iters = band_mass / np.maximum(band_rows, 1e-12)
        return band_rows, band_iters
    return sizes, np.asarray(iters, dtype=np.float64)
