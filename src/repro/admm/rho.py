"""Penalty-parameter (rho) policies.

The paper (Algorithm 1 line 3) fixes ``rho = trace(G) / F`` — the mean
eigenvalue of the Gram, which balances the data-fit and penalty curvatures.
Alternative policies are provided for the ablation benchmark.
"""

from __future__ import annotations

import abc

import numpy as np

from ..validation import require


class RhoPolicy(abc.ABC):
    """Maps the Gram matrix of a mode update to a penalty parameter."""

    name: str = "rho"

    @abc.abstractmethod
    def rho(self, gram: np.ndarray) -> float:
        """Penalty parameter for an inner solve with this Gram."""


class TraceRho(RhoPolicy):
    """The paper's default: ``rho = trace(G) / F`` (floored for safety)."""

    name = "trace"

    def __init__(self, floor: float = 1e-12):
        self.floor = float(floor)

    def rho(self, gram: np.ndarray) -> float:
        f = gram.shape[0]
        return max(float(np.trace(gram)) / max(f, 1), self.floor)


class FixedRho(RhoPolicy):
    """A constant rho (ablation baseline; sensitive to factor scaling)."""

    name = "fixed"

    def __init__(self, value: float):
        require(value > 0.0, "rho must be positive")
        self.value = float(value)

    def rho(self, gram: np.ndarray) -> float:
        return self.value


class NormalizedTraceRho(RhoPolicy):
    """``rho = scale * trace(G) / F`` — trace policy with a tunable scale."""

    name = "scaled_trace"

    def __init__(self, scale: float = 1.0, floor: float = 1e-12):
        require(scale > 0.0, "scale must be positive")
        self.scale = float(scale)
        self.floor = float(floor)

    def rho(self, gram: np.ndarray) -> float:
        f = gram.shape[0]
        return max(self.scale * float(np.trace(gram)) / max(f, 1), self.floor)


def make_rho_policy(spec: str | float | RhoPolicy) -> RhoPolicy:
    """Coerce a spec into a policy: name, positive number, or instance."""
    if isinstance(spec, RhoPolicy):
        return spec
    if isinstance(spec, (int, float)):
        return FixedRho(float(spec))
    if spec == "trace":
        return TraceRho()
    raise ValueError(f"unknown rho policy {spec!r}")
