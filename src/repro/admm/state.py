"""Per-mode ADMM state (primal + dual variables).

AO-ADMM warm-starts each mode's inner solve from the previous outer
iteration's primal and dual variables (Algorithm 2 passes ``A, A_dual``
back in) — this carry-over is a large part of its fast convergence, so the
state lives across outer iterations in this container.
"""

from __future__ import annotations

import numpy as np

from ..types import VALUE_DTYPE
from ..validation import check_factor, require


class AdmmState:
    """Primal factor ``H`` and scaled dual ``U`` for one tensor mode."""

    __slots__ = ("primal", "dual")

    def __init__(self, primal: np.ndarray, dual: np.ndarray | None = None):
        self.primal = check_factor(primal, name="primal")
        if dual is None:
            dual = np.zeros_like(self.primal)
        self.dual = check_factor(dual, name="dual")
        require(self.dual.shape == self.primal.shape,
                "dual must match primal shape")

    @property
    def rows(self) -> int:
        return self.primal.shape[0]

    @property
    def rank(self) -> int:
        return self.primal.shape[1]

    def copy(self) -> "AdmmState":
        """Deep copy (used when comparing solver variants on equal starts)."""
        return AdmmState(self.primal.copy(), self.dual.copy())

    def is_finite(self) -> bool:
        """True when both primal and dual are free of NaN/Inf."""
        return bool(np.isfinite(self.primal).all()
                    and np.isfinite(self.dual).all())

    def snapshot(self) -> tuple[np.ndarray, np.ndarray]:
        """Owned copies of ``(primal, dual)`` for checkpoints/rollback."""
        return self.primal.copy(), self.dual.copy()

    @classmethod
    def from_snapshot(cls, primal: np.ndarray,
                      dual: np.ndarray) -> "AdmmState":
        """Rebuild a state from :meth:`snapshot` output (copies taken)."""
        return cls(np.array(primal, copy=True), np.array(dual, copy=True))

    @classmethod
    def from_factor(cls, factor: np.ndarray) -> "AdmmState":
        """Fresh state around an initial factor with zero duals."""
        return cls(np.array(factor, dtype=VALUE_DTYPE, copy=True))
