"""Analytical block-size selection (the paper's stated future work).

Section VI: "an analytical model of the ADMM algorithm could provide a
method of choosing block sizes."  This module provides that model.

Three effects bound the useful block-size range:

* **cache residency** (upper bound) — a block's working set (five
  ``b x F`` panels: K, H, U, aux, prev) must fit in one thread's share of
  the last-level cache, or the per-iteration passes spill to DRAM and the
  blocked variant degenerates to the baseline's memory-bound behaviour;
* **scheduling overhead** (lower bound) — each block pays a dynamic-
  scheduling handshake plus Python/call fixed costs, so a block must
  carry enough arithmetic to amortize them;
* **load balance** (upper bound) — with ``B`` blocks over ``T`` threads,
  dynamic self-scheduling wastes up to ``max_block_cost`` at the tail;
  keeping ``B >= balance_factor * T`` bounds the waste.
* **convergence granularity** (upper bound) — a block iterates until its
  slowest row converges, so with per-row iteration needs of coefficient
  of variation ``iter_cv`` the expected waste grows like
  ``iter_cv * sqrt(2 ln b)`` (the Gaussian max of ``b`` draws);
  bounding that waste at ``conv_waste`` caps the block size at
  ``exp((conv_waste / iter_cv)^2 / 2)``.

``recommend_block_size`` intersects the constraints and returns the
largest block size inside them (larger blocks amortize overhead best).
On the paper machine at rank 50 with the default calibration this lands
in the tens of rows — the regime of the paper's empirical choice of 50.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..machine.spec import MachineSpec, PAPER_MACHINE
from ..validation import require

#: Matrix panels live per block during the inner iterations.
_PANELS = 5
_BYTES = 8


@dataclass(frozen=True)
class BlockSizeModel:
    """The three bounds and the resulting recommendation."""

    #: Largest block whose working set is cache resident per thread.
    cache_bound: int
    #: Smallest block that amortizes per-block overhead to `overhead_frac`.
    overhead_bound: int
    #: Largest block leaving >= balance_factor * threads blocks.
    balance_bound: int
    #: Largest block whose worst-row convergence waste stays bounded.
    convergence_bound: int
    #: The recommendation (clipped intersection).
    recommended: int

    def explain(self) -> str:
        """Human-readable account of the trade-off."""
        return (f"block size in [{self.overhead_bound}, "
                f"min({self.cache_bound} cache, {self.balance_bound} "
                f"balance, {self.convergence_bound} convergence)] "
                f"-> {self.recommended}")


def recommend_block_size(rows: int, rank: int,
                         machine: MachineSpec = PAPER_MACHINE,
                         threads: int | None = None,
                         inner_iterations: float = 10.0,
                         overhead_frac: float = 0.02,
                         per_block_overhead: float | None = None,
                         balance_factor: int = 8,
                         iter_cv: float = 0.20,
                         conv_waste: float = 0.60) -> BlockSizeModel:
    """Recommend a blocked-ADMM block size for a mode of *rows* rows.

    Parameters
    ----------
    inner_iterations:
        Expected inner iterations per block (amortizes the fixed costs).
    overhead_frac:
        Acceptable fraction of a block's compute spent on scheduling
        overhead (sets the lower bound).
    per_block_overhead:
        Seconds of fixed cost per block; defaults to the machine's
        dynamic-chunk handshake.
    balance_factor:
        Required blocks-per-thread for dynamic load balancing.
    iter_cv:
        Coefficient of variation of per-row inner-iteration needs
        (measure it from a run's block reports for a specific dataset).
    conv_waste:
        Acceptable fraction of extra iterations spent on rows that
        converged before their block did.
    """
    require(rows >= 1 and rank >= 1, "rows and rank must be positive")
    threads = threads or machine.cores
    if per_block_overhead is None:
        per_block_overhead = machine.dynamic_chunk_overhead

    # Cache bound: 5 * b * F * 8 <= LLC / threads.
    cache_bound = max(
        1, int(machine.llc_bytes / threads / (_PANELS * rank * _BYTES)))

    # Overhead bound: per-block fixed cost <= overhead_frac of the
    # block's compute across its inner iterations.
    per_row_iter_flops = 2.0 * rank * rank + 12.0 * rank
    per_row_seconds = (per_row_iter_flops * inner_iterations
                       / (machine.peak_flops_per_core * 0.8))
    overhead_bound = max(
        1, int(per_block_overhead / (overhead_frac * per_row_seconds)) + 1)

    # Balance bound: at least balance_factor * threads blocks.
    balance_bound = max(1, rows // (balance_factor * threads))

    # Convergence bound: expected per-block iteration waste
    # iter_cv * sqrt(2 ln b) <= conv_waste.
    require(iter_cv >= 0 and conv_waste > 0, "bad convergence parameters")
    if iter_cv == 0:
        convergence_bound = rows
    else:
        convergence_bound = max(
            1, int(math.exp(0.5 * (conv_waste / iter_cv) ** 2)))

    upper = min(cache_bound, balance_bound, convergence_bound)
    recommended = max(min(upper, rows), min(overhead_bound, rows), 1)
    return BlockSizeModel(cache_bound=cache_bound,
                          overhead_bound=overhead_bound,
                          balance_bound=balance_bound,
                          convergence_bound=convergence_bound,
                          recommended=recommended)
