"""Relative primal and dual ADMM residuals (Algorithm 1, lines 10-11)."""

from __future__ import annotations

import numpy as np

_TINY = 1e-30


def _sqnorm(matrix: np.ndarray) -> float:
    return float(np.einsum("ij,ij->", matrix, matrix))


def relative_residuals(primal: np.ndarray, aux: np.ndarray,
                       primal_prev: np.ndarray,
                       dual: np.ndarray) -> tuple[float, float]:
    """Return ``(r, s)``:

    ``r = ||H - H_tilde||_F^2 / ||H||_F^2`` — primal residual (constraint
    violation between the primal and auxiliary copies), and
    ``s = ||H - H_prev||_F^2 / ||U||_F^2`` — dual residual (primal update
    magnitude scaled by the dual).

    Denominators are floored so the first iterations (H or U all zero)
    never divide by zero; in that regime the residuals are intentionally
    huge and the loop continues.
    """
    r = _sqnorm(primal - aux) / max(_sqnorm(primal), _TINY)
    s = _sqnorm(primal - primal_prev) / max(_sqnorm(dual), _TINY)
    return r, s
