"""ADMM inner solvers: full-matrix (Algorithm 1) and blocked (Section IV-B)."""

from .state import AdmmState
from .rho import RhoPolicy, TraceRho, FixedRho, NormalizedTraceRho, make_rho_policy
from .residuals import relative_residuals
from .solver import AdmmReport, admm_update
from .blocked import BlockedAdmmReport, blocked_admm_update
from .blocksize import BlockSizeModel, recommend_block_size

__all__ = [
    "BlockSizeModel",
    "recommend_block_size",
    "AdmmState",
    "RhoPolicy",
    "TraceRho",
    "FixedRho",
    "NormalizedTraceRho",
    "make_rho_policy",
    "relative_residuals",
    "AdmmReport",
    "admm_update",
    "BlockedAdmmReport",
    "blocked_admm_update",
]
