"""Full-matrix ADMM for one mode's subproblem (paper Algorithm 1).

Solves

``min_H  1/2 ||X_(m) - H (KR of others)^T||_F^2 + r(H)``

given the precomputed MTTKRP ``K`` and Gram ``G``.  The Cholesky factor of
``G + rho I`` is computed once; every inner iteration then costs one
``O(F^2 I)`` substitution pass (line 6) plus the prox and residuals — all
linear passes over the tall matrices, which is exactly the memory-bound
behaviour the blocked variant attacks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ADMM_TOLERANCE, MAX_ADMM_ITERATIONS
from ..constraints.base import Constraint
from ..linalg.cholesky import CholeskyFactor
from ..observability import span
from ..validation import require
from .residuals import relative_residuals
from .rho import RhoPolicy, TraceRho
from .state import AdmmState


@dataclass(frozen=True)
class AdmmReport:
    """Outcome of one inner ADMM solve."""

    iterations: int
    rho: float
    primal_residual: float
    dual_residual: float
    converged: bool
    #: Diagonal jitter the Cholesky of ``G + rho I`` needed (0.0 normally;
    #: positive when an L1-killed rank-deficient Gram had to be repaired).
    jitter_added: float = 0.0


def admm_update(state: AdmmState, mttkrp: np.ndarray, gram: np.ndarray,
                constraint: Constraint,
                rho_policy: RhoPolicy | None = None,
                tolerance: float = ADMM_TOLERANCE,
                max_iterations: int = MAX_ADMM_ITERATIONS) -> AdmmReport:
    """Run Algorithm 1, updating *state* in place.

    Parameters
    ----------
    state:
        Warm-started primal/dual pair for this mode; mutated in place.
    mttkrp:
        ``K = X_(m) (KR of other factors)``, shape ``(I_m, F)``.
    gram:
        ``G = hadamard of other Grams``, shape ``(F, F)``.
    constraint:
        Penalty whose prox implements line 8.
    rho_policy:
        Penalty parameter rule; defaults to the paper's ``trace(G)/F``.
    tolerance:
        Threshold on **both** relative residuals (line 12).
    max_iterations:
        Safety cap on inner iterations.
    """
    require(mttkrp.shape == state.primal.shape,
            "MTTKRP output must match the primal shape")
    rank = state.rank
    require(gram.shape == (rank, rank), "Gram must be F x F")

    rho = (rho_policy or TraceRho()).rho(gram)
    chol = CholeskyFactor(gram + rho * np.eye(rank))

    primal, dual = state.primal, state.dual
    iterations = 0
    r = s = float("inf")
    converged = False
    with span("admm.solve", rows=state.rows):
        while iterations < max_iterations:
            iterations += 1
            # Line 6: solve (G + rho I) H_tilde^T = (K + rho (H + U))^T.
            aux = chol.solve_t(mttkrp + rho * (primal + dual))
            primal_prev = primal.copy()
            # Line 8: proximity operator with step 1/rho.
            primal = constraint.prox(aux - dual, 1.0 / rho)
            # Line 9: dual ascent.
            dual = dual + primal - aux
            # Lines 10-11.
            r, s = relative_residuals(primal, aux, primal_prev, dual)
            if r < tolerance and s < tolerance:
                converged = True
                break

    state.primal = primal
    state.dual = dual
    return AdmmReport(iterations=iterations, rho=rho, primal_residual=r,
                      dual_residual=s, converged=converged,
                      jitter_added=chol.jitter_added)
