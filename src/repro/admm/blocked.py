"""Blockwise ADMM (paper Section IV-B).

The mode subproblem is split into ``B`` row blocks

``min sum_b 1/2 ||(X_(m))_b - H_b (KR)^T||^2 + r(H_b)``
``s.t. H_b = H_tilde_b  for every block``

which is exact whenever the prox is row separable.  Each block then runs
Algorithm 1 **to its own convergence**:

* high-signal blocks take the extra iterations they need instead of being
  stopped by the aggregate criterion, and low-signal blocks stop early
  instead of being dragged along (non-uniform convergence);
* a block's primal/dual/aux working set is ~``3 * block_rows * F`` doubles
  — cache resident for the paper's default of 50 rows — so the repeated
  linear passes hit cache instead of DRAM (memory bandwidth);
* blocks share nothing, so the only parallel coordination is the dynamic
  claiming of block indices (synchronization elimination).

The Cholesky factor of ``G + rho I`` is mode-global (every block shares G
and hence rho), computed once and reused by all blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ADMM_TOLERANCE, DEFAULT_BLOCK_SIZE, MAX_ADMM_ITERATIONS
from ..constraints.base import Constraint
from ..linalg.cholesky import CholeskyFactor
from ..observability import span
from ..parallel.partition import row_blocks
from ..parallel.threadpool import parallel_for
from ..validation import require
from .residuals import relative_residuals
from .rho import RhoPolicy, TraceRho
from .state import AdmmState


@dataclass(frozen=True)
class BlockedAdmmReport:
    """Outcome of one blocked inner solve."""

    #: Inner iterations performed by every block (length = #blocks).
    block_iterations: tuple[int, ...]
    #: Rows per block (parallel work-item sizes for the machine model).
    block_rows: tuple[int, ...]
    rho: float
    converged: bool
    #: Diagonal jitter the mode-global Cholesky needed (shared by every
    #: block; 0.0 unless the Gram was rank deficient / indefinite).
    jitter_added: float = 0.0

    @property
    def iterations(self) -> int:
        """Maximum block iteration count (the critical path)."""
        return max(self.block_iterations) if self.block_iterations else 0

    @property
    def total_row_iterations(self) -> int:
        """sum over blocks of rows * iterations — the actual work done."""
        return int(sum(r * i for r, i in
                       zip(self.block_rows, self.block_iterations)))


def _solve_block(block: slice, primal: np.ndarray, dual: np.ndarray,
                 mttkrp: np.ndarray, chol: CholeskyFactor, rho: float,
                 constraint: Constraint, tolerance: float,
                 max_iterations: int) -> tuple[slice, np.ndarray, np.ndarray,
                                               int, bool]:
    """Algorithm 1 restricted to one row block; returns the updated rows."""
    h = primal[block].copy()
    u = dual[block].copy()
    k = mttkrp[block]
    iterations = 0
    converged = False
    with span("admm.block", rows=block.stop - block.start):
        while iterations < max_iterations:
            iterations += 1
            aux = chol.solve_t(k + rho * (h + u))
            h_prev = h
            h = constraint.prox(aux - u, 1.0 / rho)
            u = u + h - aux
            r, s = relative_residuals(h, aux, h_prev, u)
            if r < tolerance and s < tolerance:
                converged = True
                break
    return block, h, u, iterations, converged


def blocked_admm_update(state: AdmmState, mttkrp: np.ndarray,
                        gram: np.ndarray, constraint: Constraint,
                        rho_policy: RhoPolicy | None = None,
                        tolerance: float = ADMM_TOLERANCE,
                        max_iterations: int = MAX_ADMM_ITERATIONS,
                        block_size: int = DEFAULT_BLOCK_SIZE,
                        threads: int | None = 1) -> BlockedAdmmReport:
    """Run blockwise ADMM, updating *state* in place.

    Parameters mirror :func:`repro.admm.solver.admm_update` plus:

    block_size:
        Rows per block; the paper's default is 50.  ``block_size >= rows``
        degenerates to the unblocked algorithm (one block).
    threads:
        Thread count for the real pool (``None`` = auto).  Results are
        bit-identical for any thread count — blocks are independent.
    """
    require(constraint.row_separable,
            f"constraint {constraint.name!r} is not row separable; "
            "the blockwise reformulation does not apply (Section IV-B)")
    require(mttkrp.shape == state.primal.shape,
            "MTTKRP output must match the primal shape")
    rank = state.rank
    require(gram.shape == (rank, rank), "Gram must be F x F")

    rho = (rho_policy or TraceRho()).rho(gram)
    chol = CholeskyFactor(gram + rho * np.eye(rank))
    blocks = row_blocks(state.rows, block_size)

    primal, dual = state.primal, state.dual
    results = parallel_for(
        lambda blk: _solve_block(blk, primal, dual, mttkrp, chol, rho,
                                 constraint, tolerance, max_iterations),
        blocks, threads=threads)

    iterations: list[int] = []
    rows: list[int] = []
    all_converged = True
    for block, h, u, iters, conv in results:
        primal[block] = h
        dual[block] = u
        iterations.append(iters)
        rows.append(block.stop - block.start)
        all_converged &= conv

    return BlockedAdmmReport(block_iterations=tuple(iterations),
                             block_rows=tuple(rows), rho=rho,
                             converged=all_converged,
                             jitter_added=chol.jitter_added)
