"""Command-line interface.

Mirrors the workflows SPLATT's ``splatt`` binary offers:

* ``python -m repro stats <file.tns>`` — dataset summary (Table I style).
* ``python -m repro factorize <file.tns> --rank 16 --constraint nonneg``
  — run AO-ADMM, print the convergence trace, optionally save factors.
* ``python -m repro generate reddit --preset small out.tns`` — write a
  synthetic corpus to disk.
* ``python -m repro tune <file.tns> --rank 16`` — report the MTTKRP
  backend autotuner's per-mode decisions (model or measured).
* ``python -m repro simulate reddit --rank 50`` — the Figure 4/5 speedup
  curves on the simulated machine.
* ``python -m repro fsck <path> [--repair] [--source t.tns]`` — scrub
  sharded stores, checkpoints, and tuning caches against their
  checksums; exit 0 when clean, 4 when unrepaired corruption remains.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_stats(args: argparse.Namespace) -> int:
    from .bench.tables import format_table
    from .tensor.coo import COOTensor
    from .tensor.stats import compute_stats
    from .tensor.store import open_tensor

    tensor = open_tensor(args.tensor)
    if not isinstance(tensor, COOTensor):
        # Fiber/skew statistics need explicit coordinates; a store's
        # summary view expands once, here, not in the fit path.
        tensor = tensor.to_coo()
    stats = compute_stats(tensor)
    rows = [{
        "NNZ": stats.nnz,
        "shape": "x".join(str(s) for s in stats.shape),
        "density": f"{stats.density:.3e}",
        "fibers/mode": "/".join(str(f) for f in stats.fibers_per_mode),
        "skew(gini)/mode": "/".join(f"{g:.2f}" for g in stats.slice_skew),
    }]
    print(format_table(rows, title=str(args.tensor)))
    return 0


def _cmd_factorize(args: argparse.Namespace) -> int:
    from .constraints.registry import make_constraint
    from .core.aoadmm import fit_aoadmm
    from .core.options import options_from_kwargs
    from .tensor.store import open_tensor

    tensor = open_tensor(args.tensor,
                         max_bytes_in_core=args.max_bytes_in_core)
    constraint = make_constraint(
        args.constraint,
        **({"weight": args.weight} if args.constraint in
           ("l1", "nonneg_l1", "l2") else {}))
    # Same flat-kwargs -> Options translation path the fit_aoadmm shim
    # uses, so CLI flags and legacy kwargs can never drift apart.
    options = options_from_kwargs(
        rank=args.rank,
        constraints=constraint,
        blocked=not args.unblocked,
        block_size=args.block_size,
        representation=args.repr,
        seed=args.seed,
        max_iter=args.max_iterations,
        tol=args.tolerance,
        guard_policy=args.guard_policy,
        checkpoint_every=args.checkpoint_every,
        checkpoint_path=args.checkpoint,
        checkpoint_keep_last=args.keep_last,
        max_bytes_in_core=args.max_bytes_in_core,
        tune=args.tune,
    )
    report = None
    if args.supervise:
        from .robustness.supervisor import FitSupervisor
        result, report = FitSupervisor(
            tensor, options, resume_from=args.resume).run()
    else:
        result = fit_aoadmm(tensor, options, resume_from=args.resume)
    for record in result.trace.records:
        if args.verbose or record.iteration == len(result.trace):
            print(f"iter {record.iteration:4d}  "
                  f"err {record.relative_error:.6f}  "
                  f"mttkrp {record.mttkrp_seconds:.2f}s  "
                  f"admm {record.admm_seconds:.2f}s  "
                  f"inner {record.inner_iterations}")
    print(f"stopped: {result.stop_reason}; relative error "
          f"{result.relative_error:.6f}; "
          f"total {result.trace.total_seconds():.1f}s")
    if report is not None and (report.recovered or report.preempted
                               or report.stalls):
        print(f"supervisor: {report.attempts} attempt(s), "
              f"{report.stalls} stall(s), "
              f"degradations: {report.degradations or 'none'}")
    if result.stop_reason == "preempted":
        print("preempted; resume with --resume "
              f"{result.options.checkpoint_path}")
        return 3
    if args.output:
        saved = {f"mode{m}": f
                 for m, f in enumerate(result.model.factors)}
        np.savez(args.output, **saved)
        print(f"factors saved to {args.output}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from .kernels.autotune import BackendAutotuner, TuningCache
    from .kernels.dispatch import make_engine
    from .tensor.store import open_tensor

    tensor = open_tensor(args.tensor)
    if hasattr(tensor, "to_coo") and not hasattr(tensor, "coords"):
        # Streaming stores keep their on-disk slabbing; expand once for
        # a tuning report (the report is advisory, not a fit).
        tensor = tensor.to_coo()
    engine = make_engine(tensor, threads=args.threads, tune="off")
    cache = TuningCache(args.cache) if args.cache else None
    tuner = BackendAutotuner(mode=args.mode, cache=cache,
                             probe_repeats=args.repeats)
    report = tuner.tune_engine(engine, args.rank)
    print(report.format_table())
    if tuner.cache is not None:
        print(f"tuning cache: {tuner.cache.path}")
    engine.close()
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .tensor.store import META_FILE, ShardedTensorStore, open_tensor

    # Look before writing: a target directory that exists but is not a
    # store (no meta.json) is somebody's data — refuse to shard into
    # it rather than scattering modeN/ directories over it.
    output = Path(args.output)
    if output.exists():
        if (output / META_FILE).exists():
            print(f"{output} already contains a sharded store; "
                  f"remove it first to re-shard")
            return 2
        if any(output.iterdir()):
            print(f"{output} exists and is not a sharded store "
                  f"(no {META_FILE}); refusing to overwrite it — "
                  f"pick an empty or new directory")
            return 2
    tensor = open_tensor(args.tensor)
    if isinstance(tensor, ShardedTensorStore):
        print(f"{args.tensor} is already a sharded store")
        return 2
    store = ShardedTensorStore.create(tensor, output,
                                      slab_nnz_target=args.slab_nnz)
    slabs = "/".join(str(store.slab_count(m)) for m in range(store.nmodes))
    print(f"{store} -> {args.output} (slabs per mode: {slabs})")
    store.close()
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    from .integrity.fsck import fsck_path

    source = None
    if args.source is not None:
        from .tensor.coo import COOTensor
        from .tensor.store import open_tensor

        source = open_tensor(args.source)
        if not isinstance(source, COOTensor):
            print(f"--source {args.source} must be an in-core tensor "
                  f"file (.tns), not a store")
            return 2
    report = fsck_path(args.path, repair=args.repair, source=source)
    if args.json:
        print(report.to_json())
    else:
        print(report.summary())
    return 0 if report.ok else 4


def _cmd_generate(args: argparse.Namespace) -> int:
    from .datasets.synthetic import generate_dataset
    from .tensor.io import write_tns

    tensor, _ = generate_dataset(args.dataset, args.preset, seed=args.seed)
    write_tns(tensor, args.output,
              header=f"repro synthetic {args.dataset} "
                     f"preset={args.preset} seed={args.seed}")
    print(f"{tensor} -> {args.output}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .machine.speedup import THREAD_SWEEP, speedup_curve
    from .machine.workload import FactorizationWorkload

    workload = FactorizationWorkload.from_spec(args.dataset, rank=args.rank)
    header = "variant   " + "  ".join(f"T={t:>2d}" for t in THREAD_SWEEP)
    print(f"{args.dataset} (rank {args.rank}, simulated paper machine)")
    print(header)
    for label, blocked in (("base", False), ("blocked", True)):
        curve = speedup_curve(workload, blocked=blocked,
                              threads=THREAD_SWEEP)
        print(f"{label:8s}  "
              + "  ".join(f"{curve[t]:4.1f}" for t in THREAD_SWEEP))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Constrained sparse tensor factorization with "
                    "accelerated AO-ADMM (ICPP 2017 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats",
                       help="summarize a .tns tensor or sharded store")
    p.add_argument("tensor")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("factorize",
                       help="run AO-ADMM on a .tns tensor or sharded store")
    p.add_argument("tensor")
    p.add_argument("--rank", type=int, default=16)
    p.add_argument("--constraint", default="nonneg")
    p.add_argument("--weight", type=float, default=0.1,
                   help="regularization weight for l1/nonneg_l1/l2")
    p.add_argument("--unblocked", action="store_true",
                   help="use the baseline full-matrix ADMM")
    p.add_argument("--block-size", type=int, default=50)
    p.add_argument("--repr", default="dense",
                   choices=("dense", "csr", "hybrid", "auto"),
                   help="deep-factor representation policy for MTTKRP")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-iterations", type=int, default=200)
    p.add_argument("--tolerance", type=float, default=1e-6)
    p.add_argument("--output", help="save factors as .npz")
    p.add_argument("--verbose", action="store_true",
                   help="print every outer iteration")
    p.add_argument("--guard-policy", default="raise",
                   choices=("off", "raise", "rollback", "repair"),
                   help="numerical-guard reaction (repro.robustness)")
    p.add_argument("--checkpoint", metavar="PATH",
                   help=".npz destination for resumable checkpoints")
    p.add_argument("--checkpoint-every", type=int, metavar="N",
                   help="checkpoint every N outer iterations "
                        "(requires --checkpoint)")
    p.add_argument("--resume", metavar="PATH",
                   help="resume bit-identically from a checkpoint "
                        "written by a previous run")
    p.add_argument("--keep-last", type=int, metavar="N",
                   help="retain the newest N versioned checkpoints "
                        "(requires --checkpoint)")
    p.add_argument("--supervise", action="store_true",
                   help="run under the resilient fit supervisor: stall "
                        "watchdog, retry with backoff from checkpoints, "
                        "executor degradation ladder, graceful "
                        "SIGTERM/SIGINT preemption (exit code 3 when "
                        "preempted)")
    p.add_argument("--max-bytes-in-core", type=int, metavar="BYTES",
                   help="stream the tensor out-of-core, keeping at most "
                        "this many slab bytes resident "
                        "(REPRO_MAX_BYTES_IN_CORE in the environment)")
    p.add_argument("--tune", default=None,
                   choices=("off", "model", "measure"),
                   help="MTTKRP backend autotuning mode (default: "
                        "REPRO_TUNE or 'model'; results are "
                        "bit-identical across all modes)")
    p.set_defaults(func=_cmd_factorize)

    p = sub.add_parser("tune",
                       help="report the MTTKRP backend autotuner's "
                            "per-mode slab-plan decisions")
    p.add_argument("tensor", help="source .tns tensor or sharded store")
    p.add_argument("--rank", type=int, default=16)
    p.add_argument("--mode", default="measure",
                   choices=("model", "measure"),
                   help="rank candidates on the analytic cost model "
                        "only, or refine with timed calibration probes")
    p.add_argument("--threads", type=int, default=1)
    p.add_argument("--repeats", type=int, default=3,
                   help="timed repetitions per calibration probe "
                        "(best-of-N)")
    p.add_argument("--cache", metavar="PATH",
                   help="tuning-cache JSON path (default: "
                        "REPRO_TUNE_CACHE or ~/.cache/repro/autotune.json)")
    p.set_defaults(func=_cmd_tune)

    p = sub.add_parser("shard",
                       help="convert a .tns tensor into a sharded "
                            "on-disk store")
    p.add_argument("tensor", help="source .tns / .tns.gz file")
    p.add_argument("output", help="destination store directory")
    p.add_argument("--slab-nnz", type=int, metavar="N",
                   help="non-zeros per slab (default: config "
                        "DEFAULT_SLAB_NNZ)")
    p.set_defaults(func=_cmd_shard)

    p = sub.add_parser("fsck",
                       help="scrub stores, checkpoints, and tuning "
                            "caches; optionally repair what checksums "
                            "can prove damaged")
    p.add_argument("path",
                   help="store directory, checkpoint file/directory, "
                        "tuning-cache JSON, or a directory to walk")
    p.add_argument("--repair", action="store_true",
                   help="quarantine damaged artifacts, rebuild slabs "
                        "(needs --source), drop invalid cache entries, "
                        "and clean stale staging debris")
    p.add_argument("--source", metavar="TENSOR",
                   help=".tns file a store was sharded from; enables "
                        "slab rebuilds during --repair")
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON instead of a table")
    p.set_defaults(func=_cmd_fsck)

    p = sub.add_parser("generate", help="write a synthetic corpus")
    p.add_argument("dataset",
                   choices=("reddit", "nell", "amazon", "patents"))
    p.add_argument("output")
    p.add_argument("--preset", default="small",
                   choices=("tiny", "small", "medium"))
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("simulate",
                       help="speedup curves on the simulated machine")
    p.add_argument("dataset",
                   choices=("reddit", "nell", "amazon", "patents"))
    p.add_argument("--rank", type=int, default=50)
    p.set_defaults(func=_cmd_simulate)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
