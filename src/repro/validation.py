"""Input validation helpers shared by the public API surface.

These raise uniform, descriptive exceptions so that user errors surface at
API boundaries instead of deep inside a kernel.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .types import INDEX_DTYPE, VALUE_DTYPE


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with *message* unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def check_shape(shape: Sequence[int]) -> tuple[int, ...]:
    """Validate and normalize a tensor shape.

    Every extent must be a positive integer; at least one mode is required.
    """
    shape = tuple(int(s) for s in shape)
    require(len(shape) >= 1, "tensor must have at least one mode")
    for m, extent in enumerate(shape):
        require(extent >= 1, f"mode {m} has non-positive extent {extent}")
    return shape


def check_coords(coords: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Validate a ``(nmodes, nnz)`` coordinate array against *shape*.

    Returns the coordinates as a C-contiguous ``int64`` array.
    """
    coords = np.ascontiguousarray(coords, dtype=INDEX_DTYPE)
    require(coords.ndim == 2, "coords must be a 2-D (nmodes, nnz) array")
    require(
        coords.shape[0] == len(shape),
        f"coords has {coords.shape[0]} modes but shape has {len(shape)}",
    )
    if coords.shape[1]:
        lo = coords.min(axis=1)
        hi = coords.max(axis=1)
        for m, extent in enumerate(shape):
            require(lo[m] >= 0, f"mode {m} has negative index {lo[m]}")
            require(
                hi[m] < extent,
                f"mode {m} index {hi[m]} out of range for extent {extent}",
            )
    return coords


def check_values(vals: np.ndarray, nnz: int) -> np.ndarray:
    """Validate a value array of length *nnz*; returns ``float64`` copy/view."""
    vals = np.ascontiguousarray(vals, dtype=VALUE_DTYPE)
    require(vals.ndim == 1, "values must be 1-D")
    require(vals.shape[0] == nnz, f"expected {nnz} values, got {vals.shape[0]}")
    return vals


def check_factor(factor: np.ndarray, extent: int | None = None,
                 rank: int | None = None, name: str = "factor") -> np.ndarray:
    """Validate a dense factor matrix, optionally against extent/rank."""
    factor = np.ascontiguousarray(factor, dtype=VALUE_DTYPE)
    require(factor.ndim == 2, f"{name} must be a 2-D matrix")
    if extent is not None:
        require(
            factor.shape[0] == extent,
            f"{name} has {factor.shape[0]} rows, expected {extent}",
        )
    if rank is not None:
        require(
            factor.shape[1] == rank,
            f"{name} has {factor.shape[1]} columns, expected rank {rank}",
        )
    return factor


def check_mode(mode: int, nmodes: int) -> int:
    """Validate a mode index (supports negative indexing)."""
    mode = int(mode)
    if mode < 0:
        mode += nmodes
    require(0 <= mode < nmodes, f"mode {mode} out of range for {nmodes} modes")
    return mode


def check_rank(rank: int) -> int:
    """Validate a CPD rank."""
    rank = int(rank)
    require(rank >= 1, f"rank must be positive, got {rank}")
    return rank
