"""Benchmark harness utilities: timers, paper-style tables, figure series."""

from .timers import Timer, StageTimer
from .tables import format_table, format_markdown_table
from .series import Series, format_series
from .plots import ascii_plot, sparkline

__all__ = [
    "Timer",
    "StageTimer",
    "format_table",
    "format_markdown_table",
    "Series",
    "format_series",
    "ascii_plot",
    "sparkline",
]
