"""ASCII / markdown table formatting matching the paper's tables."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render dict-rows as an aligned ASCII table.

    Column order defaults to the keys of the first row.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    columns = list(columns or rows[0].keys())
    rendered = [[_render_cell(row.get(col, "")) for col in columns]
                for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered))
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i])
                       for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i])
                               for i in range(len(columns))))
    return "\n".join(lines)


def format_markdown_table(rows: Sequence[Mapping[str, object]],
                          columns: Sequence[str] | None = None) -> str:
    """Render dict-rows as a GitHub-flavored markdown table."""
    if not rows:
        return "(no rows)"
    columns = list(columns or rows[0].keys())
    out = ["| " + " | ".join(columns) + " |",
           "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        out.append("| " + " | ".join(_render_cell(row.get(c, ""))
                                     for c in columns) + " |")
    return "\n".join(out)
