"""Wall-clock timers for the benchmark harness.

Thin veneers over the :mod:`repro.observability` timing primitives —
the benchmark harness and the runtime share one timing code path.  The
classes keep their historical names/API; new code can use
:class:`repro.observability.Stopwatch` / ``StageClock`` directly.
"""

from __future__ import annotations

from ..observability.tracing import StageClock, Stopwatch


class Timer(Stopwatch):
    """A context-manager stopwatch.

    >>> with Timer() as t:
    ...     pass
    >>> t.seconds >= 0.0
    True
    """


class StageTimer(StageClock):
    """Accumulates wall-clock per named stage (Figure 3's breakdown).

    >>> st = StageTimer()
    >>> with st.stage("mttkrp"):
    ...     pass
    >>> set(st.totals()) == {"mttkrp"}
    True
    """
