"""Wall-clock timers for the benchmark harness."""

from __future__ import annotations

import time
from collections import defaultdict


class Timer:
    """A context-manager stopwatch.

    >>> with Timer() as t:
    ...     pass
    >>> t.seconds >= 0.0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.seconds += time.perf_counter() - self._start
        self._start = None


class StageTimer:
    """Accumulates wall-clock per named stage (Figure 3's breakdown).

    >>> st = StageTimer()
    >>> with st.stage("mttkrp"):
    ...     pass
    >>> set(st.totals()) == {"mttkrp"}
    True
    """

    def __init__(self) -> None:
        self._totals: dict[str, float] = defaultdict(float)

    class _Stage:
        def __init__(self, owner: "StageTimer", name: str) -> None:
            self._owner = owner
            self._name = name
            self._start = 0.0

        def __enter__(self) -> "StageTimer._Stage":
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc) -> None:
            self._owner._totals[self._name] += (
                time.perf_counter() - self._start)

    def stage(self, name: str) -> "StageTimer._Stage":
        """Context manager accumulating into *name*."""
        return StageTimer._Stage(self, name)

    def totals(self) -> dict[str, float]:
        """Seconds per stage."""
        return dict(self._totals)

    def fractions(self) -> dict[str, float]:
        """Normalized per-stage shares."""
        total = sum(self._totals.values())
        if total <= 0.0:
            return {k: 0.0 for k in self._totals}
        return {k: v / total for k, v in self._totals.items()}
