"""Terminal plots for figure series.

The benchmark artifacts are text files; these helpers add a readable
visual rendering of the paper's line plots — a multi-series ASCII chart
(Figure 6's convergence curves, Figures 4/5's speedup lines) — without
any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..validation import require
from .series import Series

_MARKERS = "ox+*#@%&"


def ascii_plot(series: Sequence[Series], width: int = 64, height: int = 16,
               title: str | None = None, x_name: str = "x",
               y_name: str = "y", logx: bool = False) -> str:
    """Render series as an ASCII scatter/line chart.

    Each series gets a marker from ``o x + * ...``; axes are linear (or
    log-x for time axes spanning decades).  Intended for benchmark
    artifacts and terminal inspection, not precision reading.
    """
    require(width >= 16 and height >= 4, "plot area too small")
    live = [s for s in series if len(s.x)]
    if not live:
        return (title + "\n" if title else "") + "(no data)"

    def tx(v: float) -> float:
        return math.log10(max(v, 1e-300)) if logx else v

    xs = [tx(v) for s in live for v in s.x]
    ys = [v for s in live for v in s.y]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, s in enumerate(live):
        marker = _MARKERS[idx % len(_MARKERS)]
        for xv, yv in zip(s.x, s.y):
            col = int((tx(xv) - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((yv - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.4g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{y_lo:10.4g} +" + "-" * width + "+")
    left = f"{(10 ** x_lo if logx else x_lo):.4g}"
    right = f"{(10 ** x_hi if logx else x_hi):.4g}"
    pad = width - len(left) - len(right)
    lines.append(" " * 12 + left + " " * max(pad, 1) + right)
    lines.append(" " * 12 + f"[{x_name}]  y={y_name}")
    legend = "  ".join(f"{_MARKERS[i % len(_MARKERS)]}={s.label}"
                       for i, s in enumerate(live))
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """A one-line unicode sparkline (for compact trace summaries)."""
    blocks = "▁▂▃▄▅▆▇█"
    vals = np.asarray(list(values), dtype=float)
    if vals.size == 0:
        return ""
    if vals.size > width:
        idx = np.linspace(0, vals.size - 1, width).astype(int)
        vals = vals[idx]
    lo, hi = float(vals.min()), float(vals.max())
    if hi == lo:
        return blocks[0] * len(vals)
    scaled = (vals - lo) / (hi - lo) * (len(blocks) - 1)
    return "".join(blocks[int(round(v))] for v in scaled)
