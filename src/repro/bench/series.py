"""Named (x, y) series — the textual form of the paper's figures."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Series:
    """One line of a figure."""

    label: str
    x: tuple[float, ...]
    y: tuple[float, ...]

    @classmethod
    def from_arrays(cls, label: str, x, y) -> "Series":
        x = tuple(float(v) for v in np.asarray(x).ravel())
        y = tuple(float(v) for v in np.asarray(y).ravel())
        if len(x) != len(y):
            raise ValueError("x and y must have equal length")
        return cls(label, x, y)

    def downsample(self, max_points: int = 20) -> "Series":
        """Thin the series for terminal display (keeps endpoints)."""
        n = len(self.x)
        if n <= max_points:
            return self
        idx = np.unique(np.linspace(0, n - 1, max_points).astype(int))
        return Series(self.label,
                      tuple(self.x[i] for i in idx),
                      tuple(self.y[i] for i in idx))


def format_series(series: Sequence[Series], title: str | None = None,
                  x_name: str = "x", y_name: str = "y",
                  max_points: int = 20) -> str:
    """Render series as aligned columns (one block per series)."""
    lines = []
    if title:
        lines.append(title)
    for s in series:
        thin = s.downsample(max_points)
        lines.append(f"-- {s.label}")
        lines.append(f"   {x_name:>12s}  {y_name:>12s}")
        for xv, yv in zip(thin.x, thin.y):
            lines.append(f"   {xv:12.4g}  {yv:12.6g}")
    return "\n".join(lines)
