"""Tensor-matrix computational kernels (the SPLATT kernel layer).

MTTKRP — the matricized tensor times Khatri-Rao product,
``K = X_(m) (A_{N-1} x ... x A_{m+1} x A_{m-1} x ... x A_0)`` — costs
``O(F nnz)`` per call and dominates the factorization of dense-ish tensors
(paper Figure 3), so it gets multiple implementations:

* reference COO loops (oracles for tests),
* vectorized COO with sort-based segment reduction,
* CSF kernels exploiting the fiber structure (paper Algorithm 3), and
* sparse-factor variants consuming CSR / hybrid factors (Section IV-C).
"""

from .scatter import scatter_add_rows, segment_sums
from .mttkrp_coo import mttkrp_coo_reference, mttkrp_coo
from .mttkrp_csf import (
    mttkrp_csf_root,
    mttkrp_csf_leaf,
    mttkrp_csf_internal,
    mttkrp_csf,
)
from .mttkrp_sparse import mttkrp_csf_root_repr, FactorRepresentation
from .workspace import BufferPool, KernelWorkspace
from .dispatch import (
    mttkrp,
    make_engine,
    MTTKRPEngine,
    MTTKRPCallStats,
    StreamingMTTKRPEngine,
)
from .autotune import (
    BackendAutotuner,
    BackendCandidate,
    ModeDecision,
    TuningCache,
    TuningReport,
    candidate_backends,
    resolve_tune_mode,
)

__all__ = [
    "scatter_add_rows",
    "segment_sums",
    "mttkrp_coo_reference",
    "mttkrp_coo",
    "mttkrp_csf_root",
    "mttkrp_csf_leaf",
    "mttkrp_csf_internal",
    "mttkrp_csf",
    "mttkrp_csf_root_repr",
    "FactorRepresentation",
    "BufferPool",
    "KernelWorkspace",
    "mttkrp",
    "make_engine",
    "MTTKRPEngine",
    "MTTKRPCallStats",
    "StreamingMTTKRPEngine",
    "BackendAutotuner",
    "BackendCandidate",
    "ModeDecision",
    "TuningCache",
    "TuningReport",
    "candidate_backends",
    "resolve_tune_mode",
]
