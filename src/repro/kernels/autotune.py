"""Measured-cost MTTKRP backend autotuner (paper Section VI, ROADMAP item 3).

Section VI leaves open "automatically select the best data structure ...
during MTTKRP"; :mod:`repro.sparse.autotune` answers it for the *factor*
side by pricing representations on the machine model.  This module closes
the *tensor* side: among the CSF execution plans (the slab-tiled kernels
at different slab-nnz targets) it picks, per tree, the plan the evidence
says is fastest.

The selector is deliberately restricted to plans inside the ``csf``
bit-identity family: every candidate is the same upward sweep over the
same tree, only decomposed into different contiguous root-slice slabs, so
any choice produces **bit-identical** output (the contract
:class:`repro.tensor.tiling.CSFTiling` documents and the differential
harness enforces).  Tuning is therefore performance-only by construction
— cross-family backends (COO, sparse-factor CSR/CSR-H) are priced for
the report but never auto-selected.

Three tune modes (``tune=`` on :func:`repro.fit` /
:func:`~repro.kernels.dispatch.make_engine`, or ``REPRO_TUNE``):

``"model"`` (the default)
    Rank candidates purely on the analytic cost model
    (:func:`repro.machine.kernels.mttkrp_kernel_cost` +
    :func:`repro.machine.cost.kernel_time`, with a per-slab dispatch
    surcharge and a cache-residency credit for slab-sized working sets).
    No timing, no disk I/O — safe to run on every fit.
``"measure"``
    Seed with the model, then refine with cheap timed calibration probes:
    each candidate runs a capped-nnz root-slice prefix of the real tree
    (:func:`repro.tensor.tiling.root_prefix_tree`) a few times, and the
    best-of-N per-nnz rate decides.  Decisions persist in an on-disk
    :class:`TuningCache` keyed by the tensor fingerprint, so repeated
    fits of the same data skip calibration entirely.
``"off"``
    No tuning; the engine keeps its explicit / default slab target.

Probe timings and decisions flow through the observability registry
(``tune_*`` metrics) and are summarized by ``python -m repro tune``.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

from ..config import (
    AUTOTUNE_MIN_PROBE_NNZ,
    AUTOTUNE_PROBE_NNZ,
    AUTOTUNE_SLAB_LADDER,
    DEFAULT_SLAB_NNZ,
)
from ..machine.cost import kernel_time
from ..machine.kernels import mttkrp_kernel_cost
from ..machine.spec import PAPER_MACHINE, MachineSpec
from ..observability import (
    record_tune_decision,
    record_tune_probe,
    record_tune_quarantine,
    span,
)
from ..parallel.executor import ExecutorBase, resolve_executor
from ..parallel.procpool import ProcessPoolBroken
from ..parallel.shm import ShmArena
from ..parallel.threadpool import effective_threads
from ..tensor.csf import CSFTensor
from ..tensor.tiling import CSFTiling, nnz_per_root_slice, root_prefix_tree
from ..validation import require
from .mttkrp_csf import mttkrp_csf
from .workspace import KernelWorkspace

#: Environment override for the tune mode (``off`` / ``model`` /
#: ``measure``); an explicit ``tune=`` argument wins over it.
TUNE_ENV_VAR = "REPRO_TUNE"

#: Environment override for the on-disk tuning-cache location.
CACHE_ENV_VAR = "REPRO_TUNE_CACHE"

TUNE_MODES = ("off", "model", "measure")

#: Bump to invalidate every persisted decision (the version is part of
#: each cache key, so stale-format entries simply never match).
CACHE_VERSION = 1

#: Model-side surcharge per slab: the Python dispatch + scheduling cost
#: the roofline cannot see.  Calibrated to the slab-sweep benchmarks'
#: observed per-slab overhead (tens of microseconds per dispatched
#: slab); it is what stops the model from always preferring the
#: finest decomposition.
PER_SLAB_DISPATCH_SECONDS = 2e-5

#: Malformed ``REPRO_TUNE`` values already warned about (warn once per
#: value, matching the ``REPRO_NUM_THREADS`` / ``REPRO_EXECUTOR``
#: pattern).
_WARNED_ENV_VALUES: set[str] = set()


def resolve_tune_mode(tune: str | None = None) -> str:
    """An explicit tune mode, else ``REPRO_TUNE``, else ``"model"``.

    A malformed environment value warns once per value and falls back to
    the default — a typo in a shell profile must not crash library calls.
    """
    if tune is not None:
        require(tune in TUNE_MODES,
                f"unknown tune mode {tune!r} (choose from {TUNE_MODES})")
        return tune
    raw = os.environ.get(TUNE_ENV_VAR)
    if not raw:
        return "model"
    if raw in TUNE_MODES:
        return raw
    if raw not in _WARNED_ENV_VALUES:
        _WARNED_ENV_VALUES.add(raw)
        warnings.warn(
            f"ignoring malformed {TUNE_ENV_VAR}={raw!r} "
            f"(choose from {TUNE_MODES}); tuning with 'model'",
            RuntimeWarning, stacklevel=2)
    return "model"


def default_cache_path() -> Path:
    """``REPRO_TUNE_CACHE``, else ``$XDG_CACHE_HOME/repro/autotune.json``."""
    raw = os.environ.get(CACHE_ENV_VAR)
    if raw:
        return Path(raw)
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "repro" / "autotune.json"


# ----------------------------------------------------------------------
# Candidates
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BackendCandidate:
    """One csf-family execution plan: the tree tiled at one slab target."""

    name: str
    slab_nnz_target: int
    #: *Requested* slab count the target resolves to on this tree
    #: (``ceil(nnz / target)`` capped at the slice count).  The realized
    #: count can be lower on skewed trees — ``balanced_chunks`` merges
    #: cuts that would produce empty slabs — but it is a pure function
    #: of the weights and this request, so two candidates with equal
    #: ``n_slabs`` produce the *identical* tiling.
    n_slabs: int


def _n_slabs(nnz: int, nslices: int, target: int) -> int:
    if not nnz or not nslices:
        return 0
    return max(1, min(-(-nnz // target), nslices))


def candidate_backends(nnz: int, nslices: int,
                       ladder: Sequence[int] | None = None
                       ) -> list[BackendCandidate]:
    """The slab-target ladder, deduplicated by resulting slab count.

    :data:`repro.config.DEFAULT_SLAB_NNZ` is always a rung, so the tuned
    engine can never do worse than "what the untuned engine would have
    done" by simply not considering it.
    """
    if not nnz or not nslices:
        return []
    rungs = sorted(set(ladder if ladder is not None
                       else AUTOTUNE_SLAB_LADDER) | {DEFAULT_SLAB_NNZ})
    out: list[BackendCandidate] = []
    seen: set[int] = set()
    for target in rungs:
        require(target >= 1, "slab targets must be positive")
        count = _n_slabs(nnz, nslices, int(target))
        if count in seen:
            continue
        seen.add(count)
        out.append(BackendCandidate(f"csf[s={target}]", int(target), count))
    return out


# ----------------------------------------------------------------------
# Decisions and reports
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ModeDecision:
    """The tuner's verdict for one mode-rooted tree."""

    mode: int
    backend: str
    slab_nnz_target: int
    n_slabs: int
    #: ``"model"`` (analytic only), ``"measure"`` (freshly probed),
    #: ``"cache"`` (persisted probe reused), or ``"default"`` (nothing
    #: to choose between — e.g. an empty tree).
    source: str
    #: Modelled seconds per candidate (always available).
    model_seconds: dict[str, float] = field(default_factory=dict)
    #: Probe-extrapolated seconds per candidate (measure/cache only).
    probe_seconds: dict[str, float] = field(default_factory=dict)
    #: Non-zeros the calibration prefix covered (0 = not probed).
    probe_nnz: int = 0

    def as_dict(self) -> dict:
        return {"mode": self.mode, "backend": self.backend,
                "slab_nnz_target": self.slab_nnz_target,
                "n_slabs": self.n_slabs, "source": self.source,
                "model_seconds": dict(self.model_seconds),
                "probe_seconds": dict(self.probe_seconds),
                "probe_nnz": self.probe_nnz}


@dataclass(frozen=True)
class TuningReport:
    """Per-mode decisions for one (tensor, rank, threads, executor)."""

    tune_mode: str
    rank: int
    threads: int
    executor: str
    fingerprint: str | None
    decisions: tuple[ModeDecision, ...]

    def decision(self, mode: int) -> ModeDecision | None:
        for d in self.decisions:
            if d.mode == mode:
                return d
        return None

    def slab_targets(self) -> dict[int, int]:
        """Per-root-mode slab targets, ready for the engine's tilings."""
        return {d.mode: d.slab_nnz_target for d in self.decisions}

    def format_table(self) -> str:
        """Human-readable tune report (the ``repro tune`` CLI output)."""
        names: list[str] = []
        for d in self.decisions:
            for name in list(d.model_seconds) + list(d.probe_seconds):
                if name not in names:
                    names.append(name)
        head = (f"tune mode={self.tune_mode} rank={self.rank} "
                f"threads={self.threads} executor={self.executor}")
        if self.fingerprint:
            head += f" fingerprint={self.fingerprint[:12]}"
        lines = [head,
                 f"{'mode':>4} {'chosen':>16} {'slabs':>6} {'source':>8}  "
                 + "  ".join(f"{n:>16}" for n in names)]
        for d in self.decisions:
            cells = []
            for name in names:
                probe = d.probe_seconds.get(name)
                model = d.model_seconds.get(name)
                val = probe if probe is not None else model
                mark = "*" if probe is not None else " "
                cells.append(f"{val * 1e3:>13.3f}ms{mark}" if val is not None
                             else f"{'-':>16}")
            lines.append(f"{d.mode:>4} {d.backend:>16} {d.n_slabs:>6} "
                         f"{d.source:>8}  " + "  ".join(cells))
        lines.append("(* = probe-extrapolated seconds; others are "
                     "model seconds)")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {"tune_mode": self.tune_mode, "rank": self.rank,
                "threads": self.threads, "executor": self.executor,
                "fingerprint": self.fingerprint,
                "decisions": [d.as_dict() for d in self.decisions]}


# ----------------------------------------------------------------------
# The on-disk tuning cache
# ----------------------------------------------------------------------

def cache_key(fingerprint: str, mode: int, rank: int, threads: int,
              executor: str) -> str:
    """The persisted-decision key: everything a probe's outcome depends on."""
    return (f"v{CACHE_VERSION}:{fingerprint}:mode={mode}:rank={rank}:"
            f"threads={threads}:executor={executor}")


def _valid_entry(entry: object) -> bool:
    if not isinstance(entry, dict):
        return False
    target = entry.get("slab_nnz_target")
    count = entry.get("n_slabs")
    probes = entry.get("probe_seconds")
    if not (isinstance(entry.get("backend"), str)
            and isinstance(target, int) and target >= 1
            and isinstance(count, int) and count >= 1
            and isinstance(probes, dict) and probes):
        return False
    return all(isinstance(k, str) and isinstance(v, (int, float))
               and np.isfinite(v) and v >= 0.0
               for k, v in probes.items())


def valid_cache_entry(entry: object) -> bool:
    """Whether *entry* is a well-formed tuning-cache record.

    The public face of the read path's validator, shared with the
    ``repro fsck`` scrubber so both judge entries by the same rules.
    """
    return _valid_entry(entry)


class TuningCache:
    """Persisted probe decisions, one JSON file, atomic rewrites.

    Corruption is quarantined, never fatal: an unreadable *file* is
    renamed aside (``<name>.corrupt``) and treated as empty; an invalid
    *entry* is dropped from the file on sight.  Both paths bump
    :attr:`quarantined` and re-measure — a damaged cache can cost time,
    not correctness.
    """

    def __init__(self, path: "Path | str | None" = None):
        self.path = Path(path) if path is not None else default_cache_path()
        #: Corrupt files/entries discarded by this instance.
        self.quarantined = 0

    def _load(self) -> dict:
        try:
            raw = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return {}
        except OSError as exc:
            warnings.warn(f"unreadable tuning cache {self.path}: {exc}",
                          RuntimeWarning, stacklevel=3)
            return {}
        try:
            data = json.loads(raw)
            if not isinstance(data, dict):
                raise ValueError("cache root must be an object")
        except ValueError as exc:
            self.quarantined += 1
            record_tune_quarantine("file")
            aside = self.path.with_name(self.path.name + ".corrupt")
            try:
                os.replace(self.path, aside)
            except OSError:
                aside = None
            warnings.warn(
                f"quarantined corrupt tuning cache {self.path}"
                + (f" -> {aside}" if aside else "") + f": {exc}",
                RuntimeWarning, stacklevel=3)
            return {}
        return data

    def _save(self, data: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                       encoding="utf-8")
        os.replace(tmp, self.path)

    def get(self, key: str) -> dict | None:
        """A validated entry, or None (invalid entries are dropped)."""
        data = self._load()
        entry = data.get(key)
        if entry is None:
            return None
        if not _valid_entry(entry):
            self.quarantined += 1
            record_tune_quarantine("entry")
            warnings.warn(
                f"quarantined corrupt tuning-cache entry {key!r} "
                f"in {self.path}; re-measuring",
                RuntimeWarning, stacklevel=3)
            del data[key]
            self._save(data)
            return None
        return entry

    def put(self, key: str, entry: dict) -> None:
        data = self._load()
        data[key] = entry
        self._save(data)

    def scrub(self, repair: bool = False) -> dict:
        """Audit every entry; optionally drop the invalid ones.

        Detection is read-only (unlike :meth:`get`, which quarantines
        on sight) so an fsck report pass can run without mutating the
        cache.  With *repair*, invalid entries are dropped and an
        unparseable file is quarantined aside, exactly as the read path
        would.  Returns ``{"exists", "entries", "invalid",
        "parse_error"}``.
        """
        try:
            raw = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return {"exists": False, "entries": 0, "invalid": [],
                    "parse_error": None}
        except OSError as exc:
            return {"exists": True, "entries": 0, "invalid": [],
                    "parse_error": str(exc)}
        try:
            data = json.loads(raw)
            if not isinstance(data, dict):
                raise ValueError("cache root must be an object")
        except ValueError as exc:
            if repair:
                self._load()  # reuses the file-quarantine path
            return {"exists": True, "entries": 0, "invalid": [],
                    "parse_error": str(exc)}
        invalid = [k for k in sorted(data) if not _valid_entry(data[k])]
        if repair and invalid:
            for key in invalid:
                del data[key]
                self.quarantined += 1
                record_tune_quarantine("entry")
            self._save(data)
        return {"exists": True, "entries": len(data), "invalid": invalid,
                "parse_error": None}


# ----------------------------------------------------------------------
# The autotuner
# ----------------------------------------------------------------------

class BackendAutotuner:
    """Per-(tensor, mode, rank) selector over csf-family execution plans.

    Parameters
    ----------
    mode:
        ``"off"`` / ``"model"`` / ``"measure"``; ``None`` resolves
        ``REPRO_TUNE`` (default ``"model"``).
    machine:
        Spec the analytic seeding prices against (default: the paper's).
    cache:
        A :class:`TuningCache` for persisted probe decisions.  ``None``
        creates the default on-disk cache in measure mode (and no cache
        otherwise).  Pass an explicit instance to pin the location.
    ladder:
        Slab-target rungs to consider (default
        :data:`repro.config.AUTOTUNE_SLAB_LADDER`).
    probe_nnz / min_probe_nnz / probe_repeats:
        Calibration-probe sizing: the prefix workload cap, the tensor
        size below which measure mode trusts the model instead of the
        clock, and the timed repetitions per candidate (best-of-N).
    clock:
        Injectable monotonic clock for the probes (tests pin a fake one
        to make calibration deterministic).
    """

    def __init__(self, mode: str | None = None,
                 machine: MachineSpec = PAPER_MACHINE,
                 cache: TuningCache | None = None,
                 ladder: Sequence[int] | None = None,
                 probe_nnz: int = AUTOTUNE_PROBE_NNZ,
                 min_probe_nnz: int | None = None,
                 probe_repeats: int = 3,
                 clock: Callable[[], float] = time.perf_counter):
        self.mode = resolve_tune_mode(mode)
        self.machine = machine
        self.ladder = tuple(ladder) if ladder is not None \
            else AUTOTUNE_SLAB_LADDER
        require(probe_nnz >= 1, "probe_nnz must be positive")
        require(probe_repeats >= 1, "probe_repeats must be positive")
        self.probe_nnz = int(probe_nnz)
        self.min_probe_nnz = (AUTOTUNE_MIN_PROBE_NNZ if min_probe_nnz is None
                              else int(min_probe_nnz))
        self.probe_repeats = int(probe_repeats)
        self.clock = clock
        if cache is None and self.mode == "measure":
            cache = TuningCache()
        self.cache = cache

    def candidates(self, tree: CSFTensor) -> list[BackendCandidate]:
        """The candidate plans this tuner would rank for *tree*."""
        return candidate_backends(tree.nnz, tree.nslices, self.ladder)

    # -- model seeding --------------------------------------------------
    def _slice_fibers(self, tree: CSFTensor) -> np.ndarray:
        """Per-root-slice fiber counts one level above the leaves."""
        if tree.nmodes == 2:
            # Two-level trees have no interior fiber level; each root
            # slice is its own (single) fiber.
            return np.ones(tree.nslices, dtype=np.int64)
        ptr = tree.fptr[0]
        for level in range(1, tree.nmodes - 2):
            ptr = tree.fptr[level][ptr]
        return np.diff(ptr)

    def model_seconds(self, tree: CSFTensor, candidate: BackendCandidate,
                      rank: int, threads: int | None = 1) -> float:
        """Analytic seconds for one candidate plan on one tree.

        Two slab-granularity effects are layered on the raw kernel cost:
        a per-slab dispatch surcharge (the interpreter's cost per
        scheduled slab), and a cache-residency credit — a slab's gather
        working set is bounded by its own non-zeros, so fine slabs see a
        lower effective miss rate than the monolithic working set would
        suggest (the measured reason tiling helps even single-threaded).
        """
        slice_nnz = nnz_per_root_slice(tree)
        if slice_nnz.size == 0:
            return 0.0
        leaf_rows = tree.shape[tree.mode_order[-1]]
        mid_rows = tree.shape[tree.mode_order[1]] if tree.nmodes >= 3 \
            else tree.shape[tree.mode_order[-1]]
        per_slab_nnz = max(1, tree.nnz // max(candidate.n_slabs, 1))
        cost = mttkrp_kernel_cost(
            slice_nnz, self._slice_fibers(tree), rank,
            leaf_rows=min(leaf_rows, per_slab_nnz), mid_rows=mid_rows,
            machine=self.machine,
            slab_nnz_target=candidate.slab_nnz_target)
        seconds = kernel_time(cost, effective_threads(threads), self.machine)
        return seconds + candidate.n_slabs * PER_SLAB_DISPATCH_SECONDS

    # -- measured probes ------------------------------------------------
    def _probe_factors(self, tree: CSFTensor, mode: int,
                       rank: int) -> list[np.ndarray]:
        rng = np.random.default_rng([0x7A11, mode, rank])
        return [rng.uniform(0.5, 1.5, (extent, rank))
                for extent in tree.shape]

    def probe_seconds(self, tree: CSFTensor, candidates:
                      Sequence[BackendCandidate], mode: int, rank: int,
                      threads: int | None = 1,
                      executor: "str | ExecutorBase | None" = None
                      ) -> tuple[dict[str, float], int]:
        """Best-of-N timed prefix runs per candidate, scaled to full-tree
        seconds.  Returns ``(seconds per candidate, probed nnz)``."""
        executor = resolve_executor(executor)
        prefix = root_prefix_tree(tree, self.probe_nnz)
        factors = self._probe_factors(tree, mode, rank)
        scale = tree.nnz / max(prefix.nnz, 1)
        results: dict[str, float] = {}
        for cand in candidates:
            tiling = CSFTiling(prefix,
                               slab_nnz_target=cand.slab_nnz_target)
            arena = ShmArena(tag="tune") if executor.offloads_slabs \
                else None
            try:
                ws = KernelWorkspace(tiling, shared_arena=arena)

                def run() -> None:
                    mttkrp_csf(prefix, factors, mode, tiling=tiling,
                               workspace=ws, threads=threads,
                               executor=executor)

                try:
                    run()  # warm-up: build pooled buffers untimed
                    best = float("inf")
                    for _ in range(self.probe_repeats):
                        tick = self.clock()
                        run()
                        best = min(best, self.clock() - tick)
                except ProcessPoolBroken:
                    # The probe must not kill the fit: degrade this
                    # tuner to the thread executor and re-probe.
                    executor = resolve_executor("thread")
                    return self.probe_seconds(tree, candidates, mode,
                                              rank, threads=threads,
                                              executor=executor)
            finally:
                if arena is not None:
                    arena.close()
            seconds = max(best, 0.0) * scale
            results[cand.name] = seconds
            record_tune_probe(mode=mode, backend=cand.name,
                              probe_nnz=prefix.nnz, seconds=max(best, 0.0),
                              scaled_seconds=seconds)
        return results, prefix.nnz

    # -- selection ------------------------------------------------------
    @staticmethod
    def _select(candidates: Sequence[BackendCandidate],
                scores: Mapping[str, float]) -> BackendCandidate:
        # Ties break toward the engine default, then toward fewer slabs
        # (less dispatch) — deterministic for any score map.
        return min(candidates, key=lambda c: (
            scores[c.name],
            0 if c.slab_nnz_target == DEFAULT_SLAB_NNZ else 1,
            -c.slab_nnz_target))

    def decide_tree(self, tree: CSFTensor, mode: int, rank: int,
                    threads: int | None = 1,
                    executor: "str | ExecutorBase | None" = None,
                    fingerprint: str | None = None) -> ModeDecision:
        """Tune one mode-rooted tree; records the decision when enabled."""
        require(rank >= 1, "rank must be positive")
        candidates = candidate_backends(tree.nnz, tree.nslices, self.ladder)
        if not candidates:
            decision = ModeDecision(mode=mode, backend="csf",
                                    slab_nnz_target=DEFAULT_SLAB_NNZ,
                                    n_slabs=0, source="default")
            record_tune_decision(decision)
            return decision
        with span("tune", mode=mode):
            model = {c.name: self.model_seconds(tree, c, rank, threads)
                     for c in candidates}
            if (self.mode == "measure" and len(candidates) > 1
                    and tree.nnz >= self.min_probe_nnz):
                decision = self._decide_measured(
                    tree, candidates, model, mode, rank, threads,
                    executor, fingerprint)
            else:
                best = self._select(candidates, model)
                decision = ModeDecision(
                    mode=mode, backend=best.name,
                    slab_nnz_target=best.slab_nnz_target,
                    n_slabs=best.n_slabs, source="model",
                    model_seconds=model)
        record_tune_decision(decision)
        return decision

    def _decide_measured(self, tree, candidates, model, mode, rank,
                         threads, executor, fingerprint) -> ModeDecision:
        executor_name = resolve_executor(executor).name
        key = None
        if self.cache is not None and fingerprint:
            key = cache_key(fingerprint, mode, rank,
                            effective_threads(threads), executor_name)
            entry = self.cache.get(key)
            if entry is not None:
                return ModeDecision(
                    mode=mode, backend=entry["backend"],
                    slab_nnz_target=entry["slab_nnz_target"],
                    n_slabs=entry["n_slabs"], source="cache",
                    model_seconds=model,
                    probe_seconds=dict(entry["probe_seconds"]),
                    probe_nnz=int(entry.get("probe_nnz", 0)))
        probes, probe_nnz = self.probe_seconds(
            tree, candidates, mode, rank, threads=threads,
            executor=executor)
        best = self._select(candidates, probes)
        decision = ModeDecision(
            mode=mode, backend=best.name,
            slab_nnz_target=best.slab_nnz_target, n_slabs=best.n_slabs,
            source="measure", model_seconds=model,
            probe_seconds=probes, probe_nnz=probe_nnz)
        if key is not None:
            self.cache.put(key, {
                "backend": best.name,
                "slab_nnz_target": best.slab_nnz_target,
                "n_slabs": best.n_slabs,
                "probe_seconds": probes,
                "probe_nnz": probe_nnz})
        return decision

    # -- engine-level entry points --------------------------------------
    def tune_trees(self, trees, rank: int, threads: int | None = 1,
                   executor: "str | ExecutorBase | None" = None,
                   fingerprint: str | None = None) -> TuningReport:
        """Tune every mode of an :class:`~repro.tensor.csf.AllModeCSF`."""
        if fingerprint is None and self.mode == "measure" \
                and self.cache is not None:
            from ..robustness.checkpoint import tensor_fingerprint
            fingerprint = tensor_fingerprint(trees.tensor)["sha1"]
        decisions = tuple(
            self.decide_tree(trees.csf(mode), mode, rank, threads=threads,
                             executor=executor, fingerprint=fingerprint)
            for mode in range(trees.nmodes))
        return TuningReport(tune_mode=self.mode, rank=rank,
                            threads=effective_threads(threads),
                            executor=resolve_executor(executor).name,
                            fingerprint=fingerprint, decisions=decisions)

    def tune_engine(self, engine, rank: int) -> TuningReport:
        """Tune an :class:`~repro.kernels.dispatch.MTTKRPEngine` in place.

        Must run before the engine builds any tiling (the decompositions
        are static); :meth:`MTTKRPEngine.apply_tuning` enforces that.
        """
        report = self.tune_trees(engine.trees, rank,
                                 threads=engine.threads,
                                 executor=engine._executor)
        engine.apply_tuning(report)
        return report
